// The root benchmark suite regenerates every table and figure of the
// paper (one Benchmark per artifact, delegating to
// internal/experiments at Quick scale), measures the ablations called
// out in DESIGN.md, and benchmarks the hot substrates.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Accuracy-style results are attached to benchmarks via b.ReportMetric
// (acc, gramfrac, buckets), so `go test -bench` output doubles as a
// compact reproduction report.
package dasc_test

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/kmeans"
	"repro/internal/linalg"
	"repro/internal/lsh"
	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/text"
)

// ---- one bench per paper artifact ----

func BenchmarkFig1Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure1(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2Collision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure2(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1CategoryLaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table1(); len(tab.Rows) != 12 {
			b.Fatal("unexpected table")
		}
	}
}

func BenchmarkTable2ClusterConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Table2(); len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Quality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Fnorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6TimeMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Elasticity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- ablation benches (DESIGN.md "key design choices") ----

func ablationData(b *testing.B) *dataset.Labeled {
	b.Helper()
	l, err := dataset.Mixture(dataset.MixtureConfig{N: 2048, D: 32, K: 16, Noise: 0.04, Seed: 77})
	if err != nil {
		b.Fatal(err)
	}
	return l
}

func reportDASC(b *testing.B, l *dataset.Labeled, cfg core.Config) {
	b.Helper()
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Cluster(l.Points, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	acc, err := metrics.Accuracy(l.Labels, res.Labels)
	if err != nil {
		b.Fatal(err)
	}
	n := l.Points.Rows()
	b.ReportMetric(acc, "acc")
	b.ReportMetric(float64(res.GramBytes)/float64(4*n*n), "gramfrac")
	b.ReportMetric(float64(len(res.Buckets)), "buckets")
}

// BenchmarkAblationDimensionPolicy compares span-driven dimension
// selection against the uniform baseline (§4.2's argument).
func BenchmarkAblationDimensionPolicy(b *testing.B) {
	l := ablationData(b)
	for _, p := range []lsh.DimensionPolicy{lsh.TopSpan, lsh.SpanWeighted, lsh.Uniform} {
		b.Run(p.String(), func(b *testing.B) {
			reportDASC(b, l, core.Config{K: 16, Seed: 1, Policy: p})
		})
	}
}

// BenchmarkAblationM sweeps the signature width (Figure 2's knob):
// accuracy trades against bucket count and Gram memory.
func BenchmarkAblationM(b *testing.B) {
	l := ablationData(b)
	for _, m := range []int{2, 4, 6, 8, 12} {
		b.Run(fmt.Sprintf("%02dbits", m), func(b *testing.B) {
			reportDASC(b, l, core.Config{K: 16, Seed: 1, M: m})
		})
	}
}

// BenchmarkAblationMerge toggles near-duplicate bucket merging (Eq. 6).
func BenchmarkAblationMerge(b *testing.B) {
	l := ablationData(b)
	b.Run("merge-on", func(b *testing.B) {
		reportDASC(b, l, core.Config{K: 16, Seed: 1, M: 8})
	})
	b.Run("merge-off", func(b *testing.B) {
		reportDASC(b, l, core.Config{K: 16, Seed: 1, M: 8, P: -1})
	})
}

// BenchmarkAblationLSHFamily swaps the paper's span/threshold hash for
// the alternative families of §3.2/§5.1 (SimHash, spectral hashing) and
// reports the accuracy/memory consequences.
func BenchmarkAblationLSHFamily(b *testing.B) {
	l := ablationData(b)
	families := map[string]func() lsh.Family{
		"paper": func() lsh.Family {
			h, err := lsh.Fit(l.Points, lsh.Config{M: 6, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			return h
		},
		"simhash": func() lsh.Family {
			h, err := lsh.FitSimHash(l.Points, 6, 1)
			if err != nil {
				b.Fatal(err)
			}
			return h
		},
		"spectral": func() lsh.Family {
			h, err := lsh.FitSpectral(l.Points, 6, 1)
			if err != nil {
				b.Fatal(err)
			}
			return h
		},
	}
	for name, mk := range families {
		b.Run(name, func(b *testing.B) {
			reportDASC(b, l, core.Config{K: 16, Seed: 1, Family: mk()})
		})
	}
}

// BenchmarkAblationEigensolver compares the dense tred2/tqli solver
// against Lanczos on a bucket-sized normalized Laplacian.
func BenchmarkAblationEigensolver(b *testing.B) {
	l, err := dataset.Mixture(dataset.MixtureConfig{N: 220, D: 16, K: 4, Noise: 0.05, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	s := kernel.Gram(l.Points, kernel.Gaussian(0.5))
	deg, err := matrix.RowSums(s)
	if err != nil {
		b.Fatal(err)
	}
	lap, err := deg.InvSqrt().ScaleSym(s)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("dense-tqli", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := linalg.EigenSym(lap); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lanczos", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := linalg.Lanczos(linalg.MatVec(lap), lap.Rows(), 4, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- substrate micro-benchmarks ----

func BenchmarkGramMatrix(b *testing.B) {
	b.ReportAllocs()
	l, _ := dataset.Mixture(dataset.MixtureConfig{N: 512, D: 64, K: 4, Seed: 3})
	k := kernel.NewGaussian(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel.Gram(l.Points, k)
	}
}

func BenchmarkLSHSignatures(b *testing.B) {
	b.ReportAllocs()
	l, _ := dataset.Mixture(dataset.MixtureConfig{N: 4096, D: 64, K: 8, Seed: 4})
	h, err := lsh.Fit(l.Points, lsh.Config{M: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Signatures(l.Points)
	}
}

func BenchmarkKMeans(b *testing.B) {
	b.ReportAllocs()
	l, _ := dataset.Mixture(dataset.MixtureConfig{N: 2048, D: 16, K: 8, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kmeans.Run(l.Points, kmeans.Config{K: 8, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSymDense(b *testing.B) {
	b.ReportAllocs()
	l, _ := dataset.Mixture(dataset.MixtureConfig{N: 128, D: 16, K: 4, Seed: 6})
	s := kernel.Gram(l.Points, kernel.Gaussian(0.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := linalg.EigenSym(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPorterStem(b *testing.B) {
	b.ReportAllocs()
	words := []string{"clustering", "approximation", "signatures", "relational",
		"probabilistic", "dimensionality", "hopefulness", "generalizations"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range words {
			text.PorterStem(w)
		}
	}
}

func BenchmarkMapReduceLocalWordCount(b *testing.B) {
	b.ReportAllocs()
	doc, err := corpus.Generate(corpus.Config{NumDocs: 64, NumCategories: 4, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	input := make([]mapreduce.Pair, len(doc.Docs))
	for i, d := range doc.Docs {
		input[i] = mapreduce.Pair{Key: doc.CategoryNames[doc.Labels[i]], Value: []byte(d)}
	}
	job := &mapreduce.Job{
		Name:        "bench-wc",
		NumReducers: 4,
		Map: func(key string, value []byte, emit mapreduce.Emit) error {
			for _, tok := range text.Tokenize(string(value)) {
				emit(tok, []byte{1})
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit mapreduce.Emit) error {
			emit(key, []byte{byte(len(values))})
			return nil
		},
	}
	exec := &mapreduce.Local{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Run(job, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDASCvsSC gives the headline end-to-end comparison at one
// size: the Figure 6 story in a single benchmark pair.
func BenchmarkDASCvsSC(b *testing.B) {
	l, _ := dataset.Mixture(dataset.MixtureConfig{N: 1024, D: 32, K: 8, Noise: 0.03, Seed: 8})
	b.Run("dasc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Cluster(l.Points, core.Config{K: 8, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.SC(l.Points, baseline.Config{K: 8, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("psc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.PSC(l.Points, baseline.Config{K: 8, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nyst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.NYST(l.Points, baseline.Config{K: 8, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
