// KPCA: kernel principal component analysis on a nonlinear dataset —
// §3.1 lists dimensionality reduction among the kernel methods the
// Gram-matrix approximation serves. Two concentric rings are not
// linearly separable in input space, but the first Gaussian-kernel
// principal component separates them with a threshold; the same
// computation then runs per LSH bucket to show the approximated
// (block-diagonal) Gram matrix preserving that structure.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/kernelml"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

func main() {
	rng := rand.New(rand.NewSource(4))
	n := 240
	pts := matrix.NewDense(2*n, 2)
	labels := make([]int, 2*n)
	for i := 0; i < n; i++ {
		theta := rng.Float64() * 2 * math.Pi
		r := 1 + rng.NormFloat64()*0.05
		pts.Set(i, 0, r*math.Cos(theta))
		pts.Set(i, 1, r*math.Sin(theta))
		theta = rng.Float64() * 2 * math.Pi
		r = 4 + rng.NormFloat64()*0.05
		pts.Set(n+i, 0, r*math.Cos(theta))
		pts.Set(n+i, 1, r*math.Sin(theta))
		labels[n+i] = 1
	}
	kf := kernel.Gaussian(1.2)

	// Full kernel PCA.
	gram := kernel.GramWithDiagonal(pts, kf)
	res, err := kernelml.KernelPCA(gram, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full kernel PCA: top eigenvalues %.2f, %.2f\n",
		res.Eigenvalues[0], res.Eigenvalues[1])
	fmt.Printf("ring separation along PC1: %.3f (1.0 = perfect threshold)\n",
		separability(res.Projections.Col(0), labels))

	// Bucketed kernel PCA over the LSH partition: each bucket gets its
	// own principal axes, yet the ring structure survives inside every
	// bucket because LSH keeps neighbours together.
	fam, err := lsh.Fit(pts, lsh.Config{M: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	part := lsh.PartitionWith(fam, pts, 1)
	emb, err := kernelml.BucketedKernelPCA(pts, part, kf, 2)
	if err != nil {
		log.Fatal(err)
	}
	entries := 0
	for _, b := range part.Buckets {
		entries += len(b.Indices) * len(b.Indices)
	}
	fmt.Printf("\nbucketed kernel PCA: %d buckets, %d kernel entries vs %d full\n",
		part.NumBuckets(), entries, 4*n*n)
	// Per-bucket separability of the first local component.
	for bi, b := range part.Buckets {
		vals := make([]float64, len(b.Indices))
		sub := make([]int, len(b.Indices))
		for i, idx := range b.Indices {
			vals[i] = emb.At(idx, 0)
			sub[i] = labels[idx]
		}
		fmt.Printf("bucket %d (%4d points): PC1 ring separation %.3f\n",
			bi, len(b.Indices), separability(vals, sub))
	}
}

// separability returns the best single-threshold accuracy of splitting
// the binary labels by the given scores.
func separability(scores []float64, labels []int) float64 {
	best := 0.0
	for _, thr := range scores {
		correct, flipped := 0, 0
		for i, s := range scores {
			if (s >= thr) == (labels[i] == 1) {
				correct++
			} else {
				flipped++
			}
		}
		if c := math.Max(float64(correct), float64(flipped)) / float64(len(scores)); c > best {
			best = c
		}
	}
	return best
}
