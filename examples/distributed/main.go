// Distributed: run DASC as the paper's two MapReduce stages on a real
// master/worker deployment — workers connect to the master over TCP
// sockets and exchange gob-encoded tasks, the in-process equivalent of
// the paper's Hadoop cluster. The same job also runs on the in-process
// Local executor to show the two produce identical clusterings.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
)

func main() {
	data, err := dataset.Mixture(dataset.MixtureConfig{
		N: 1500, D: 16, K: 4, Noise: 0.03, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{K: 4, Seed: 1}

	// Cancelling this context aborts in-flight map/reduce tasks on both
	// executors (the ClusterMapReduce form without Context is the same
	// driver with context.Background()).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Local executor: a bounded worker pool in this process.
	local, err := core.ClusterMapReduceContext(ctx, data.Points, cfg, &mapreduce.Local{}, "example")
	if err != nil {
		log.Fatal(err)
	}

	// TCP executor: a master socket plus four workers dialing in.
	// TCPConfig also carries the dial and per-exchange I/O deadlines
	// (zero fields use DefaultDialTimeout / DefaultIOTimeout).
	master, err := mapreduce.NewMasterTCP(mapreduce.TCPConfig{
		Addr:       "127.0.0.1:0",
		MinWorkers: 4,
		IOTimeout:  30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := master.Close(); err != nil {
			log.Println("master close:", err)
		}
	}()
	for i := 0; i < 4; i++ {
		go func() {
			if err := mapreduce.RunWorkerContext(ctx, master.Addr()); err != nil {
				log.Println("worker:", err)
			}
		}()
	}
	fmt.Printf("master listening on %s, waiting for 4 workers...\n", master.Addr())
	tcp, err := core.ClusterMapReduceContext(ctx, data.Points, cfg, master, "example")
	if err != nil {
		log.Fatal(err)
	}

	agree, err := metrics.Accuracy(local.Labels, tcp.Labels)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := metrics.Accuracy(data.Labels, tcp.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local executor:  %d clusters in %s\n", local.Clusters, local.Elapsed)
	fmt.Printf("tcp executor:    %d clusters in %s (4 workers over sockets)\n", tcp.Clusters, tcp.Elapsed)
	fmt.Printf("agreement:       %.3f (1.000 = identical partitions)\n", agree)
	fmt.Printf("accuracy:        %.3f against ground truth\n", acc)
}
