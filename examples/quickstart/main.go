// Quickstart: cluster a synthetic Gaussian mixture with DASC and check
// the result against ground truth — the smallest end-to-end use of the
// library's public pipeline (dataset -> core.Cluster -> metrics).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func main() {
	// 2,000 points in 16 dimensions from 5 well-separated blobs.
	data, err := dataset.Mixture(dataset.MixtureConfig{
		N: 2000, D: 16, K: 5, Noise: 0.03, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// DASC with paper defaults: M = ceil(log2 N / 2) - 1 signature
	// bits, bucket merging at Hamming distance 1, Gaussian kernel with
	// the median-distance bandwidth. Every driver has a Context variant
	// (core.Cluster == core.ClusterContext with context.Background());
	// the deadline here bounds the run, cancelling between stages and
	// before each bucket solve.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := core.ClusterContext(ctx, data.Points, core.Config{K: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	acc, err := metrics.Accuracy(data.Labels, res.Labels)
	if err != nil {
		log.Fatal(err)
	}
	full := int64(4) * int64(data.Points.Rows()) * int64(data.Points.Rows())
	fmt.Printf("points:    %d\n", data.Points.Rows())
	fmt.Printf("signature: %d bits -> %d buckets\n", res.SignatureBits, len(res.Buckets))
	fmt.Printf("clusters:  %d\n", res.Clusters)
	fmt.Printf("accuracy:  %.3f\n", acc)
	fmt.Printf("gram:      %.0f KB approximated vs %.0f KB full (%.1fx saving)\n",
		float64(res.GramBytes)/1024, float64(full)/1024,
		float64(full)/float64(res.GramBytes))
	fmt.Printf("time:      %s\n", res.Elapsed)
}
