// Crawl: reproduce the paper's data-collection pipeline end to end
// (§5.2). A synthetic category-tree wiki is served over real HTTP; the
// crawler walks it from the categories index page — recursing into
// CategoryTreeBullet links and downloading the leaves — then the text
// pipeline cleans and vectorizes the downloaded documents, and DASC
// clusters them against the crawl-derived category labels.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crawler"
	"repro/internal/metrics"
	"repro/internal/text"
)

func main() {
	// Author a synthetic wiki of 600 documents in their category tree.
	c, err := corpus.Generate(corpus.Config{NumDocs: 600, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	site, err := crawler.NewSite(crawler.SiteConfig{Corpus: c, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	base, stop := site.Start()
	defer stop()
	fmt.Printf("serving %d pages at %s\n", site.Pages(), base)

	// Crawl it, exactly as the paper crawled Wikipedia.
	res, err := (&crawler.Crawler{}).Crawl(base, site.IndexPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d documents over %d HTTP requests\n",
		len(res.Docs), res.PagesFetched)

	// Clean and vectorize the downloaded HTML (strip, stem, tf-idf,
	// top-11 terms per document).
	cleaned := make([][]string, len(res.Docs))
	for i, d := range res.Docs {
		cleaned[i] = text.Clean(d)
	}
	pts, vocab, err := text.VectorizeTopTerms(cleaned, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vectorized into %d x %d (vocabulary of %d kept terms)\n",
		pts.Rows(), pts.Cols(), len(vocab))

	// Cluster and score against the crawl-derived labels.
	labels := res.Labels()
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	run, err := core.Cluster(pts, core.Config{K: k, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	acc, err := metrics.Accuracy(labels, run.Labels)
	if err != nil {
		log.Fatal(err)
	}
	nmi, err := metrics.NMI(labels, run.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDASC over the crawl: %d buckets, %d clusters\n",
		len(run.Buckets), run.Clusters)
	fmt.Printf("accuracy vs crawl categories: %.3f (NMI %.3f)\n", acc, nmi)
}
