// Shingles: near-duplicate-style document clustering with the MinHash
// ensemble. Instead of the tf-idf vector-space route of
// examples/documents, each document becomes the *set* of its k-token
// shingles, hashed into a sparse binary vector; min-wise hashing
// buckets by Jaccard overlap of those sets. A single MinHash table is
// a coarse cut, so the example turns the ensemble dial — several
// independently seeded tables plus Hamming-ball probing — and shows
// the recall climbing while the pipeline stays the stock DASC one.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lsh"
	"repro/internal/matrix"
	"repro/internal/metrics"
	"repro/internal/text"
)

func main() {
	// A small corpus with a handful of well-separated categories.
	c, err := corpus.Generate(corpus.Config{NumDocs: 400, NumCategories: 6, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus:  %d documents in %d categories\n", len(c.Docs), c.Categories)

	// Clean each document and hash its 2-token shingle set into a
	// 512-dimensional binary indicator vector.
	const shingleK, dims = 2, 512
	points := matrix.NewDense(len(c.Docs), dims)
	for i, doc := range c.Docs {
		copy(points.Row(i), text.ShingleVector(text.Clean(doc), shingleK, dims))
	}
	fmt.Printf("vectors: %d x %d binary shingle indicators\n", points.Rows(), points.Cols())

	// MinHash over the shingle support, swept across the ensemble dial.
	// MinHash is seed-refittable, so Tables > 1 derives independent
	// tables from the one family.
	mh, err := lsh.FitMinHash(12, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, dial := range []struct {
		tables, probe int
	}{
		{1, 0}, // single table, probing off: the paper's baseline
		{4, 0}, // four independent tables
		{4, 1}, // ... plus one-bit Hamming probes
	} {
		res, err := core.Cluster(points, core.Config{
			K: c.Categories, Seed: 1, Family: mh,
			Tables: dial.tables, ProbeRadius: dial.probe,
		})
		if err != nil {
			log.Fatal(err)
		}
		nmi, err := metrics.NMI(c.Labels, res.Labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("L=%d R=%d: %3d buckets -> %2d clusters, NMI %.3f\n",
			dial.tables, dial.probe, len(res.Buckets), res.Clusters, nmi)
	}
}
