// Classification: the paper's §1 motivation is that kernel machines —
// its running example is an SVM pedestrian classifier — get better with
// more training data but drown in the O(N^2) kernel matrix. This
// example shows the LSH Gram approximation carrying a kernel algorithm
// other than spectral clustering: a bucketed SVM ensemble whose
// training touches only per-bucket kernel blocks, compared against a
// monolithic SVM trained on the full kernel matrix.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/kernelml"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	train, yTrain := twoMoonsish(rng, 600)
	test, yTest := twoMoonsish(rng, 300)
	kf := kernel.Gaussian(0.6)

	// Monolithic SVM: needs the full N x N kernel matrix.
	gram := kernel.GramWithDiagonal(train, kf)
	mono, err := kernelml.TrainSVM(gram, yTrain, kernelml.SVMConfig{C: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	monoAcc := evaluate(test, yTest, func(x []float64) int {
		return mono.Predict(train, kf, x)
	})

	// Bucketed ensemble: LSH routes points to per-bucket SVMs; training
	// only ever materializes sum(Ni^2) kernel entries.
	fam, err := lsh.FitSimHash(train, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	ens, err := kernelml.TrainBucketedSVM(train, yTrain, fam, kf, kernelml.SVMConfig{C: 5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ensAcc := evaluate(test, yTest, ens.Predict)

	n := train.Rows()
	fmt.Printf("training points: %d, test points: %d\n\n", n, test.Rows())
	fmt.Printf("%-14s %-10s %s\n", "model", "test acc", "kernel entries")
	fmt.Printf("%-14s %-10.3f %d (full N^2)\n", "monolithic", monoAcc, n*n)
	entries := 0
	part := lsh.PartitionWith(fam, train, 1)
	for _, b := range part.Buckets {
		entries += len(b.Indices) * len(b.Indices)
	}
	fmt.Printf("%-14s %-10.3f %d (sum Ni^2, %d buckets)\n",
		"bucketed", ensAcc, entries, ens.Buckets())
	fmt.Printf("\nkernel-entry saving: %.1fx\n", float64(n*n)/float64(entries))
}

// twoMoonsish draws a 2-class problem: two offset noisy arcs.
func twoMoonsish(rng *rand.Rand, n int) (*matrix.Dense, []int) {
	pts := matrix.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		theta := rng.Float64() * math.Pi
		noise := rng.NormFloat64() * 0.08
		if i%2 == 0 {
			pts.Set(i, 0, math.Cos(theta)+noise)
			pts.Set(i, 1, math.Sin(theta)+noise)
			y[i] = 1
		} else {
			pts.Set(i, 0, 1-math.Cos(theta)+noise)
			pts.Set(i, 1, 0.4-math.Sin(theta)+noise)
			y[i] = -1
		}
	}
	return pts, y
}

func evaluate(test *matrix.Dense, y []int, predict func([]float64) int) float64 {
	correct := 0
	for i := 0; i < test.Rows(); i++ {
		if predict(test.Row(i)) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(test.Rows())
}
