// Documents: the paper's headline workload — cluster a category-
// structured document corpus. The example walks the entire §5.2
// pipeline: generate raw HTML documents, clean them (strip tags,
// tokenize, stop-words, Porter stemming), rank terms by tf-idf and keep
// each document's top F=11, hash with LSH, cluster each bucket
// spectrally, and score against the ground-truth categories, comparing
// DASC with full spectral clustering.
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/text"
)

func main() {
	// A corpus of 1,500 documents. With the paper's category law the
	// generator produces K = 17(log2 N - 9) ~ 26 categories arranged in
	// a topic hierarchy, like Wikipedia's category tree.
	c, err := corpus.Generate(corpus.Config{NumDocs: 1500, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus:   %d documents in %d categories (e.g. %s)\n",
		len(c.Docs), c.Categories, c.CategoryNames[0])

	// Peek at the text pipeline on the first document.
	tokens := text.Clean(c.Docs[0])
	fmt.Printf("doc 0:    %d raw bytes -> %d cleaned+stemmed tokens %v...\n",
		len(c.Docs[0]), len(tokens), tokens[:4])

	// Vectorize: each document keeps its top-11 tf-idf terms.
	data, err := c.Vectorize(11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vectors:  %d x %d (union vocabulary of kept terms)\n",
		data.Points.Rows(), data.Points.Cols())

	dasc, err := core.Cluster(data.Points, core.Config{K: c.Categories, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dascAcc, err := metrics.Accuracy(data.Labels, dasc.Labels)
	if err != nil {
		log.Fatal(err)
	}

	sc, err := baseline.SC(data.Points, baseline.Config{K: c.Categories, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	scAcc, err := metrics.Accuracy(data.Labels, sc.Labels)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %-10s %-12s %s\n", "algo", "accuracy", "gram (KB)", "time")
	fmt.Printf("%-6s %-10.3f %-12.1f %s\n", "DASC", dascAcc, float64(dasc.GramBytes)/1024, dasc.Elapsed)
	fmt.Printf("%-6s %-10.3f %-12.1f %s\n", "SC", scAcc, float64(sc.GramBytes)/1024, sc.Elapsed)
	fmt.Printf("\nDASC used %d buckets; accuracy within %.3f of full spectral clustering.\n",
		len(dasc.Buckets), scAcc-dascAcc)
}
