// Elasticity: the paper's Table 3 scenario — run DASC's job flow on
// simulated Amazon EMR clusters of 16, 32 and 64 nodes and watch the
// time halve while accuracy and memory stay flat. The flow's tasks come
// from a real LSH partition of a real corpus; only their execution is
// simulated (cost model from §4.1, LPT scheduling onto Table 2 nodes).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/emr"
	"repro/internal/metrics"
)

func main() {
	c, err := corpus.Generate(corpus.Config{NumDocs: 2048, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	data, err := c.Vectorize(11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{K: c.Categories, Seed: 1, M: 10}

	// Real run for accuracy.
	run, err := core.Cluster(data.Points, cfg)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := metrics.Accuracy(data.Labels, run.Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DASC on %d documents: %d buckets, accuracy %.3f\n\n",
		data.Points.Rows(), len(run.Buckets), acc)

	// Simulated elastic execution of the same work.
	flow, _, err := core.EMRFlow(data.Points, cfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	// At this single-machine dataset size DASC produces a few dozen
	// bucket tasks, so the interesting elastic range is small clusters
	// (the paper's 16-64 node sweep at N in the millions has thousands
	// of tasks — cmd/experiments -only table3 reproduces that regime by
	// resampling the measured bucket distribution).
	fmt.Printf("%-8s %-14s %-14s %s\n", "nodes", "total time", "memory", "speedup")
	var base float64
	for step, nodes := range []int{1, 2, 4, 8} {
		cluster, err := emr.NewCluster(nodes)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := cluster.RunJobFlow(flow)
		if err != nil {
			log.Fatal(err)
		}
		if step == 0 {
			base = rep.TotalTime
		}
		fmt.Printf("%-8d %-14s %-14s %.2fx\n",
			nodes,
			fmt.Sprintf("%.3fs", rep.TotalTime),
			fmt.Sprintf("%.1f KB", float64(rep.TotalMemory)/1024),
			base/rep.TotalTime)
	}
	fmt.Println("\nsteps on the 8-node cluster:")
	cluster, _ := emr.NewCluster(8)
	rep, err := cluster.RunJobFlow(flow)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}
