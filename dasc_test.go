package dasc_test

import (
	"sync"
	"testing"
	"time"

	dasc "repro"
)

// TestPublicAPIQuickstart exercises the facade the README documents.
func TestPublicAPIQuickstart(t *testing.T) {
	data, err := dasc.Mixture(dasc.MixtureConfig{N: 300, D: 8, K: 3, Noise: 0.03, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dasc.Cluster(data.Points, dasc.Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := dasc.Accuracy(data.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy = %v", acc)
	}
	if _, err := dasc.DaviesBouldin(data.Points, res.Labels); err != nil {
		t.Fatal(err)
	}
	if _, err := dasc.AverageSquaredError(data.Points, res.Labels); err != nil {
		t.Fatal(err)
	}
	if _, err := dasc.NMI(data.Labels, res.Labels); err != nil {
		t.Fatal(err)
	}
	if _, err := dasc.Purity(data.Labels, res.Labels); err != nil {
		t.Fatal(err)
	}
	if _, err := dasc.AdjustedRand(data.Labels, res.Labels); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	data, err := dasc.Mixture(dasc.MixtureConfig{N: 120, D: 8, K: 2, Noise: 0.03, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (*dasc.BaselineResult, error){
		"sc":  func() (*dasc.BaselineResult, error) { return dasc.SC(data.Points, dasc.BaselineConfig{K: 2, Seed: 1}) },
		"psc": func() (*dasc.BaselineResult, error) { return dasc.PSC(data.Points, dasc.BaselineConfig{K: 2, Seed: 1}) },
		"nyst": func() (*dasc.BaselineResult, error) {
			return dasc.NYST(data.Points, dasc.BaselineConfig{K: 2, Seed: 1})
		},
		"km": func() (*dasc.BaselineResult, error) { return dasc.KM(data.Points, dasc.BaselineConfig{K: 2, Seed: 1}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acc, err := dasc.Accuracy(data.Labels, res.Labels)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if acc < 0.9 {
			t.Fatalf("%s accuracy = %v", name, acc)
		}
	}
}

func TestPublicAPISpectralAndKernels(t *testing.T) {
	data, err := dasc.Mixture(dasc.MixtureConfig{N: 80, D: 4, K: 2, Noise: 0.02, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := dasc.Gram(data.Points, dasc.Gaussian(0.5))
	labels, err := dasc.SpectralCluster(s, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := dasc.Accuracy(data.Labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("spectral accuracy = %v", acc)
	}
	if _, err := dasc.FitLSH(data.Points, 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICorpusAndIncremental(t *testing.T) {
	c, err := dasc.GenerateCorpus(dasc.CorpusConfig{NumDocs: 200, NumCategories: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Vectorize(11)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := dasc.ClusterIncremental(data.Points, dasc.Config{K: 4, Seed: 1}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Waves < 1 || len(inc.Labels) != 200 {
		t.Fatalf("incremental result %+v", inc)
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	data, err := dasc.Mixture(dasc.MixtureConfig{N: 90, D: 6, K: 2, Noise: 0.03, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dasc.NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := dasc.RunWorker(m.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}
	res, err := dasc.ClusterMapReduce(data.Points, dasc.Config{K: 2, Seed: 1}, m, "facade")
	if err != nil {
		t.Fatal(err)
	}
	local, err := dasc.ClusterMapReduce(data.Points, dasc.Config{K: 2, Seed: 1}, &dasc.LocalExecutor{}, "facade")
	if err != nil {
		t.Fatal(err)
	}
	agree, err := dasc.Accuracy(local.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Fatalf("executors disagree: %v", agree)
	}
	m.Close()
	wg.Wait()
}

func TestPublicAPIEMR(t *testing.T) {
	data, err := dasc.Mixture(dasc.MixtureConfig{N: 256, D: 8, K: 4, Noise: 0.04, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	flow, err := dasc.EMRFlow(data.Points, dasc.Config{K: 4, Seed: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := dasc.NewEMRCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cluster.RunJobFlow(flow)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTime <= 0 {
		t.Fatalf("simulated time = %v", rep.TotalTime)
	}
}

func TestPublicAPIMatrixHelpers(t *testing.T) {
	m := dasc.NewMatrix(2, 2)
	m.Set(0, 1, 3)
	if m.At(0, 1) != 3 {
		t.Fatal("matrix facade broken")
	}
	fr, err := dasc.FromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil || fr.Rows() != 2 {
		t.Fatalf("FromRows: %v %v", fr, err)
	}
}
