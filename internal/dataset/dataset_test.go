package dataset

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestMixtureDefaults(t *testing.T) {
	l, err := Mixture(MixtureConfig{N: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if l.Points.Rows() != 100 || l.Points.Cols() != 64 {
		t.Fatalf("dims %dx%d, want 100x64", l.Points.Rows(), l.Points.Cols())
	}
	for _, v := range l.Points.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("value %v out of [0,1]", v)
		}
	}
	seen := map[int]int{}
	for _, lab := range l.Labels {
		seen[lab]++
	}
	if len(seen) != 4 {
		t.Fatalf("components = %d, want 4", len(seen))
	}
	for c, count := range seen {
		if count != 25 {
			t.Fatalf("component %d has %d points, want 25", c, count)
		}
	}
}

func TestMixtureValidation(t *testing.T) {
	cases := []MixtureConfig{
		{N: 0},
		{N: 10, D: -1},
		{N: 10, K: 11},
		{N: 10, K: -2},
		{N: 10, Noise: -0.1},
	}
	for i, cfg := range cases {
		if _, err := Mixture(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestMixtureDeterministic(t *testing.T) {
	a, _ := Mixture(MixtureConfig{N: 50, D: 8, K: 3, Seed: 9})
	b, _ := Mixture(MixtureConfig{N: 50, D: 8, K: 3, Seed: 9})
	for i := range a.Points.Data() {
		if a.Points.Data()[i] != b.Points.Data()[i] {
			t.Fatal("same seed must reproduce points")
		}
	}
}

func TestMixtureSeparation(t *testing.T) {
	// With tiny noise, intra-component distances are far below
	// inter-component ones for most pairs.
	l, _ := Mixture(MixtureConfig{N: 60, D: 16, K: 2, Noise: 0.01, Seed: 3})
	same, diff := 0.0, 0.0
	var sameN, diffN int
	for i := 0; i < 60; i += 3 {
		for j := i + 1; j < 60; j += 3 {
			d := 0.0
			for c := 0; c < 16; c++ {
				dv := l.Points.At(i, c) - l.Points.At(j, c)
				d += dv * dv
			}
			if l.Labels[i] == l.Labels[j] {
				same += d
				sameN++
			} else {
				diff += d
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Fatal("sampling covered only one label")
	}
	if same/float64(sameN) >= diff/float64(diffN) {
		t.Fatal("intra-cluster distance must be below inter-cluster")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	l, _ := Mixture(MixtureConfig{N: 30, D: 4, K: 3, Seed: 5})
	type pair struct {
		label int
		first float64
	}
	before := map[pair]int{}
	for i := 0; i < 30; i++ {
		before[pair{l.Labels[i], l.Points.At(i, 0)}]++
	}
	l.Shuffle(7)
	after := map[pair]int{}
	for i := 0; i < 30; i++ {
		after[pair{l.Labels[i], l.Points.At(i, 0)}]++
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed the multiset of (label, point) pairs")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("shuffle broke label-point association")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	l, _ := Mixture(MixtureConfig{N: 20, D: 5, K: 2, Seed: 11})
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Points.Rows() != 20 || back.Points.Cols() != 5 {
		t.Fatalf("round-trip dims %dx%d", back.Points.Rows(), back.Points.Cols())
	}
	for i := range l.Labels {
		if l.Labels[i] != back.Labels[i] {
			t.Fatal("labels changed in round trip")
		}
	}
	for i := range l.Points.Data() {
		if l.Points.Data()[i] != back.Points.Data()[i] {
			t.Fatal("points changed in round trip")
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                 // empty
		"notanint,1.0\n",   // bad label
		"0\n",              // too few fields
		"0,abc\n",          // bad float
		"0,1.0\n0,1.0,2\n", // ragged
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	l, err := ReadCSV(strings.NewReader("1,0.5\n\n2,0.25\n"))
	if err != nil {
		t.Fatal(err)
	}
	if l.Points.Rows() != 2 || l.Labels[1] != 2 {
		t.Fatalf("parsed %d rows, labels %v", l.Points.Rows(), l.Labels)
	}
}

// Property: CSV round trip is the identity for arbitrary mixtures.
func TestPropCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%50+50)%50 + 1
		k := 1 + n%3
		if k > n {
			k = n
		}
		l, err := Mixture(MixtureConfig{N: n, D: 3, K: k, Seed: seed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := l.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if back.Points.Rows() != l.Points.Rows() {
			return false
		}
		for i := range l.Labels {
			if l.Labels[i] != back.Labels[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
