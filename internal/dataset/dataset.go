// Package dataset generates the synthetic workloads of the paper's
// evaluation (§5.2): Gaussian-mixture datasets of configurable size,
// dimensionality and separation, with every feature value in [0, 1]
// ("dataset normalization is a standard preprocessing step"), plus CSV
// persistence for the command-line tools.
package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/matrix"
)

// Labeled couples a point matrix with ground-truth cluster labels.
type Labeled struct {
	Points *matrix.Dense
	Labels []int
}

// MixtureConfig controls the synthetic Gaussian-mixture generator.
type MixtureConfig struct {
	// N is the number of points (required).
	N int
	// D is the dimensionality (default 64, per §5.2).
	D int
	// K is the number of mixture components (default 4).
	K int
	// Noise is the per-dimension Gaussian standard deviation around a
	// component center (default 0.05).
	Noise float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// Mixture draws N points from K Gaussian blobs whose centers are
// uniform in [0.1, 0.9]^D, clamping samples into [0, 1]. Points are
// generated component-by-component in contiguous label runs; callers
// that need shuffled order can use Shuffle.
func Mixture(cfg MixtureConfig) (*Labeled, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("dataset: N=%d must be positive", cfg.N)
	}
	if cfg.D == 0 {
		cfg.D = 64
	}
	if cfg.D < 1 {
		return nil, fmt.Errorf("dataset: D=%d must be positive", cfg.D)
	}
	if cfg.K == 0 {
		cfg.K = 4
	}
	if cfg.K < 1 || cfg.K > cfg.N {
		return nil, fmt.Errorf("dataset: K=%d out of range [1,%d]", cfg.K, cfg.N)
	}
	if matrix.IsZero(cfg.Noise) {
		cfg.Noise = 0.05
	}
	if cfg.Noise < 0 {
		return nil, fmt.Errorf("dataset: negative noise %v", cfg.Noise)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	centers := matrix.NewDense(cfg.K, cfg.D)
	for i := range centers.Data() {
		centers.Data()[i] = 0.1 + 0.8*rng.Float64()
	}

	pts := matrix.NewDense(cfg.N, cfg.D)
	labels := make([]int, cfg.N)
	for i := 0; i < cfg.N; i++ {
		c := i * cfg.K / cfg.N // balanced components
		labels[i] = c
		row := pts.Row(i)
		center := centers.Row(c)
		for j := range row {
			v := center[j] + rng.NormFloat64()*cfg.Noise
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			row[j] = v
		}
	}
	return &Labeled{Points: pts, Labels: labels}, nil
}

// Shuffle permutes the points and labels in place with the given seed.
func (l *Labeled) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := l.Points.Rows()
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		ri, rj := l.Points.Row(i), l.Points.Row(j)
		for c := range ri {
			ri[c], rj[c] = rj[c], ri[c]
		}
		l.Labels[i], l.Labels[j] = l.Labels[j], l.Labels[i]
	}
}

// WriteCSV emits one line per point: label,v0,v1,...,vD-1.
func (l *Labeled) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	n := l.Points.Rows()
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(bw, "%d", l.Labels[i]); err != nil {
			return err
		}
		for _, v := range l.Points.Row(i) {
			if _, err := fmt.Fprintf(bw, ",%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the WriteCSV format. All rows must have the same
// number of feature columns.
func ReadCSV(r io.Reader) (*Labeled, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var rows [][]float64
	var labels []int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("dataset: line %d has %d fields", lineNo, len(fields))
		}
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d label: %w", lineNo, err)
		}
		vec := make([]float64, len(fields)-1)
		for j, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d col %d: %w", lineNo, j, err)
			}
			vec[j] = v
		}
		rows = append(rows, vec)
		labels = append(labels, label)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("dataset: empty CSV")
	}
	pts, err := matrix.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return &Labeled{Points: pts, Labels: labels}, nil
}
