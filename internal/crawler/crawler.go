package crawler

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"time"
)

// Crawler walks a category-tree wiki exactly as the paper's crawler
// walked Wikipedia: starting from the categories index page, it
// recurses into CategoryTreeBullet links (sub-categories), expands
// CategoryTreeEmptyBullet links (leaf categories), and downloads the
// leaf documents.
type Crawler struct {
	// Client performs the HTTP requests (default http.DefaultClient
	// with a 10s timeout).
	Client *http.Client
	// MaxPages bounds the crawl (default 100000).
	MaxPages int
}

// Result is the downloaded corpus.
type Result struct {
	// Docs holds raw document HTML in download order.
	Docs []string
	// Paths[i] is the URL path Docs[i] was fetched from.
	Paths []string
	// LabelOf maps each document path to the leaf category page it was
	// discovered on — the crawl-derived categorization that the paper
	// treats as ground truth.
	LabelOf map[string]string
	// PagesFetched counts every HTTP request made.
	PagesFetched int
}

var (
	classedLink = regexp.MustCompile(`<li class="(` + markerTree + `|` + markerEmpty + `)"><a href="([^"]+)"`)
	plainLink   = regexp.MustCompile(`<a href="([^"]+)"`)
)

// Crawl walks the site at baseURL starting from indexPath.
func (c *Crawler) Crawl(baseURL, indexPath string) (*Result, error) {
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	maxPages := c.MaxPages
	if maxPages == 0 {
		maxPages = 100000
	}

	res := &Result{LabelOf: map[string]string{}}
	fetch := func(path string) (string, error) {
		if res.PagesFetched >= maxPages {
			return "", errors.New("crawler: page budget exhausted")
		}
		res.PagesFetched++
		resp, err := client.Get(baseURL + path)
		if err != nil {
			return "", fmt.Errorf("crawler: get %s: %w", path, err)
		}
		// The body is fully drained below; the close error of a read-only
		// response carries no signal.
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("crawler: get %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
		if err != nil {
			return "", fmt.Errorf("crawler: read %s: %w", path, err)
		}
		return string(body), nil
	}

	visited := map[string]bool{}
	// queue of category pages (tree or leaf); leaves carry their path
	// as the label source.
	type page struct {
		path string
		leaf bool
	}
	queue := []page{{path: indexPath}}
	visited[indexPath] = true

	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		body, err := fetch(cur.path)
		if err != nil {
			return nil, err
		}
		if cur.leaf {
			// Leaf category page: every link is a document.
			for _, m := range plainLink.FindAllStringSubmatch(body, -1) {
				doc := m[1]
				if visited[doc] {
					continue
				}
				visited[doc] = true
				content, err := fetch(doc)
				if err != nil {
					return nil, err
				}
				res.Docs = append(res.Docs, content)
				res.Paths = append(res.Paths, doc)
				res.LabelOf[doc] = cur.path
			}
			continue
		}
		// Tree page: classify links by their marker class.
		for _, m := range classedLink.FindAllStringSubmatch(body, -1) {
			marker, href := m[1], m[2]
			if visited[href] {
				continue
			}
			visited[href] = true
			queue = append(queue, page{path: href, leaf: marker == markerEmpty})
		}
	}
	// Deterministic order for downstream pipelines.
	order := make([]int, len(res.Paths))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return res.Paths[order[a]] < res.Paths[order[b]] })
	docs := make([]string, len(order))
	paths := make([]string, len(order))
	for i, idx := range order {
		docs[i] = res.Docs[idx]
		paths[i] = res.Paths[idx]
	}
	res.Docs, res.Paths = docs, paths
	return res, nil
}

// Labels converts the crawl-derived leaf assignments into dense integer
// labels aligned with Docs, for the clustering metrics.
func (r *Result) Labels() []int {
	idx := map[string]int{}
	out := make([]int, len(r.Paths))
	for i, p := range r.Paths {
		leaf := r.LabelOf[p]
		if _, ok := idx[leaf]; !ok {
			idx[leaf] = len(idx)
		}
		out[i] = idx[leaf]
	}
	return out
}
