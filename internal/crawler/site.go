// Package crawler reproduces the paper's data-collection substrate
// (§5.2): the authors wrote a crawler that started from Wikipedia's
// Portal:Contents/Categories index page, walked the category tree
// (distinguishing CategoryTreeBullet sub-category links from
// CategoryTreeEmptyBullet leaf pages), and downloaded the leaf
// documents. This package provides both sides: a Site that serves a
// synthetic category-tree wiki over real HTTP (net/http on localhost),
// and a Crawler that walks it breadth-first, classifies links exactly
// as the paper describes, and returns the downloaded corpus with
// ground-truth category labels.
package crawler

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/corpus"
)

// SiteConfig controls the synthetic wiki.
type SiteConfig struct {
	// Corpus provides the leaf documents and category structure.
	Corpus *corpus.Corpus
	// Branching is the sub-categories per category-tree node (default 4).
	Branching int
	// Seed shuffles document placement.
	Seed int64
}

// Site is an in-memory wiki: an index page, a tree of category pages,
// and one HTML page per document. It implements http.Handler and can be
// served with httptest or net/http.
type Site struct {
	pages map[string]string
	// IndexPath is the crawl entry point, mirroring
	// Portal:Contents/Categories.
	IndexPath string
	// DocCategory maps a document path to its ground-truth category.
	DocCategory map[string]int
}

// markers mirror the two genres of sub-category links the paper's
// crawler distinguished in Wikipedia's HTML.
const (
	markerTree  = "CategoryTreeBullet"      // link leads to more sub-categories
	markerEmpty = "CategoryTreeEmptyBullet" // link leads to leaf documents
)

// NewSite lays the corpus documents out under a category tree. The tree
// has one node per category; nodes are grouped under internal pages
// with the configured branching factor.
func NewSite(cfg SiteConfig) (*Site, error) {
	if cfg.Corpus == nil || len(cfg.Corpus.Docs) == 0 {
		return nil, fmt.Errorf("crawler: empty corpus")
	}
	if cfg.Branching == 0 {
		cfg.Branching = 4
	}
	if cfg.Branching < 2 {
		return nil, fmt.Errorf("crawler: branching %d", cfg.Branching)
	}
	s := &Site{
		pages:       map[string]string{},
		IndexPath:   "/wiki/Portal:Contents/Categories",
		DocCategory: map[string]int{},
	}
	c := cfg.Corpus
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Leaf category pages: list the documents of that category.
	docsOf := make([][]int, c.Categories)
	for i, lab := range c.Labels {
		docsOf[lab] = append(docsOf[lab], i)
	}
	leafPaths := make([]string, c.Categories)
	for cat := 0; cat < c.Categories; cat++ {
		path := fmt.Sprintf("/wiki/Category:%d", cat)
		leafPaths[cat] = path
		var sb strings.Builder
		sb.WriteString("<html><body><h1>" + c.CategoryNames[cat] + "</h1><ul>")
		for _, doc := range docsOf[cat] {
			docPath := fmt.Sprintf("/wiki/Doc:%d", doc)
			fmt.Fprintf(&sb, `<li><a href="%s">doc %d</a></li>`, docPath, doc)
			s.pages[docPath] = c.Docs[doc]
			s.DocCategory[docPath] = cat
		}
		sb.WriteString("</ul></body></html>")
		s.pages[path] = sb.String()
	}

	// Internal tree pages: group leaf categories under branches until a
	// single root remains. Shuffle so the tree shape is not an artifact
	// of category order.
	order := rng.Perm(c.Categories)
	level := make([]string, c.Categories)
	kind := make([]string, c.Categories) // marker for the child link
	for i, cat := range order {
		level[i] = leafPaths[cat]
		kind[i] = markerEmpty
	}
	depth := 0
	for len(level) > 1 {
		depth++
		var next []string
		var nextKind []string
		for start := 0; start < len(level); start += cfg.Branching {
			end := start + cfg.Branching
			if end > len(level) {
				end = len(level)
			}
			path := fmt.Sprintf("/wiki/Tree:%d-%d", depth, start/cfg.Branching)
			var sb strings.Builder
			sb.WriteString("<html><body><ul>")
			for j := start; j < end; j++ {
				fmt.Fprintf(&sb, `<li class="%s"><a href="%s">branch</a></li>`, kind[j], level[j])
			}
			sb.WriteString("</ul></body></html>")
			s.pages[path] = sb.String()
			next = append(next, path)
			nextKind = append(nextKind, markerTree)
		}
		level, kind = next, nextKind
	}
	// Root index page.
	var sb strings.Builder
	sb.WriteString("<html><body><h1>Contents/Categories</h1><ul>")
	rootMarker := markerTree
	if kind[0] == markerEmpty {
		// Degenerate single-category corpus: the root links straight to
		// the one leaf page.
		rootMarker = markerEmpty
	}
	fmt.Fprintf(&sb, `<li class="%s"><a href="%s">all categories</a></li>`, rootMarker, level[0])
	sb.WriteString("</ul></body></html>")
	s.pages[s.IndexPath] = sb.String()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	page, ok := s.pages[r.URL.Path]
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, page)
}

// Pages returns the number of pages served.
func (s *Site) Pages() int { return len(s.pages) }

// Start serves the site on a local test server and returns its base URL
// and a shutdown function.
func (s *Site) Start() (baseURL string, stop func()) {
	srv := httptest.NewServer(s)
	return srv.URL, srv.Close
}
