package crawler

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/metrics"
)

func makeCorpus(t *testing.T, docs, cats int) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Generate(corpus.Config{NumDocs: docs, NumCategories: cats, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSiteValidation(t *testing.T) {
	if _, err := NewSite(SiteConfig{}); err == nil {
		t.Fatal("expected error for nil corpus")
	}
	c := makeCorpus(t, 10, 2)
	if _, err := NewSite(SiteConfig{Corpus: c, Branching: 1}); err == nil {
		t.Fatal("expected error for branching < 2")
	}
}

func TestSiteStructure(t *testing.T) {
	c := makeCorpus(t, 40, 5)
	site, err := NewSite(SiteConfig{Corpus: c, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// index + tree pages + 5 category pages + 40 documents.
	if site.Pages() < 1+5+40 {
		t.Fatalf("pages = %d", site.Pages())
	}
	if len(site.DocCategory) != 40 {
		t.Fatalf("doc categories = %d", len(site.DocCategory))
	}
	// The index must carry a tree marker.
	base, stop := site.Start()
	defer stop()
	crawler := &Crawler{}
	res, err := crawler.Crawl(base, site.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 40 {
		t.Fatalf("crawled %d docs, want 40", len(res.Docs))
	}
}

func TestCrawlRecoversGroundTruth(t *testing.T) {
	c := makeCorpus(t, 60, 6)
	site, err := NewSite(SiteConfig{Corpus: c, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base, stop := site.Start()
	defer stop()

	res, err := (&Crawler{}).Crawl(base, site.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	// Crawl-derived labels must induce exactly the generator's
	// categorization.
	crawlLabels := res.Labels()
	truth := make([]int, len(res.Paths))
	for i, p := range res.Paths {
		truth[i] = site.DocCategory[p]
	}
	acc, err := metrics.Accuracy(truth, crawlLabels)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("crawl labels disagree with ground truth: %v", acc)
	}
	// Documents are raw corpus HTML.
	for _, d := range res.Docs {
		if !strings.HasPrefix(d, "<html>") {
			t.Fatalf("crawled doc is not corpus HTML: %.60s", d)
		}
	}
}

func TestCrawlDegenerateSingleCategory(t *testing.T) {
	c := makeCorpus(t, 8, 1)
	site, err := NewSite(SiteConfig{Corpus: c})
	if err != nil {
		t.Fatal(err)
	}
	base, stop := site.Start()
	defer stop()
	res, err := (&Crawler{}).Crawl(base, site.IndexPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Docs) != 8 {
		t.Fatalf("docs = %d", len(res.Docs))
	}
}

func TestCrawlPageBudget(t *testing.T) {
	c := makeCorpus(t, 30, 3)
	site, err := NewSite(SiteConfig{Corpus: c})
	if err != nil {
		t.Fatal(err)
	}
	base, stop := site.Start()
	defer stop()
	if _, err := (&Crawler{MaxPages: 3}).Crawl(base, site.IndexPath); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestCrawlBadServer(t *testing.T) {
	if _, err := (&Crawler{}).Crawl("http://127.0.0.1:1", "/nope"); err == nil {
		t.Fatal("expected connection error")
	}
	c := makeCorpus(t, 5, 1)
	site, _ := NewSite(SiteConfig{Corpus: c})
	base, stop := site.Start()
	defer stop()
	if _, err := (&Crawler{}).Crawl(base, "/missing"); err == nil {
		t.Fatal("expected 404 error")
	}
}
