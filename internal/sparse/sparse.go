// Package sparse provides a compressed sparse row (CSR) matrix with
// the operations the sparse spectral-clustering path needs: symmetric
// construction from coordinate triplets, matrix-vector products, row
// sums, and symmetric diagonal scaling. The PSC baseline's t-NN
// similarity graph and any user-supplied sparse affinity run through
// this package.
package sparse

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/matrix"
)

// CSR is an immutable n x n sparse matrix in compressed sparse row
// form: row i's entries live in cols/vals[rowPtr[i]:rowPtr[i+1]],
// column-sorted.
type CSR struct {
	n      int
	rowPtr []int
	cols   []int
	vals   []float64
}

// Triplet is one coordinate-form entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR builds an n x n CSR matrix from triplets. Duplicate (row,col)
// entries are summed. Entries with Val == 0 are dropped.
func NewCSR(n int, entries []Triplet) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d", n)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, n, n)
		}
	}
	sorted := append([]Triplet(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	m := &CSR{n: n, rowPtr: make([]int, n+1)}
	for i := 0; i < len(sorted); {
		j := i
		var sum float64
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Val
			j++
		}
		if !matrix.IsZero(sum) {
			m.cols = append(m.cols, sorted[i].Col)
			m.vals = append(m.vals, sum)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m, nil
}

// Symmetrized returns a CSR containing, for every stored entry (i,j,v),
// both (i,j,v) and (j,i,v); duplicate coordinates keep the larger
// magnitude (the OR-symmetrization of t-NN graphs).
func Symmetrized(n int, entries []Triplet) (*CSR, error) {
	seen := make(map[[2]int]float64, len(entries)*2)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, n, n)
		}
		keep := func(r, c int, v float64) {
			key := [2]int{r, c}
			if old, ok := seen[key]; !ok || abs(v) > abs(old) {
				seen[key] = v
			}
		}
		keep(e.Row, e.Col, e.Val)
		keep(e.Col, e.Row, e.Val)
	}
	out := make([]Triplet, 0, len(seen))
	for key, v := range seen {
		out = append(out, Triplet{key[0], key[1], v})
	}
	return NewCSR(n, out)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// N returns the dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// Bytes models storage at 4 bytes per value plus 4 per column index,
// the accounting the paper's Figure 6(b) uses for sparse baselines.
func (m *CSR) Bytes() int64 { return int64(m.NNZ()) * 8 }

// At returns the (i,j) entry (zero when absent).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		matrix.Panicf("sparse: index (%d,%d) out of range %d", i, j, m.n)
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := lo + sort.SearchInts(m.cols[lo:hi], j)
	if idx < hi && m.cols[idx] == j {
		return m.vals[idx]
	}
	return 0
}

// MulVec computes dst = M*src. Lengths must equal N.
func (m *CSR) MulVec(dst, src []float64) error {
	if len(dst) != m.n || len(src) != m.n {
		return errors.New("sparse: MulVec length mismatch")
	}
	for i := 0; i < m.n; i++ {
		var s float64
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			s += m.vals[idx] * src[m.cols[idx]]
		}
		dst[i] = s
	}
	return nil
}

// RowSums returns the vector of row sums (degrees for affinity graphs).
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		var s float64
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			s += m.vals[idx]
		}
		out[i] = s
	}
	return out
}

// ScaleSym returns a new CSR with entry (i,j) multiplied by d[i]*d[j] —
// the sparse analogue of the normalized-Laplacian scaling.
func (m *CSR) ScaleSym(d []float64) (*CSR, error) {
	if len(d) != m.n {
		return nil, errors.New("sparse: ScaleSym length mismatch")
	}
	out := &CSR{
		n:      m.n,
		rowPtr: append([]int(nil), m.rowPtr...),
		cols:   append([]int(nil), m.cols...),
		vals:   make([]float64, len(m.vals)),
	}
	for i := 0; i < m.n; i++ {
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			out.vals[idx] = m.vals[idx] * d[i] * d[m.cols[idx]]
		}
	}
	return out, nil
}

// Dense materializes the matrix (tests and small problems only).
func (m *CSR) Dense() *matrix.Dense {
	out := matrix.NewDense(m.n, m.n)
	for i := 0; i < m.n; i++ {
		row := out.Row(i)
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			row[m.cols[idx]] = m.vals[idx]
		}
	}
	return out
}

// IsSymmetric reports whether the stored pattern and values are
// symmetric within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			j := m.cols[idx]
			d := m.vals[idx] - m.At(j, i)
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}
