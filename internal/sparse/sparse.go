// Package sparse provides a compressed sparse row (CSR) matrix with
// the operations the sparse spectral-clustering path needs: symmetric
// construction from coordinate triplets, matrix-vector products, row
// sums, and symmetric diagonal scaling. The PSC baseline's t-NN
// similarity graph and any user-supplied sparse affinity run through
// this package.
package sparse

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// CSR is an immutable n x n sparse matrix in compressed sparse row
// form: row i's entries live in cols/vals[rowPtr[i]:rowPtr[i+1]],
// column-sorted.
type CSR struct {
	n      int
	rowPtr []int
	cols   []int
	vals   []float64
}

// Triplet is one coordinate-form entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSR builds an n x n CSR matrix from triplets. Duplicate (row,col)
// entries are summed. Entries with Val == 0 are dropped.
func NewCSR(n int, entries []Triplet) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d", n)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, n, n)
		}
	}
	sorted := append([]Triplet(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].Row != sorted[b].Row {
			return sorted[a].Row < sorted[b].Row
		}
		return sorted[a].Col < sorted[b].Col
	})
	m := &CSR{n: n, rowPtr: make([]int, n+1)}
	for i := 0; i < len(sorted); {
		j := i
		var sum float64
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			sum += sorted[j].Val
			j++
		}
		if !matrix.IsZero(sum) {
			m.cols = append(m.cols, sorted[i].Col)
			m.vals = append(m.vals, sum)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m, nil
}

// Symmetrized returns a CSR containing, for every stored entry (i,j,v),
// both (i,j,v) and (j,i,v); duplicate coordinates keep the larger
// magnitude (the OR-symmetrization of t-NN graphs).
func Symmetrized(n int, entries []Triplet) (*CSR, error) {
	seen := make(map[[2]int]float64, len(entries)*2)
	for _, e := range entries {
		if e.Row < 0 || e.Row >= n || e.Col < 0 || e.Col >= n {
			return nil, fmt.Errorf("sparse: entry (%d,%d) outside %dx%d", e.Row, e.Col, n, n)
		}
		keep := func(r, c int, v float64) {
			key := [2]int{r, c}
			if old, ok := seen[key]; !ok || abs(v) > abs(old) {
				seen[key] = v
			}
		}
		keep(e.Row, e.Col, e.Val)
		keep(e.Col, e.Row, e.Val)
	}
	out := make([]Triplet, 0, len(seen))
	for key, v := range seen {
		//lint:ignore maporder NewCSR sorts the triplets by (row,col) before assembly and the keys are unique, so append order cannot reach the output
		out = append(out, Triplet{key[0], key[1], v})
	}
	return NewCSR(n, out)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// NewCSRFromRaw wraps pre-assembled CSR storage without copying: rowPtr
// must be a monotone n+1 prefix array, and every row's cols must be
// strictly ascending and in [0, n). The sparse Gram emit path
// (internal/kernel) builds its rows already sorted, so this constructor
// skips NewCSR's O(nnz log nnz) triplet sort.
func NewCSRFromRaw(n int, rowPtr []int, cols []int, vals []float64) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d", n)
	}
	if len(rowPtr) != n+1 || rowPtr[0] != 0 || rowPtr[n] != len(cols) || len(cols) != len(vals) {
		return nil, fmt.Errorf("sparse: raw shape rowPtr=%d cols=%d vals=%d for n=%d",
			len(rowPtr), len(cols), len(vals), n)
	}
	for i := 0; i < n; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		if lo > hi {
			return nil, fmt.Errorf("sparse: rowPtr not monotone at row %d", i)
		}
		for idx := lo; idx < hi; idx++ {
			c := cols[idx]
			if c < 0 || c >= n {
				return nil, fmt.Errorf("sparse: column %d outside %d at row %d", c, n, i)
			}
			if idx > lo && cols[idx-1] >= c {
				return nil, fmt.Errorf("sparse: columns not strictly ascending at row %d", i)
			}
		}
	}
	return &CSR{n: n, rowPtr: rowPtr, cols: cols, vals: vals}, nil
}

// N returns the dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// Bytes models storage at 4 bytes per value plus 4 per column index,
// the accounting the paper's Figure 6(b) uses for sparse baselines.
func (m *CSR) Bytes() int64 { return int64(m.NNZ()) * 8 }

// At returns the (i,j) entry (zero when absent).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.n || j < 0 || j >= m.n {
		matrix.Panicf("sparse: index (%d,%d) out of range %d", i, j, m.n)
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := lo + sort.SearchInts(m.cols[lo:hi], j)
	if idx < hi && m.cols[idx] == j {
		return m.vals[idx]
	}
	return 0
}

const (
	// mulVecBlockRows is the fixed row-block edge of the parallel
	// matrix-vector product. Blocks are fixed-size (independent of the
	// worker count), so the work decomposition — and therefore every
	// row's result bits — never depends on parallelism.
	mulVecBlockRows = 512
	// mulVecParallelCutoff is the stored-entry count below which the
	// goroutine handoff costs more than the multiply.
	mulVecParallelCutoff = 1 << 15
)

// MulVec computes dst = M*src. Lengths must equal N. Large products are
// computed in parallel over fixed row blocks; each row is a sequential
// accumulation over its stored entries, so the output is bitwise
// identical for every worker count — the property the Lanczos
// determinism argument (DESIGN.md, "Solve engine") rests on. MulVec
// allocates nothing, making it safe as a pooled linalg.Op inner loop.
func (m *CSR) MulVec(dst, src []float64) error {
	if len(dst) != m.n || len(src) != m.n {
		return errors.New("sparse: MulVec length mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if m.NNZ() < mulVecParallelCutoff || workers <= 1 {
		m.mulVecRange(dst, src, 0, m.n)
		return nil
	}
	nb := (m.n + mulVecBlockRows - 1) / mulVecBlockRows
	if workers > nb {
		workers = nb
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				lo := b * mulVecBlockRows
				hi := lo + mulVecBlockRows
				if hi > m.n {
					hi = m.n
				}
				m.mulVecRange(dst, src, lo, hi)
			}
		}()
	}
	wg.Wait()
	return nil
}

// mulVecRange computes rows [lo, hi) of M*src into dst.
func (m *CSR) mulVecRange(dst, src []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		start, end := m.rowPtr[i], m.rowPtr[i+1]
		cols := m.cols[start:end]
		vals := m.vals[start:end]
		var s float64
		for idx, c := range cols {
			s += vals[idx] * src[c]
		}
		dst[i] = s
	}
}

// RowSums returns the vector of row sums (degrees for affinity graphs).
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		var s float64
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			s += m.vals[idx]
		}
		out[i] = s
	}
	return out
}

// ScaleSym returns a new CSR with entry (i,j) multiplied by d[i]*d[j] —
// the sparse analogue of the normalized-Laplacian scaling. The product
// is grouped as v*(d[i]*d[j]) to match matrix.Diagonal.ScaleSym bit for
// bit on shared entries.
func (m *CSR) ScaleSym(d []float64) (*CSR, error) {
	if len(d) != m.n {
		return nil, errors.New("sparse: ScaleSym length mismatch")
	}
	out := &CSR{
		n:      m.n,
		rowPtr: append([]int(nil), m.rowPtr...),
		cols:   append([]int(nil), m.cols...),
		vals:   make([]float64, len(m.vals)),
	}
	for i := 0; i < m.n; i++ {
		di := d[i]
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			out.vals[idx] = m.vals[idx] * (di * d[m.cols[idx]])
		}
	}
	return out, nil
}

// ScaleSymInPlace multiplies entry (i,j) by d[i]*d[j] overwriting the
// stored values — the allocation-free ScaleSym for callers (the
// per-bucket sparse solve) that own the matrix and no longer need the
// raw similarities.
func (m *CSR) ScaleSymInPlace(d []float64) error {
	if len(d) != m.n {
		return errors.New("sparse: ScaleSymInPlace length mismatch")
	}
	for i := 0; i < m.n; i++ {
		di := d[i]
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			m.vals[idx] *= di * d[m.cols[idx]]
		}
	}
	return nil
}

// Dense materializes the matrix (tests and small problems only).
func (m *CSR) Dense() *matrix.Dense {
	out := matrix.NewDense(m.n, m.n)
	m.DenseInto(out)
	return out
}

// DenseInto scatters the matrix into dst, which must be n x n; every
// entry of dst is overwritten (absent entries become 0), so pooled,
// dirty buffers are fine. The solve engine uses it to densify a
// high-fill thresholded Gram into the pooled sub-Gram scratch.
func (m *CSR) DenseInto(dst *matrix.Dense) {
	if dst.Rows() != m.n || dst.Cols() != m.n {
		matrix.Panicf("sparse: DenseInto %dx%d for dimension %d", dst.Rows(), dst.Cols(), m.n)
	}
	data := dst.Data()
	for i := range data {
		data[i] = 0
	}
	for i := 0; i < m.n; i++ {
		row := dst.Row(i)
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			row[m.cols[idx]] = m.vals[idx]
		}
	}
}

// Fill returns the stored-entry fraction nnz/n² — the quantity the
// adaptive solver policy thresholds on. An empty matrix has fill 0.
func (m *CSR) Fill() float64 {
	if m.n == 0 {
		return 0
	}
	return float64(m.NNZ()) / (float64(m.n) * float64(m.n))
}

// IsSymmetric reports whether the stored pattern and values are
// symmetric within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		for idx := m.rowPtr[i]; idx < m.rowPtr[i+1]; idx++ {
			j := m.cols[idx]
			d := m.vals[idx] - m.At(j, i)
			if d > tol || d < -tol {
				return false
			}
		}
	}
	return true
}
