package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestNewCSRBasics(t *testing.T) {
	m, err := NewCSR(3, []Triplet{
		{0, 1, 2}, {1, 0, 2}, {2, 2, 5}, {0, 1, 1}, // duplicate sums to 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.NNZ() != 3 {
		t.Fatalf("N=%d NNZ=%d", m.N(), m.NNZ())
	}
	if m.At(0, 1) != 3 || m.At(1, 0) != 2 || m.At(2, 2) != 5 {
		t.Fatalf("entries: %v %v %v", m.At(0, 1), m.At(1, 0), m.At(2, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("absent entry must be 0")
	}
	if m.Bytes() != 24 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(-1, nil); err == nil {
		t.Fatal("expected error for negative n")
	}
	if _, err := NewCSR(2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if _, err := NewCSR(2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("expected error for out-of-range col")
	}
}

func TestNewCSRDropsZeros(t *testing.T) {
	m, err := NewCSR(2, []Triplet{{0, 0, 1}, {0, 0, -1}, {1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (cancelled entry dropped)", m.NNZ())
	}
}

func TestSymmetrized(t *testing.T) {
	m, err := Symmetrized(3, []Triplet{{0, 1, 0.5}, {1, 0, 0.9}, {2, 0, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	// (0,1)/(1,0): keep the larger magnitude 0.9 on both sides.
	if m.At(0, 1) != 0.9 || m.At(1, 0) != 0.9 {
		t.Fatalf("symmetrization: %v %v", m.At(0, 1), m.At(1, 0))
	}
	if m.At(0, 2) != 0.2 || m.At(2, 0) != 0.2 {
		t.Fatal("missing mirrored entry")
	}
	if !m.IsSymmetric(0) {
		t.Fatal("must be symmetric")
	}
	if _, err := Symmetrized(1, []Triplet{{0, 5, 1}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	var entries []Triplet
	for i := 0; i < 60; i++ {
		entries = append(entries, Triplet{rng.Intn(n), rng.Intn(n), rng.NormFloat64()})
	}
	m, err := NewCSR(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	if err := m.MulVec(got, x); err != nil {
		t.Fatal(err)
	}
	want, err := m.Dense().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if err := m.MulVec(make([]float64, 3), x); err == nil {
		t.Fatal("expected length error")
	}
}

func TestRowSumsAndScaleSym(t *testing.T) {
	m, err := NewCSR(2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 2 {
		t.Fatalf("RowSums = %v", rs)
	}
	scaled, err := m.ScaleSym([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.At(0, 1) != 2*2*3 || scaled.At(0, 0) != 1*2*2 {
		t.Fatalf("ScaleSym: %v %v", scaled.At(0, 1), scaled.At(0, 0))
	}
	// Original untouched.
	if m.At(0, 1) != 2 {
		t.Fatal("ScaleSym must not mutate")
	}
	if _, err := m.ScaleSym([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m, _ := NewCSR(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(1, 0)
}

// Property: CSR round-trips through Dense.
func TestPropDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		var entries []Triplet
		for i := 0; i < rng.Intn(40); i++ {
			entries = append(entries, Triplet{rng.Intn(n), rng.Intn(n), float64(1 + rng.Intn(9))})
		}
		m, err := NewCSR(n, entries)
		if err != nil {
			return false
		}
		d := m.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetrized matrices have symmetric MulVec quadratic forms:
// x^T M y == y^T M x.
func TestPropSymmetrizedQuadraticForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		var entries []Triplet
		for i := 0; i < rng.Intn(30); i++ {
			entries = append(entries, Triplet{rng.Intn(n), rng.Intn(n), rng.Float64()})
		}
		m, err := Symmetrized(n, entries)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		mx := make([]float64, n)
		my := make([]float64, n)
		if m.MulVec(mx, x) != nil || m.MulVec(my, y) != nil {
			return false
		}
		return math.Abs(matrix.Dot(y, mx)-matrix.Dot(x, my)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewCSRFromRaw(t *testing.T) {
	rowPtr := []int{0, 2, 2, 3}
	cols := []int{0, 2, 1}
	vals := []float64{1, 2, 3}
	m, err := NewCSRFromRaw(3, rowPtr, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(0, 2) != 2 || m.At(2, 1) != 3 || m.NNZ() != 3 {
		t.Fatalf("entries: %v %v %v nnz=%d", m.At(0, 0), m.At(0, 2), m.At(2, 1), m.NNZ())
	}

	bad := []struct {
		name   string
		n      int
		rowPtr []int
		cols   []int
		vals   []float64
	}{
		{"negative n", -1, nil, nil, nil},
		{"short rowPtr", 3, []int{0, 2, 3}, cols, vals},
		{"rowPtr[0] != 0", 3, []int{1, 2, 2, 3}, cols, vals},
		{"rowPtr[n] != nnz", 3, []int{0, 2, 2, 2}, cols, vals},
		{"cols/vals mismatch", 3, rowPtr, cols, []float64{1, 2}},
		{"non-monotone rowPtr", 3, []int{0, 3, 2, 3}, cols, vals},
		{"col out of range", 3, rowPtr, []int{0, 3, 1}, vals},
		{"cols not ascending", 3, rowPtr, []int{2, 0, 1}, vals},
		{"duplicate col", 3, rowPtr, []int{0, 0, 1}, vals},
	}
	for _, tc := range bad {
		if _, err := NewCSRFromRaw(tc.n, tc.rowPtr, tc.cols, tc.vals); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// TestMulVecParallelDeterministic builds a matrix large enough to cross
// mulVecParallelCutoff and checks the parallel product is bitwise equal
// to the serial row sweep — the property the Lanczos determinism
// argument needs from this operator.
func TestMulVecParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 2 * mulVecBlockRows // several blocks
	perRow := (mulVecParallelCutoff / n) + 2
	rowPtr := make([]int, n+1)
	var cols []int
	var vals []float64
	for i := 0; i < n; i++ {
		seen := map[int]bool{}
		for len(seen) < perRow {
			seen[rng.Intn(n)] = true
		}
		row := make([]int, 0, perRow)
		for c := range seen {
			row = append(row, c)
		}
		sort.Ints(row)
		for _, c := range row {
			cols = append(cols, c)
			vals = append(vals, rng.NormFloat64())
		}
		rowPtr[i+1] = len(cols)
	}
	m, err := NewCSRFromRaw(n, rowPtr, cols, vals)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() < mulVecParallelCutoff {
		t.Fatalf("test matrix too sparse: nnz=%d", m.NNZ())
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	m.mulVecRange(want, x, 0, n)
	for trial := 0; trial < 4; trial++ {
		got := make([]float64, n)
		if err := m.MulVec(got, x); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: MulVec[%d] = %v, serial %v (must be bitwise equal)",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestScaleSymInPlaceMatchesScaleSym(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 16
	var entries []Triplet
	for i := 0; i < 40; i++ {
		entries = append(entries, Triplet{rng.Intn(n), rng.Intn(n), rng.NormFloat64()})
	}
	m, err := NewCSR(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = rng.Float64() + 0.5
	}
	want, err := m.ScaleSym(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ScaleSymInPlace(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if m.At(i, j) != want.At(i, j) {
				t.Fatalf("(%d,%d): in-place %v vs copy %v", i, j, m.At(i, j), want.At(i, j))
			}
		}
	}
	if err := m.ScaleSymInPlace([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDenseIntoOverwritesDirtyBuffer(t *testing.T) {
	m, err := NewCSR(3, []Triplet{{0, 1, 4}, {2, 2, 5}})
	if err != nil {
		t.Fatal(err)
	}
	dst := matrix.NewDense(3, 3)
	for i := range dst.Data() {
		dst.Data()[i] = math.NaN() // simulate pooled, dirty scratch
	}
	m.DenseInto(dst)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if dst.At(i, j) != m.At(i, j) {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, dst.At(i, j), m.At(i, j))
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	m.DenseInto(matrix.NewDense(2, 3))
}

func TestFill(t *testing.T) {
	m, err := NewCSR(4, []Triplet{{0, 0, 1}, {1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Fill(); got != 2.0/16.0 {
		t.Fatalf("Fill = %v", got)
	}
	empty, _ := NewCSR(0, nil)
	if empty.Fill() != 0 {
		t.Fatal("empty fill must be 0")
	}
}
