package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestNewCSRBasics(t *testing.T) {
	m, err := NewCSR(3, []Triplet{
		{0, 1, 2}, {1, 0, 2}, {2, 2, 5}, {0, 1, 1}, // duplicate sums to 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 || m.NNZ() != 3 {
		t.Fatalf("N=%d NNZ=%d", m.N(), m.NNZ())
	}
	if m.At(0, 1) != 3 || m.At(1, 0) != 2 || m.At(2, 2) != 5 {
		t.Fatalf("entries: %v %v %v", m.At(0, 1), m.At(1, 0), m.At(2, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatal("absent entry must be 0")
	}
	if m.Bytes() != 24 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(-1, nil); err == nil {
		t.Fatal("expected error for negative n")
	}
	if _, err := NewCSR(2, []Triplet{{2, 0, 1}}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if _, err := NewCSR(2, []Triplet{{0, -1, 1}}); err == nil {
		t.Fatal("expected error for out-of-range col")
	}
}

func TestNewCSRDropsZeros(t *testing.T) {
	m, err := NewCSR(2, []Triplet{{0, 0, 1}, {0, 0, -1}, {1, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1 (cancelled entry dropped)", m.NNZ())
	}
}

func TestSymmetrized(t *testing.T) {
	m, err := Symmetrized(3, []Triplet{{0, 1, 0.5}, {1, 0, 0.9}, {2, 0, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	// (0,1)/(1,0): keep the larger magnitude 0.9 on both sides.
	if m.At(0, 1) != 0.9 || m.At(1, 0) != 0.9 {
		t.Fatalf("symmetrization: %v %v", m.At(0, 1), m.At(1, 0))
	}
	if m.At(0, 2) != 0.2 || m.At(2, 0) != 0.2 {
		t.Fatal("missing mirrored entry")
	}
	if !m.IsSymmetric(0) {
		t.Fatal("must be symmetric")
	}
	if _, err := Symmetrized(1, []Triplet{{0, 5, 1}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	var entries []Triplet
	for i := 0; i < 60; i++ {
		entries = append(entries, Triplet{rng.Intn(n), rng.Intn(n), rng.NormFloat64()})
	}
	m, err := NewCSR(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := make([]float64, n)
	if err := m.MulVec(got, x); err != nil {
		t.Fatal(err)
	}
	want, err := m.Dense().MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if err := m.MulVec(make([]float64, 3), x); err == nil {
		t.Fatal("expected length error")
	}
}

func TestRowSumsAndScaleSym(t *testing.T) {
	m, err := NewCSR(2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	rs := m.RowSums()
	if rs[0] != 3 || rs[1] != 2 {
		t.Fatalf("RowSums = %v", rs)
	}
	scaled, err := m.ScaleSym([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.At(0, 1) != 2*2*3 || scaled.At(0, 0) != 1*2*2 {
		t.Fatalf("ScaleSym: %v %v", scaled.At(0, 1), scaled.At(0, 0))
	}
	// Original untouched.
	if m.At(0, 1) != 2 {
		t.Fatal("ScaleSym must not mutate")
	}
	if _, err := m.ScaleSym([]float64{1}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m, _ := NewCSR(1, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(1, 0)
}

// Property: CSR round-trips through Dense.
func TestPropDenseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		var entries []Triplet
		for i := 0; i < rng.Intn(40); i++ {
			entries = append(entries, Triplet{rng.Intn(n), rng.Intn(n), float64(1 + rng.Intn(9))})
		}
		m, err := NewCSR(n, entries)
		if err != nil {
			return false
		}
		d := m.Dense()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: symmetrized matrices have symmetric MulVec quadratic forms:
// x^T M y == y^T M x.
func TestPropSymmetrizedQuadraticForm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		var entries []Triplet
		for i := 0; i < rng.Intn(30); i++ {
			entries = append(entries, Triplet{rng.Intn(n), rng.Intn(n), rng.Float64()})
		}
		m, err := Symmetrized(n, entries)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		mx := make([]float64, n)
		my := make([]float64, n)
		if m.MulVec(mx, x) != nil || m.MulVec(my, y) != nil {
			return false
		}
		return math.Abs(matrix.Dot(y, mx)-matrix.Dot(x, my)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
