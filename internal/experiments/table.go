// Package experiments regenerates every table and figure of the
// paper's evaluation (§4–§5). Each experiment returns a Table whose
// rows mirror the series the paper plots, so the output can be compared
// against the published curves point by point. The same functions back
// cmd/experiments and the repository's benchmark suite.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects the dataset sizes an experiment runs at. The paper's
// largest configurations (multi-million points, multi-hour cluster
// runs) are scaled down to single-machine sizes; Quick is used by the
// test/bench suite, Full by cmd/experiments.
type Scale int

const (
	// Quick runs in seconds; used in benchmarks and smoke tests.
	Quick Scale = iota
	// Full runs in minutes and covers wider size ranges.
	Full
)

// Table is a printable experiment result.
type Table struct {
	// ID names the paper artifact, e.g. "Figure 3".
	ID string
	// Caption restates what the paper shows.
	Caption string
	// Headers label the columns.
	Headers []string
	// Rows hold the measured series.
	Rows [][]string
	// Notes records scale substitutions and observed deviations.
	Notes []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func f(format string, args ...interface{}) string { return fmt.Sprintf(format, args...) }
