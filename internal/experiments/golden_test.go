package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestAnalyticGolden pins the deterministic analytic artifacts
// (Figure 1 and Table 2) byte-for-byte against a checked-in golden
// file, so any change to the closed-form models or the table renderer
// is caught as a diff rather than discovered in a rerun of the paper
// comparison. Regenerate with:
//
//	go run ./cmd/experiments -only fig1,table2 \
//	  > internal/experiments/testdata/analytic_golden.txt
func TestAnalyticGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "analytic_golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	got := Figure1().String() + Table2().String()
	if string(want) != got {
		t.Fatalf("analytic output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			got, want)
	}
}
