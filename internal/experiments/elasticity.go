package experiments

import (
	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/emr"
	"repro/internal/lsh"
	"repro/internal/metrics"
)

// Table3 regenerates Table 3: DASC on the (simulated) Amazon cloud with
// 16, 32 and 64 nodes. Accuracy comes from a real DASC run on the
// corpus at a single-machine size. The cluster execution is then
// simulated at the paper's dataset scale by resampling the measured
// bucket-size distribution up to N_paper (the paper's multi-million-
// document runs produce thousands of bucket tasks — far more than the
// cluster has slots — which is exactly what makes its scaling linear),
// with task costs from the §4.1 model. The headline shape — time
// halves as nodes double, accuracy and memory flat — is the target.
func Table3(scale Scale) (*Table, error) {
	n, nPaper := 1024, 1<<16
	m := 8 // bucket-rich operating point; see Figure 5's M sweep
	if scale == Full {
		n, nPaper = 8192, 1<<20
		m = 10
	}
	l, k, err := corpusAt(n, int64(n))
	if err != nil {
		return nil, err
	}
	// Accuracy comes from the production configuration (paper-default
	// M); the bucket-size distribution for the cluster simulation comes
	// from a bucket-rich partition (larger M), since at the paper's N
	// the default M itself is that much larger.
	prod, err := core.Cluster(l.Points, core.Config{K: k, Seed: 1})
	if err != nil {
		return nil, err
	}
	acc, err := metrics.Accuracy(l.Labels, prod.Labels)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{K: k, Seed: 1, M: m}
	run, err := core.Cluster(l.Points, cfg)
	if err != nil {
		return nil, err
	}

	// Scale bridge: resample the empirical bucket-size distribution to
	// the paper's document count and bucket count.
	part := resamplePartition(run, n, nPaper)
	kPaper := analytic.CategoryLaw(nPaper)
	flow := core.BuildFlow(part, core.Config{K: kPaper}, nPaper, l.Points.Cols(), 0)

	t := &Table{
		ID:      "Table 3",
		Caption: "DASC on the simulated Amazon cloud with different node counts",
		Headers: []string{"metric", "64 nodes", "32 nodes", "16 nodes"},
	}
	var times, mems []string
	for _, nodes := range []int{64, 32, 16} {
		c, err := emr.NewCluster(nodes)
		if err != nil {
			return nil, err
		}
		rep, err := c.RunJobFlow(flow)
		if err != nil {
			return nil, err
		}
		times = append(times, f("%.4gs", rep.TotalTime))
		// The paper's memory metric is Gram-matrix storage, which lives
		// in the spectral-clustering step.
		mems = append(mems, f("%.0f KB", float64(rep.Steps[1].Schedule.TotalMemory)/1024))
	}
	accCell := f("%.1f%%", acc*100)
	t.Rows = append(t.Rows, []string{"Accuracy", accCell, accCell, accCell})
	t.Rows = append(t.Rows, []string{"Memory", mems[0], mems[1], mems[2]})
	t.Rows = append(t.Rows, []string{"Time", times[0], times[1], times[2]})
	t.Notes = append(t.Notes,
		f("accuracy from a real DASC run at N=%d (%d buckets); cluster times simulated at N=%d with %d bucket tasks resampled from the measured size distribution, beta=50us",
			n, len(run.Buckets), nPaper, part.NumBuckets()),
		"paper: 95.6-96.6%% accuracy, ~29 MB, 20.3/40.75/78.85 h — same flat accuracy/memory, ~halving time")
	return t, nil
}

// resamplePartition builds a synthetic partition of nPaper points whose
// bucket-size distribution follows the run measured at n. The bucket
// count targets a mean bucket of ~64 documents: the paper's own Table 3
// memory (~29 MB of Gram storage for 3.5M documents) implies mean
// buckets of only a couple of documents, i.e. a bucket count orders of
// magnitude above 2^M — so a fine-grained partition is the faithful
// model of the run the paper actually timed. Sizes are drawn by
// cycling through the measured size fractions, rescaled to sum to
// nPaper.
func resamplePartition(run *core.Result, n, nPaper int) *lsh.Partition {
	bTarget := nPaper / 64
	if bTarget < 128 {
		bTarget = 128
	}
	fractions := make([]float64, len(run.Buckets))
	for i, b := range run.Buckets {
		fractions[i] = float64(b.Size) / float64(n)
	}
	sizes := make([]int, bTarget)
	var total float64
	raw := make([]float64, bTarget)
	for i := range raw {
		raw[i] = fractions[i%len(fractions)]
		total += raw[i]
	}
	assigned := 0
	for i := range sizes {
		sizes[i] = int(raw[i] / total * float64(nPaper))
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Put any rounding remainder in the first bucket.
	if assigned < nPaper {
		sizes[0] += nPaper - assigned
	}
	// Cap bucket sizes at 2x the mean: the paper's §6 scaling argument
	// is that larger datasets use more signature bits, which split the
	// dominant buckets — model that by splitting any oversized bucket.
	cap := 2 * nPaper / bTarget
	var final []int
	for _, s := range sizes {
		for s > cap {
			final = append(final, cap)
			s -= cap
		}
		final = append(final, s)
	}
	p := &lsh.Partition{}
	idx := 0
	for bi, s := range final {
		indices := make([]int, s)
		for i := range indices {
			indices[i] = idx
			idx++
		}
		p.Buckets = append(p.Buckets, lsh.Bucket{Signature: uint64(bi), Indices: indices})
	}
	return p
}
