package experiments

import (
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
)

// Figure6 regenerates Figure 6: measured processing time (a) and Gram
// memory (b) versus dataset size for DASC, SC and PSC on the corpus.
// As in the paper, the full-matrix algorithms stop at the sizes they
// can no longer handle.
func Figure6(scale Scale) (*Table, error) {
	sizes := []int{512, 1024}
	scCap, pscCap := 1024, 1024
	if scale == Full {
		sizes = []int{1024, 2048, 4096, 8192}
		scCap, pscCap = 2048, 4096
	}
	t := &Table{
		ID:      "Figure 6",
		Caption: "measured processing time and Gram memory (Wikipedia-like corpus)",
		Headers: []string{"N",
			"DASC time", "SC time", "PSC time",
			"DASC mem (KB)", "SC mem (KB)", "PSC mem (KB)"},
	}
	for _, n := range sizes {
		l, k, err := corpusAt(n, int64(n))
		if err != nil {
			return nil, err
		}
		row := []string{f("%d", n)}
		var times, mems []string

		dasc, err := core.Cluster(l.Points, core.Config{K: k, Seed: 1})
		if err != nil {
			return nil, err
		}
		times = append(times, fmtDur(dasc.Elapsed))
		mems = append(mems, f("%.1f", float64(dasc.GramBytes)/1024))

		if n <= scCap {
			sc, err := baseline.SC(l.Points, baseline.Config{K: k, Seed: 1})
			if err != nil {
				return nil, err
			}
			times = append(times, fmtDur(sc.Elapsed))
			mems = append(mems, f("%.1f", float64(sc.GramBytes)/1024))
		} else {
			times, mems = append(times, "-"), append(mems, "-")
		}
		if n <= pscCap {
			psc, err := baseline.PSC(l.Points, baseline.Config{K: k, Seed: 1})
			if err != nil {
				return nil, err
			}
			times = append(times, fmtDur(psc.Elapsed))
			mems = append(mems, f("%.1f", float64(psc.GramBytes)/1024))
		} else {
			times, mems = append(times, "-"), append(mems, "-")
		}
		row = append(row, times...)
		row = append(row, mems...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"expected shape: DASC time and memory orders of magnitude below SC; PSC between (paper Fig 6)",
		"'-' marks sizes where the baseline is capped, as in the paper")
	return t, nil
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
