package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFigure1Shape(t *testing.T) {
	tab := Figure1()
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (2^20..2^29)", len(tab.Rows))
	}
	// DASC hours (col 1) must stay below SC hours (col 2) everywhere.
	for _, row := range tab.Rows {
		dasc, err1 := strconv.ParseFloat(row[1], 64)
		sc, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable row %v", row)
		}
		if dasc >= sc {
			t.Fatalf("DASC %v >= SC %v", dasc, sc)
		}
	}
	if tab.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestFigure2Shape(t *testing.T) {
	tab := Figure2()
	if len(tab.Rows) == 0 || len(tab.Headers) < 5 {
		t.Fatalf("table too small: %d rows", len(tab.Rows))
	}
	// Probabilities decrease down every column.
	for col := 1; col < len(tab.Headers); col++ {
		prev := 2.0
		for _, row := range tab.Rows {
			p, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				t.Fatal(err)
			}
			if p > prev {
				t.Fatalf("column %d not decreasing", col)
			}
			prev = p
		}
	}
}

func TestTable1MatchesLaw(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(tab.Rows))
	}
	if tab.Rows[0][1] != "17" || tab.Rows[0][2] != "17" {
		t.Fatalf("1024-doc row = %v", tab.Rows[0])
	}
	// Generator count equals the law wherever it ran.
	for _, row := range tab.Rows {
		if row[3] != "-" && row[3] != row[2] {
			t.Fatalf("generator diverges from law: %v", row)
		}
	}
}

func TestTable2MirrorsPaper(t *testing.T) {
	tab := Table2()
	s := tab.String()
	for _, want := range []string{"768 MB", "256 MB", "512 MB", "4", "2", "3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure3Quick(t *testing.T) {
	tab, err := Figure3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		dasc, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad DASC cell %q", row[2])
		}
		if dasc < 0.85 {
			t.Fatalf("DASC accuracy %v below the paper's >0.9 band (row %v)", dasc, row)
		}
		sc, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad SC cell %q", row[3])
		}
		if sc < 0.85 {
			t.Fatalf("SC accuracy %v too low", sc)
		}
	}
}

func TestFigure4Quick(t *testing.T) {
	tab, err := Figure4(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		dascDBI, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		// The paper's DASC DBI stays in roughly [1, 1.3] on synthetic
		// data; allow a wide band but catch degenerate clusterings.
		if dascDBI <= 0 || dascDBI > 3 {
			t.Fatalf("DASC DBI = %v implausible", dascDBI)
		}
	}
}

func TestFigure5Quick(t *testing.T) {
	tab, err := Figure5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios are in (0, 1] and fall as M grows for a fixed N.
	var prev float64 = 2
	var prevN string
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio <= 0 || ratio > 1.000001 {
			t.Fatalf("ratio %v out of (0,1]", ratio)
		}
		if row[0] == prevN && ratio > prev+1e-9 {
			t.Fatalf("ratio did not decrease with M at N=%s", row[0])
		}
		prev, prevN = ratio, row[0]
	}
}

func TestFigure6Quick(t *testing.T) {
	tab, err := Figure6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		dascMem, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad mem cell %q", row[4])
		}
		scMem, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad mem cell %q", row[5])
		}
		if dascMem >= scMem {
			t.Fatalf("DASC memory %v not below SC %v", dascMem, scMem)
		}
	}
}

func TestTable3Quick(t *testing.T) {
	tab, err := Table3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Memory row must be identical across node counts.
	mem := tab.Rows[1]
	if mem[1] != mem[2] || mem[2] != mem[3] {
		t.Fatalf("memory varies with nodes: %v", mem)
	}
	// Time must not increase with node count (64 fastest).
	times := tab.Rows[2]
	t64 := parseSeconds(t, times[1])
	t32 := parseSeconds(t, times[2])
	t16 := parseSeconds(t, times[3])
	if t64 > t32 || t32 > t16 {
		t.Fatalf("time ordering broken: %v", times)
	}
}

func TestAblationsQuick(t *testing.T) {
	tab, err := Ablations(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 10 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The M sweep must show gram fraction falling as M grows.
	var prev float64 = 2
	for _, row := range tab.Rows {
		if row[0] != "signature-bits" {
			continue
		}
		gf, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if gf > prev+1e-9 {
			t.Fatalf("gram fraction rose along the M sweep: %v", tab.Rows)
		}
		prev = gf
	}
	// Every accuracy cell parses and is in (0,1].
	for _, row := range tab.Rows {
		acc, err := strconv.ParseFloat(row[2], 64)
		if err != nil || acc <= 0 || acc > 1 {
			t.Fatalf("bad accuracy cell %q", row[2])
		}
	}
}

func TestFigure2MeasuredQuick(t *testing.T) {
	tab, err := Figure2Measured(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Collision probability must not rise as M grows, and must start
	// high at the smallest M.
	prev := 2.0
	for _, row := range tab.Rows {
		p, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 {
			t.Fatalf("p = %v", p)
		}
		if p > prev+0.05 { // small sampling tolerance
			t.Fatalf("collision probability rose with M: %v", tab.Rows)
		}
		prev = p
	}
	first, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	if first < 0.5 {
		t.Fatalf("small-M collision probability = %v, expected high", first)
	}
}

func TestLocalityQuick(t *testing.T) {
	tab, err := Locality(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// For every node count, the slacked schedule must have at least as
	// many local tasks and no more network traffic than the strict one.
	for i := 0; i < len(tab.Rows); i += 2 {
		strictLocal, _ := strconv.Atoi(tab.Rows[i][2])
		slackLocal, _ := strconv.Atoi(tab.Rows[i+1][2])
		if slackLocal < strictLocal {
			t.Fatalf("slack reduced locality: %v vs %v", tab.Rows[i], tab.Rows[i+1])
		}
		strictNet, _ := strconv.ParseFloat(tab.Rows[i][4], 64)
		slackNet, _ := strconv.ParseFloat(tab.Rows[i+1][4], 64)
		if slackNet > strictNet {
			t.Fatalf("slack increased network traffic")
		}
	}
}

func parseSeconds(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
	if err != nil {
		t.Fatalf("bad time cell %q", s)
	}
	return v
}
