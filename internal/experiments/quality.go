package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// figure3Sizes returns the document counts per scale and the per-
// algorithm size caps. The paper runs 2^10..2^22; the baselines stop
// early there for the same reason they are capped here — the full-Gram
// algorithms do not scale.
func figure3Sizes(s Scale) (sizes []int, scCap, pscCap, nystCap int) {
	if s == Quick {
		return []int{512, 1024}, 1024, 1024, 1024
	}
	return []int{1024, 2048, 4096, 8192}, 2048, 4096, 8192
}

// corpusAt generates and vectorizes the Wikipedia-stand-in corpus at
// the given size, with the vocabulary sized to the Eq. 15 category
// count so that characteristic terms stay disjoint across categories.
func corpusAt(n int, seed int64) (*dataset.Labeled, int, error) {
	k := analytic.CategoryLaw(n)
	c, err := corpus.Generate(corpus.Config{
		NumDocs:   n,
		Seed:      seed,
		CharTerms: 8,
		VocabSize: k*8 + 256,
	})
	if err != nil {
		return nil, 0, err
	}
	l, err := c.Vectorize(11) // the paper's F = 11
	if err != nil {
		return nil, 0, err
	}
	return l, c.Categories, nil
}

// Figure3 regenerates Figure 3: clustering accuracy versus dataset size
// on the (synthetic stand-in) Wikipedia corpus for DASC, SC, PSC and
// NYST. Algorithms that cannot scale stop early, as in the paper.
func Figure3(scale Scale) (*Table, error) {
	sizes, scCap, pscCap, nystCap := figure3Sizes(scale)
	t := &Table{
		ID:      "Figure 3",
		Caption: "accuracy of different algorithms on the Wikipedia-like corpus",
		Headers: []string{"N", "K", "DASC", "SC", "PSC", "NYST"},
	}
	for _, n := range sizes {
		l, k, err := corpusAt(n, int64(n))
		if err != nil {
			return nil, fmt.Errorf("figure3: corpus at %d: %w", n, err)
		}
		row := []string{f("%d", n), f("%d", k)}

		dasc, err := core.Cluster(l.Points, core.Config{K: k, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("figure3: dasc at %d: %w", n, err)
		}
		row = append(row, accCell(l.Labels, dasc.Labels))

		if n <= scCap {
			sc, err := baseline.SC(l.Points, baseline.Config{K: k, Seed: 1})
			if err != nil {
				return nil, fmt.Errorf("figure3: sc at %d: %w", n, err)
			}
			row = append(row, accCell(l.Labels, sc.Labels))
		} else {
			row = append(row, "-")
		}
		if n <= pscCap {
			psc, err := baseline.PSC(l.Points, baseline.Config{K: k, Seed: 1})
			if err != nil {
				return nil, fmt.Errorf("figure3: psc at %d: %w", n, err)
			}
			row = append(row, accCell(l.Labels, psc.Labels))
		} else {
			row = append(row, "-")
		}
		if n <= nystCap {
			ny, err := baseline.NYST(l.Points, baseline.Config{K: k, Seed: 1})
			if err != nil {
				return nil, fmt.Errorf("figure3: nyst at %d: %w", n, err)
			}
			row = append(row, accCell(l.Labels, ny.Labels))
		} else {
			row = append(row, "-")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper range is 2^10..2^22 documents on a real cluster; sizes are scaled to one machine",
		"expected shape: DASC close to SC, both above PSC; '-' marks sizes an algorithm cannot reach")
	return t, nil
}

func accCell(truth, pred []int) string {
	acc, err := metrics.Accuracy(truth, pred)
	if err != nil {
		return "err"
	}
	return f("%.3f", acc)
}

// Figure4 regenerates Figure 4: DBI (a) and ASE (b) versus dataset size
// on 64-dimensional synthetic data for the four algorithms.
func Figure4(scale Scale) (*Table, error) {
	sizes := []int{1024, 2048}
	scCap, pscCap := 2048, 2048
	if scale == Full {
		sizes = []int{1024, 2048, 4096, 8192}
		scCap, pscCap = 2048, 4096
	}
	const k = 16
	t := &Table{
		ID:      "Figure 4",
		Caption: "DBI and ASE of different algorithms on synthetic data (64-dim)",
		Headers: []string{"N",
			"DASC DBI", "SC DBI", "PSC DBI", "NYST DBI",
			"DASC ASE", "SC ASE", "PSC ASE", "NYST ASE"},
	}
	for _, n := range sizes {
		l, err := dataset.Mixture(dataset.MixtureConfig{N: n, K: k, Noise: 0.03, Seed: int64(n)})
		if err != nil {
			return nil, err
		}
		type outcome struct{ dbi, ase string }
		eval := func(labels []int) outcome {
			dbi, err1 := metrics.DaviesBouldin(l.Points, labels)
			ase, err2 := metrics.AverageSquaredError(l.Points, labels)
			if err1 != nil || err2 != nil {
				return outcome{"err", "err"}
			}
			return outcome{f("%.3f", dbi), f("%.4f", ase)}
		}
		skip := outcome{"-", "-"}

		dasc, err := core.Cluster(l.Points, core.Config{K: k, Seed: 1})
		if err != nil {
			return nil, err
		}
		dOut := eval(dasc.Labels)

		sOut, pOut, nOut := skip, skip, skip
		if n <= scCap {
			sc, err := baseline.SC(l.Points, baseline.Config{K: k, Seed: 1})
			if err != nil {
				return nil, err
			}
			sOut = eval(sc.Labels)
		}
		if n <= pscCap {
			psc, err := baseline.PSC(l.Points, baseline.Config{K: k, Seed: 1})
			if err != nil {
				return nil, err
			}
			pOut = eval(psc.Labels)
		}
		ny, err := baseline.NYST(l.Points, baseline.Config{K: k, Seed: 1})
		if err != nil {
			return nil, err
		}
		nOut = eval(ny.Labels)

		t.Rows = append(t.Rows, []string{
			f("%d", n),
			dOut.dbi, sOut.dbi, pOut.dbi, nOut.dbi,
			dOut.ase, sOut.ase, pOut.ase, nOut.ase,
		})
	}
	t.Notes = append(t.Notes,
		"expected shape: DASC DBI/ASE track SC closely; PSC and NYST trail (paper Fig 4)")
	return t, nil
}
