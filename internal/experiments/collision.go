package experiments

import (
	"math/rand"

	"repro/internal/lsh"
)

// Figure2Measured complements the analytic Figure 2 with measurement:
// on the corpus stand-in it hashes the documents at each signature
// width M and reports the empirical probability that two documents of
// the same category land in the same (merged) bucket — the quantity
// Eqs. 13–19 model. The analytic curves say this falls sub-linearly
// with M; the measurement checks the real pipeline does too.
func Figure2Measured(scale Scale) (*Table, error) {
	sizes := []int{1024}
	ms := []int{2, 4, 6, 8}
	if scale == Full {
		sizes = []int{1024, 4096}
		ms = []int{2, 4, 6, 8, 10, 12}
	}
	t := &Table{
		ID:      "Figure 2 (measured)",
		Caption: "empirical same-category collision probability vs signature width",
		Headers: []string{"N", "M", "buckets", "P(same bucket | same category)"},
	}
	for _, n := range sizes {
		l, _, err := corpusAt(n, int64(n))
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			h, err := lsh.Fit(l.Points, lsh.Config{M: m, Seed: 1})
			if err != nil {
				return nil, err
			}
			part := h.Partition(l.Points, 1)
			bucketOf := make([]int, n)
			for bi, b := range part.Buckets {
				for _, idx := range b.Indices {
					bucketOf[idx] = bi
				}
			}
			// Sample same-category pairs.
			rng := rand.New(rand.NewSource(int64(n*100 + m)))
			same, hits := 0, 0
			for trial := 0; trial < 20000 && same < 5000; trial++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j || l.Labels[i] != l.Labels[j] {
					continue
				}
				same++
				if bucketOf[i] == bucketOf[j] {
					hits++
				}
			}
			p := 0.0
			if same > 0 {
				p = float64(hits) / float64(same)
			}
			t.Rows = append(t.Rows, []string{
				f("%d", n), f("%d", m), f("%d", part.NumBuckets()), f("%.4f", p),
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: probability near 1 at small M, decaying sub-linearly as M grows (analytic Fig 2)")
	return t, nil
}
