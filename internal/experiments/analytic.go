package experiments

import (
	"repro/internal/analytic"
	"repro/internal/corpus"
	"repro/internal/emr"
)

// Figure1 regenerates the paper's Figure 1: the closed-form DASC vs SC
// processing time (a) and memory (b) for datasets of 2^20..2^29 points,
// with beta = 50us and C = 1024 nodes, both axes log2 as in the paper.
func Figure1() *Table {
	m := analytic.DefaultModel()
	t := &Table{
		ID:      "Figure 1",
		Caption: "analytical scalability of DASC vs SC (beta=50us, C=1024)",
		Headers: []string{
			"log2(N)", "DASC time (h)", "SC time (h)",
			"log2 DASC t", "log2 SC t",
			"DASC mem (KB)", "SC mem (KB)", "log2 DASC KB", "log2 SC KB",
		},
	}
	for exp := 20; exp <= 29; exp++ {
		n := float64(int64(1) << uint(exp))
		dt, st := analytic.Hours(m.DASCTime(n)), analytic.Hours(m.SCTime(n))
		dm, sm := m.DASCMemory(n)/1024, m.SCMemory(n)/1024
		t.Rows = append(t.Rows, []string{
			f("%d", exp),
			f("%.3g", dt), f("%.3g", st),
			f("%.2f", analytic.Log2(dt)), f("%.2f", analytic.Log2(st)),
			f("%.3g", dm), f("%.3g", sm),
			f("%.2f", analytic.Log2(dm)), f("%.2f", analytic.Log2(sm)),
		})
	}
	t.Notes = append(t.Notes,
		"sub-quadratic growth for DASC on both axes; gap widens with N (paper Fig 1)")
	return t
}

// Figure2 regenerates Figure 2: collision probability (Eq. 18-19)
// versus the number of hash functions M for dataset sizes 1M..1G, r=5.
func Figure2() *Table {
	t := &Table{
		ID:      "Figure 2",
		Caption: "impact of M on collision probability (Eqs. 18-19, r=5)",
		Headers: []string{"M"},
	}
	sizes := []int{20, 21, 22, 23, 24, 25, 26, 27, 28, 30} // 1M..1G as exponents
	for _, e := range sizes {
		t.Headers = append(t.Headers, f("N=2^%d", e))
	}
	for mBits := 5; mBits <= 35; mBits += 2 {
		row := []string{f("%d", mBits)}
		for _, e := range sizes {
			p := analytic.CollisionProbability(float64(int64(1)<<uint(e)), 5, mBits)
			row = append(row, f("%.4f", p))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"probability decreases sub-linearly in M (paper Fig 2)",
		"Eq. 19 makes p rise slightly with N at fixed M; the paper's prose claims the opposite of its own equation — see EXPERIMENTS.md")
	return t
}

// Table1 regenerates Table 1: dataset size versus number of categories,
// comparing the paper's reported counts with the fitted law (Eq. 15)
// and with the categories our Wikipedia-stand-in generator emits.
func Table1() *Table {
	paper := []struct{ n, categories int }{
		{1024, 17}, {2048, 31}, {4096, 61}, {8192, 96}, {16384, 201},
		{32768, 330}, {65536, 587}, {131072, 1225}, {262144, 2825},
		{524288, 5535}, {1048576, 14237}, {2097152, 42493},
	}
	t := &Table{
		ID:      "Table 1",
		Caption: "clustering information of the Wikipedia dataset",
		Headers: []string{"dataset size", "paper categories", "Eq.15 law", "generator categories"},
	}
	for _, row := range paper {
		gen := "-"
		if row.n <= 16384 {
			c, err := corpus.Generate(corpus.Config{NumDocs: row.n, Seed: 1, VocabSize: 8192})
			if err == nil {
				gen = f("%d", c.Categories)
			}
		}
		t.Rows = append(t.Rows, []string{
			f("%d", row.n), f("%d", row.categories),
			f("%d", analytic.CategoryLaw(row.n)), gen,
		})
	}
	t.Notes = append(t.Notes,
		"the law is the paper's own line fit; its table deviates from the fit at the large end")
	return t
}

// Table2 reports the simulated cluster configuration, which matches the
// paper's Table 2 verbatim.
func Table2() *Table {
	cfg := emr.DefaultNodeConfig()
	return &Table{
		ID:      "Table 2",
		Caption: "setup of the (simulated) Elastic MapReduce cluster",
		Headers: []string{"parameter", "value"},
		Rows: [][]string{
			{"Hadoop jobtracker heapsize", f("%d MB", cfg.JobTrackerHeapMB)},
			{"Hadoop namenode heapsize", f("%d MB", cfg.NameNodeHeapMB)},
			{"Hadoop tasktracker heapsize", f("%d MB", cfg.TaskTrackerHeapMB)},
			{"Hadoop datanode heapsize", f("%d MB", cfg.DataNodeHeapMB)},
			{"Maximum map tasks in tasktracker", f("%d", cfg.MaxMapTasks)},
			{"Maximum reduce tasks in tasktracker", f("%d", cfg.MaxReduceTasks)},
			{"Data replication ratio in DFS", f("%d", cfg.ReplicationFactor)},
			{"Instance memory", f("%.1f GB", float64(cfg.MemoryMB)/1000)},
			{"Instance disk", f("%d GB", cfg.DiskGB)},
		},
	}
}
