package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lsh"
	"repro/internal/metrics"
)

// Ablations regenerates the design-choice studies DESIGN.md calls out,
// as a single table: dimension-selection policy, signature width M,
// bucket merging, and LSH family, each reporting accuracy, bucket count
// and the Gram-memory fraction on a common synthetic workload.
func Ablations(scale Scale) (*Table, error) {
	n := 1024
	if scale == Full {
		n = 4096
	}
	const k = 16
	l, err := dataset.Mixture(dataset.MixtureConfig{N: n, D: 32, K: k, Noise: 0.04, Seed: 77})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Ablations",
		Caption: f("design-choice studies on a %d-point synthetic mixture (K=%d)", n, k),
		Headers: []string{"study", "variant", "accuracy", "buckets", "gram frac"},
	}
	add := func(study, variant string, cfg core.Config) error {
		res, err := core.Cluster(l.Points, cfg)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", study, variant, err)
		}
		acc, err := metrics.Accuracy(l.Labels, res.Labels)
		if err != nil {
			return err
		}
		t.Rows = append(t.Rows, []string{
			study, variant,
			f("%.3f", acc),
			f("%d", len(res.Buckets)),
			f("%.3f", float64(res.GramBytes)/float64(4*n*n)),
		})
		return nil
	}

	for _, p := range []lsh.DimensionPolicy{lsh.TopSpan, lsh.SpanWeighted, lsh.Uniform} {
		if err := add("dimension-policy", p.String(), core.Config{K: k, Seed: 1, Policy: p}); err != nil {
			return nil, err
		}
	}
	for _, m := range []int{2, 4, 6, 8, 12} {
		if err := add("signature-bits", f("M=%d", m), core.Config{K: k, Seed: 1, M: m}); err != nil {
			return nil, err
		}
	}
	if err := add("merging", "on (P=M-1)", core.Config{K: k, Seed: 1, M: 8}); err != nil {
		return nil, err
	}
	if err := add("merging", "off", core.Config{K: k, Seed: 1, M: 8, P: -1}); err != nil {
		return nil, err
	}

	paper, err := lsh.Fit(l.Points, lsh.Config{M: 6, Seed: 1})
	if err != nil {
		return nil, err
	}
	sim, err := lsh.FitSimHash(l.Points, 6, 1)
	if err != nil {
		return nil, err
	}
	spec, err := lsh.FitSpectral(l.Points, 6, 1)
	if err != nil {
		return nil, err
	}
	for _, fam := range []struct {
		name string
		f    lsh.Family
	}{{"paper (span/valley)", paper}, {"simhash", sim}, {"spectral-hashing", spec}} {
		if err := add("lsh-family", fam.name, core.Config{K: k, Seed: 1, Family: fam.f}); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes,
		"larger M: more buckets, less Gram memory, slowly eroding accuracy (the Fig 2 trade-off)",
		"merging repairs split neighbourhoods at the cost of bigger buckets",
		"the paper's valley thresholds beat balanced spectral hashing on clustered data")
	return t, nil
}
