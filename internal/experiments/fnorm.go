package experiments

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

// Figure5 regenerates Figure 5: the ratio of the Frobenius norm of the
// approximated (block-diagonal) Gram matrix to that of the full Gram
// matrix, for several dataset sizes and bucket counts. The bucket count
// is swept through the signature width M; the actual (post-merge)
// bucket count is reported alongside.
//
// Both norms are computed by streaming over point pairs, so no N x N
// matrix is ever materialized — this is what lets the experiment reach
// sizes where the paper needed the full matrix in memory.
func Figure5(scale Scale) (*Table, error) {
	sizes := []int{512, 1024}
	ms := []int{2, 4, 6}
	if scale == Full {
		sizes = []int{1024, 4096, 8192}
		ms = []int{2, 4, 6, 8, 10}
	}
	t := &Table{
		ID:      "Figure 5",
		Caption: "Frobenius-norm ratio of approximated vs full Gram matrix",
		Headers: []string{"N", "M", "buckets", "Fnorm ratio"},
	}
	for _, n := range sizes {
		l, err := dataset.Mixture(dataset.MixtureConfig{N: n, K: 16, Noise: 0.05, Seed: int64(n)})
		if err != nil {
			return nil, err
		}
		sigma := kernel.MedianSigma(l.Points, 512, 1)
		kf := kernel.NewGaussian(sigma)
		fullSq := fullGramNormSq(l.Points, kf)
		for _, m := range ms {
			h, err := lsh.Fit(l.Points, lsh.Config{M: m, Seed: 1})
			if err != nil {
				return nil, err
			}
			part := h.Partition(l.Points, 1)
			approxSq := approxGramNormSq(l.Points, part, kf)
			ratio := 0.0
			if fullSq > 0 {
				ratio = math.Sqrt(approxSq / fullSq)
			}
			t.Rows = append(t.Rows, []string{
				f("%d", n), f("%d", m), f("%d", part.NumBuckets()), f("%.4f", ratio),
			})
		}
	}
	t.Notes = append(t.Notes,
		"expected shape: high ratios that fall as buckets increase; larger N tolerates more buckets (paper Fig 5)")
	return t, nil
}

// fullGramNormSq streams the squared Frobenius norm of the full Gram
// matrix (zero diagonal, as everywhere else in the pipeline).
func fullGramNormSq(points *matrix.Dense, kf kernel.Kernel) float64 {
	n := points.Rows()
	var sum float64
	for i := 0; i < n; i++ {
		xi := points.Row(i)
		for j := i + 1; j < n; j++ {
			v := kf.Eval(xi, points.Row(j))
			sum += 2 * v * v
		}
	}
	return sum
}

// approxGramNormSq streams the squared norm of the block-diagonal
// approximation: only intra-bucket pairs contribute.
func approxGramNormSq(points *matrix.Dense, part *lsh.Partition, kf kernel.Kernel) float64 {
	var sum float64
	for _, b := range part.Buckets {
		for a := 0; a < len(b.Indices); a++ {
			xa := points.Row(b.Indices[a])
			for c := a + 1; c < len(b.Indices); c++ {
				v := kf.Eval(xa, points.Row(b.Indices[c]))
				sum += 2 * v * v
			}
		}
	}
	return sum
}
