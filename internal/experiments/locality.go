package experiments

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/emr"
)

// Locality regenerates the Hadoop data-locality study implied by the
// paper's setup (Table 2 configures DFS replication 3; §5.1 credits the
// LSH partitioning with data locality): the hashing step's input-split
// tasks are placed on an HDFS model and scheduled with and without
// locality preference, reporting the local-read fraction, the network
// traffic of remote reads, and the makespan cost of chasing locality.
func Locality(scale Scale) (*Table, error) {
	n := 1 << 16
	if scale == Full {
		n = 1 << 20
	}
	const splitSize = 1024
	const bytesPerPoint = 11 * 8 // the paper's F=11 features
	beta := analytic.DefaultModel().Beta
	m := analytic.SignatureBits(n)

	t := &Table{
		ID:      "Locality",
		Caption: f("HDFS locality for the LSH step over %d points (%d splits)", n, n/splitSize),
		Headers: []string{"nodes", "slack", "local", "remote", "network (MB)", "makespan (s)"},
	}
	for _, nodes := range []int{8, 16, 32} {
		cluster, err := emr.NewCluster(nodes)
		if err != nil {
			return nil, err
		}
		dfs := cluster.NewDFS(1)
		var tasks []emr.LocalTask
		for s := 0; s*splitSize < n; s++ {
			id := fmt.Sprintf("split-%d", s)
			dfs.Place(id, int64(s))
			tasks = append(tasks, emr.LocalTask{
				Task: emr.Task{
					Name: id,
					Cost: beta * float64(m) * splitSize,
				},
				SplitID:    id,
				InputBytes: splitSize * bytesPerPoint,
			})
		}
		for _, slack := range []float64{0, tasks[0].Cost} {
			sched, err := cluster.ScheduleLocal(tasks, dfs, slack)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				f("%d", nodes),
				f("%.3g", slack),
				f("%d", sched.LocalTasks),
				f("%d", sched.RemoteTasks),
				f("%.2f", float64(sched.NetworkBytes)/1e6),
				f("%.3f", sched.Makespan),
			})
		}
	}
	t.Notes = append(t.Notes,
		"slack = one task's cost lets the scheduler wait for a replica-holding slot: locality rises, network traffic falls, makespan stays within one task of optimal")
	return t, nil
}
