package matrix

import "math"

// ApproxEqual reports whether |a-b| <= tol. It is the project-wide
// spelling for floating-point equality: the floatcmp analyzer rejects
// raw == / != on floats, and this helper replaces them. tol = 0 states
// explicitly that an exact comparison is intended (bitwise equality for
// finite values; NaN compares unequal to everything, matching ==).
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// IsZero reports whether v is exactly zero. It is shorthand for
// ApproxEqual(v, 0, 0), the dominant use in zero-skip loops and
// "unset configuration field" checks.
func IsZero(v float64) bool {
	return ApproxEqual(v, 0, 0)
}
