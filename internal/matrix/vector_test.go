package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) must be 0")
	}
	// No overflow with huge components.
	got := Norm2([]float64{1e200, 1e200})
	if math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestSqDistAndDist(t *testing.T) {
	x := []float64{0, 0}
	y := []float64{3, 4}
	if got := SqDist(x, y); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
	if got := Dist(x, y); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SqDist([]float64{1}, []float64{1, 2})
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v", y)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	AXPY(1, []float64{1}, []float64{1, 2})
}

func TestScaleVec(t *testing.T) {
	x := []float64{1, -2}
	ScaleVec(-2, x)
	if x[0] != -2 || x[1] != 4 {
		t.Fatalf("ScaleVec = %v", x)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	n := Normalize(x)
	if math.Abs(n-5) > 1e-12 {
		t.Fatalf("returned norm %v, want 5", n)
	}
	if math.Abs(Norm2(x)-1) > 1e-12 {
		t.Fatalf("normalized norm = %v, want 1", Norm2(x))
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 || zero[0] != 0 {
		t.Fatal("zero vector must stay zero")
	}
}

func TestNormalizeRows(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 4}, {0, 0}, {0, 2}})
	NormalizeRows(m)
	if math.Abs(Norm2(m.Row(0))-1) > 1e-12 {
		t.Fatal("row 0 not normalized")
	}
	if Norm2(m.Row(1)) != 0 {
		t.Fatal("zero row must remain zero")
	}
	if math.Abs(m.At(2, 1)-1) > 1e-12 {
		t.Fatal("row 2 not normalized")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
}

// Property: Cauchy–Schwarz |<x,y>| <= |x| |y|.
func TestPropCauchySchwarz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Dist.
func TestPropTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i], y[i], z[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		return Dist(x, z) <= Dist(x, y)+Dist(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
