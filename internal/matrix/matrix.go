// Package matrix provides dense row-major matrices and the small set of
// vector and matrix operations the DASC pipeline needs: products,
// transposes, diagonal scalings, norms and symmetric checks.
//
// The package is deliberately minimal — it is a substrate for the
// spectral-clustering stack, not a general linear-algebra library.
// Hot paths (Gram construction, Laplacian scaling, eigen iterations)
// avoid per-element bounds recomputation by operating on row slices.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dense is a dense, row-major matrix of float64 values.
// The zero value is an empty 0x0 matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows x cols matrix of zeros.
// It panics if either dimension is negative.
func NewDense(rows, cols int) *Dense {
	checkDims(rows, cols)
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps an existing backing slice as a rows x cols matrix.
// The slice is used directly (not copied); len(data) must be rows*cols.
func NewDenseData(rows, cols int, data []float64) (*Dense, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: negative dimension %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("matrix: data length %d != %d*%d", len(data), rows, cols)
	}
	return &Dense{rows: rows, cols: cols, data: data}, nil
}

// FromRows builds a matrix by copying the given rows.
// All rows must have equal length; an empty input yields a 0x0 matrix.
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return NewDense(0, 0), nil
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("matrix: row %d has length %d, want %d", i, len(r), cols)
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
// Mutating the slice mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	m.checkRow(i)
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	m.checkCol(j)
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Data returns the backing slice in row-major order. Mutations are visible.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*out.cols+i] = v
		}
	}
	return out
}

// ErrShape reports incompatible operand dimensions.
var ErrShape = errors.New("matrix: incompatible shapes")

// Mul returns the product a*b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, b.cols)
	// ikj loop order: stream through b's rows for cache friendliness.
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if IsZero(av) {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// AddTo returns a+b.
func AddTo(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := NewDense(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Scale multiplies every element by s, in place, and returns m.
func (m *Dense) Scale(s float64) *Dense {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// MulVec returns m*x for a column vector x (len(x) == Cols()).
func (m *Dense) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Frobenius returns the Frobenius norm sqrt(sum a_ij^2).
// Partial sums are accumulated in a scaled form to avoid overflow for
// very large entries, mirroring the classic hypot trick.
func (m *Dense) Frobenius() float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range m.data {
		if IsZero(v) {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// IsSymmetric reports whether |a_ij - a_ji| <= tol for all i, j.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.data[i*m.cols+j]-m.data[j*m.cols+i]) > tol {
				return false
			}
		}
	}
	return true
}

// Equal reports whether a and b have the same shape and all elements
// within tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "Dense(%dx%d)", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return sb.String()
	}
	sb.WriteString("[")
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.4g", m.data[i*m.cols+j])
		}
	}
	sb.WriteString("]")
	return sb.String()
}
