package matrix

import (
	"fmt"
	"math"
)

// Diagonal is an n x n diagonal matrix stored as its diagonal vector.
// The DASC Laplacian step (Eq. 2 in the paper) only ever multiplies by
// diagonal matrices, and using an explicit diagonal keeps that step
// O(n^2) instead of O(n^3).
type Diagonal struct {
	d []float64
}

// NewDiagonal wraps d (not copied) as a diagonal matrix.
func NewDiagonal(d []float64) *Diagonal { return &Diagonal{d: d} }

// RowSums returns the diagonal degree matrix of a square matrix: the
// i-th diagonal entry is the sum of row i. This is the D of Eq. 2.
func RowSums(m *Dense) (*Diagonal, error) {
	if m.Rows() != m.Cols() {
		return nil, fmt.Errorf("%w: row sums of %dx%d", ErrShape, m.Rows(), m.Cols())
	}
	d := make([]float64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		d[i] = s
	}
	return &Diagonal{d: d}, nil
}

// N returns the dimension of the diagonal matrix.
func (dg *Diagonal) N() int { return len(dg.d) }

// At returns the i-th diagonal entry.
func (dg *Diagonal) At(i int) float64 { return dg.d[i] }

// InvSqrt returns a new diagonal matrix with entries d_i^{-1/2}.
// Non-positive entries map to 0, matching the convention for isolated
// points in normalized Laplacians (a zero-degree row stays zero).
func (dg *Diagonal) InvSqrt() *Diagonal {
	out := make([]float64, len(dg.d))
	for i, v := range dg.d {
		if v > 0 {
			out[i] = 1 / math.Sqrt(v)
		}
	}
	return &Diagonal{d: out}
}

// ScaleSym computes D * S * D in place on a copy of S, where D is the
// receiver. For d = D^{-1/2} this is exactly the normalized Laplacian
// of Eq. 2. S must be square with matching dimension.
func (dg *Diagonal) ScaleSym(s *Dense) (*Dense, error) {
	n := len(dg.d)
	if s.Rows() != n || s.Cols() != n {
		return nil, fmt.Errorf("%w: diag(%d) scale %dx%d", ErrShape, n, s.Rows(), s.Cols())
	}
	out := s.Clone()
	for i := 0; i < n; i++ {
		di := dg.d[i]
		row := out.Row(i)
		for j := range row {
			row[j] *= di * dg.d[j]
		}
	}
	return out, nil
}

// ScaleSymInPlace computes D * S * D overwriting S, where D is the
// receiver — the allocation-free form of ScaleSym for callers (the
// per-bucket solve path) that no longer need S afterwards.
func (dg *Diagonal) ScaleSymInPlace(s *Dense) error {
	n := len(dg.d)
	if s.Rows() != n || s.Cols() != n {
		return fmt.Errorf("%w: diag(%d) scale %dx%d", ErrShape, n, s.Rows(), s.Cols())
	}
	for i := 0; i < n; i++ {
		di := dg.d[i]
		row := s.Row(i)
		for j := range row {
			row[j] *= di * dg.d[j]
		}
	}
	return nil
}

// Dense materializes the diagonal as a dense matrix (mainly for tests).
func (dg *Diagonal) Dense() *Dense {
	n := len(dg.d)
	m := NewDense(n, n)
	for i, v := range dg.d {
		m.Set(i, i, v)
	}
	return m
}
