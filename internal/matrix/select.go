package matrix

// SelectKth returns the k-th smallest element of x (0-based) by
// in-place Hoare quickselect with median-of-three pivoting. It returns
// exactly the value sorting would place at index k — the LSH span
// percentiles and the median-bandwidth heuristic need two order
// statistics per column, not a full O(n log n) sort. x is reordered.
// It panics if x is empty or k is out of range.
func SelectKth(x []float64, k int) float64 {
	if k < 0 || k >= len(x) {
		Panicf("matrix: SelectKth k=%d with %d elements", k, len(x))
	}
	lo, hi := 0, len(x)-1
	for lo < hi {
		if hi-lo < 12 {
			// Insertion sort on small ranges beats further partitioning.
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && x[j] < x[j-1]; j-- {
					x[j], x[j-1] = x[j-1], x[j]
				}
			}
			return x[k]
		}
		// Median-of-three pivot, moved to x[lo].
		mid := lo + (hi-lo)/2
		if x[mid] < x[lo] {
			x[mid], x[lo] = x[lo], x[mid]
		}
		if x[hi] < x[lo] {
			x[hi], x[lo] = x[lo], x[hi]
		}
		if x[hi] < x[mid] {
			x[hi], x[mid] = x[mid], x[hi]
		}
		pivot := x[mid]
		i, j := lo, hi
		for i <= j {
			for x[i] < pivot {
				i++
			}
			for x[j] > pivot {
				j--
			}
			if i <= j {
				x[i], x[j] = x[j], x[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return x[k]
		}
	}
	return x[k]
}
