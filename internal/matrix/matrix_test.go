package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataValidates(t *testing.T) {
	if _, err := NewDenseData(2, 2, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for mismatched data length")
	}
	m, err := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 3 || m.Cols() != 2 || m.At(2, 1) != 6 {
		t.Fatalf("unexpected matrix %v", m)
	}
	if _, err := FromRows([][]float64{{1}, {2, 3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.Rows() != 0 || empty.Cols() != 0 {
		t.Fatalf("empty FromRows = %v, %v", empty, err)
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if m.At(0, 1) != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", m.At(0, 1))
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(2, 0)
}

func TestRowAliases(t *testing.T) {
	m := NewDense(2, 3)
	r := m.Row(1)
	r[2] = 9
	if m.At(1, 2) != 9 {
		t.Fatal("Row must alias storage")
	}
}

func TestColCopies(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v", c)
	}
	c[0] = 99
	if m.At(0, 1) == 99 {
		t.Fatal("Col must copy")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(c, want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", c, want)
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomDense(rng, 5, 5)
	id := Identity(5)
	left, _ := Mul(id, a)
	right, _ := Mul(a, id)
	if !Equal(left, a, 1e-12) || !Equal(right, a, 1e-12) {
		t.Fatal("identity product must equal operand")
	}
}

func TestAddSub(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	s, err := AddTo(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{5, 5}, {5, 5}})
	if !Equal(s, want, 0) {
		t.Fatalf("AddTo = %v", s)
	}
	d, err := Sub(s, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(d, a, 0) {
		t.Fatalf("Sub = %v, want %v", d, a)
	}
	if _, err := AddTo(a, NewDense(1, 1)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := Sub(a, NewDense(1, 1)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, -2}})
	a.Scale(-3)
	if a.At(0, 0) != -3 || a.At(0, 1) != 6 {
		t.Fatalf("Scale = %v", a)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	y, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Fatalf("MulVec = %v", y)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestFrobenius(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 4}})
	if got := a.Frobenius(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v, want 5", got)
	}
	if NewDense(0, 0).Frobenius() != 0 {
		t.Fatal("empty Frobenius must be 0")
	}
	// Overflow resistance: entries near sqrt(MaxFloat64).
	big := 1e200
	b, _ := FromRows([][]float64{{big, big}})
	if got := b.Frobenius(); math.IsInf(got, 0) || math.Abs(got-big*math.Sqrt2) > big*1e-10 {
		t.Fatalf("Frobenius overflowed: %v", got)
	}
}

func TestMaxAbs(t *testing.T) {
	a, _ := FromRows([][]float64{{1, -7}, {3, 2}})
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestIsSymmetric(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	if !a.IsSymmetric(0) {
		t.Fatal("expected symmetric")
	}
	a.Set(0, 1, 2.1)
	if a.IsSymmetric(0.01) {
		t.Fatal("expected asymmetric beyond tol")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func TestCloneIndependent(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) == 9 {
		t.Fatal("Clone must not alias")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small, _ := FromRows([][]float64{{1, 2}})
	if s := small.String(); s == "" {
		t.Fatal("empty string for small matrix")
	}
	large := NewDense(20, 20)
	if s := large.String(); s != "Dense(20x20)" {
		t.Fatalf("large String = %q", s)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

// Property: (A*B)^T == B^T * A^T.
func TestPropTransposeProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomDense(rng, n, m)
		b := randomDense(rng, m, p)
		ab, _ := Mul(a, b)
		left := ab.T()
		right, _ := Mul(b.T(), a.T())
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is invariant under transpose.
func TestPropFrobeniusTranspose(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomDense(r, 1+r.Intn(8), 1+r.Intn(8))
		return math.Abs(a.Frobenius()-a.T().Frobenius()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestPropDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := randomDense(r, n, n)
		b := randomDense(r, n, n)
		c := randomDense(r, n, n)
		bc, _ := AddTo(b, c)
		left, _ := Mul(a, bc)
		ab, _ := Mul(a, b)
		ac, _ := Mul(a, c)
		right, _ := AddTo(ab, ac)
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
