package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randomDenseSeed(rows, cols int, seed int64) *Dense {
	return randomDense(rand.New(rand.NewSource(seed)), rows, cols)
}

func TestSqNorms(t *testing.T) {
	m := randomDenseSeed(17, 9, 1)
	sq := SqNorms(m)
	for i := 0; i < m.Rows(); i++ {
		want := Dot(m.Row(i), m.Row(i))
		if math.Abs(sq[i]-want) > 1e-12*math.Abs(want) {
			t.Fatalf("sq[%d] = %v, want %v", i, sq[i], want)
		}
	}
	dst := make([]float64, m.Rows())
	if &SqNormsInto(dst, m)[0] != &dst[0] {
		t.Fatal("SqNormsInto must write into dst")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	SqNormsInto(make([]float64, 3), m)
}

func TestDot4MatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 64, 65} {
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		got, want := Dot4(x, y), Dot(x, y)
		if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("n=%d: Dot4 = %v, Dot = %v", n, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	Dot4([]float64{1}, []float64{1, 2})
}

func TestGatherRows(t *testing.T) {
	m := randomDenseSeed(10, 4, 3)
	idxs := []int{7, 0, 3, 3}
	buf := GatherRows(nil, m, idxs)
	if len(buf) != len(idxs)*m.Cols() {
		t.Fatalf("gathered length %d", len(buf))
	}
	for k, idx := range idxs {
		for j := 0; j < m.Cols(); j++ {
			if !ApproxEqual(buf[k*m.Cols()+j], m.At(idx, j), 0) {
				t.Fatalf("row %d col %d mismatch", k, j)
			}
		}
	}
	// A large enough buffer is reused, not reallocated.
	big := make([]float64, 100)
	out := GatherRows(big, m, idxs)
	if &out[0] != &big[0] {
		t.Fatal("GatherRows must reuse a sufficient buffer")
	}
	if len(GatherRows(nil, m, nil)) != 0 {
		t.Fatal("empty gather must be empty")
	}
}

func TestDotBlock(t *testing.T) {
	a := randomDenseSeed(5, 7, 4)
	b := randomDenseSeed(3, 7, 5)
	out := make([]float64, 5*3)
	DotBlock(a.Data(), 5, b.Data(), 3, 7, out)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			want := Dot(a.Row(i), b.Row(j))
			if math.Abs(out[i*3+j]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("out[%d,%d] = %v, want %v", i, j, out[i*3+j], want)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad out length")
		}
	}()
	DotBlock(a.Data(), 5, b.Data(), 3, 7, make([]float64, 2))
}

func TestScaleSymInPlaceMatchesScaleSym(t *testing.T) {
	s := randomDenseSeed(6, 6, 6)
	d := NewDiagonal([]float64{1, 2, 0.5, 3, 0.25, 1.5})
	want, err := d.ScaleSym(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ScaleSymInPlace(s); err != nil {
		t.Fatal(err)
	}
	if !Equal(s, want, 0) {
		t.Fatal("in-place scale differs from ScaleSym")
	}
	if err := d.ScaleSymInPlace(NewDense(2, 2)); err == nil {
		t.Fatal("expected shape error")
	}
}
