package matrix

// This file holds the cache-blocked micro-kernels under the vectorized
// Gram engine (internal/kernel): precomputed row norms, a 4-wide
// unrolled dot product, contiguous row gathering, and a blocked
// pairwise-dot routine. They exist so the kernel fast paths can turn
// every pairwise distance into ‖x‖² + ‖y‖² − 2·x·y over contiguous
// scratch, instead of a closure call plus a subtract-square loop per
// pair.

// SqNorms returns the squared Euclidean norm of every row of m —
// the precomputed ‖x‖² terms of the blocked pairwise-distance
// factorization. Unlike Norm2 it does not rescale against overflow:
// the Gram engine feeds values in data ranges (similarity inputs,
// tf-idf weights) where the plain sum of squares is exact enough and
// several times faster.
func SqNorms(m *Dense) []float64 {
	out := make([]float64, m.rows)
	return SqNormsInto(out, m)
}

// SqNormsInto writes the squared row norms of m into dst, which must
// have length m.Rows(), and returns dst. It is the allocation-free form
// of SqNorms for pooled scratch.
func SqNormsInto(dst []float64, m *Dense) []float64 {
	if len(dst) != m.rows {
		Panicf("matrix: SqNormsInto dst length %d for %d rows", len(dst), m.rows)
	}
	for i := 0; i < m.rows; i++ {
		dst[i] = Dot4(m.Row(i), m.Row(i))
	}
	return dst
}

// GatherRows copies the listed rows of m into dst as a contiguous
// row-major block of len(indices) rows, growing dst if needed, and
// returns the (re)sliced buffer. Row indices are bounds-checked by Row.
// Gathering a bucket's rows once turns the per-pair strided accesses of
// a sub-Gram computation into sequential scans of one compact block.
func GatherRows(dst []float64, m *Dense, indices []int) []float64 {
	d := m.cols
	need := len(indices) * d
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dst = dst[:need]
	for k, idx := range indices {
		copy(dst[k*d:(k+1)*d], m.Row(idx))
	}
	return dst
}

// Dot4 returns the inner product of x and y accumulated in four
// parallel lanes (4-wide unrolled). The summation order differs from
// Dot, so results may differ from it in the last bits; hot paths that
// tolerate that (the Gram engine, Lanczos matrix-vector products) use
// Dot4, exact-reproduction paths keep Dot. It panics if the lengths
// differ.
func Dot4(x, y []float64) float64 {
	checkLen("dot4", x, y)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		y0, y1, y2, y3 := y[i], y[i+1], y[i+2], y[i+3]
		s0 += x0 * y0
		s1 += x1 * y1
		s2 += x2 * y2
		s3 += x3 * y3
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return s0 + s1 + s2 + s3
}

// DotBlock computes the pairwise dot products between the rows of two
// contiguous row-major blocks a (ra x d) and b (rb x d), writing
// out[i*rb+j] = a_i · b_j. It is the innermost routine of the blocked
// symmetric Gram engine: both blocks are small enough to stay
// cache-resident while every cross pair is formed. out must have length
// ra*rb.
func DotBlock(a []float64, ra int, b []float64, rb, d int, out []float64) {
	if len(a) != ra*d || len(b) != rb*d {
		Panicf("matrix: DotBlock shapes %d=%dx%d %d=%dx%d", len(a), ra, d, len(b), rb, d)
	}
	if len(out) != ra*rb {
		Panicf("matrix: DotBlock out length %d, want %d", len(out), ra*rb)
	}
	for i := 0; i < ra; i++ {
		arow := a[i*d : (i+1)*d]
		orow := out[i*rb : (i+1)*rb]
		// 1x4 micro-tile: four b-rows per pass, so every element of
		// arow is loaded once per four products and the four
		// accumulation chains run in parallel.
		j := 0
		for ; j+4 <= rb; j += 4 {
			b0 := b[(j+0)*d : (j+1)*d][:len(arow)]
			b1 := b[(j+1)*d : (j+2)*d][:len(arow)]
			b2 := b[(j+2)*d : (j+3)*d][:len(arow)]
			b3 := b[(j+3)*d : (j+4)*d][:len(arow)]
			var s0, s1, s2, s3 float64
			for t, av := range arow {
				s0 += av * b0[t]
				s1 += av * b1[t]
				s2 += av * b2[t]
				s3 += av * b3[t]
			}
			orow[j] = s0
			orow[j+1] = s1
			orow[j+2] = s2
			orow[j+3] = s3
		}
		for ; j < rb; j++ {
			orow[j] = Dot4(arow, b[j*d:(j+1)*d])
		}
	}
}
