package matrix

import "fmt"

// This file holds the designated invariant helpers: the only places in
// the library packages where panicking is sanctioned (enforced by the
// panicfree analyzer, which allows panic only in internal/matrix inside
// Panicf and the check* bounds helpers). These express programmer-error
// contracts — negative dimensions, mismatched slice lengths — that are
// bugs at the call site rather than runtime conditions a caller could
// handle.

// Panicf panics with a formatted message. Library packages that need to
// enforce a construction-time invariant (e.g. kernel bandwidths,
// sparse-matrix bounds) route their panic through here so the panicfree
// analyzer can hold the rest of the codebase panic-free.
func Panicf(format string, args ...interface{}) {
	panic(fmt.Sprintf(format, args...))
}

// checkDims panics when a requested matrix dimension is negative.
func checkDims(rows, cols int) {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
}

// checkLen panics when the two vectors of a pairwise operation differ
// in length.
func checkLen(op string, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: %s length mismatch %d vs %d", op, len(x), len(y)))
	}
}

// checkRow panics when row index i is out of range.
func (m *Dense) checkRow(i int) {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.rows))
	}
}

// checkCol panics when column index j is out of range.
func (m *Dense) checkCol(j int) {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: col %d out of range %d", j, m.cols))
	}
}
