package matrix

import "math"

// Dot returns the inner product of x and y. It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	checkLen("dot", x, y)
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if IsZero(v) {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// SqDist returns the squared Euclidean distance between x and y.
// It panics if the lengths differ.
func SqDist(x, y []float64) float64 {
	checkLen("sqdist", x, y)
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between x and y.
func Dist(x, y []float64) float64 { return math.Sqrt(SqDist(x, y)) }

// AXPY computes y += a*x in place. It panics if the lengths differ.
func AXPY(a float64, x, y []float64) {
	checkLen("axpy", x, y)
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Normalize scales x to unit Euclidean length in place and returns the
// original norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if IsZero(n) {
		return 0
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return n
}

// NormalizeRows scales each row of m to unit Euclidean length in place.
// Zero rows are left unchanged. This is the Ng–Jordan–Weiss Y-step.
func NormalizeRows(m *Dense) {
	for i := 0; i < m.Rows(); i++ {
		Normalize(m.Row(i))
	}
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
