package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowSums(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	d, err := RowSums(m)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.At(0) != 3 || d.At(1) != 7 {
		t.Fatalf("RowSums = %v %v", d.At(0), d.At(1))
	}
	if _, err := RowSums(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
}

func TestInvSqrt(t *testing.T) {
	d := NewDiagonal([]float64{4, 0, -1, 0.25})
	inv := d.InvSqrt()
	if inv.At(0) != 0.5 {
		t.Fatalf("InvSqrt(4) = %v", inv.At(0))
	}
	if inv.At(1) != 0 || inv.At(2) != 0 {
		t.Fatal("non-positive entries must map to 0")
	}
	if inv.At(3) != 2 {
		t.Fatalf("InvSqrt(0.25) = %v", inv.At(3))
	}
}

func TestScaleSymMatchesDenseProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomDense(rng, 4, 4)
	dvals := []float64{1, 2, 3, 4}
	d := NewDiagonal(dvals)
	got, err := d.ScaleSym(s)
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := Mul(d.Dense(), s)
	want, _ := Mul(ds, d.Dense())
	if !Equal(got, want, 1e-12) {
		t.Fatalf("ScaleSym mismatch:\n%v\n%v", got, want)
	}
	if _, err := d.ScaleSym(NewDense(3, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestScaleSymDoesNotMutateInput(t *testing.T) {
	s, _ := FromRows([][]float64{{1, 2}, {2, 1}})
	before := s.Clone()
	d := NewDiagonal([]float64{2, 3})
	if _, err := d.ScaleSym(s); err != nil {
		t.Fatal(err)
	}
	if !Equal(s, before, 0) {
		t.Fatal("ScaleSym must not mutate its argument")
	}
}

// Property: the normalized Laplacian D^{-1/2} S D^{-1/2} of a symmetric
// matrix with positive row sums is symmetric with diagonal-dominant
// eigenstructure bounded by 1 in row-sum norm for row-stochastic-like S.
func TestPropNormalizedLaplacianSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		s := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := r.Float64() + 0.01 // strictly positive similarities
				s.Set(i, j, v)
				s.Set(j, i, v)
			}
		}
		deg, err := RowSums(s)
		if err != nil {
			return false
		}
		l, err := deg.InvSqrt().ScaleSym(s)
		if err != nil {
			return false
		}
		if !l.IsSymmetric(1e-9) {
			return false
		}
		// Largest eigenvalue of the normalized similarity is 1, so all
		// entries must lie in [-1, 1] up to rounding.
		return l.MaxAbs() <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiagonalDense(t *testing.T) {
	d := NewDiagonal([]float64{1, 2})
	m := d.Dense()
	want, _ := FromRows([][]float64{{1, 0}, {0, 2}})
	if !Equal(m, want, 0) {
		t.Fatalf("Dense = %v", m)
	}
}
