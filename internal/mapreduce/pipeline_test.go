package mapreduce

import (
	"bytes"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestTCPStragglerRequeue is the regression test for the dispatch
// straggler bug: under the old lock-step loop, a worker goroutine
// returned as soon as the queue was momentarily empty, so a task
// requeued by a late worker failure had nobody left to run it and the
// job aborted with "dispatch finished with straggler tasks". The
// pipelined dispatcher keeps healthy writers parked on the queue until
// the phase completes, so the job must now succeed.
//
// Choreography: the slow worker takes some tasks and sits on them long
// enough for the healthy worker to drain the rest of the queue, then
// drops its connection; its in-flight tasks requeue and the healthy
// worker must pick them up.
func TestTCPStragglerRequeue(t *testing.T) {
	job := &Job{
		Name:        "tcp-straggler",
		NumReducers: 2,
		SplitSize:   1, // one task per record: plenty of tasks to strand
		Map: func(key string, value []byte, emit Emit) error {
			emit("k"+key[len(key)-1:], []byte(key))
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
	Register(job)

	m, err := NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // slow straggler: hold in-flight tasks, then die
		defer wg.Done()
		conn, cdc := dialHello(t, m.Addr(), WireVersionLatest)
		var task taskMsg
		_, _ = cdc.readTask(&task)
		time.Sleep(300 * time.Millisecond)
		_ = conn.Close()
	}()
	go func() { // healthy worker
		defer wg.Done()
		if err := RunWorker(m.Addr()); err != nil {
			t.Errorf("healthy worker: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}

	out, ctr, err := m.Run(job, manyRecords(24))
	if err != nil {
		t.Fatalf("job failed despite a surviving worker: %v", err)
	}
	total := 0
	for _, p := range out {
		n, err := strconv.Atoi(string(p.Value))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 24 {
		t.Fatalf("reduce saw %d records, want 24 (lost or duplicated requeues)", total)
	}
	if ctr.MapTasks != 24 {
		t.Fatalf("MapTasks = %d, want 24", ctr.MapTasks)
	}
	_ = m.Close()
	wg.Wait()
}

// orderSensitiveJob makes shuffle order visible in the output bytes:
// reduce concatenates its values in arrival order, so any executor
// that orders equal keys differently produces different bytes.
func orderSensitiveJob(name string) *Job {
	return &Job{
		Name:        name,
		NumReducers: 4,
		SplitSize:   8,
		Map: func(key string, value []byte, emit Emit) error {
			id, err := strconv.Atoi(key)
			if err != nil {
				return err
			}
			for j := 0; j < 8; j++ {
				k := fmt.Sprintf("k%02d", (id*7+j*13)%31)
				emit(k, []byte(fmt.Sprintf("%d.%d", id, j)))
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, bytes.Join(values, []byte(",")))
			return nil
		},
	}
}

// TestShuffleDeterminismAcrossExecutors fixes one input and asserts
// byte-identical output from the Local pool, the pipelined frame
// protocol, and the lock-step gob replay configuration — the
// determinism contract the merge shuffle must uphold (run under the CI
// -race gate, where dispatch interleavings vary wildly).
func TestShuffleDeterminismAcrossExecutors(t *testing.T) {
	job := orderSensitiveJob("determinism-x3")
	Register(job)
	input := manyRecords(64)

	localOut, _, err := (&Local{Workers: 4}).Run(job, input)
	if err != nil {
		t.Fatal(err)
	}

	runTCP := func(cfg TCPConfig) []Pair {
		t.Helper()
		cfg.Addr = "127.0.0.1:0"
		cfg.MinWorkers = 2
		m, err := NewMasterTCP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = m.Close() }()
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := RunWorker(m.Addr()); err != nil {
					t.Errorf("worker: %v", err)
				}
			}()
		}
		deadline := time.Now().Add(5 * time.Second)
		for m.ConnectedWorkers() < 2 {
			if time.Now().After(deadline) {
				t.Fatal("workers did not join")
			}
			time.Sleep(time.Millisecond)
		}
		out, _, err := m.Run(job, input)
		if err != nil {
			t.Fatal(err)
		}
		_ = m.Close()
		wg.Wait()
		return out
	}

	pipelined := runTCP(TCPConfig{}) // defaults: frames, in-flight window
	lockstep := runTCP(TCPConfig{MaxInFlight: 1, MaxWireVersion: WireVersionGob})

	for name, got := range map[string][]Pair{"pipelined": pipelined, "lockstep-gob": lockstep} {
		if len(got) != len(localOut) {
			t.Fatalf("%s: %d records, local has %d", name, len(got), len(localOut))
		}
		for i := range got {
			if got[i].Key != localOut[i].Key || !bytes.Equal(got[i].Value, localOut[i].Value) {
				t.Fatalf("%s record %d = %q:%q, local has %q:%q",
					name, i, got[i].Key, got[i].Value, localOut[i].Key, localOut[i].Value)
			}
		}
	}
}

// TestTCPCombinerShrinksShuffle runs the combiner path over the frame
// protocol and checks both correctness and that the combiner actually
// shrinks the measured shuffle (ShuffleBytes now meters real result
// frames in TCP mode).
func TestTCPCombinerShrinksShuffle(t *testing.T) {
	input := make([]Pair, 8)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: []byte("rep rep rep rep other other tail")}
	}
	plain := wordCountJob("tcp-comb-off", 3, false)
	plain.SplitSize = 2
	combined := wordCountJob("tcp-comb-on", 3, true)
	combined.SplitSize = 2
	Register(plain)
	Register(combined)

	m, stop := startCluster(t, 2)
	defer stop()

	wantOut, _, err := (&Local{}).Run(plain, input)
	if err != nil {
		t.Fatal(err)
	}
	plainOut, plainCtr, err := m.Run(plain, input)
	if err != nil {
		t.Fatal(err)
	}
	combOut, combCtr, err := m.Run(combined, input)
	if err != nil {
		t.Fatal(err)
	}

	for name, got := range map[string][]Pair{"plain": plainOut, "combined": combOut} {
		if len(got) != len(wantOut) {
			t.Fatalf("%s: %d records, want %d", name, len(got), len(wantOut))
		}
		for i := range got {
			if got[i].Key != wantOut[i].Key || !bytes.Equal(got[i].Value, wantOut[i].Value) {
				t.Fatalf("%s record %d = %v, want %v", name, i, got[i], wantOut[i])
			}
		}
	}
	if combCtr.MapOutputs >= plainCtr.MapOutputs {
		t.Fatalf("combiner did not shrink map outputs: %d vs %d",
			combCtr.MapOutputs, plainCtr.MapOutputs)
	}
	if combCtr.ShuffleBytes >= plainCtr.ShuffleBytes {
		t.Fatalf("combiner did not shrink shuffle bytes: %d vs %d",
			combCtr.ShuffleBytes, plainCtr.ShuffleBytes)
	}
}

// TestTCPWireCountersMeterRealTraffic compares the TCP executor's
// measured shuffle against the Local executor's key+value
// approximation for the same job: real frames carry framing overhead
// on top of the payload, so the TCP number must be at least as large.
// It also checks the new wire counters are actually populated.
func TestTCPWireCountersMeterRealTraffic(t *testing.T) {
	job := shuffleHeavyJob("tcp-wirectr", 4, 8)
	Register(job)
	input := shuffleHeavyInput(256)

	_, localCtr, err := (&Local{}).Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	m, stop := startCluster(t, 2)
	defer stop()
	_, tcpCtr, err := m.Run(job, input)
	if err != nil {
		t.Fatal(err)
	}

	if tcpCtr.ShuffleBytes < localCtr.ShuffleBytes {
		t.Fatalf("TCP ShuffleBytes %d < Local approximation %d; wire metering undercounts",
			tcpCtr.ShuffleBytes, localCtr.ShuffleBytes)
	}
	if tcpCtr.WireBytesOut <= 0 || tcpCtr.WireBytesIn <= 0 {
		t.Fatalf("wire byte counters empty: out=%d in=%d", tcpCtr.WireBytesOut, tcpCtr.WireBytesIn)
	}
	if tcpCtr.WireBytesIn < tcpCtr.ShuffleBytes {
		t.Fatalf("WireBytesIn %d < ShuffleBytes %d: shuffle is a subset of inbound traffic",
			tcpCtr.WireBytesIn, tcpCtr.ShuffleBytes)
	}
	if tcpCtr.EncodeNanos <= 0 || tcpCtr.DecodeNanos <= 0 {
		t.Fatalf("serialization timers empty: enc=%dns dec=%dns", tcpCtr.EncodeNanos, tcpCtr.DecodeNanos)
	}
	if localCtr.WireBytesOut != 0 || localCtr.WireBytesIn != 0 {
		t.Fatalf("Local executor reported wire traffic: %+v", localCtr)
	}
}

// TestCountersAdd covers the aggregation helper the pipeline runners
// use to accumulate per-job counters into one report.
func TestCountersAdd(t *testing.T) {
	a := &Counters{MapTasks: 1, ReduceTasks: 2, MapOutputs: 3, ShuffleBytes: 4,
		WireBytesOut: 5, WireBytesIn: 6, EncodeNanos: 7, DecodeNanos: 8}
	b := &Counters{MapTasks: 10, ReduceTasks: 20, MapOutputs: 30, ShuffleBytes: 40,
		WireBytesOut: 50, WireBytesIn: 60, EncodeNanos: 70, DecodeNanos: 80}
	a.Add(b)
	want := Counters{MapTasks: 11, ReduceTasks: 22, MapOutputs: 33, ShuffleBytes: 44,
		WireBytesOut: 55, WireBytesIn: 66, EncodeNanos: 77, DecodeNanos: 88}
	if *a != want {
		t.Fatalf("Add = %+v, want %+v", *a, want)
	}
	a.Add(nil) // nil is a no-op, not a crash
	if *a != want {
		t.Fatalf("Add(nil) changed counters: %+v", *a)
	}
}
