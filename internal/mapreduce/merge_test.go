package mapreduce

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// refStableSort is the reference ordering: the pre-PR reflection-based
// stable sort the specialized implementations must reproduce exactly.
func refStableSort(pairs []Pair) {
	sort.SliceStable(pairs, func(a, b int) bool { return pairs[a].Key < pairs[b].Key })
}

// randomPairs builds n pairs with keys drawn from a small alphabet (so
// duplicates are common and stability is actually exercised). Values
// record the emission index, making order violations visible.
func randomPairs(rng *rand.Rand, n, keySpace int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{
			Key:   fmt.Sprintf("k%03d", rng.Intn(keySpace)),
			Value: []byte(fmt.Sprintf("v%d", i)),
		}
	}
	return out
}

func pairsEqual(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

// TestSortPairsMatchesSliceStable checks the specialized merge sort
// against sort.SliceStable on randomized workloads, including the
// sorted and reversed edge shapes.
func TestSortPairsMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		keySpace := 1 + rng.Intn(20)
		a := randomPairs(rng, n, keySpace)
		switch trial % 5 {
		case 3: // already sorted: must hit the O(n) fast path unchanged
			refStableSort(a)
		case 4: // reversed runs
			sort.Slice(a, func(x, y int) bool { return a[x].Key > a[y].Key })
		}
		want := append([]Pair(nil), a...)
		refStableSort(want)
		sortPairs(a)
		if !pairsEqual(a, want) {
			t.Fatalf("trial %d: sortPairs diverged from sort.SliceStable\n got %v\nwant %v", trial, a, want)
		}
	}
}

// TestMergeRunsEqualsConcatStableSort is the shuffle's determinism
// contract: merging stably-sorted runs with run-order tie-breaking is
// bit-identical to concatenating the runs in order and stable-sorting.
func TestMergeRunsEqualsConcatStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		nRuns := rng.Intn(9) // includes 0, 1, 2, and the heap path
		runs := make([][]Pair, nRuns)
		var concat []Pair
		for r := range runs {
			runs[r] = randomPairs(rng, rng.Intn(50), 1+rng.Intn(8))
			sortPairs(runs[r]) // map-side sort, stable
			concat = append(concat, runs[r]...)
		}
		want := append([]Pair(nil), concat...)
		refStableSort(want)
		got := MergeRuns(runs)
		if !pairsEqual(got, want) {
			t.Fatalf("trial %d (%d runs): merge diverged from concat+stable-sort", trial, nRuns)
		}
	}
}

// TestMergeRunsEdgeCases pins the degenerate shapes.
func TestMergeRunsEdgeCases(t *testing.T) {
	if out := MergeRuns(nil); out != nil {
		t.Fatalf("MergeRuns(nil) = %v", out)
	}
	if out := MergeRuns([][]Pair{nil, {}, nil}); out != nil {
		t.Fatalf("MergeRuns(empties) = %v", out)
	}
	single := []Pair{{Key: "a"}, {Key: "b"}}
	out := MergeRuns([][]Pair{nil, single, nil})
	if !pairsEqual(out, single) {
		t.Fatalf("single-run merge = %v", out)
	}
	// The returned slice must be a copy, not the run itself: the
	// executors hand merged partitions to user reduce code.
	out[0].Key = "mutated"
	if single[0].Key != "a" {
		t.Fatal("MergeRuns aliased its input run")
	}
}

// TestPropMergeRunsTieBreak drives the tie-break property with quick:
// all-equal keys must come out in (run, position) order.
func TestPropMergeRunsTieBreak(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) > 8 {
			sizes = sizes[:8]
		}
		runs := make([][]Pair, len(sizes))
		var want []Pair
		for r, sz := range sizes {
			n := int(sz % 17)
			runs[r] = make([]Pair, n)
			for i := 0; i < n; i++ {
				p := Pair{Key: "same", Value: []byte(fmt.Sprintf("%d/%d", r, i))}
				runs[r][i] = p
				want = append(want, p)
			}
		}
		return pairsEqual(MergeRuns(runs), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMergeShuffle measures the per-partition k-way merge of
// map-side sorted runs — the new shuffle path.
func BenchmarkMergeShuffle(b *testing.B) {
	runs := benchRuns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeRuns(runs)
	}
}

// BenchmarkConcatSortShuffle measures the pre-PR shuffle — concatenate
// every run, then reflection-based stable sort — on the same runs.
func BenchmarkConcatSortShuffle(b *testing.B) {
	runs := benchRuns()
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		concat := make([]Pair, 0, total)
		for _, r := range runs {
			concat = append(concat, r...)
		}
		refStableSort(concat)
	}
}

// benchRuns is the shared shuffle-benchmark workload: 32 map tasks'
// worth of sorted runs, 1024 small pairs each.
func benchRuns() [][]Pair {
	rng := rand.New(rand.NewSource(3))
	runs := make([][]Pair, 32)
	for r := range runs {
		runs[r] = randomPairs(rng, 1024, 997)
		sortPairs(runs[r])
	}
	return runs
}
