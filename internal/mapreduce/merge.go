package mapreduce

import "io"

// The merge-based shuffle. Map tasks hand every reduce partition back
// as a key-sorted run (sorted where the records are produced, so the
// work parallelizes across map tasks and TCP workers), and the shuffle
// k-way merges those runs per partition instead of concatenating
// everything and re-sorting. Ties between runs break on run order —
// map-task Seq, then emission index inside the run — which reproduces
// the order of the old concat + stable-sort shuffle bit for bit: a
// stable sort of a concatenation equals a tie-broken merge of the
// stably-sorted parts. The same argument covers reduce-output
// assembly, where the runs are per-partition reduce outputs and run
// order is the partition index. See DESIGN.md "Merge shuffle".

// pairsSorted reports whether pairs is already key-sorted, the common
// case for combiner output and merged partitions.
func pairsSorted(pairs []Pair) bool {
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Key < pairs[i-1].Key {
			return false
		}
	}
	return true
}

// sortPairs orders pairs by key, keeping emission order within a key
// (stable), which makes executor output deterministic. It is a
// hand-rolled merge sort specialized to []Pair: no reflection, no
// interface calls, and an O(n) fast path for already-sorted input.
func sortPairs(pairs []Pair) {
	if pairsSorted(pairs) {
		return
	}
	aux := make([]Pair, len(pairs)/2+1)
	mergeSortPairs(pairs, aux)
}

// insertionRun is the cutoff below which insertion sort (also stable)
// beats splitting further.
const insertionRun = 24

// mergeSortPairs recursively sorts a in place using aux (at least
// len(a)/2+1 long) as the merge scratch.
func mergeSortPairs(a, aux []Pair) {
	n := len(a)
	if n <= insertionRun {
		insertionSortPairs(a)
		return
	}
	mid := n / 2
	mergeSortPairs(a[:mid], aux)
	mergeSortPairs(a[mid:], aux)
	if a[mid-1].Key <= a[mid].Key {
		return // halves already in order
	}
	// Merge: copy the left half out, then weave it with the right half
	// back into a. The write index never catches the right-half read
	// index, so the in-place weave is safe; ties take the left element
	// first, which keeps the sort stable.
	left := aux[:mid]
	copy(left, a[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if a[j].Key < left[i].Key {
			a[k] = a[j]
			j++
		} else {
			a[k] = left[i]
			i++
		}
		k++
	}
	copy(a[k:], left[i:]) // any left remainder; right remainder is already in place
}

// insertionSortPairs is the stable small-slice base case.
func insertionSortPairs(a []Pair) {
	for i := 1; i < len(a); i++ {
		p := a[i]
		j := i - 1
		for j >= 0 && a[j].Key > p.Key {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = p
	}
}

// MergeRuns merges key-sorted runs into one key-sorted slice. Ties
// between runs break on run index, then position within the run, so
// the result is exactly a stable sort of the concatenation of the
// runs in order — the shuffle's determinism contract. Runs that are
// not individually sorted give an unspecified order; the executors
// sort every run at the map side before merging.
func MergeRuns(runs [][]Pair) []Pair {
	total := 0
	nonEmpty := 0
	last := -1
	for i, r := range runs {
		total += len(r)
		if len(r) > 0 {
			nonEmpty++
			last = i
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]Pair, 0, total)
	switch nonEmpty {
	case 1:
		return append(out, runs[last]...)
	case 2:
		var a, b []Pair
		for _, r := range runs {
			if len(r) == 0 {
				continue
			}
			if a == nil {
				a = r
			} else {
				b = r
			}
		}
		return mergeTwo(out, a, b)
	}
	return mergeHeap(out, runs)
}

// mergeTwo merges two sorted runs; ties take a (the lower run index).
func mergeTwo(out, a, b []Pair) []Pair {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Key < a[i].Key {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// runHeap is a hand-rolled binary min-heap over run heads, ordered by
// (head key, run index) so equal keys pop in run order.
type runHeap struct {
	runs [][]Pair
	pos  []int // next unconsumed element per run
	heap []int // run indices, heap-ordered
}

// less orders run a's head before run b's head.
func (h *runHeap) less(a, b int) bool {
	ka, kb := h.runs[a][h.pos[a]].Key, h.runs[b][h.pos[b]].Key
	return ka < kb || (ka == kb && a < b)
}

func (h *runHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h.heap) {
			return
		}
		small := l
		if r := l + 1; r < len(h.heap) && h.less(h.heap[r], h.heap[l]) {
			small = r
		}
		if !h.less(h.heap[small], h.heap[i]) {
			return
		}
		h.heap[i], h.heap[small] = h.heap[small], h.heap[i]
		i = small
	}
}

// MergeRunReaders streams the k-way merge of key-sorted runs into
// emit, holding at most one buffered pair per run — the out-of-core
// form of MergeRuns. Ties between runs break on the run's index in the
// slice, then position, exactly like MergeRuns, so file-backed and
// in-memory runs merge byte-identically (see the equivalence property
// test). The caller owns the readers: MergeRunReaders does not close
// them, so error paths can still release every run via closeRuns.
func MergeRunReaders(runs []RunReader, emit func(Pair) error) error {
	h := &readerHeap{}
	for i, r := range runs {
		kv, err := r.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		h.items = append(h.items, readerHead{kv: kv, idx: i, r: r})
	}
	for i := len(h.items)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for len(h.items) > 0 {
		top := &h.items[0]
		if err := emit(top.kv); err != nil {
			return err
		}
		kv, err := top.r.Next()
		if err == io.EOF {
			last := len(h.items) - 1
			h.items[0] = h.items[last]
			h.items = h.items[:last]
		} else if err != nil {
			return err
		} else {
			top.kv = kv
		}
		h.siftDown(0)
	}
	return nil
}

// readerHead is one run's buffered head in the reader merge.
type readerHead struct {
	kv  Pair
	idx int
	r   RunReader
}

// readerHeap is a hand-rolled binary min-heap over run heads, ordered
// by (head key, run index) like runHeap.
type readerHeap struct {
	items []readerHead
}

func (h *readerHeap) less(a, b int) bool {
	ka, kb := h.items[a].kv.Key, h.items[b].kv.Key
	return ka < kb || (ka == kb && h.items[a].idx < h.items[b].idx)
}

func (h *readerHeap) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(h.items) {
			return
		}
		small := l
		if r := l + 1; r < len(h.items) && h.less(r, l) {
			small = r
		}
		if !h.less(small, i) {
			return
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
}

// mergeHeap merges three or more runs with a loser-style heap.
func mergeHeap(out []Pair, runs [][]Pair) []Pair {
	h := &runHeap{runs: runs, pos: make([]int, len(runs)), heap: make([]int, 0, len(runs))}
	for i, r := range runs {
		if len(r) > 0 {
			h.heap = append(h.heap, i)
		}
	}
	for i := len(h.heap)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
	for len(h.heap) > 0 {
		top := h.heap[0]
		out = append(out, h.runs[top][h.pos[top]])
		h.pos[top]++
		if h.pos[top] == len(h.runs[top]) {
			h.heap[0] = h.heap[len(h.heap)-1]
			h.heap = h.heap[:len(h.heap)-1]
		}
		h.siftDown(0)
	}
	return out
}
