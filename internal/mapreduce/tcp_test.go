package mapreduce

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startCluster spins up a master and n in-process workers over real
// TCP sockets, returning a cleanup function.
func startCluster(t *testing.T, n int) (*Master, func()) {
	t.Helper()
	m, err := NewMaster("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := RunWorker(m.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	// Wait for all workers to join so Close cannot race their dials.
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < n {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}
	return m, func() {
		m.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("workers did not shut down")
		}
	}
}

func TestTCPWordCountSingleWorker(t *testing.T) {
	job := wordCountJob("tcp-wc-1", 2, false)
	Register(job)
	m, stop := startCluster(t, 1)
	defer stop()
	out, ctr, err := m.Run(job, wordInput())
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, out)
	if ctr.MapTasks == 0 || ctr.ReduceTasks != 2 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestTCPWordCountManyWorkers(t *testing.T) {
	job := wordCountJob("tcp-wc-4", 3, true)
	job.SplitSize = 1 // force several map tasks across workers
	Register(job)
	m, stop := startCluster(t, 4)
	defer stop()
	out, ctr, err := m.Run(job, wordInput())
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, out)
	if ctr.MapTasks != 3 {
		t.Fatalf("MapTasks = %d, want 3", ctr.MapTasks)
	}
}

func TestTCPMatchesLocal(t *testing.T) {
	job := wordCountJob("tcp-wc-eq", 2, false)
	Register(job)
	m, stop := startCluster(t, 2)
	defer stop()
	tcpOut, _, err := m.Run(job, wordInput())
	if err != nil {
		t.Fatal(err)
	}
	localOut, _, err := (&Local{}).Run(job, wordInput())
	if err != nil {
		t.Fatal(err)
	}
	if len(tcpOut) != len(localOut) {
		t.Fatalf("lengths differ: %d vs %d", len(tcpOut), len(localOut))
	}
	for i := range tcpOut {
		if tcpOut[i].Key != localOut[i].Key || string(tcpOut[i].Value) != string(localOut[i].Value) {
			t.Fatalf("record %d differs: %v vs %v", i, tcpOut[i], localOut[i])
		}
	}
}

func TestTCPUnregisteredJob(t *testing.T) {
	m, stop := startCluster(t, 1)
	defer stop()
	job := wordCountJob("never-registered", 1, false)
	_, _, err := m.Run(job, wordInput())
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPMapErrorSurfacesOnMaster(t *testing.T) {
	job := &Job{
		Name: "tcp-failing",
		Map: func(key string, value []byte, emit Emit) error {
			return &tcpTestError{}
		},
		Reduce: func(key string, values [][]byte, emit Emit) error { return nil },
	}
	Register(job)
	m, stop := startCluster(t, 1)
	defer stop()
	_, _, err := m.Run(job, wordInput())
	if err == nil || !strings.Contains(err.Error(), "tcp test boom") {
		t.Fatalf("err = %v", err)
	}
}

type tcpTestError struct{}

func (*tcpTestError) Error() string { return "tcp test boom" }

func TestTCPSequentialJobsReuseWorkers(t *testing.T) {
	job := wordCountJob("tcp-seq", 2, false)
	Register(job)
	m, stop := startCluster(t, 2)
	defer stop()
	for i := 0; i < 3; i++ {
		out, _, err := m.Run(job, wordInput())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		checkWordCount(t, out)
	}
}

func TestTCPEmptyInput(t *testing.T) {
	job := wordCountJob("tcp-empty", 2, false)
	Register(job)
	m, stop := startCluster(t, 1)
	defer stop()
	out, _, err := m.Run(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
}

// dialHello dials the master and completes the hello handshake as a
// worker speaking up to maxVersion, returning the connection and the
// negotiated codec.
func dialHello(t *testing.T, addr string, maxVersion byte) (net.Conn, codec) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	st := &wireStats{}
	v, err := sendHello(conn, maxVersion, time.Second, st)
	if err != nil {
		t.Fatalf("hello: %v", err)
	}
	cdc, err := newCodec(conn, v, st)
	if err != nil {
		t.Fatalf("codec: %v", err)
	}
	return conn, cdc
}

// faultyWorker joins the master, reads one task, and drops the
// connection without replying — simulating a task-tracker crash.
func faultyWorker(t *testing.T, addr string) {
	t.Helper()
	conn, cdc := dialHello(t, addr, WireVersionLatest)
	var task taskMsg
	_, _ = cdc.readTask(&task) // swallow one task (or the close), then die
	conn.Close()
}

func TestTCPWorkerFailureRequeues(t *testing.T) {
	job := wordCountJob("tcp-faulty", 2, false)
	job.SplitSize = 1
	Register(job)
	m, err := NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		faultyWorker(t, m.Addr())
	}()
	go func() {
		defer wg.Done()
		if err := RunWorker(m.Addr()); err != nil {
			t.Errorf("healthy worker: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}

	out, _, err := m.Run(job, wordInput())
	if err != nil {
		// The healthy worker may also drain the whole queue before the
		// faulty one's task is requeued; either full success or a
		// deterministic straggler error is acceptable, but a hang or a
		// wrong result is not.
		t.Logf("run with faulty worker returned: %v", err)
	} else {
		checkWordCount(t, out)
	}
	m.Close()
	wg.Wait()
}

func TestNewMasterValidation(t *testing.T) {
	if _, err := NewMaster("127.0.0.1:0", 0); err == nil {
		t.Fatal("expected error for zero workers")
	}
}

func TestRegisterRequiresName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty name")
		}
	}()
	Register(&Job{})
}

func TestRunWorkerBadAddress(t *testing.T) {
	if err := RunWorker("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}
