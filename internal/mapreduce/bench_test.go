package mapreduce

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"
)

// shuffleHeavyJob emits fanout small records per input record under
// rotating keys, so almost all of the job's work is shuffle traffic:
// many tiny pairs crossing the wire into several reduce partitions.
func shuffleHeavyJob(name string, reducers, fanout int) *Job {
	return &Job{
		Name:        name,
		NumReducers: reducers,
		SplitSize:   64,
		Map: func(key string, value []byte, emit Emit) error {
			base, err := strconv.Atoi(key)
			if err != nil {
				return err
			}
			for i := 0; i < fanout; i++ {
				emit(fmt.Sprintf("k%04d", (base*fanout+i)%997), value)
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
}

// shuffleHeavyInput builds n one-byte records keyed by index.
func shuffleHeavyInput(n int) []Pair {
	input := make([]Pair, n)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: []byte{byte(i)}}
	}
	return input
}

// benchCluster starts a master and w in-process TCP workers without
// testing.T plumbing, for benchmarks.
func benchCluster(b *testing.B, cfg TCPConfig, w int) (*Master, func()) {
	b.Helper()
	m, err := NewMasterTCP(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = RunWorker(m.Addr())
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < w {
		if time.Now().After(deadline) {
			b.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}
	return m, func() {
		_ = m.Close()
		wg.Wait()
	}
}

// BenchmarkTCPShuffleHeavy is the acceptance benchmark for the
// pipelined data plane: many small pairs, 4 reducers, 2 workers.
func BenchmarkTCPShuffleHeavy(b *testing.B) {
	job := shuffleHeavyJob("bench-tcp-shuffle", 4, 32)
	Register(job)
	m, stop := benchCluster(b, TCPConfig{Addr: "127.0.0.1:0", MinWorkers: 2}, 2)
	defer stop()
	input := shuffleHeavyInput(2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Run(job, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalShuffleHeavy is the Local-executor twin, isolating the
// shuffle/sort cost from the wire.
func BenchmarkLocalShuffleHeavy(b *testing.B) {
	job := shuffleHeavyJob("bench-local-shuffle", 4, 32)
	input := shuffleHeavyInput(2048)
	exec := &Local{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Run(job, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSortPairsStable times the executor's stable pair sort on a
// shuffle-shaped workload (many short keys, heavy duplication).
func BenchmarkSortPairsStable(b *testing.B) {
	base := make([]Pair, 1<<14)
	for i := range base {
		base[i] = Pair{Key: fmt.Sprintf("k%04d", (i*2654435761)%997), Value: []byte{byte(i)}}
	}
	scratch := make([]Pair, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, base)
		sortPairs(scratch)
	}
}

// BenchmarkSortSliceStable is the pre-PR reflection-based baseline the
// specialized sort is measured against.
func BenchmarkSortSliceStable(b *testing.B) {
	base := make([]Pair, 1<<14)
	for i := range base {
		base[i] = Pair{Key: fmt.Sprintf("k%04d", (i*2654435761)%997), Value: []byte{byte(i)}}
	}
	scratch := make([]Pair, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, base)
		sort.SliceStable(scratch, func(x, y int) bool { return scratch[x].Key < scratch[y].Key })
	}
}
