package mapreduce

import (
	"math"
	"math/rand"
	"testing"
)

// TestEmbedBucketRoundTrip pins the embed record codec: every encoded
// record decodes back to bitwise-identical indices and rows, including
// non-finite and signed-zero payloads.
func TestEmbedBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := []struct{ n, dim int }{
		{1, 2}, {3, 8}, {64, 16}, {257, 6},
	}
	for _, s := range shapes {
		indices := make([]int32, s.n)
		rows := make([]float64, s.n*s.dim)
		for i := range indices {
			indices[i] = rng.Int31()
		}
		for i := range rows {
			rows[i] = rng.NormFloat64()
		}
		rows[0] = math.Copysign(0, -1)
		if len(rows) > 1 {
			rows[1] = math.Inf(1)
		}
		rec := AppendEmbedBucket(nil, indices, s.dim, rows)
		if rec[0] != EmbedBucketKind {
			t.Fatalf("record kind = %q", rec[0])
		}
		gotIdx, gotDim, gotRows, err := ParseEmbedBucket(rec)
		if err != nil {
			t.Fatalf("%dx%d: %v", s.n, s.dim, err)
		}
		if gotDim != s.dim || len(gotIdx) != s.n || len(gotRows) != len(rows) {
			t.Fatalf("%dx%d decoded as %d x %d (%d rows)", s.n, s.dim, len(gotIdx), gotDim, len(gotRows))
		}
		for i := range indices {
			if gotIdx[i] != indices[i] {
				t.Fatalf("index %d = %d, want %d", i, gotIdx[i], indices[i])
			}
		}
		for i := range rows {
			if math.Float64bits(gotRows[i]) != math.Float64bits(rows[i]) {
				t.Fatalf("row value %d = %x, want %x", i, math.Float64bits(gotRows[i]), math.Float64bits(rows[i]))
			}
		}
	}
}

// TestEmbedBucketAppendsInPlace verifies Append semantics: the record
// extends dst without clobbering what is already there.
func TestEmbedBucketAppendsInPlace(t *testing.T) {
	prefix := []byte{1, 2, 3}
	rec := AppendEmbedBucket(append([]byte(nil), prefix...), []int32{7}, 2, []float64{0.5, -0.5})
	if string(rec[:3]) != string(prefix) {
		t.Fatalf("prefix clobbered: %v", rec[:3])
	}
	if _, _, _, err := ParseEmbedBucket(rec[3:]); err != nil {
		t.Fatalf("suffix did not parse: %v", err)
	}
}

// TestParseEmbedBucketRejectsMalformed walks the failure surface:
// wrong kind, truncation at every boundary, declared shapes that do not
// match the payload, and trailing garbage.
func TestParseEmbedBucketRejectsMalformed(t *testing.T) {
	good := AppendEmbedBucket(nil, []int32{4, 9}, 3, []float64{1, 2, 3, 4, 5, 6})
	if _, _, _, err := ParseEmbedBucket(good); err != nil {
		t.Fatalf("control record: %v", err)
	}
	cases := map[string][]byte{
		"empty":        nil,
		"wrong kind":   append([]byte{RawBucketKind}, good[1:]...),
		"header only":  good[:1],
		"short counts": good[:2],
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte(nil), good...), 0),
		"zero points":  AppendEmbedBucket(nil, nil, 3, nil),
		"zero dim":     AppendEmbedBucket(nil, []int32{1}, 0, nil),
	}
	for name, buf := range cases {
		if _, _, _, err := ParseEmbedBucket(buf); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}
