package mapreduce

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestTCPForeignShardReadsFoldIntoCounters simulates external TCP
// workers demand-reading shard files: each in-process worker advances a
// fake shard meter while mapping, stamps its results with a token that
// is NOT the driver's, and the master must fold the foreign span into
// Counters.ShardReadBytes.
func TestTCPForeignShardReadsFoldIntoCounters(t *testing.T) {
	var meter atomic.Int64
	meter.Store(1000) // nonzero baseline: attribution must use the span, not the raw value
	prevTok := workerShardToken
	workerShardToken = processToken ^ 0xdeadbeef // pose as a foreign process
	SetShardMeter(func() int64 { return meter.Load() })
	defer func() {
		workerShardToken = prevTok
		SetShardMeter(func() int64 { return 0 })
	}()

	job := &Job{
		Name: "tcp-shard-meter",
		Map: func(key string, value []byte, emit Emit) error {
			meter.Add(10) // 10 modeled shard bytes per record
			emit(key, value)
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			for _, v := range values {
				emit(key, v)
			}
			return nil
		},
		NumReducers: 2,
		SplitSize:   4, // several map tasks spread across both workers
	}
	Register(job)
	m, stop := startCluster(t, 2)
	defer stop()

	input := make([]Pair, 20)
	for i := range input {
		input[i] = Pair{Key: fmt.Sprintf("k%02d", i), Value: []byte("v")}
	}
	out, ctr, err := m.Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(input) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(input))
	}
	if want := int64(len(input) * 10); ctr.ShardReadBytes != want {
		t.Fatalf("ShardReadBytes = %d, want %d", ctr.ShardReadBytes, want)
	}
}

// TestTCPCompressedShuffleMatchesPlain runs the same job over real TCP
// with the compressed data plane on and off: outputs must be identical
// and the compressed run must report real wire savings in Counters.
func TestTCPCompressedShuffleMatchesPlain(t *testing.T) {
	input := make([]Pair, 64)
	for i := range input {
		input[i] = Pair{
			Key:   fmt.Sprintf("split-%02d", i),
			Value: bytes.Repeat([]byte("lsh signature payload "), 40),
		}
	}
	run := func(name string, compress bool) ([]Pair, *Counters) {
		job := &Job{
			Name: name,
			Map: func(key string, value []byte, emit Emit) error {
				// Fan the record out so result frames clear CompressThreshold.
				for part := 0; part < 4; part++ {
					emit(fmt.Sprintf("%s/%d", key, part), value)
				}
				return nil
			},
			Reduce: func(key string, values [][]byte, emit Emit) error {
				var n int
				for _, v := range values {
					n += len(v)
				}
				emit(key, []byte(fmt.Sprintf("%d", n)))
				return nil
			},
			NumReducers: 3,
			SplitSize:   8,
			Compress:    compress,
		}
		Register(job)
		m, stop := startCluster(t, 2)
		defer stop()
		out, ctr, err := m.Run(job, input)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return out, ctr
	}

	plainOut, plainCtr := run("tcp-shuffle-plain", false)
	compOut, compCtr := run("tcp-shuffle-comp", true)

	if len(plainOut) != len(compOut) {
		t.Fatalf("output lengths differ: %d vs %d", len(plainOut), len(compOut))
	}
	for i := range plainOut {
		if plainOut[i].Key != compOut[i].Key || !bytes.Equal(plainOut[i].Value, compOut[i].Value) {
			t.Fatalf("record %d differs: %v vs %v", i, plainOut[i], compOut[i])
		}
	}
	if plainCtr.CompressedBytes != 0 {
		t.Fatalf("plain run claims %d compressed bytes", plainCtr.CompressedBytes)
	}
	if compCtr.CompressedBytes <= 0 {
		t.Fatalf("compressed run saved %d bytes, want > 0", compCtr.CompressedBytes)
	}
	if compCtr.CompressNanos <= 0 {
		t.Fatal("compressed run billed no codec time")
	}
	if compCtr.WireBytesOut >= plainCtr.WireBytesOut {
		t.Fatalf("compressed wire out %d >= plain %d", compCtr.WireBytesOut, plainCtr.WireBytesOut)
	}
}
