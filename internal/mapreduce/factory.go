package mapreduce

import (
	"fmt"
	"sync"
)

// Factory-registered jobs make TCP workers usable across OS processes.
// A plain Registered job captures its data by closure, which only works
// when master and workers share an address space. A JobFactory instead
// rebuilds the job on the worker from an opaque configuration blob that
// travels with every task — the analogue of Hadoop shipping the JobConf
// with the job jar. Map/reduce input data must then travel in the
// records themselves.
//
// Masters attach the blob via Job.Conf; workers look up the factory
// under the job name, build the job once per distinct configuration,
// and cache it.

// JobFactory rebuilds a job from its configuration blob.
type JobFactory func(conf []byte) (*Job, error)

// RegisterFactory installs a factory under name. Worker processes must
// call this (typically from the same package init/main as the master)
// before serving tasks for the job.
func RegisterFactory(name string, factory JobFactory) {
	if name == "" {
		//lint:ignore panicfree registration happens at process start-up; a nameless factory is an API-misuse bug that must fail loudly before any task runs
		panic("mapreduce: RegisterFactory needs a name")
	}
	factories.Store(name, factory)
}

var factories sync.Map // string -> JobFactory

// builtJobs caches worker-side jobs per (name, conf-hash).
var builtJobs sync.Map // string -> *Job

// resolveJob returns the runnable job for a task: a factory-built job
// when Conf is present, otherwise the plain registry entry.
func resolveJob(name string, conf []byte) (*Job, error) {
	if len(conf) == 0 {
		job, ok := lookupJob(name)
		if !ok {
			return nil, fmt.Errorf("job %q not registered on worker", name)
		}
		return job, nil
	}
	key := name + "\x00" + string(conf)
	if cached, ok := builtJobs.Load(key); ok {
		return cached.(*Job), nil
	}
	v, ok := factories.Load(name)
	if !ok {
		return nil, fmt.Errorf("job factory %q not registered on worker", name)
	}
	job, err := v.(JobFactory)(conf)
	if err != nil {
		return nil, fmt.Errorf("job factory %q: %w", name, err)
	}
	job.Name = name
	builtJobs.Store(key, job)
	return job, nil
}
