package mapreduce

import (
	"bytes"
	"fmt"
	"sync"
)

// Factory-registered jobs make TCP workers usable across OS processes.
// A plain Registered job captures its data by closure, which only works
// when master and workers share an address space. A JobFactory instead
// rebuilds the job on the worker from an opaque configuration blob that
// travels with every task — the analogue of Hadoop shipping the JobConf
// with the job jar. Map/reduce input data must then travel in the
// records themselves.
//
// Masters attach the blob via Job.Conf; workers look up the factory
// under the job name, build the job once per distinct configuration,
// and cache it.

// JobFactory rebuilds a job from its configuration blob.
type JobFactory func(conf []byte) (*Job, error)

// RegisterFactory installs a factory under name. Worker processes must
// call this (typically from the same package init/main as the master)
// before serving tasks for the job.
func RegisterFactory(name string, factory JobFactory) {
	if name == "" {
		//lint:ignore panicfree registration happens at process start-up; a nameless factory is an API-misuse bug that must fail loudly before any task runs
		panic("mapreduce: RegisterFactory needs a name")
	}
	factories.Store(name, factory)
}

var factories sync.Map // string -> JobFactory

// builtEntry caches the most recent factory build for one job name.
// Every task of a TCP phase carries the same Conf, so caching the last
// build per name hits on the hot path without the old scheme's
// per-task name+conf key-string allocation; a changed Conf (a new job
// generation under the same name) simply rebuilds and replaces it.
type builtEntry struct {
	mu   sync.Mutex
	conf []byte
	job  *Job
}

// builtJobs caches worker-side jobs per name.
var builtJobs sync.Map // string -> *builtEntry

// resolveJob returns the runnable job for a task: a factory-built job
// when Conf is present, otherwise the plain registry entry.
func resolveJob(name string, conf []byte) (*Job, error) {
	if len(conf) == 0 {
		job, ok := lookupJob(name)
		if !ok {
			return nil, fmt.Errorf("job %q not registered on worker", name)
		}
		return job, nil
	}
	v, loaded := builtJobs.Load(name)
	if !loaded {
		v, _ = builtJobs.LoadOrStore(name, &builtEntry{})
	}
	entry := v.(*builtEntry)
	entry.mu.Lock()
	defer entry.mu.Unlock()
	if entry.job != nil && bytes.Equal(entry.conf, conf) {
		return entry.job, nil
	}
	f, ok := factories.Load(name)
	if !ok {
		return nil, fmt.Errorf("job factory %q not registered on worker", name)
	}
	job, err := f.(JobFactory)(conf)
	if err != nil {
		return nil, fmt.Errorf("job factory %q: %w", name, err)
	}
	job.Name = name
	entry.conf = append([]byte(nil), conf...)
	entry.job = job
	return job, nil
}
