package mapreduce

// The TCP executor's wire protocol. A connection opens with a hello —
// the worker sends a 5-byte "DASC"+maxVersion greeting and the master
// answers with the single version byte both sides will speak — and
// then carries task/result messages in the negotiated framing:
//
//	version 1 (gob):    the original stateful gob stream, kept for
//	                    lock-step replay and as the negotiation floor.
//	version 2 (frames): length-prefixed binary frames,
//
//	    uvarint bodyLen │ body
//	    body = kind byte ('T' task / 'R' result) │ fields
//
//	    taskMsg   = uvarint Seq │ str JobName │ str Phase │
//	                bytes Conf │ uvarint NumReducers │
//	                uvarint nRecords │ nRecords × (str Key │ bytes Val)
//	    resultMsg = uvarint Seq │ str Err │ uvarint nParts │
//	                nParts × (uvarint nPairs │ nPairs × pair)
//
//	    str/bytes = uvarint length │ raw bytes
//
// Frames need no per-record reflection: encoding appends into a pooled
// scratch buffer (one Write per frame), decoding reads the exact body
// and aliases record values into it (one allocation per frame plus the
// key strings). Both codecs account bytes and serialization wall time
// into per-connection wireStats, which the master aggregates into
// Counters.WireBytes* / *Nanos.
//
//	version 3 (packed): version 2's exact frame layouts plus three
//	                    optional frame kinds, emitted only when the
//	                    payload calls for them — a v3 stream that never
//	                    needs one is byte-identical to v2:
//
//	    'C' compressed  = uvarint rawLen │ flate(inner body incl. kind)
//	                      Wraps any frame whose body reaches
//	                      CompressThreshold while the job has
//	                      Compress on. rawLen is validated against
//	                      maxFrameBody before any allocation, the
//	                      inflated size must match it exactly, and a
//	                      'C' inside a 'C' is rejected.
//	    't' task+flags  = uvarint Flags │ v2 task fields
//	                      Flags bit 0 tells the worker to compress its
//	                      result frames back.
//	    'r' result+IO   = uvarint ShardTok │ uvarint ShardStart │
//	                      uvarint ShardEnd │ v2 result fields
//	                      Carries the worker's process-cumulative shard
//	                      read meter so external workers' shard bytes
//	                      reach the master's Counters (the master
//	                      de-duplicates by process token).

import (
	"bufio"
	"bytes"
	"compress/flate"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Wire protocol versions a master or worker can speak. The hello
// negotiates min(worker max, master max); see TCPConfig.MaxWireVersion.
const (
	// WireVersionGob is the original gob stream framing.
	WireVersionGob = 1
	// WireVersionFrames is the length-prefixed binary frame codec.
	WireVersionFrames = 2
	// WireVersionPacked adds optional per-frame flate compression and
	// the task-flags / result-IO frame variants on top of the v2
	// framing. Streams that use none of them stay byte-identical to v2.
	WireVersionPacked = 3
	// WireVersionLatest is the highest version this build speaks.
	WireVersionLatest = WireVersionPacked
)

// CompressThreshold is the smallest frame body the codec will try to
// compress; smaller frames ship raw since flate's header and the codec
// CPU cost more than they save.
const CompressThreshold = 4096

// taskFlagCompress asks the worker to compress its result frames back
// to the master (taskMsg.Flags bit 0).
const taskFlagCompress = 1

// wireMagic opens every hello; a peer that does not present it is not
// a DASC worker and is disconnected during the handshake.
var wireMagic = [4]byte{'D', 'A', 'S', 'C'}

// helloLen is magic + the sender's maximum version byte.
const helloLen = len(wireMagic) + 1

// maxFrameBody caps a decoded frame body, protecting the master from a
// corrupt or hostile length prefix.
const maxFrameBody = 1 << 30

// frame body kinds.
const (
	frameTask       = 'T'
	frameResult     = 'R'
	frameTaskFlags  = 't' // v3: task with a leading Flags uvarint
	frameResultIO   = 'r' // v3: result with leading shard-meter fields
	frameCompressed = 'C' // v3: flate-wrapped inner frame
)

// wireStats accumulates one connection's traffic. All fields are
// atomics: the pipelined master reads and writes a socket from
// different goroutines, and counter snapshots race with live traffic.
type wireStats struct {
	bytesOut      atomic.Int64
	bytesIn       atomic.Int64
	encodeNanos   atomic.Int64
	decodeNanos   atomic.Int64
	compressSaved atomic.Int64 // raw-minus-wire bytes removed by 'C' frames
	compressNanos atomic.Int64 // wall time inside flate, both directions
}

// codec reads and writes task/result messages on one connection. Every
// method returns the message's size in wire bytes. Implementations are
// safe for one concurrent reader plus one concurrent writer (the
// pipelined connection split), not for two of either.
type codec interface {
	writeTask(t *taskMsg) (int, error)
	readTask(t *taskMsg) (int, error)
	writeResult(r *resultMsg) (int, error)
	readResult(r *resultMsg) (int, error)
	// setCompress turns outbound frame compression on or off. A no-op
	// on codecs that cannot compress (gob, frame versions < 3).
	setCompress(on bool)
}

// newCodec builds the codec for a negotiated version.
func newCodec(conn net.Conn, version byte, st *wireStats) (codec, error) {
	switch version {
	case WireVersionGob:
		return newGobCodec(conn, st), nil
	case WireVersionFrames, WireVersionPacked:
		return newFrameCodec(conn, version, st), nil
	}
	return nil, fmt.Errorf("mapreduce: unsupported wire version %d", version)
}

// ---- worker shard metering (satellite: external workers' shard reads) ----

// shardMeterFn reports a process-cumulative count of shard bytes read;
// internal/core registers its shard-reader meter here so workers can
// ship the delta back to the master without mapreduce importing shard.
var shardMeterFn atomic.Pointer[func() int64]

// SetShardMeter registers the process-wide shard read meter sampled
// around every task a TCP worker executes. The sampled start/end pair
// travels on result messages (gob and wire v3) so a master in another
// process can fold external workers' shard reads into
// Counters.ShardReadBytes.
func SetShardMeter(f func() int64) {
	shardMeterFn.Store(&f)
}

func shardMeterNow() int64 {
	if f := shardMeterFn.Load(); f != nil {
		return (*f)()
	}
	return 0
}

// processToken identifies this process in result-message shard meters.
// The master skips reports carrying its own token: in-process workers
// share the driver's meter, which the sharded driver already reads
// directly, so folding their reports in would double-count.
var processToken = newProcessToken()

// workerShardToken is the token workers stamp on results — normally
// processToken; tests split the two to exercise the external-worker
// aggregation path inside one process.
var workerShardToken = processToken

func newProcessToken() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(os.Getpid())<<1 | 1
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}

// sendHello performs the worker side of the handshake: greet with our
// maximum version, read back the master's choice.
func sendHello(conn net.Conn, maxVersion byte, timeout time.Duration, st *wireStats) (byte, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	var hello [helloLen]byte
	copy(hello[:], wireMagic[:])
	hello[len(wireMagic)] = maxVersion
	if _, err := conn.Write(hello[:]); err != nil {
		return 0, fmt.Errorf("mapreduce: send hello: %w", err)
	}
	var reply [1]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return 0, fmt.Errorf("mapreduce: read hello reply: %w", err)
	}
	st.bytesOut.Add(int64(helloLen))
	st.bytesIn.Add(1)
	v := reply[0]
	if v < WireVersionGob || v > maxVersion {
		return 0, fmt.Errorf("mapreduce: master chose unusable wire version %d", v)
	}
	// The handshake deadline is done; task reads are unbounded (an idle
	// worker waits indefinitely) and writes are re-bounded per result.
	return v, conn.SetDeadline(time.Time{})
}

// acceptHello performs the master side of the handshake and returns
// the negotiated version.
func acceptHello(conn net.Conn, ourMax byte, timeout time.Duration, st *wireStats) (byte, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("mapreduce: read hello: %w", err)
	}
	if [4]byte(hello[:4]) != wireMagic {
		return 0, errors.New("mapreduce: peer is not a DASC worker (bad hello magic)")
	}
	theirMax := hello[len(wireMagic)]
	if theirMax < WireVersionGob {
		return 0, fmt.Errorf("mapreduce: worker advertises unusable wire version %d", theirMax)
	}
	v := min(theirMax, ourMax)
	if _, err := conn.Write([]byte{v}); err != nil {
		return 0, fmt.Errorf("mapreduce: send hello reply: %w", err)
	}
	st.bytesIn.Add(int64(helloLen))
	st.bytesOut.Add(1)
	return v, conn.SetDeadline(time.Time{})
}

// ---- version 1: gob ----

// countingWriter / countingReader meter the raw stream for the gob
// codec, which cannot size its own messages.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// gobCodec is wire version 1. The encoder/decoder pair must live as
// long as the connection: gob streams are stateful, so a fresh encoder
// would resend type definitions and corrupt the peer's decoder state.
type gobCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
	st  *wireStats
}

func newGobCodec(conn net.Conn, st *wireStats) *gobCodec {
	return &gobCodec{
		enc: gob.NewEncoder(&countingWriter{w: conn, n: &st.bytesOut}),
		dec: gob.NewDecoder(&countingReader{r: conn, n: &st.bytesIn}),
		st:  st,
	}
}

func (c *gobCodec) encode(v any) (int, error) {
	before := c.st.bytesOut.Load()
	start := time.Now()
	err := c.enc.Encode(v)
	c.st.encodeNanos.Add(time.Since(start).Nanoseconds())
	return int(c.st.bytesOut.Load() - before), err
}

func (c *gobCodec) decode(v any) (int, error) {
	before := c.st.bytesIn.Load()
	start := time.Now()
	err := c.dec.Decode(v)
	c.st.decodeNanos.Add(time.Since(start).Nanoseconds())
	return int(c.st.bytesIn.Load() - before), err
}

func (c *gobCodec) writeTask(t *taskMsg) (int, error)     { return c.encode(t) }
func (c *gobCodec) readTask(t *taskMsg) (int, error)      { return c.decode(t) }
func (c *gobCodec) writeResult(r *resultMsg) (int, error) { return c.encode(r) }
func (c *gobCodec) readResult(r *resultMsg) (int, error)  { return c.decode(r) }
func (c *gobCodec) setCompress(bool)                      {}

// ---- version 2: length-prefixed binary frames ----

// encBuf is the pooled encode scratch; frames reuse its backing array
// so steady-state encoding allocates nothing.
type encBuf struct{ b []byte }

var encBufPool = sync.Pool{
	New: func() any { return &encBuf{b: make([]byte, 0, 4096)} },
}

// frameCodec is wire versions 2 and 3; version selects which frame
// kinds writeTask/writeResult may emit. compress is flipped per job by
// setCompress (atomically: the pipelined worker reads tasks and writes
// results from different goroutines) and only honored at version >= 3.
type frameCodec struct {
	w        io.Writer
	br       *bufio.Reader
	st       *wireStats
	version  byte
	compress atomic.Bool
}

func newFrameCodec(conn net.Conn, version byte, st *wireStats) *frameCodec {
	return &frameCodec{w: conn, br: bufio.NewReaderSize(conn, 1<<16), st: st, version: version}
}

func (c *frameCodec) setCompress(on bool) { c.compress.Store(on) }

// flateWriterPool / flateReaderPool reuse codec state across frames and
// spill runs; a flate.Writer alone is ~600KB of window and tables.
var flateWriterPool = sync.Pool{
	New: func() any {
		fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
		if err != nil {
			// flate.NewWriter only fails on an invalid level; BestSpeed
			// is valid by construction.
			panic(err) //lint:ignore panicfree invalid-level is impossible for flate.BestSpeed
		}
		return fw
	},
}

var flateReaderPool = sync.Pool{
	New: func() any { return flate.NewReader(bytes.NewReader(nil)) },
}

// sliceWriter adapts an append target to io.Writer for flate.
type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// hdrReserve leaves room at the buffer front for the length prefix.
const hdrReserve = binary.MaxVarintLen64

// sendFrame serializes body (appended by fill after the kind byte),
// prefixes its length, and writes the frame with a single Write. At
// wire v3 with compression enabled, bodies at or above
// CompressThreshold are deflated into a 'C' wrapper frame when that
// actually shrinks them.
func (c *frameCodec) sendFrame(kind byte, fill func(b []byte) []byte) (int, error) {
	eb := encBufPool.Get().(*encBuf)
	start := time.Now()
	b := append(eb.b[:0], make([]byte, hdrReserve)...)
	b = append(b, kind)
	b = fill(b)
	bodyLen := len(b) - hdrReserve
	c.st.encodeNanos.Add(time.Since(start).Nanoseconds())
	if c.version >= WireVersionPacked && c.compress.Load() && bodyLen >= CompressThreshold {
		if n, err, ok := c.sendCompressed(b[hdrReserve:]); ok {
			eb.b = b
			encBufPool.Put(eb)
			return n, err
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(bodyLen))
	frameStart := hdrReserve - n
	copy(b[frameStart:hdrReserve], tmp[:n])
	nw, err := c.w.Write(b[frameStart:])
	c.st.bytesOut.Add(int64(nw))
	eb.b = b
	encBufPool.Put(eb)
	return n + bodyLen, err
}

// sendCompressed writes raw (a full frame body including its kind byte)
// as a 'C' wrapper frame. ok is false when deflate failed to shrink the
// body, in which case nothing was written and the caller ships it raw.
func (c *frameCodec) sendCompressed(raw []byte) (int, error, bool) {
	cb := encBufPool.Get().(*encBuf)
	start := time.Now()
	sw := &sliceWriter{b: append(cb.b[:0], make([]byte, hdrReserve)...)}
	sw.b = append(sw.b, frameCompressed)
	sw.b = binary.AppendUvarint(sw.b, uint64(len(raw)))
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(sw)
	_, werr := fw.Write(raw)
	cerr := fw.Close()
	flateWriterPool.Put(fw)
	c.st.compressNanos.Add(time.Since(start).Nanoseconds())
	if werr != nil || cerr != nil {
		cb.b = sw.b
		encBufPool.Put(cb)
		return 0, errors.Join(werr, cerr), true
	}
	bodyLen := len(sw.b) - hdrReserve
	if bodyLen >= len(raw) {
		cb.b = sw.b
		encBufPool.Put(cb)
		return 0, nil, false
	}
	b := sw.b
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(bodyLen))
	frameStart := hdrReserve - n
	copy(b[frameStart:hdrReserve], tmp[:n])
	nw, err := c.w.Write(b[frameStart:])
	c.st.bytesOut.Add(int64(nw))
	c.st.compressSaved.Add(int64(len(raw) - bodyLen))
	cb.b = b
	encBufPool.Put(cb)
	return n + bodyLen, err, true
}

// recvFrame reads one frame and returns its kind, body, and total wire
// size. A 'C' wrapper is inflated transparently; kind and body then
// describe the inner frame while size stays the bytes actually read
// off the wire. The body is freshly allocated per frame; decoded
// records alias it, so it must not be pooled.
func (c *frameCodec) recvFrame() (byte, []byte, int, error) {
	bodyLen, err := binary.ReadUvarint(c.br)
	if err != nil {
		return 0, nil, 0, err
	}
	if bodyLen < 1 || bodyLen > maxFrameBody {
		return 0, nil, 0, fmt.Errorf("mapreduce: frame body length %d out of range", bodyLen)
	}
	body, err := readExactly(c.br, int(bodyLen))
	if err != nil {
		return 0, nil, 0, fmt.Errorf("mapreduce: short frame: %w", err)
	}
	size := uvarintLen(bodyLen) + int(bodyLen)
	c.st.bytesIn.Add(int64(size))
	if body[0] == frameCompressed {
		inner, err := c.inflateFrame(body[1:])
		if err != nil {
			return 0, nil, size, err
		}
		return inner[0], inner[1:], size, nil
	}
	return body[0], body[1:], size, nil
}

// inflateFrame decodes a 'C' wrapper payload: uvarint raw length, then
// the deflated inner frame body. The declared length is validated
// before any allocation and the stream must inflate to exactly that
// many bytes — a wrapper that lies about its size, truncates, carries
// trailing garbage, or nests another wrapper is an error, never a
// panic or an oversized allocation.
func (c *frameCodec) inflateFrame(p []byte) ([]byte, error) {
	rawLen, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, errors.New("mapreduce: compressed frame: bad raw length")
	}
	if rawLen < 1 || rawLen > maxFrameBody {
		return nil, fmt.Errorf("mapreduce: compressed frame raw length %d out of range", rawLen)
	}
	start := time.Now()
	zr := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(zr)
	if err := zr.(flate.Resetter).Reset(bytes.NewReader(p[w:]), nil); err != nil {
		return nil, err
	}
	raw, err := readExactly(zr, int(rawLen))
	if err != nil {
		return nil, fmt.Errorf("mapreduce: compressed frame: %w", err)
	}
	var one [1]byte
	if n, err := zr.Read(one[:]); n != 0 || (err != nil && err != io.EOF) {
		return nil, errors.New("mapreduce: compressed frame longer than declared")
	}
	c.st.compressNanos.Add(time.Since(start).Nanoseconds())
	c.st.compressSaved.Add(int64(rawLen) - int64(len(p)))
	if raw[0] == frameCompressed {
		return nil, errors.New("mapreduce: nested compressed frame")
	}
	return raw, nil
}

// readChunk bounds how much readExactly commits to ahead of the bytes
// actually arriving.
const readChunk = 64 << 10

// readExactly reads exactly n bytes, growing the buffer chunk by chunk
// as data arrives: a corrupt or hostile length prefix that promises a
// gigabyte backed by a short stream fails after at most one chunk of
// allocation instead of reserving the declared size up front.
func readExactly(r io.Reader, n int) ([]byte, error) {
	if n <= readChunk {
		buf := make([]byte, n)
		_, err := io.ReadFull(r, buf)
		return buf, err
	}
	buf := make([]byte, 0, readChunk)
	for len(buf) < n {
		step := min(n-len(buf), readChunk)
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// uvarintLen is the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendWireBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func (c *frameCodec) writeTask(t *taskMsg) (int, error) {
	kind := byte(frameTask)
	if c.version >= WireVersionPacked && t.Flags != 0 {
		kind = frameTaskFlags
	}
	return c.sendFrame(kind, func(b []byte) []byte {
		if kind == frameTaskFlags {
			b = binary.AppendUvarint(b, t.Flags)
		}
		b = binary.AppendUvarint(b, uint64(t.Seq))
		b = appendWireString(b, t.JobName)
		b = appendWireString(b, t.Phase)
		b = appendWireBytes(b, t.Conf)
		b = binary.AppendUvarint(b, uint64(t.NumReducers))
		return appendPairs(b, t.Records)
	})
}

func (c *frameCodec) writeResult(r *resultMsg) (int, error) {
	kind := byte(frameResult)
	if c.version >= WireVersionPacked && r.ShardTok != 0 {
		kind = frameResultIO
	}
	return c.sendFrame(kind, func(b []byte) []byte {
		if kind == frameResultIO {
			b = binary.AppendUvarint(b, r.ShardTok)
			b = binary.AppendUvarint(b, uint64(max(r.ShardStart, 0)))
			b = binary.AppendUvarint(b, uint64(max(r.ShardEnd, 0)))
		}
		b = binary.AppendUvarint(b, uint64(r.Seq))
		b = appendWireString(b, r.Err)
		b = binary.AppendUvarint(b, uint64(len(r.Parts)))
		for _, part := range r.Parts {
			b = appendPairs(b, part)
		}
		return b
	})
}

func appendPairs(b []byte, pairs []Pair) []byte {
	b = binary.AppendUvarint(b, uint64(len(pairs)))
	for _, p := range pairs {
		b = appendWireString(b, p.Key)
		b = appendWireBytes(b, p.Value)
	}
	return b
}

func (c *frameCodec) readTask(t *taskMsg) (int, error) {
	kind, body, size, err := c.recvFrame()
	if err != nil {
		return size, err
	}
	if kind != frameTask && kind != frameTaskFlags {
		return size, fmt.Errorf("mapreduce: expected task frame, got %q", kind)
	}
	start := time.Now()
	err = parseTask(body, t, kind == frameTaskFlags)
	c.st.decodeNanos.Add(time.Since(start).Nanoseconds())
	return size, err
}

func (c *frameCodec) readResult(r *resultMsg) (int, error) {
	kind, body, size, err := c.recvFrame()
	if err != nil {
		return size, err
	}
	if kind != frameResult && kind != frameResultIO {
		return size, fmt.Errorf("mapreduce: expected result frame, got %q", kind)
	}
	start := time.Now()
	err = parseResult(body, r, kind == frameResultIO)
	c.st.decodeNanos.Add(time.Since(start).Nanoseconds())
	return size, err
}

// parser consumes a frame body; the first malformed field latches err
// and turns the remaining reads into no-ops.
type parser struct {
	b   []byte
	err error
}

func (p *parser) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("mapreduce: malformed frame: %s", what)
	}
}

func (p *parser) uvarint(what string) uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.fail(what)
		return 0
	}
	p.b = p.b[n:]
	return v
}

// count reads a length field that sizes max-byte elements, rejecting
// values the remaining body cannot possibly hold.
func (p *parser) count(what string) int {
	v := p.uvarint(what)
	if p.err == nil && v > uint64(len(p.b)) {
		p.fail(what + " overruns frame")
		return 0
	}
	return int(v)
}

// bytes returns the next length-prefixed field aliased into the body
// (nil when empty, matching a gob round trip of an empty slice).
func (p *parser) bytes(what string) []byte {
	n := p.count(what)
	if p.err != nil || n == 0 {
		return nil
	}
	v := p.b[:n:n]
	p.b = p.b[n:]
	return v
}

func (p *parser) str(what string) string {
	return string(p.bytes(what))
}

func (p *parser) intField(what string) int {
	v := p.uvarint(what)
	if v > math.MaxInt32 {
		p.fail(what + " overflows")
		return 0
	}
	return int(v)
}

func (p *parser) pairs(what string) []Pair {
	n := p.count(what)
	if p.err != nil || n == 0 {
		return nil
	}
	out := make([]Pair, n)
	for i := range out {
		out[i].Key = p.str("record key")
		out[i].Value = p.bytes("record value")
		if p.err != nil {
			return nil
		}
	}
	return out
}

// done rejects trailing garbage after the last field.
func (p *parser) done() error {
	if p.err == nil && len(p.b) != 0 {
		p.fail(fmt.Sprintf("%d trailing bytes", len(p.b)))
	}
	return p.err
}

func parseTask(body []byte, t *taskMsg, withFlags bool) error {
	p := &parser{b: body}
	t.Flags = 0
	if withFlags {
		t.Flags = p.uvarint("task flags")
	}
	t.Seq = p.intField("task seq")
	t.JobName = p.str("job name")
	t.Phase = p.str("phase")
	t.Conf = p.bytes("conf")
	t.NumReducers = p.intField("num reducers")
	t.Records = p.pairs("records")
	return p.done()
}

func parseResult(body []byte, r *resultMsg, withIO bool) error {
	p := &parser{b: body}
	r.ShardTok, r.ShardStart, r.ShardEnd = 0, 0, 0
	if withIO {
		r.ShardTok = p.uvarint("shard token")
		r.ShardStart = int64(p.uvarint("shard meter start"))
		r.ShardEnd = int64(p.uvarint("shard meter end"))
	}
	r.Seq = p.intField("result seq")
	r.Err = p.str("result error")
	nParts := p.count("parts")
	r.Parts = nil
	if p.err == nil && nParts > 0 {
		r.Parts = make([][]Pair, nParts)
		for i := range r.Parts {
			r.Parts[i] = p.pairs("part")
			if p.err != nil {
				break
			}
		}
	}
	return p.done()
}

// ---- embed bucket records ----

// Stage-2 record kinds for the embed-and-conquer DASC deployment. When
// embed mode is on, every stage-2 value leads with one of these bytes
// so a reducer can tell an embedded-rows record from a raw payload. (A
// gob stream may begin with any byte, so the discriminator only means
// anything when the job's configuration says embed mode is on; legacy
// jobs ship bare payloads with no kind byte.)
const (
	// EmbedBucketKind opens an embedded bucket record: the bucket's
	// points already pushed through the kernel feature map map-side,
	// shipped as d′-dimensional rows instead of raw vectors.
	EmbedBucketKind = 'E'
	// RawBucketKind opens a raw bucket payload (a gob blob follows) for
	// buckets the embed policy declined.
	RawBucketKind = 'B'
	// PackedEmbedBucketKind opens the compact form of an embedded
	// bucket record: row indices as zigzag varint deltas over the
	// sorted-by-construction index list instead of fixed uint32s.
	// Emitted only when the job's Compression knob is on.
	PackedEmbedBucketKind = 'e'
)

// AppendEmbedBucket appends one embedded bucket record to dst and
// returns the extended slice:
//
//	kind 'E' │ uvarint n │ uvarint dim │ n × uint32 LE index │
//	n·dim × float64 LE embedded rows (row-major)
//
// len(rows) must equal len(indices)*dim; the codec is pure layout and
// does not validate semantics beyond that.
func AppendEmbedBucket(dst []byte, indices []int32, dim int, rows []float64) []byte {
	dst = append(dst, EmbedBucketKind)
	dst = binary.AppendUvarint(dst, uint64(len(indices)))
	dst = binary.AppendUvarint(dst, uint64(dim))
	var b4 [4]byte
	for _, idx := range indices {
		binary.LittleEndian.PutUint32(b4[:], uint32(idx))
		dst = append(dst, b4[:]...)
	}
	var b8 [8]byte
	for _, v := range rows {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		dst = append(dst, b8[:]...)
	}
	return dst
}

// ParseEmbedBucket decodes a record produced by AppendEmbedBucket,
// validating the kind byte and that the payload length matches the
// declared shape exactly. The returned slices are freshly allocated and
// do not alias buf.
func ParseEmbedBucket(buf []byte) ([]int32, int, []float64, error) {
	if len(buf) == 0 || buf[0] != EmbedBucketKind {
		return nil, 0, nil, errors.New("mapreduce: not an embed bucket record")
	}
	b := buf[1:]
	nu, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, nil, errors.New("mapreduce: embed record: bad point count")
	}
	b = b[w:]
	du, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, nil, errors.New("mapreduce: embed record: bad dimension")
	}
	b = b[w:]
	if nu == 0 || du == 0 || nu > maxFrameBody/4 || du > maxFrameBody/8 {
		return nil, 0, nil, fmt.Errorf("mapreduce: embed record shape %d x %d out of range", nu, du)
	}
	n, dim := int(nu), int(du)
	// The length check precedes any allocation, so a hostile header
	// cannot make the parser reserve more than the record it arrived in.
	if need := 4*n + 8*n*dim; len(b) != need || need/n != 4+8*dim {
		return nil, 0, nil, fmt.Errorf("mapreduce: embed record: %d payload bytes for %d x %d", len(b), n, dim)
	}
	indices := make([]int32, n)
	for i := range indices {
		indices[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	b = b[4*n:]
	rows := make([]float64, n*dim)
	for i := range rows {
		rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return indices, dim, rows, nil
}

// AppendPackedEmbedBucket appends the compact embedded-bucket form:
//
//	kind 'e' │ uvarint n │ uvarint dim │ n × zigzag-varint index delta │
//	n·dim × float64 LE embedded rows (row-major)
//
// Deltas are taken over the indices as given (bucket indices are sorted
// ascending, so deltas are small and positive); zigzag keeps any order
// decodable. Same semantics contract as AppendEmbedBucket.
func AppendPackedEmbedBucket(dst []byte, indices []int32, dim int, rows []float64) []byte {
	dst = append(dst, PackedEmbedBucketKind)
	dst = binary.AppendUvarint(dst, uint64(len(indices)))
	dst = binary.AppendUvarint(dst, uint64(dim))
	prev := int64(0)
	for _, idx := range indices {
		delta := int64(idx) - prev
		dst = binary.AppendUvarint(dst, uint64(delta)<<1^uint64(delta>>63))
		prev = int64(idx)
	}
	var b8 [8]byte
	for _, v := range rows {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		dst = append(dst, b8[:]...)
	}
	return dst
}

// ParsePackedEmbedBucket decodes a record produced by
// AppendPackedEmbedBucket with the same hostile-input posture as
// ParseEmbedBucket: shape is validated before any allocation, every
// index must round-trip through int32, and the float payload must
// match the declared shape exactly.
func ParsePackedEmbedBucket(buf []byte) ([]int32, int, []float64, error) {
	if len(buf) == 0 || buf[0] != PackedEmbedBucketKind {
		return nil, 0, nil, errors.New("mapreduce: not a packed embed bucket record")
	}
	b := buf[1:]
	nu, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, nil, errors.New("mapreduce: packed embed record: bad point count")
	}
	b = b[w:]
	du, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, nil, errors.New("mapreduce: packed embed record: bad dimension")
	}
	b = b[w:]
	if nu == 0 || du == 0 || nu > maxFrameBody/4 || du > maxFrameBody/8 {
		return nil, 0, nil, fmt.Errorf("mapreduce: packed embed record shape %d x %d out of range", nu, du)
	}
	n, dim := int(nu), int(du)
	// Each index delta costs at least one byte, so the record must hold
	// n delta bytes plus the full float payload; checking against the
	// actual record length before allocating bounds both slices by the
	// bytes that really arrived.
	if need := n + 8*n*dim; len(b) < need || need/n != 1+8*dim {
		return nil, 0, nil, fmt.Errorf("mapreduce: packed embed record: %d payload bytes for %d x %d", len(b), n, dim)
	}
	indices := make([]int32, n)
	prev := int64(0)
	for i := range indices {
		zz, w := binary.Uvarint(b)
		if w <= 0 {
			return nil, 0, nil, errors.New("mapreduce: packed embed record: bad index delta")
		}
		b = b[w:]
		delta := int64(zz>>1) ^ -int64(zz&1)
		prev += delta
		if prev < 0 || prev > math.MaxInt32 {
			return nil, 0, nil, fmt.Errorf("mapreduce: packed embed record: index %d out of range", prev)
		}
		indices[i] = int32(prev)
	}
	if len(b) != 8*n*dim {
		return nil, 0, nil, fmt.Errorf("mapreduce: packed embed record: %d float bytes for %d x %d", len(b), n, dim)
	}
	rows := make([]float64, n*dim)
	for i := range rows {
		rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return indices, dim, rows, nil
}

// ParseAnyEmbedBucket dispatches on the record's kind byte to the raw
// or packed embed decoder, accepting either framing.
func ParseAnyEmbedBucket(buf []byte) ([]int32, int, []float64, error) {
	if len(buf) > 0 && buf[0] == PackedEmbedBucketKind {
		return ParsePackedEmbedBucket(buf)
	}
	return ParseEmbedBucket(buf)
}

// WireRoundTrip encodes msg-shaped record traffic through the frame
// codec and decodes it back over an in-memory pipe, returning the
// frame's wire size — the dascbench hook for the codec hot path and a
// self-test that the framing is invertible.
func WireRoundTrip(pairs []Pair) (int, error) {
	n, _, err := WireRoundTripOpts(pairs, false)
	return n, err
}

// WireRoundTripOpts is WireRoundTrip with the v3 compression path
// switchable; it additionally returns the raw (uncompressed) frame
// size so callers can report the achieved ratio.
func WireRoundTripOpts(pairs []Pair, compress bool) (wireSize, rawSize int, err error) {
	var st wireStats
	var buf writeBuffer
	enc := &frameCodec{w: &buf, st: &st, version: WireVersionPacked}
	enc.compress.Store(compress)
	in := resultMsg{Seq: 1, Parts: [][]Pair{pairs}}
	n, err := enc.writeResult(&in)
	if err != nil {
		return n, n, err
	}
	raw := n + int(st.compressSaved.Load())
	dec := &frameCodec{br: bufio.NewReader(&buf), st: &st, version: WireVersionPacked}
	var out resultMsg
	if _, err := dec.readResult(&out); err != nil {
		return n, raw, err
	}
	if len(out.Parts) != 1 || len(out.Parts[0]) != len(pairs) {
		return n, raw, errors.New("mapreduce: wire round trip changed record count")
	}
	return n, raw, nil
}

// writeBuffer is a minimal in-memory io.Writer+Reader for WireRoundTrip.
type writeBuffer struct {
	b   []byte
	off int
}

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writeBuffer) Read(p []byte) (int, error) {
	if w.off >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.off:])
	w.off += n
	return n, nil
}
