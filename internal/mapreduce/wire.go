package mapreduce

// The TCP executor's wire protocol. A connection opens with a hello —
// the worker sends a 5-byte "DASC"+maxVersion greeting and the master
// answers with the single version byte both sides will speak — and
// then carries task/result messages in the negotiated framing:
//
//	version 1 (gob):    the original stateful gob stream, kept for
//	                    lock-step replay and as the negotiation floor.
//	version 2 (frames): length-prefixed binary frames,
//
//	    uvarint bodyLen │ body
//	    body = kind byte ('T' task / 'R' result) │ fields
//
//	    taskMsg   = uvarint Seq │ str JobName │ str Phase │
//	                bytes Conf │ uvarint NumReducers │
//	                uvarint nRecords │ nRecords × (str Key │ bytes Val)
//	    resultMsg = uvarint Seq │ str Err │ uvarint nParts │
//	                nParts × (uvarint nPairs │ nPairs × pair)
//
//	    str/bytes = uvarint length │ raw bytes
//
// Frames need no per-record reflection: encoding appends into a pooled
// scratch buffer (one Write per frame), decoding reads the exact body
// and aliases record values into it (one allocation per frame plus the
// key strings). Both codecs account bytes and serialization wall time
// into per-connection wireStats, which the master aggregates into
// Counters.WireBytes* / *Nanos.

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Wire protocol versions a master or worker can speak. The hello
// negotiates min(worker max, master max); see TCPConfig.MaxWireVersion.
const (
	// WireVersionGob is the original gob stream framing.
	WireVersionGob = 1
	// WireVersionFrames is the length-prefixed binary frame codec.
	WireVersionFrames = 2
	// WireVersionLatest is the highest version this build speaks.
	WireVersionLatest = WireVersionFrames
)

// wireMagic opens every hello; a peer that does not present it is not
// a DASC worker and is disconnected during the handshake.
var wireMagic = [4]byte{'D', 'A', 'S', 'C'}

// helloLen is magic + the sender's maximum version byte.
const helloLen = len(wireMagic) + 1

// maxFrameBody caps a decoded frame body, protecting the master from a
// corrupt or hostile length prefix.
const maxFrameBody = 1 << 30

// frame body kinds.
const (
	frameTask   = 'T'
	frameResult = 'R'
)

// wireStats accumulates one connection's traffic. All fields are
// atomics: the pipelined master reads and writes a socket from
// different goroutines, and counter snapshots race with live traffic.
type wireStats struct {
	bytesOut    atomic.Int64
	bytesIn     atomic.Int64
	encodeNanos atomic.Int64
	decodeNanos atomic.Int64
}

// codec reads and writes task/result messages on one connection. Every
// method returns the message's size in wire bytes. Implementations are
// safe for one concurrent reader plus one concurrent writer (the
// pipelined connection split), not for two of either.
type codec interface {
	writeTask(t *taskMsg) (int, error)
	readTask(t *taskMsg) (int, error)
	writeResult(r *resultMsg) (int, error)
	readResult(r *resultMsg) (int, error)
}

// newCodec builds the codec for a negotiated version.
func newCodec(conn net.Conn, version byte, st *wireStats) (codec, error) {
	switch version {
	case WireVersionGob:
		return newGobCodec(conn, st), nil
	case WireVersionFrames:
		return newFrameCodec(conn, st), nil
	}
	return nil, fmt.Errorf("mapreduce: unsupported wire version %d", version)
}

// sendHello performs the worker side of the handshake: greet with our
// maximum version, read back the master's choice.
func sendHello(conn net.Conn, maxVersion byte, timeout time.Duration, st *wireStats) (byte, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	var hello [helloLen]byte
	copy(hello[:], wireMagic[:])
	hello[len(wireMagic)] = maxVersion
	if _, err := conn.Write(hello[:]); err != nil {
		return 0, fmt.Errorf("mapreduce: send hello: %w", err)
	}
	var reply [1]byte
	if _, err := io.ReadFull(conn, reply[:]); err != nil {
		return 0, fmt.Errorf("mapreduce: read hello reply: %w", err)
	}
	st.bytesOut.Add(int64(helloLen))
	st.bytesIn.Add(1)
	v := reply[0]
	if v < WireVersionGob || v > maxVersion {
		return 0, fmt.Errorf("mapreduce: master chose unusable wire version %d", v)
	}
	// The handshake deadline is done; task reads are unbounded (an idle
	// worker waits indefinitely) and writes are re-bounded per result.
	return v, conn.SetDeadline(time.Time{})
}

// acceptHello performs the master side of the handshake and returns
// the negotiated version.
func acceptHello(conn net.Conn, ourMax byte, timeout time.Duration, st *wireStats) (byte, error) {
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return 0, err
	}
	var hello [helloLen]byte
	if _, err := io.ReadFull(conn, hello[:]); err != nil {
		return 0, fmt.Errorf("mapreduce: read hello: %w", err)
	}
	if [4]byte(hello[:4]) != wireMagic {
		return 0, errors.New("mapreduce: peer is not a DASC worker (bad hello magic)")
	}
	theirMax := hello[len(wireMagic)]
	if theirMax < WireVersionGob {
		return 0, fmt.Errorf("mapreduce: worker advertises unusable wire version %d", theirMax)
	}
	v := min(theirMax, ourMax)
	if _, err := conn.Write([]byte{v}); err != nil {
		return 0, fmt.Errorf("mapreduce: send hello reply: %w", err)
	}
	st.bytesIn.Add(int64(helloLen))
	st.bytesOut.Add(1)
	return v, conn.SetDeadline(time.Time{})
}

// ---- version 1: gob ----

// countingWriter / countingReader meter the raw stream for the gob
// codec, which cannot size its own messages.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// gobCodec is wire version 1. The encoder/decoder pair must live as
// long as the connection: gob streams are stateful, so a fresh encoder
// would resend type definitions and corrupt the peer's decoder state.
type gobCodec struct {
	enc *gob.Encoder
	dec *gob.Decoder
	st  *wireStats
}

func newGobCodec(conn net.Conn, st *wireStats) *gobCodec {
	return &gobCodec{
		enc: gob.NewEncoder(&countingWriter{w: conn, n: &st.bytesOut}),
		dec: gob.NewDecoder(&countingReader{r: conn, n: &st.bytesIn}),
		st:  st,
	}
}

func (c *gobCodec) encode(v any) (int, error) {
	before := c.st.bytesOut.Load()
	start := time.Now()
	err := c.enc.Encode(v)
	c.st.encodeNanos.Add(time.Since(start).Nanoseconds())
	return int(c.st.bytesOut.Load() - before), err
}

func (c *gobCodec) decode(v any) (int, error) {
	before := c.st.bytesIn.Load()
	start := time.Now()
	err := c.dec.Decode(v)
	c.st.decodeNanos.Add(time.Since(start).Nanoseconds())
	return int(c.st.bytesIn.Load() - before), err
}

func (c *gobCodec) writeTask(t *taskMsg) (int, error)     { return c.encode(t) }
func (c *gobCodec) readTask(t *taskMsg) (int, error)      { return c.decode(t) }
func (c *gobCodec) writeResult(r *resultMsg) (int, error) { return c.encode(r) }
func (c *gobCodec) readResult(r *resultMsg) (int, error)  { return c.decode(r) }

// ---- version 2: length-prefixed binary frames ----

// encBuf is the pooled encode scratch; frames reuse its backing array
// so steady-state encoding allocates nothing.
type encBuf struct{ b []byte }

var encBufPool = sync.Pool{
	New: func() any { return &encBuf{b: make([]byte, 0, 4096)} },
}

// frameCodec is wire version 2.
type frameCodec struct {
	w  io.Writer
	br *bufio.Reader
	st *wireStats
}

func newFrameCodec(conn net.Conn, st *wireStats) *frameCodec {
	return &frameCodec{w: conn, br: bufio.NewReaderSize(conn, 1<<16), st: st}
}

// hdrReserve leaves room at the buffer front for the length prefix.
const hdrReserve = binary.MaxVarintLen64

// sendFrame serializes body (appended by fill after the kind byte),
// prefixes its length, and writes the frame with a single Write.
func (c *frameCodec) sendFrame(kind byte, fill func(b []byte) []byte) (int, error) {
	eb := encBufPool.Get().(*encBuf)
	start := time.Now()
	b := append(eb.b[:0], make([]byte, hdrReserve)...)
	b = append(b, kind)
	b = fill(b)
	bodyLen := len(b) - hdrReserve
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(bodyLen))
	frameStart := hdrReserve - n
	copy(b[frameStart:hdrReserve], tmp[:n])
	c.st.encodeNanos.Add(time.Since(start).Nanoseconds())
	nw, err := c.w.Write(b[frameStart:])
	c.st.bytesOut.Add(int64(nw))
	eb.b = b
	encBufPool.Put(eb)
	return n + bodyLen, err
}

// recvFrame reads one frame and returns its kind, body, and total wire
// size. The body is freshly allocated per frame; decoded records alias
// it, so it must not be pooled.
func (c *frameCodec) recvFrame() (byte, []byte, int, error) {
	bodyLen, err := binary.ReadUvarint(c.br)
	if err != nil {
		return 0, nil, 0, err
	}
	if bodyLen < 1 || bodyLen > maxFrameBody {
		return 0, nil, 0, fmt.Errorf("mapreduce: frame body length %d out of range", bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return 0, nil, 0, fmt.Errorf("mapreduce: short frame: %w", err)
	}
	size := uvarintLen(bodyLen) + int(bodyLen)
	c.st.bytesIn.Add(int64(size))
	return body[0], body[1:], size, nil
}

// uvarintLen is the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendWireBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func (c *frameCodec) writeTask(t *taskMsg) (int, error) {
	return c.sendFrame(frameTask, func(b []byte) []byte {
		b = binary.AppendUvarint(b, uint64(t.Seq))
		b = appendWireString(b, t.JobName)
		b = appendWireString(b, t.Phase)
		b = appendWireBytes(b, t.Conf)
		b = binary.AppendUvarint(b, uint64(t.NumReducers))
		return appendPairs(b, t.Records)
	})
}

func (c *frameCodec) writeResult(r *resultMsg) (int, error) {
	return c.sendFrame(frameResult, func(b []byte) []byte {
		b = binary.AppendUvarint(b, uint64(r.Seq))
		b = appendWireString(b, r.Err)
		b = binary.AppendUvarint(b, uint64(len(r.Parts)))
		for _, part := range r.Parts {
			b = appendPairs(b, part)
		}
		return b
	})
}

func appendPairs(b []byte, pairs []Pair) []byte {
	b = binary.AppendUvarint(b, uint64(len(pairs)))
	for _, p := range pairs {
		b = appendWireString(b, p.Key)
		b = appendWireBytes(b, p.Value)
	}
	return b
}

func (c *frameCodec) readTask(t *taskMsg) (int, error) {
	kind, body, size, err := c.recvFrame()
	if err != nil {
		return size, err
	}
	if kind != frameTask {
		return size, fmt.Errorf("mapreduce: expected task frame, got %q", kind)
	}
	start := time.Now()
	err = parseTask(body, t)
	c.st.decodeNanos.Add(time.Since(start).Nanoseconds())
	return size, err
}

func (c *frameCodec) readResult(r *resultMsg) (int, error) {
	kind, body, size, err := c.recvFrame()
	if err != nil {
		return size, err
	}
	if kind != frameResult {
		return size, fmt.Errorf("mapreduce: expected result frame, got %q", kind)
	}
	start := time.Now()
	err = parseResult(body, r)
	c.st.decodeNanos.Add(time.Since(start).Nanoseconds())
	return size, err
}

// parser consumes a frame body; the first malformed field latches err
// and turns the remaining reads into no-ops.
type parser struct {
	b   []byte
	err error
}

func (p *parser) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("mapreduce: malformed frame: %s", what)
	}
}

func (p *parser) uvarint(what string) uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.fail(what)
		return 0
	}
	p.b = p.b[n:]
	return v
}

// count reads a length field that sizes max-byte elements, rejecting
// values the remaining body cannot possibly hold.
func (p *parser) count(what string) int {
	v := p.uvarint(what)
	if p.err == nil && v > uint64(len(p.b)) {
		p.fail(what + " overruns frame")
		return 0
	}
	return int(v)
}

// bytes returns the next length-prefixed field aliased into the body
// (nil when empty, matching a gob round trip of an empty slice).
func (p *parser) bytes(what string) []byte {
	n := p.count(what)
	if p.err != nil || n == 0 {
		return nil
	}
	v := p.b[:n:n]
	p.b = p.b[n:]
	return v
}

func (p *parser) str(what string) string {
	return string(p.bytes(what))
}

func (p *parser) intField(what string) int {
	v := p.uvarint(what)
	if v > math.MaxInt32 {
		p.fail(what + " overflows")
		return 0
	}
	return int(v)
}

func (p *parser) pairs(what string) []Pair {
	n := p.count(what)
	if p.err != nil || n == 0 {
		return nil
	}
	out := make([]Pair, n)
	for i := range out {
		out[i].Key = p.str("record key")
		out[i].Value = p.bytes("record value")
		if p.err != nil {
			return nil
		}
	}
	return out
}

// done rejects trailing garbage after the last field.
func (p *parser) done() error {
	if p.err == nil && len(p.b) != 0 {
		p.fail(fmt.Sprintf("%d trailing bytes", len(p.b)))
	}
	return p.err
}

func parseTask(body []byte, t *taskMsg) error {
	p := &parser{b: body}
	t.Seq = p.intField("task seq")
	t.JobName = p.str("job name")
	t.Phase = p.str("phase")
	t.Conf = p.bytes("conf")
	t.NumReducers = p.intField("num reducers")
	t.Records = p.pairs("records")
	return p.done()
}

func parseResult(body []byte, r *resultMsg) error {
	p := &parser{b: body}
	r.Seq = p.intField("result seq")
	r.Err = p.str("result error")
	nParts := p.count("parts")
	r.Parts = nil
	if p.err == nil && nParts > 0 {
		r.Parts = make([][]Pair, nParts)
		for i := range r.Parts {
			r.Parts[i] = p.pairs("part")
			if p.err != nil {
				break
			}
		}
	}
	return p.done()
}

// ---- embed bucket records ----

// Stage-2 record kinds for the embed-and-conquer DASC deployment. When
// embed mode is on, every stage-2 value leads with one of these bytes
// so a reducer can tell an embedded-rows record from a raw payload. (A
// gob stream may begin with any byte, so the discriminator only means
// anything when the job's configuration says embed mode is on; legacy
// jobs ship bare payloads with no kind byte.)
const (
	// EmbedBucketKind opens an embedded bucket record: the bucket's
	// points already pushed through the kernel feature map map-side,
	// shipped as d′-dimensional rows instead of raw vectors.
	EmbedBucketKind = 'E'
	// RawBucketKind opens a raw bucket payload (a gob blob follows) for
	// buckets the embed policy declined.
	RawBucketKind = 'B'
)

// AppendEmbedBucket appends one embedded bucket record to dst and
// returns the extended slice:
//
//	kind 'E' │ uvarint n │ uvarint dim │ n × uint32 LE index │
//	n·dim × float64 LE embedded rows (row-major)
//
// len(rows) must equal len(indices)*dim; the codec is pure layout and
// does not validate semantics beyond that.
func AppendEmbedBucket(dst []byte, indices []int32, dim int, rows []float64) []byte {
	dst = append(dst, EmbedBucketKind)
	dst = binary.AppendUvarint(dst, uint64(len(indices)))
	dst = binary.AppendUvarint(dst, uint64(dim))
	var b4 [4]byte
	for _, idx := range indices {
		binary.LittleEndian.PutUint32(b4[:], uint32(idx))
		dst = append(dst, b4[:]...)
	}
	var b8 [8]byte
	for _, v := range rows {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		dst = append(dst, b8[:]...)
	}
	return dst
}

// ParseEmbedBucket decodes a record produced by AppendEmbedBucket,
// validating the kind byte and that the payload length matches the
// declared shape exactly. The returned slices are freshly allocated and
// do not alias buf.
func ParseEmbedBucket(buf []byte) ([]int32, int, []float64, error) {
	if len(buf) == 0 || buf[0] != EmbedBucketKind {
		return nil, 0, nil, errors.New("mapreduce: not an embed bucket record")
	}
	b := buf[1:]
	nu, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, nil, errors.New("mapreduce: embed record: bad point count")
	}
	b = b[w:]
	du, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, nil, errors.New("mapreduce: embed record: bad dimension")
	}
	b = b[w:]
	if nu == 0 || du == 0 || nu > maxFrameBody/4 || du > maxFrameBody/8 {
		return nil, 0, nil, fmt.Errorf("mapreduce: embed record shape %d x %d out of range", nu, du)
	}
	n, dim := int(nu), int(du)
	// The length check precedes any allocation, so a hostile header
	// cannot make the parser reserve more than the record it arrived in.
	if need := 4*n + 8*n*dim; len(b) != need || need/n != 4+8*dim {
		return nil, 0, nil, fmt.Errorf("mapreduce: embed record: %d payload bytes for %d x %d", len(b), n, dim)
	}
	indices := make([]int32, n)
	for i := range indices {
		indices[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	b = b[4*n:]
	rows := make([]float64, n*dim)
	for i := range rows {
		rows[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return indices, dim, rows, nil
}

// WireRoundTrip encodes msg-shaped record traffic through the frame
// codec and decodes it back over an in-memory pipe, returning the
// frame's wire size — the dascbench hook for the codec hot path and a
// self-test that the framing is invertible.
func WireRoundTrip(pairs []Pair) (int, error) {
	var st wireStats
	var buf writeBuffer
	enc := &frameCodec{w: &buf, st: &st}
	in := resultMsg{Seq: 1, Parts: [][]Pair{pairs}}
	n, err := enc.writeResult(&in)
	if err != nil {
		return n, err
	}
	dec := &frameCodec{br: bufio.NewReader(&buf), st: &st}
	var out resultMsg
	if _, err := dec.readResult(&out); err != nil {
		return n, err
	}
	if len(out.Parts) != 1 || len(out.Parts[0]) != len(pairs) {
		return n, errors.New("mapreduce: wire round trip changed record count")
	}
	return n, nil
}

// writeBuffer is a minimal in-memory io.Writer+Reader for WireRoundTrip.
type writeBuffer struct {
	b   []byte
	off int
}

func (w *writeBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writeBuffer) Read(p []byte) (int, error) {
	if w.off >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.off:])
	w.off += n
	return n, nil
}
