// Package mapreduce is a self-contained MapReduce runtime with the
// same dataflow semantics as the Hadoop deployment the paper runs DASC
// on: jobs are a map phase over key/value pairs, a partitioned sorted
// shuffle, and a reduce phase over grouped keys, with an optional
// combiner. Two executors are provided — Local, a bounded goroutine
// worker pool, and TCP, a master/worker deployment over real sockets
// with gob-encoded task traffic (see tcp.go).
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
)

// Pair is one key/value record. Values are opaque bytes; typed adapters
// encode with encoding/gob or strconv as they see fit.
type Pair struct {
	Key   string
	Value []byte
}

// Emit receives output records from map and reduce functions.
type Emit func(key string, value []byte)

// MapFunc processes one input record, emitting intermediate records.
type MapFunc func(key string, value []byte, emit Emit) error

// ReduceFunc processes all intermediate values grouped under one key.
type ReduceFunc func(key string, values [][]byte, emit Emit) error

// Job describes one MapReduce stage.
type Job struct {
	// Name identifies the job in errors and the TCP registry.
	Name string
	// Map is required.
	Map MapFunc
	// Reduce is required. (An identity reduce emits values unchanged.)
	Reduce ReduceFunc
	// Combine optionally pre-aggregates map output per split before the
	// shuffle, with reduce semantics.
	Combine ReduceFunc
	// NumReducers sets the number of reduce partitions (default 1).
	NumReducers int
	// Partition maps a key to a reduce partition (default FNV-1a hash).
	Partition func(key string, numReducers int) int
	// SplitSize caps records per map task (default 1024).
	SplitSize int
	// SpillBytes bounds the executor-side in-memory buffer of map-side
	// sorted runs (measured as their on-disk framed size, Hadoop's
	// io.sort.mb analogue). When the buffer exceeds the budget, every
	// buffered run is flushed to a per-partition spill file and the
	// shuffle merges from disk (see spill.go). 0 keeps the shuffle fully
	// in memory. Output is bit-identical at any setting.
	SpillBytes int64
	// Compress turns on the lossless data-plane compression paths for
	// this job: spill runs are deflated on flush (and inflated inside
	// the merge's RunReaders), and TCP frames at wire v3 compress
	// bodies above CompressThreshold in both directions. Off by
	// default; output is bit-identical either way, only the bytes
	// moved change.
	Compress bool
	// Conf is an opaque configuration blob for factory-built jobs: it
	// travels with every TCP task so worker processes can rebuild the
	// job via their RegisterFactory entry (see factory.go). Jobs without
	// Conf require the closure-carrying Register path, which only works
	// inside one process.
	Conf []byte
}

// Counters reports work volume for a run, mirroring Hadoop job counters.
type Counters struct {
	MapTasks     int
	ReduceTasks  int
	InputRecords int
	MapOutputs   int
	// ShuffleBytes sizes the map output crossing the shuffle. The Local
	// executor reports the key+value byte sum (no wire exists); the TCP
	// executor reports the actual encoded bytes of the map-result frames
	// received from workers, which is always at least the Local
	// approximation (framing adds sequence numbers and length prefixes).
	ShuffleBytes  int64
	OutputRecords int
	// WireBytesOut / WireBytesIn count every encoded byte the TCP
	// master wrote to / read from worker sockets across both phases,
	// including hellos and frame headers. Zero for the Local executor.
	WireBytesOut int64
	WireBytesIn  int64
	// EncodeNanos / DecodeNanos are the master-side wall time spent
	// inside the wire codec, for wire-vs-compute accounting.
	EncodeNanos int64
	DecodeNanos int64
	// EmbedBytes / EmbedNanos account the embed-and-conquer data plane:
	// the encoded size of every embedded bucket record a driver shipped
	// in place of raw vectors, and the wall time the driver spent in the
	// map-side embedding transform. Zero when embed mode is off or the
	// runner never ships data (e.g. the closure MapReduce runner embeds
	// inside its reducers, where the cost lands in SolveNanos instead).
	EmbedBytes int64
	EmbedNanos int64
	// SpillBytes / SpillNanos account the out-of-core shuffle: the bytes
	// written to spill run files when Job.SpillBytes forces map output
	// to disk, and the wall time spent inside those writes. Zero when
	// nothing spilled.
	SpillBytes int64
	SpillNanos int64
	// ShardReadBytes counts bytes demand-read from input shard files by
	// sharded jobs (see internal/shard). Workers in this process (Local,
	// or TCP workers started in-process) are metered directly by the
	// sharded driver; external TCP worker processes ship their meter
	// back on result messages (wire v3 or gob — see SetShardMeter) and
	// the master folds the de-duplicated per-process spans in here.
	// v2-framed external workers cannot carry the meter and stay
	// invisible.
	ShardReadBytes int64
	// ShardReadOps / ShardCoalescedReads count the ReadAt calls issued
	// against shard files and how many of those served more than one
	// row (the read-coalescing and streaming-readahead paths). Process-
	// local, like the in-process part of ShardReadBytes.
	ShardReadOps        int64
	ShardCoalescedReads int64
	// CompressedBytes is how many bytes Job.Compress removed from the
	// data plane: raw-minus-encoded summed over compressed wire frames
	// (both directions, master side) and spill runs. CompressNanos is
	// the master-side wall time inside the wire codec's flate passes;
	// spill-side flate time is part of SpillNanos.
	CompressedBytes int64
	CompressNanos   int64
}

// Add accumulates o into c field-wise, for drivers that chain several
// jobs and want one aggregate (e.g. the DASC two-stage pipeline).
func (c *Counters) Add(o *Counters) {
	if o == nil {
		return
	}
	c.MapTasks += o.MapTasks
	c.ReduceTasks += o.ReduceTasks
	c.InputRecords += o.InputRecords
	c.MapOutputs += o.MapOutputs
	c.ShuffleBytes += o.ShuffleBytes
	c.OutputRecords += o.OutputRecords
	c.WireBytesOut += o.WireBytesOut
	c.WireBytesIn += o.WireBytesIn
	c.EncodeNanos += o.EncodeNanos
	c.DecodeNanos += o.DecodeNanos
	c.EmbedBytes += o.EmbedBytes
	c.EmbedNanos += o.EmbedNanos
	c.SpillBytes += o.SpillBytes
	c.SpillNanos += o.SpillNanos
	c.ShardReadBytes += o.ShardReadBytes
	c.ShardReadOps += o.ShardReadOps
	c.ShardCoalescedReads += o.ShardCoalescedReads
	c.CompressedBytes += o.CompressedBytes
	c.CompressNanos += o.CompressNanos
}

// Executor runs jobs.
type Executor interface {
	// Run executes the job over the input and returns reduce output in
	// deterministic (key-sorted, then emission) order.
	Run(job *Job, input []Pair) ([]Pair, *Counters, error)
}

// ContextExecutor is an Executor that honors deadlines and
// cancellation. Both built-in executors (Local and the TCP Master)
// implement it; Run is equivalent to RunContext with
// context.Background().
type ContextExecutor interface {
	Executor
	// RunContext executes the job, returning promptly with ctx.Err()
	// (wrapped) when the context is cancelled or its deadline passes.
	RunContext(ctx context.Context, job *Job, input []Pair) ([]Pair, *Counters, error)
}

// RunWithContext runs the job on exec under ctx. Executors that
// implement ContextExecutor get full cooperative cancellation of
// in-flight map and reduce work; for a plain Executor the context is
// only checked before the (uninterruptible) Run call.
func RunWithContext(ctx context.Context, exec Executor, job *Job, input []Pair) ([]Pair, *Counters, error) {
	if ce, ok := exec.(ContextExecutor); ok {
		return ce.RunContext(ctx, job, input)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
	}
	return exec.Run(job, input)
}

// ErrBadJob reports an incomplete job description.
var ErrBadJob = errors.New("mapreduce: bad job")

func (j *Job) validate() error {
	if j.Map == nil || j.Reduce == nil {
		return fmt.Errorf("%w: %q needs Map and Reduce", ErrBadJob, j.Name)
	}
	if j.NumReducers < 0 || j.SplitSize < 0 || j.SpillBytes < 0 {
		return fmt.Errorf("%w: %q has negative sizing", ErrBadJob, j.Name)
	}
	return nil
}

func (j *Job) numReducers() int {
	if j.NumReducers == 0 {
		return 1
	}
	return j.NumReducers
}

func (j *Job) splitSize() int {
	if j.SplitSize == 0 {
		return 1024
	}
	return j.SplitSize
}

func (j *Job) partition(key string) int {
	n := j.numReducers()
	if j.Partition != nil {
		p := j.Partition(key, n)
		if p < 0 || p >= n {
			p = ((p % n) + n) % n
		}
		return p
	}
	return DefaultPartition(key, n)
}

// DefaultPartition hashes the key with FNV-1a, Hadoop's
// hash-partitioner analogue.
func DefaultPartition(key string, numReducers int) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key)) // fnv.Write cannot fail
	return int(h.Sum32() % uint32(numReducers))
}

// splits cuts the input into map tasks of at most splitSize records.
func splits(input []Pair, splitSize int) [][]Pair {
	if len(input) == 0 {
		return nil
	}
	var out [][]Pair
	for start := 0; start < len(input); start += splitSize {
		end := start + splitSize
		if end > len(input) {
			end = len(input)
		}
		out = append(out, input[start:end])
	}
	return out
}

// groupSorted groups a key-sorted pair slice into (key, values) runs.
func groupSorted(pairs []Pair, fn func(key string, values [][]byte) error) error {
	i := 0
	for i < len(pairs) {
		j := i + 1
		for j < len(pairs) && pairs[j].Key == pairs[i].Key {
			j++
		}
		vals := make([][]byte, 0, j-i)
		for _, p := range pairs[i:j] {
			vals = append(vals, p.Value)
		}
		if err := fn(pairs[i].Key, vals); err != nil {
			return err
		}
		i = j
	}
	return nil
}

// partitionSorted splits one map task's output into per-partition
// key-sorted runs — the map-side sort of the merge shuffle, shared by
// the Local executor and the TCP worker. Sorting here parallelizes
// across map tasks and keeps the master's shuffle a pure merge.
func partitionSorted(job *Job, numReducers int, local []Pair) [][]Pair {
	parts := make([][]Pair, numReducers)
	for _, p := range local {
		idx := job.partition(p.Key)
		parts[idx] = append(parts[idx], p)
	}
	for _, part := range parts {
		sortPairs(part)
	}
	return parts
}

// runCombine applies a combiner to one split's map output.
func runCombine(combine ReduceFunc, pairs []Pair) ([]Pair, error) {
	sortPairs(pairs)
	var out []Pair
	err := groupSorted(pairs, func(key string, values [][]byte) error {
		return combine(key, values, func(k string, v []byte) {
			out = append(out, Pair{k, v})
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
