package mapreduce

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

// wordCountJob returns the canonical MapReduce example, used as the
// reference workload for both executors.
func wordCountJob(name string, reducers int, combine bool) *Job {
	j := &Job{
		Name:        name,
		NumReducers: reducers,
		Map: func(key string, value []byte, emit Emit) error {
			for _, w := range strings.Fields(string(value)) {
				emit(w, []byte("1"))
			}
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				total += n
			}
			emit(key, []byte(strconv.Itoa(total)))
			return nil
		},
	}
	if combine {
		j.Combine = j.Reduce
	}
	return j
}

func wordInput() []Pair {
	lines := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog jumps",
	}
	input := make([]Pair, len(lines))
	for i, l := range lines {
		input[i] = Pair{Key: strconv.Itoa(i), Value: []byte(l)}
	}
	return input
}

func checkWordCount(t *testing.T, out []Pair) {
	t.Helper()
	want := map[string]string{
		"the": "3", "quick": "2", "dog": "2", "brown": "1",
		"fox": "1", "lazy": "1", "jumps": "1",
	}
	if len(out) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(out), len(want), out)
	}
	for _, p := range out {
		if want[p.Key] != string(p.Value) {
			t.Fatalf("count[%s] = %s, want %s", p.Key, p.Value, want[p.Key])
		}
	}
	// Output must be key-sorted.
	for i := 1; i < len(out); i++ {
		if out[i-1].Key > out[i].Key {
			t.Fatal("output not sorted")
		}
	}
}

func TestLocalWordCount(t *testing.T) {
	out, ctr, err := (&Local{}).Run(wordCountJob("wc", 3, false), wordInput())
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, out)
	if ctr.InputRecords != 3 || ctr.MapOutputs != 11 || ctr.ReduceTasks != 3 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestLocalCombinerReducesShuffle(t *testing.T) {
	in := wordInput()
	_, plain, err := (&Local{}).Run(wordCountJob("wc", 1, false), in)
	if err != nil {
		t.Fatal(err)
	}
	outC, combined, err := (&Local{Workers: 2}).Run(wordCountJob("wc", 1, true), in)
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, outC)
	// With SplitSize default all records land in one split, so the
	// combiner collapses duplicate words before the shuffle.
	if combined.ShuffleBytes >= plain.ShuffleBytes {
		t.Fatalf("combiner did not shrink shuffle: %d vs %d",
			combined.ShuffleBytes, plain.ShuffleBytes)
	}
}

func TestLocalSplitSizes(t *testing.T) {
	job := wordCountJob("wc", 2, false)
	job.SplitSize = 1
	out, ctr, err := (&Local{Workers: 4}).Run(job, wordInput())
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, out)
	if ctr.MapTasks != 3 {
		t.Fatalf("MapTasks = %d, want 3", ctr.MapTasks)
	}
}

func TestLocalValidation(t *testing.T) {
	if _, _, err := (&Local{}).Run(&Job{Name: "broken"}, nil); !errors.Is(err, ErrBadJob) {
		t.Fatalf("err = %v, want ErrBadJob", err)
	}
	bad := wordCountJob("wc", 1, false)
	bad.SplitSize = -1
	if _, _, err := (&Local{}).Run(bad, nil); !errors.Is(err, ErrBadJob) {
		t.Fatal("expected ErrBadJob for negative split size")
	}
}

func TestLocalEmptyInput(t *testing.T) {
	out, ctr, err := (&Local{}).Run(wordCountJob("wc", 2, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || ctr.MapTasks != 0 {
		t.Fatalf("out=%v ctr=%+v", out, ctr)
	}
}

func TestLocalMapErrorPropagates(t *testing.T) {
	job := &Job{
		Name: "failing",
		Map: func(key string, value []byte, emit Emit) error {
			return fmt.Errorf("boom on %s", key)
		},
		Reduce: func(key string, values [][]byte, emit Emit) error { return nil },
	}
	_, _, err := (&Local{}).Run(job, wordInput())
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestLocalReduceErrorPropagates(t *testing.T) {
	job := wordCountJob("wc", 2, false)
	job.Reduce = func(key string, values [][]byte, emit Emit) error {
		return errors.New("reduce exploded")
	}
	_, _, err := (&Local{}).Run(job, wordInput())
	if err == nil || !strings.Contains(err.Error(), "reduce exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestCustomPartitionOutOfRangeIsClamped(t *testing.T) {
	job := wordCountJob("wc", 2, false)
	job.Partition = func(key string, n int) int { return -7 }
	out, _, err := (&Local{}).Run(job, wordInput())
	if err != nil {
		t.Fatal(err)
	}
	checkWordCount(t, out)
}

func TestChain(t *testing.T) {
	// Stage 1: word count. Stage 2: bucket counts by value.
	histogram := &Job{
		Name: "hist",
		Map: func(key string, value []byte, emit Emit) error {
			emit(string(value), []byte("1"))
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
	out, ctrs, err := Chain(&Local{}, wordInput(), wordCountJob("wc", 2, false), histogram)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctrs) != 2 {
		t.Fatalf("counters = %d", len(ctrs))
	}
	// Word counts: brown/fox/lazy/jumps ->1, quick/dog ->2, the ->3.
	want := map[string]string{"1": "4", "2": "2", "3": "1"}
	for _, p := range out {
		if want[p.Key] != string(p.Value) {
			t.Fatalf("hist[%s] = %s, want %s", p.Key, p.Value, want[p.Key])
		}
	}
}

func TestDefaultPartitionInRange(t *testing.T) {
	f := func(key string, n uint8) bool {
		reducers := int(n%16) + 1
		p := DefaultPartition(key, reducers)
		return p >= 0 && p < reducers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Local word count is invariant to worker count, reducer
// count and split size.
func TestPropLocalDeterministicAcrossConfig(t *testing.T) {
	base, _, err := (&Local{Workers: 1}).Run(wordCountJob("wc", 1, false), wordInput())
	if err != nil {
		t.Fatal(err)
	}
	f := func(workers, reducers, split uint8) bool {
		job := wordCountJob("wc", int(reducers%5)+1, workers%2 == 0)
		job.SplitSize = int(split%4) + 1
		out, _, err := (&Local{Workers: int(workers%8) + 1}).Run(job, wordInput())
		if err != nil {
			return false
		}
		if len(out) != len(base) {
			return false
		}
		for i := range out {
			if out[i].Key != base[i].Key || string(out[i].Value) != string(base[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
