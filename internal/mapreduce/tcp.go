package mapreduce

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP executor splits a job across worker processes connected over
// real sockets, mirroring a Hadoop master/task-tracker deployment. Map
// and reduce functions cannot cross the wire, so — exactly like
// shipping the same jar to every Hadoop node — both master and workers
// must Register the jobs they will run; task messages carry only the
// job name and the records.

// Register makes a job available to TCP workers in this process. It
// must be called before RunWorker receives tasks for the job. Jobs are
// keyed by Name; re-registering a name replaces the previous job.
func Register(job *Job) {
	if job.Name == "" {
		//lint:ignore panicfree registration happens at process start-up; a nameless job is an API-misuse bug that must fail loudly before any task runs
		panic("mapreduce: Register needs a job Name")
	}
	registry.Store(job.Name, job)
}

var registry sync.Map // string -> *Job

func lookupJob(name string) (*Job, bool) {
	v, ok := registry.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Job), true
}

// taskMsg is one unit of work sent master -> worker.
type taskMsg struct {
	Seq     int
	JobName string
	Phase   string // "map" or "reduce"
	// Conf carries the factory configuration for closure-free jobs.
	Conf []byte
	// NumReducers tells map tasks how to partition their output.
	NumReducers int
	Records     []Pair
}

// resultMsg is the worker's reply.
type resultMsg struct {
	Seq int
	// Parts holds per-partition map output, or a single slice of
	// reduce output at index 0.
	Parts [][]Pair
	Err   string
}

// Default deadlines for the TCP executor. A hung or partitioned peer
// must never block the master (or a worker) forever; these bound every
// socket operation while leaving ample room for long-running tasks.
const (
	// DefaultDialTimeout bounds a worker's dial of the master.
	DefaultDialTimeout = 10 * time.Second
	// DefaultIOTimeout bounds one task exchange: the master's write of
	// the task, the worker's computation, and the read of the result.
	DefaultIOTimeout = 2 * time.Minute
)

// TCPConfig configures a TCP master (see NewMasterTCP).
type TCPConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// MinWorkers is how many workers must join before a job runs.
	MinWorkers int
	// DialTimeout bounds connection establishment on the worker side
	// and is advertised so deployment scripts can match it
	// (default DefaultDialTimeout).
	DialTimeout time.Duration
	// IOTimeout bounds each task exchange with a worker: the write of
	// the task message and the read of its result, which includes the
	// worker's compute time. A worker that exceeds it is treated as
	// failed and its task is re-queued (default DefaultIOTimeout).
	IOTimeout time.Duration
}

// withDefaults fills unset timeouts.
func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = DefaultIOTimeout
	}
	return c
}

// Master coordinates TCP workers and implements Executor. A Master
// runs one job at a time; concurrent Run calls are not supported.
type Master struct {
	ln  net.Listener
	cfg TCPConfig

	mu      sync.Mutex
	conns   []*workerConn
	joined  chan struct{} // signaled on each worker join and on Close
	closed  bool
	minJoin int
}

// NewMaster starts listening on addr (e.g. "127.0.0.1:0") and waits for
// minWorkers workers to join before running any job, with default
// timeouts. Use NewMasterTCP to tune the deadlines.
func NewMaster(addr string, minWorkers int) (*Master, error) {
	return NewMasterTCP(TCPConfig{Addr: addr, MinWorkers: minWorkers})
}

// NewMasterTCP starts a master from an explicit configuration.
func NewMasterTCP(cfg TCPConfig) (*Master, error) {
	if cfg.MinWorkers < 1 {
		return nil, errors.New("mapreduce: need at least one worker")
	}
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: listen: %w", err)
	}
	m := &Master{ln: ln, cfg: cfg, joined: make(chan struct{}, 1024), minJoin: cfg.MinWorkers}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

func (m *Master) acceptLoop() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			_ = conn.Close() // best-effort teardown of a late joiner
			return
		}
		// The gob codec pair must live as long as the connection: gob
		// streams are stateful, so a fresh encoder per job would resend
		// type definitions and corrupt the worker's decoder state.
		m.conns = append(m.conns, &workerConn{
			conn: conn,
			enc:  gob.NewEncoder(conn),
			dec:  gob.NewDecoder(conn),
		})
		m.mu.Unlock()
		select {
		case m.joined <- struct{}{}:
		default:
		}
	}
}

// Close shuts down the master and disconnects workers (their RunWorker
// calls return nil on the resulting EOF).
func (m *Master) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	err := m.ln.Close()
	for _, c := range m.conns {
		err = errors.Join(err, c.conn.Close())
	}
	m.conns = nil
	// Wake any Run call still waiting for workers to join.
	select {
	case m.joined <- struct{}{}:
	default:
	}
	return err
}

// ConnectedWorkers reports how many workers have joined, letting tests
// and deployment scripts wait for cluster spin-up.
func (m *Master) ConnectedWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.conns)
}

// workerConn serializes access to one worker socket.
type workerConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

func (m *Master) workers() []*workerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*workerConn(nil), m.conns...)
}

var _ ContextExecutor = (*Master)(nil)

// Run implements Executor: map tasks and reduce partitions are farmed
// out to connected workers; the shuffle happens on the master.
func (m *Master) Run(job *Job, input []Pair) ([]Pair, *Counters, error) {
	return m.RunContext(context.Background(), job, input)
}

// RunContext implements ContextExecutor. Cancelling the context aborts
// the job promptly — in-flight task exchanges are unblocked by forcing
// their socket deadlines — and closes the master: the gob streams of
// abandoned exchanges are unrecoverable, so a cancelled master cannot
// be reused (exactly like a master whose job failed).
func (m *Master) RunContext(ctx context.Context, job *Job, input []Pair) ([]Pair, *Counters, error) {
	if err := job.validate(); err != nil {
		return nil, nil, err
	}
	if _, ok := lookupJob(job.Name); !ok {
		if _, fok := factories.Load(job.Name); !fok || len(job.Conf) == 0 {
			return nil, nil, fmt.Errorf("mapreduce: job %q not registered on master", job.Name)
		}
	}
	// Wait until enough workers have joined.
	for {
		m.mu.Lock()
		n, closed := len(m.conns), m.closed
		m.mu.Unlock()
		if closed {
			return nil, nil, errors.New("mapreduce: master closed")
		}
		if n >= m.minJoin {
			break
		}
		select {
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, ctx.Err())
		case <-m.joined:
		}
	}
	workers := m.workers()
	numReducers := job.numReducers()
	ctr := &Counters{InputRecords: len(input), ReduceTasks: numReducers}

	// ---- map phase ----
	mapTasks := splits(input, job.splitSize())
	ctr.MapTasks = len(mapTasks)
	msgs := make([]taskMsg, len(mapTasks))
	for i, t := range mapTasks {
		msgs[i] = taskMsg{Seq: i, JobName: job.Name, Phase: "map", Conf: job.Conf, NumReducers: numReducers, Records: t}
	}
	mapResults, err := m.dispatch(ctx, workers, msgs)
	if err != nil {
		return nil, nil, err
	}
	partitions := make([][]Pair, numReducers)
	for _, res := range mapResults {
		for p, pairs := range res.Parts {
			if p >= numReducers {
				return nil, nil, fmt.Errorf("mapreduce: worker returned partition %d of %d", p, numReducers)
			}
			partitions[p] = append(partitions[p], pairs...)
			ctr.MapOutputs += len(pairs)
			for _, kv := range pairs {
				ctr.ShuffleBytes += int64(len(kv.Key) + len(kv.Value))
			}
		}
	}

	// ---- reduce phase ----
	rmsgs := make([]taskMsg, 0, numReducers)
	for p := 0; p < numReducers; p++ {
		rmsgs = append(rmsgs, taskMsg{Seq: p, JobName: job.Name, Phase: "reduce", Conf: job.Conf, Records: partitions[p]})
	}
	redResults, err := m.dispatch(ctx, workers, rmsgs)
	if err != nil {
		return nil, nil, err
	}
	var out []Pair
	for _, res := range redResults {
		if len(res.Parts) > 0 {
			out = append(out, res.Parts[0]...)
		}
	}
	sortPairs(out)
	ctr.OutputRecords = len(out)
	return out, ctr, nil
}

// dispatch fans tasks out to workers and collects one result per task.
// A failing worker is dropped and its in-flight task re-queued; dispatch
// fails only when no workers remain or the context is cancelled. On
// cancellation the in-flight exchanges are unblocked by expiring their
// socket deadlines, and the master is closed (see RunContext).
func (m *Master) dispatch(ctx context.Context, workers []*workerConn, tasks []taskMsg) ([]resultMsg, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	queue := make(chan taskMsg, len(tasks))
	for _, t := range tasks {
		queue <- t
	}
	results := make([]resultMsg, len(tasks))
	var (
		mu      sync.Mutex
		done    int
		failure error
		alive   = len(workers)
	)
	// Watchdog: a cancelled context force-expires every worker socket so
	// in-flight Encode/Decode calls return immediately.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, w := range workers {
				_ = w.conn.SetDeadline(time.Now())
			}
		case <-watchdogDone:
		}
	}()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerConn) {
			defer wg.Done()
			for {
				mu.Lock()
				finished := done == len(tasks) || failure != nil
				mu.Unlock()
				if finished || ctx.Err() != nil {
					return
				}
				var task taskMsg
				select {
				case task = <-queue:
				default:
					return // queue drained; remaining tasks are in flight elsewhere
				}
				res, err := w.exchange(task, m.cfg.IOTimeout)
				if err != nil {
					// Worker connection failed (or timed out, or the
					// context expired its deadline): requeue and retire.
					queue <- task
					mu.Lock()
					alive--
					if alive == 0 {
						failure = fmt.Errorf("mapreduce: all workers failed: last error: %w", err)
					}
					mu.Unlock()
					return
				}
				if res.Err != "" {
					mu.Lock()
					failure = fmt.Errorf("mapreduce: task %d: %s", task.Seq, res.Err)
					mu.Unlock()
					return
				}
				mu.Lock()
				results[task.Seq] = res
				done++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The abandoned gob streams are unusable; tear the master down so
		// workers see a clean disconnect rather than corrupt frames.
		_ = m.Close()
		return nil, fmt.Errorf("mapreduce: job cancelled: %w", err)
	}
	if failure != nil {
		return nil, failure
	}
	if done != len(tasks) {
		return nil, errors.New("mapreduce: dispatch finished with straggler tasks")
	}
	return results, nil
}

// exchange sends one task and reads its result, bounding both socket
// operations (and the worker's compute time in between) by ioTimeout.
func (w *workerConn) exchange(task taskMsg, ioTimeout time.Duration) (resultMsg, error) {
	var res resultMsg
	if err := w.conn.SetWriteDeadline(time.Now().Add(ioTimeout)); err != nil {
		return res, err
	}
	if err := w.enc.Encode(&task); err != nil {
		return res, err
	}
	if err := w.conn.SetReadDeadline(time.Now().Add(ioTimeout)); err != nil {
		return res, err
	}
	if err := w.dec.Decode(&res); err != nil {
		return res, err
	}
	return res, nil
}

// RunWorker connects to a master and serves tasks until the master
// closes the connection, at which point it returns nil. Jobs must have
// been Registered in this process.
func RunWorker(addr string) error {
	return RunWorkerContext(context.Background(), addr)
}

// RunWorkerContext connects to a master (bounded by DefaultDialTimeout)
// and serves tasks until the master closes the connection (returns nil)
// or ctx is cancelled (returns the context error). The idle wait for
// the next task is unbounded — a healthy master may simply have no work
// — but every result write is bounded by DefaultIOTimeout.
func RunWorkerContext(ctx context.Context, addr string) (err error) {
	dialer := net.Dialer{Timeout: DefaultDialTimeout}
	conn, derr := dialer.DialContext(ctx, "tcp", addr)
	if derr != nil {
		return fmt.Errorf("mapreduce: dial master: %w", derr)
	}
	defer func() { err = errors.Join(err, conn.Close()) }()
	// Watchdog: cancellation force-expires the socket so a blocked
	// Decode (idle worker) or Encode (mid-send) returns immediately.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-watchdogDone:
		}
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		var task taskMsg
		if derr := dec.Decode(&task); derr != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return nil // master closed the connection: clean shutdown
		}
		res := executeTask(task)
		if werr := conn.SetWriteDeadline(time.Now().Add(DefaultIOTimeout)); werr != nil {
			return fmt.Errorf("mapreduce: send result: %w", werr)
		}
		if werr := enc.Encode(&res); werr != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("mapreduce: send result: %w", werr)
		}
	}
}

// executeTask runs one map or reduce task against the local registry
// (or factory, for closure-free jobs).
func executeTask(task taskMsg) resultMsg {
	res := resultMsg{Seq: task.Seq}
	job, err := resolveJob(task.JobName, task.Conf)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	switch task.Phase {
	case "map":
		var local []Pair
		emit := func(k string, v []byte) { local = append(local, Pair{k, v}) }
		for _, rec := range task.Records {
			if err := job.Map(rec.Key, rec.Value, emit); err != nil {
				res.Err = err.Error()
				return res
			}
		}
		if job.Combine != nil {
			combined, err := runCombine(job.Combine, local)
			if err != nil {
				res.Err = err.Error()
				return res
			}
			local = combined
		}
		parts := make([][]Pair, task.NumReducers)
		for _, p := range local {
			idx := job.partition(p.Key)
			parts[idx] = append(parts[idx], p)
		}
		res.Parts = parts
	case "reduce":
		pairs := task.Records
		sortPairs(pairs)
		var out []Pair
		err := groupSorted(pairs, func(key string, values [][]byte) error {
			return job.Reduce(key, values, func(k string, v []byte) {
				out = append(out, Pair{k, v})
			})
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		res.Parts = [][]Pair{out}
	default:
		res.Err = fmt.Sprintf("unknown phase %q", task.Phase)
	}
	return res
}
