package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP executor splits a job across worker processes connected over
// real sockets, mirroring a Hadoop master/task-tracker deployment. Map
// and reduce functions cannot cross the wire, so — exactly like
// shipping the same jar to every Hadoop node — both master and workers
// must Register the jobs they will run; task messages carry only the
// job name and the records.
//
// Task traffic is pipelined: every connection has a writer goroutine
// and a reader goroutine sharing a bounded in-flight window
// (TCPConfig.MaxInFlight), so the master encodes task i+1 while the
// worker computes task i and the master decodes task i-1's result.
// The worker mirrors the split with a decode → compute → encode
// pipeline. Messages travel in the framing negotiated by the hello
// (see wire.go); results are matched to tasks by Seq.

// Register makes a job available to TCP workers in this process. It
// must be called before RunWorker receives tasks for the job. Jobs are
// keyed by Name; re-registering a name replaces the previous job.
func Register(job *Job) {
	if job.Name == "" {
		//lint:ignore panicfree registration happens at process start-up; a nameless job is an API-misuse bug that must fail loudly before any task runs
		panic("mapreduce: Register needs a job Name")
	}
	registry.Store(job.Name, job)
}

var registry sync.Map // string -> *Job

func lookupJob(name string) (*Job, bool) {
	v, ok := registry.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Job), true
}

// taskMsg is one unit of work sent master -> worker.
type taskMsg struct {
	Seq     int
	JobName string
	Phase   string // "map" or "reduce"
	// Conf carries the factory configuration for closure-free jobs.
	Conf []byte
	// NumReducers tells map tasks how to partition their output.
	NumReducers int
	Records     []Pair

	// Flags carries per-job wire options (taskFlag* bits, e.g. "compress
	// your result frames"). Zero for jobs without options, which keeps
	// gob streams and v2/v3 frame bytes identical to releases that
	// predate the field.
	Flags uint64

	// load lazily materializes Records just before the task is encoded
	// (nil for eagerly-built tasks). The spill-enabled master hands out
	// reduce partitions this way so that only the in-flight window's
	// partitions are ever resident; the copy queued for requeue keeps
	// load and nil Records, so a straggler re-dispatch re-merges from
	// the spill files. Unexported, so neither codec ships it.
	load func() ([]Pair, error)
}

// resultMsg is the worker's reply.
type resultMsg struct {
	Seq int
	// Parts holds per-partition map output (each partition key-sorted),
	// or a single key-sorted slice of reduce output at index 0.
	Parts [][]Pair
	Err   string

	// Shard meter snapshot (see SetShardMeter): the worker's
	// process-cumulative shard bytes read before (ShardStart) and after
	// (ShardEnd) this task, tagged with the worker's process token.
	// Populated only when the worker has read shard bytes at all, so
	// shard-free jobs keep their wire bytes identical to prior releases.
	ShardTok   uint64
	ShardStart int64
	ShardEnd   int64
}

// Default tuning for the TCP executor. A hung or partitioned peer must
// never block the master (or a worker) forever; the deadlines bound
// every socket operation while leaving ample room for long tasks.
const (
	// DefaultDialTimeout bounds a worker's dial of the master and the
	// hello handshake on both sides.
	DefaultDialTimeout = 10 * time.Second
	// DefaultIOTimeout bounds one task's wire round trip: the master's
	// write of the task, the worker's computation, and the read of the
	// result.
	DefaultIOTimeout = 2 * time.Minute
	// DefaultMaxInFlight is the per-connection pipelining window: how
	// many tasks may be outstanding on one worker socket.
	DefaultMaxInFlight = 4
	// workerPipelineDepth is how many decoded tasks / pending results
	// the worker buffers between its decode, compute, and encode stages.
	workerPipelineDepth = 2
)

// TCPConfig configures a TCP master (see NewMasterTCP).
type TCPConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// MinWorkers is how many workers must join before a job runs.
	MinWorkers int
	// DialTimeout bounds connection establishment on the worker side
	// and the hello handshake on both sides
	// (default DefaultDialTimeout).
	DialTimeout time.Duration
	// IOTimeout bounds each task exchange with a worker: the write of
	// the task message and, per in-flight task, the wait for its
	// result, which includes the worker's compute time. A worker that
	// exceeds it is treated as failed and its tasks are re-queued
	// (default DefaultIOTimeout).
	IOTimeout time.Duration
	// MaxInFlight caps the tasks pipelined on one worker connection.
	// 1 replays the original lock-step exchange; the default
	// (DefaultMaxInFlight) overlaps encode, compute, and decode.
	MaxInFlight int
	// MaxWireVersion caps the framing the hello may negotiate:
	// WireVersionGob forces the legacy gob stream, WireVersionFrames
	// pins the uncompressed v2 frames, 0 or WireVersionPacked (the
	// default) also allows v3's optional frame compression.
	MaxWireVersion int
}

// withDefaults fills unset tuning fields.
func (c TCPConfig) withDefaults() TCPConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.IOTimeout <= 0 {
		c.IOTimeout = DefaultIOTimeout
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxWireVersion <= 0 || c.MaxWireVersion > WireVersionLatest {
		c.MaxWireVersion = WireVersionLatest
	}
	return c
}

// Master coordinates TCP workers and implements Executor. A Master
// runs one job at a time; concurrent Run calls are not supported.
type Master struct {
	ln  net.Listener
	cfg TCPConfig

	mu      sync.Mutex
	conns   []*workerConn
	joined  chan struct{} // signaled on each worker join and on Close
	closed  bool
	minJoin int
}

// NewMaster starts listening on addr (e.g. "127.0.0.1:0") and waits for
// minWorkers workers to join before running any job, with default
// tuning. Use NewMasterTCP to adjust deadlines, the pipelining window,
// or the wire version.
func NewMaster(addr string, minWorkers int) (*Master, error) {
	return NewMasterTCP(TCPConfig{Addr: addr, MinWorkers: minWorkers})
}

// NewMasterTCP starts a master from an explicit configuration.
func NewMasterTCP(cfg TCPConfig) (*Master, error) {
	if cfg.MinWorkers < 1 {
		return nil, errors.New("mapreduce: need at least one worker")
	}
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("mapreduce: listen: %w", err)
	}
	m := &Master{ln: ln, cfg: cfg, joined: make(chan struct{}, 1024), minJoin: cfg.MinWorkers}
	go m.acceptLoop()
	return m, nil
}

// Addr returns the address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

func (m *Master) acceptLoop() {
	for {
		conn, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Handshake off the accept loop so a slow or bogus dialer cannot
		// block other joins; the join signal doubles as the goroutine's
		// completion signal.
		go func(conn net.Conn) {
			st := &wireStats{}
			v, herr := acceptHello(conn, byte(m.cfg.MaxWireVersion), m.cfg.DialTimeout, st)
			if herr != nil {
				_ = conn.Close() // not a worker; drop silently
				return
			}
			cdc, cerr := newCodec(conn, v, st)
			if cerr != nil {
				_ = conn.Close()
				return
			}
			w := &workerConn{conn: conn, cdc: cdc, st: st, version: v}
			m.mu.Lock()
			if m.closed {
				m.mu.Unlock()
				_ = conn.Close() // best-effort teardown of a late joiner
				return
			}
			m.conns = append(m.conns, w)
			m.mu.Unlock()
			select {
			case m.joined <- struct{}{}:
			default:
			}
		}(conn)
	}
}

// Close shuts down the master and disconnects workers (their RunWorker
// calls return nil on the resulting EOF).
func (m *Master) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	err := m.ln.Close()
	for _, c := range m.conns {
		err = errors.Join(err, c.conn.Close())
	}
	m.conns = nil
	// Wake any Run call still waiting for workers to join.
	select {
	case m.joined <- struct{}{}:
	default:
	}
	return err
}

// ConnectedWorkers reports how many workers have joined, letting tests
// and deployment scripts wait for cluster spin-up.
func (m *Master) ConnectedWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.conns)
}

// workerConn is one negotiated worker socket. The pipelined dispatcher
// writes tasks and reads results from separate goroutines; net.Conn
// and the codec both support that split.
type workerConn struct {
	conn    net.Conn
	cdc     codec
	st      *wireStats
	version byte
}

func (m *Master) workers() []*workerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*workerConn(nil), m.conns...)
}

var _ ContextExecutor = (*Master)(nil)

// Run implements Executor: map tasks and reduce partitions are farmed
// out to connected workers; the shuffle happens on the master.
func (m *Master) Run(job *Job, input []Pair) ([]Pair, *Counters, error) {
	return m.RunContext(context.Background(), job, input)
}

// RunContext implements ContextExecutor. Cancelling the context aborts
// the job promptly — in-flight task exchanges are unblocked by forcing
// their socket deadlines — and closes the master: the byte streams of
// abandoned exchanges are unrecoverable, so a cancelled master cannot
// be reused (exactly like a master whose job failed).
func (m *Master) RunContext(ctx context.Context, job *Job, input []Pair) (_ []Pair, _ *Counters, err error) {
	if err := job.validate(); err != nil {
		return nil, nil, err
	}
	if _, ok := lookupJob(job.Name); !ok {
		if _, fok := factories.Load(job.Name); !fok || len(job.Conf) == 0 {
			return nil, nil, fmt.Errorf("mapreduce: job %q not registered on master", job.Name)
		}
	}
	// Wait until enough workers have joined.
	for {
		m.mu.Lock()
		n, closed := len(m.conns), m.closed
		m.mu.Unlock()
		if closed {
			return nil, nil, errors.New("mapreduce: master closed")
		}
		if n >= m.minJoin {
			break
		}
		select {
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, ctx.Err())
		case <-m.joined:
		}
	}
	workers := m.workers()
	numReducers := job.numReducers()
	ctr := &Counters{InputRecords: len(input), ReduceTasks: numReducers}
	// Frame compression is per-job: arm every connection's codec for
	// task frames out, and tell workers (taskFlagCompress) to compress
	// result frames back. v1/v2 peers ignore both.
	var taskFlags uint64
	if job.Compress {
		taskFlags |= taskFlagCompress
	}
	for _, w := range workers {
		w.cdc.setCompress(job.Compress)
	}
	wireBefore := sumWireStats(workers)

	// ---- map phase ----
	// With Job.SpillBytes set, map results are drained to the spill
	// manager as they arrive (the sink runs inside complete, so the
	// master never holds more than the in-flight window's results), and
	// reduce partitions are later re-merged from the runs lazily, one
	// in-flight task at a time.
	var ss *spillSet
	var sink func(*resultMsg) error
	sunkOutputs := 0
	if job.SpillBytes > 0 {
		ss = newSpillSet(numReducers, job.SpillBytes, job.Compress)
		defer func() { err = errors.Join(err, ss.Close()) }()
		sink = func(res *resultMsg) error {
			if len(res.Parts) > numReducers {
				return fmt.Errorf("worker returned partition %d of %d", len(res.Parts)-1, numReducers)
			}
			for _, pairs := range res.Parts {
				sunkOutputs += len(pairs)
			}
			return ss.add(res.Seq, res.Parts)
		}
	}
	mapTasks := splits(input, job.splitSize())
	ctr.MapTasks = len(mapTasks)
	msgs := make([]taskMsg, len(mapTasks))
	for i, t := range mapTasks {
		msgs[i] = taskMsg{Seq: i, JobName: job.Name, Phase: "map", Conf: job.Conf, NumReducers: numReducers, Records: t, Flags: taskFlags}
	}
	mapResults, err := m.dispatch(ctx, workers, msgs, sink)
	if err != nil {
		return nil, nil, err
	}
	// The shuffle bytes are the map-result frames that just crossed the
	// wire — actual encoded bytes, not the key+value approximation.
	ctr.ShuffleBytes = sumWireStats(workers).bytesIn - wireBefore.bytesIn

	// ---- shuffle + reduce dispatch ----
	rmsgs := make([]taskMsg, 0, numReducers)
	if ss != nil {
		ctr.MapOutputs = sunkOutputs
		if serr := ss.seal(); serr != nil {
			return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, serr)
		}
		for p := 0; p < numReducers; p++ {
			p := p
			rmsgs = append(rmsgs, taskMsg{Seq: p, JobName: job.Name, Phase: "reduce", Conf: job.Conf, Flags: taskFlags,
				load: func() ([]Pair, error) { return ss.materialize(p) }})
		}
	} else {
		// In-memory shuffle: per-partition k-way merge of the map-side
		// runs, all partitions resident before dispatch.
		for _, res := range mapResults {
			if len(res.Parts) > numReducers {
				return nil, nil, fmt.Errorf("mapreduce: worker returned partition %d of %d", len(res.Parts)-1, numReducers)
			}
			for _, pairs := range res.Parts {
				ctr.MapOutputs += len(pairs)
			}
		}
		partitions := make([][]Pair, numReducers)
		var shuffleWG sync.WaitGroup
		for p := 0; p < numReducers; p++ {
			shuffleWG.Add(1)
			go func(p int) {
				defer shuffleWG.Done()
				runs := make([][]Pair, 0, len(mapResults))
				for _, res := range mapResults {
					if p < len(res.Parts) && len(res.Parts[p]) > 0 {
						runs = append(runs, res.Parts[p])
					}
				}
				partitions[p] = MergeRuns(runs)
			}(p)
		}
		shuffleWG.Wait()
		for p := 0; p < numReducers; p++ {
			rmsgs = append(rmsgs, taskMsg{Seq: p, JobName: job.Name, Phase: "reduce", Conf: job.Conf, Records: partitions[p], Flags: taskFlags})
		}
	}

	// ---- reduce phase ----
	redResults, err := m.dispatch(ctx, workers, rmsgs, nil)
	if err != nil {
		return nil, nil, err
	}
	// Workers return reduce output key-sorted; assembly is the same
	// tie-broken merge, in partition order.
	outRuns := make([][]Pair, 0, len(redResults))
	for _, res := range redResults {
		if len(res.Parts) > 0 && len(res.Parts[0]) > 0 {
			outRuns = append(outRuns, res.Parts[0])
		}
	}
	out := MergeRuns(outRuns)
	ctr.OutputRecords = len(out)

	wireAfter := sumWireStats(workers)
	ctr.WireBytesOut = wireAfter.bytesOut - wireBefore.bytesOut
	ctr.WireBytesIn = wireAfter.bytesIn - wireBefore.bytesIn
	ctr.EncodeNanos = wireAfter.encodeNanos - wireBefore.encodeNanos
	ctr.DecodeNanos = wireAfter.decodeNanos - wireBefore.decodeNanos
	ctr.CompressedBytes = wireAfter.compressSaved - wireBefore.compressSaved
	ctr.CompressNanos = wireAfter.compressNanos - wireBefore.compressNanos
	if ss != nil {
		var raw int64
		ctr.SpillBytes, raw, ctr.SpillNanos = ss.stats()
		ctr.CompressedBytes += raw - ctr.SpillBytes
	}
	ctr.ShardReadBytes += foreignShardBytes(mapResults, redResults)
	return out, ctr, nil
}

// foreignShardBytes folds the shard meters external workers shipped on
// their results into one byte count. Each worker process reports its
// cumulative meter around every task; per foreign token the span
// max(end)-min(start) over the whole job is that process's reads while
// it worked for us. Reports stamped with this process's own token are
// skipped — those workers share the driver's meter, which the sharded
// driver reads directly.
func foreignShardBytes(phases ...[]resultMsg) int64 {
	spans := make(map[uint64][2]int64)
	for _, results := range phases {
		for _, res := range results {
			if res.ShardTok == 0 || res.ShardTok == processToken {
				continue
			}
			span, seen := spans[res.ShardTok]
			if !seen {
				span = [2]int64{res.ShardStart, res.ShardEnd}
			} else {
				span[0] = min(span[0], res.ShardStart)
				span[1] = max(span[1], res.ShardEnd)
			}
			spans[res.ShardTok] = span
		}
	}
	var total int64
	for _, span := range spans {
		if span[1] > span[0] {
			total += span[1] - span[0]
		}
	}
	return total
}

// wireSnapshot is a point-in-time sum of per-connection wireStats.
type wireSnapshot struct {
	bytesOut, bytesIn, encodeNanos, decodeNanos int64
	compressSaved, compressNanos                int64
}

func sumWireStats(workers []*workerConn) wireSnapshot {
	var s wireSnapshot
	for _, w := range workers {
		s.bytesOut += w.st.bytesOut.Load()
		s.bytesIn += w.st.bytesIn.Load()
		s.encodeNanos += w.st.encodeNanos.Load()
		s.decodeNanos += w.st.decodeNanos.Load()
		s.compressSaved += w.st.compressSaved.Load()
		s.compressNanos += w.st.compressNanos.Load()
	}
	return s
}

// dispatchState is the bookkeeping one dispatch call shares across all
// worker connections.
type dispatchState struct {
	queue   chan taskMsg // undispatched tasks; capacity covers every requeue
	results []resultMsg
	// sink, when set, consumes each successful result's Parts as it
	// lands (under mu, so calls are serialized) and the stored result
	// keeps only its Seq — the spill-enabled master drains map output
	// to disk here instead of holding every task's runs resident.
	sink func(*resultMsg) error

	mu        sync.Mutex
	done      int
	alive     int
	failure   error
	phaseDone chan struct{} // closed on completion, failure, or last death
	closed    bool
}

func (d *dispatchState) closePhase() {
	if !d.closed {
		d.closed = true
		close(d.phaseDone)
	}
}

// requeue returns a task to the queue for another worker. The queue's
// capacity is the task count and every task is in at most one place —
// the queue, a writer's hand, or an in-flight window — so the buffered
// send cannot block.
func (d *dispatchState) requeue(t taskMsg) {
	d.queue <- t
}

func (d *dispatchState) complete(res resultMsg) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if res.Err != "" {
		if d.failure == nil {
			d.failure = fmt.Errorf("mapreduce: task %d: %s", res.Seq, res.Err)
		}
		d.closePhase()
		return
	}
	if d.sink != nil {
		if err := d.sink(&res); err != nil {
			if d.failure == nil {
				d.failure = fmt.Errorf("mapreduce: task %d result: %w", res.Seq, err)
			}
			d.closePhase()
			return
		}
		res.Parts = nil
	}
	d.results[res.Seq] = res
	d.done++
	if d.done == len(d.results) {
		d.closePhase()
	}
}

// fail records a master-side error (e.g. a reduce partition that could
// not be re-merged from its spill files) and ends the phase.
func (d *dispatchState) fail(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failure == nil {
		d.failure = err
	}
	d.closePhase()
}

// workerGone retires a dead connection; the job fails only when no
// workers remain and work is still outstanding.
func (d *dispatchState) workerGone(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.alive--
	if d.alive == 0 && d.done < len(d.results) && d.failure == nil {
		d.failure = fmt.Errorf("mapreduce: all workers failed: last error: %w", err)
		d.closePhase()
	}
}

// dispatch fans tasks out to workers and collects one result per task,
// pipelining up to MaxInFlight tasks per connection. A failing worker
// is dropped and its in-flight tasks re-queued for the survivors, who
// keep serving the queue until every task completes — a momentarily
// empty queue is not the end of the phase, because a failing peer may
// still return its tasks. Dispatch fails only when a task reports an
// error, no workers remain, or the context is cancelled; cancellation
// unblocks in-flight socket operations by expiring their deadlines and
// closes the master (see RunContext).
func (m *Master) dispatch(ctx context.Context, workers []*workerConn, tasks []taskMsg, sink func(*resultMsg) error) ([]resultMsg, error) {
	if len(tasks) == 0 {
		return nil, nil
	}
	d := &dispatchState{
		queue:     make(chan taskMsg, len(tasks)),
		results:   make([]resultMsg, len(tasks)),
		sink:      sink,
		alive:     len(workers),
		phaseDone: make(chan struct{}),
	}
	for _, t := range tasks {
		d.queue <- t
	}
	// Watchdog: a cancelled context force-expires every worker socket so
	// in-flight reads and writes return immediately.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			for _, w := range workers {
				_ = w.conn.SetDeadline(time.Now())
			}
		case <-watchdogDone:
		}
	}()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *workerConn) {
			defer wg.Done()
			m.runConn(w, d)
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The abandoned streams are unusable; tear the master down so
		// workers see a clean disconnect rather than corrupt frames.
		_ = m.Close()
		return nil, fmt.Errorf("mapreduce: job cancelled: %w", err)
	}
	d.mu.Lock()
	failure, done := d.failure, d.done
	d.mu.Unlock()
	if failure != nil {
		return nil, failure
	}
	if done != len(tasks) {
		return nil, errors.New("mapreduce: dispatch finished with straggler tasks")
	}
	return d.results, nil
}

// runConn drives one worker connection for one phase: a writer (this
// goroutine) pulls tasks from the shared queue and encodes them, a
// reader decodes results; a window semaphore bounds the tasks in
// flight between them. Either side failing closes the socket, which
// unblocks the other; whatever tasks were still in flight are
// re-queued once both sides have stopped.
func (m *Master) runConn(w *workerConn, d *dispatchState) {
	window := m.cfg.MaxInFlight
	inflight := make(chan taskMsg, window) // FIFO of tasks awaiting results
	sem := make(chan struct{}, window)     // window slots; released per result
	readerDead := make(chan struct{})
	var readErr error // written by the reader before readerDead closes

	go func() { // reader
		defer close(readerDead)
		for {
			t, ok := <-inflight
			if !ok {
				return // writer finished cleanly and nothing is in flight
			}
			var res resultMsg
			err := w.conn.SetReadDeadline(time.Now().Add(m.cfg.IOTimeout))
			if err == nil {
				_, err = w.cdc.readResult(&res)
			}
			if err == nil && res.Seq != t.Seq {
				err = fmt.Errorf("mapreduce: worker answered task %d with result %d", t.Seq, res.Seq)
			}
			if err != nil {
				d.requeue(t)
				readErr = err
				return
			}
			d.complete(res)
			<-sem
		}
	}()

	var writeErr error
writerLoop:
	for {
		var t taskMsg
		select {
		case t = <-d.queue:
		case <-d.phaseDone:
			break writerLoop
		case <-readerDead:
			break writerLoop
		}
		select {
		case sem <- struct{}{}:
		case <-d.phaseDone:
			d.requeue(t)
			break writerLoop
		case <-readerDead:
			d.requeue(t)
			break writerLoop
		}
		inflight <- t // capacity == window, and sem holds a slot: never blocks
		wt := t
		if t.load != nil {
			// Materialize the lazily-loaded records for encoding only; the
			// in-flight copy stays unmaterialized so a requeue re-merges
			// from disk instead of pinning the partition in memory. A load
			// failure is a master-side disk error, not this worker's fault:
			// fail the phase rather than retrying the task elsewhere.
			recs, lerr := t.load()
			if lerr != nil {
				d.fail(fmt.Errorf("mapreduce: task %d load: %w", t.Seq, lerr))
				// Fall through the write-error teardown so the socket close
				// unblocks this connection's reader promptly; the phase
				// failure above is what dispatch reports.
				writeErr = lerr
				break
			}
			wt.Records = recs
		}
		writeErr = w.conn.SetWriteDeadline(time.Now().Add(m.cfg.IOTimeout))
		if writeErr == nil {
			_, writeErr = w.cdc.writeTask(&wt)
		}
		if writeErr != nil {
			// The task is in the in-flight FIFO; the teardown below
			// requeues it after the reader stops.
			break
		}
	}
	close(inflight)
	if writeErr != nil {
		// Unblock the reader (it may be waiting on a result that will
		// never come) and let it observe the closed channel.
		_ = w.conn.Close()
	}
	<-readerDead
	// Both sides have stopped: requeue everything still in flight.
	for t := range inflight {
		d.requeue(t)
	}
	if err := errors.Join(writeErr, readErr); err != nil {
		_ = w.conn.Close()
		d.workerGone(err)
	}
}

// RunWorker connects to a master and serves tasks until the master
// closes the connection, at which point it returns nil. Jobs must have
// been Registered in this process.
func RunWorker(addr string) error {
	return RunWorkerContext(context.Background(), addr)
}

// RunWorkerContext connects to a master (bounded by DefaultDialTimeout,
// which also bounds the hello handshake) and serves tasks until the
// master closes the connection (returns nil) or ctx is cancelled
// (returns the context error). Decode, compute, and encode run as a
// three-stage pipeline so the worker deserializes the next task and
// serializes the previous result while the current task computes. The
// idle wait for the next task is unbounded — a healthy master may
// simply have no work — but every result write is bounded by
// DefaultIOTimeout.
func RunWorkerContext(ctx context.Context, addr string) (err error) {
	dialer := net.Dialer{Timeout: DefaultDialTimeout}
	conn, derr := dialer.DialContext(ctx, "tcp", addr)
	if derr != nil {
		return fmt.Errorf("mapreduce: dial master: %w", derr)
	}
	defer func() { err = errors.Join(err, conn.Close()) }()
	st := &wireStats{}
	version, herr := sendHello(conn, WireVersionLatest, DefaultDialTimeout, st)
	if herr != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return herr
	}
	cdc, cerr := newCodec(conn, version, st)
	if cerr != nil {
		return cerr
	}
	// Watchdog: cancellation force-expires the socket so a blocked
	// read (idle worker) or write (mid-send) returns immediately.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			_ = conn.SetDeadline(time.Now())
		case <-watchdogDone:
		}
	}()

	tasks := make(chan taskMsg, workerPipelineDepth)
	results := make(chan resultMsg, workerPipelineDepth)
	var encodeErr error
	encodeDone := make(chan struct{})

	go func() { // decoder: socket -> tasks
		defer close(tasks)
		for {
			var task taskMsg
			if _, derr := cdc.readTask(&task); derr != nil {
				// Master closed the stream (clean shutdown), the
				// watchdog expired the socket, or the encoder closed the
				// connection after its own failure; the compute loop's
				// exit path reports whichever applies.
				return
			}
			tasks <- task
		}
	}()
	go func() { // encoder: results -> socket
		defer close(encodeDone)
		for res := range results {
			if encodeErr != nil {
				continue // drain so the compute loop never blocks
			}
			if werr := conn.SetWriteDeadline(time.Now().Add(DefaultIOTimeout)); werr != nil {
				encodeErr = werr
			} else if _, werr := cdc.writeResult(&res); werr != nil {
				encodeErr = werr
			}
			if encodeErr != nil {
				// Error the decoder out too: without a working result
				// path, accepting more tasks only wastes master time.
				_ = conn.Close()
			}
		}
	}()
	for task := range tasks { // compute
		if ctx.Err() != nil {
			continue // drain without computing; the ctx error is returned below
		}
		// Mirror the job's compression choice onto result frames. The
		// codec flag is atomic: the encoder goroutine may be mid-write
		// for an earlier task, and any v3 peer decodes 'C' frames
		// whether or not it asked for them.
		cdc.setCompress(task.Flags&taskFlagCompress != 0)
		results <- executeTask(task)
	}
	close(results)
	<-encodeDone
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	if encodeErr != nil {
		return fmt.Errorf("mapreduce: send result: %w", encodeErr)
	}
	return nil // master closed the connection: clean shutdown
}

// executeTask runs one map or reduce task against the local registry
// (or factory, for closure-free jobs). The registered shard meter is
// sampled around the task; a nonzero end stamps the result with this
// process's meter span so a master in another process can account the
// reads (see SetShardMeter).
func executeTask(task taskMsg) (res resultMsg) {
	res = resultMsg{Seq: task.Seq}
	meterStart := shardMeterNow()
	defer func() {
		if end := shardMeterNow(); end > 0 {
			res.ShardTok = workerShardToken
			res.ShardStart = meterStart
			res.ShardEnd = end
		}
	}()
	job, err := resolveJob(task.JobName, task.Conf)
	if err != nil {
		res.Err = err.Error()
		return res
	}
	switch task.Phase {
	case "map":
		var local []Pair
		emit := func(k string, v []byte) { local = append(local, Pair{k, v}) }
		for _, rec := range task.Records {
			if err := job.Map(rec.Key, rec.Value, emit); err != nil {
				res.Err = err.Error()
				return res
			}
		}
		if job.Combine != nil {
			combined, err := runCombine(job.Combine, local)
			if err != nil {
				res.Err = err.Error()
				return res
			}
			local = combined
		}
		res.Parts = partitionSorted(job, task.NumReducers, local)
	case "reduce":
		pairs := task.Records
		sortPairs(pairs) // master pre-merges, so this is the O(n) fast path
		var out []Pair
		err := groupSorted(pairs, func(key string, values [][]byte) error {
			return job.Reduce(key, values, func(k string, v []byte) {
				out = append(out, Pair{k, v})
			})
		})
		if err != nil {
			res.Err = err.Error()
			return res
		}
		// Sort the output here, in parallel across workers, so the
		// master's final assembly is a pure merge.
		sortPairs(out)
		res.Parts = [][]Pair{out}
	default:
		res.Err = fmt.Sprintf("unknown phase %q", task.Phase)
	}
	return res
}
