package mapreduce

import (
	"encoding/binary"
	"errors"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
)

// scaleJobFactory builds a job that multiplies integer values by the
// factor carried in its Conf — a minimal closure-free job.
func scaleJobFactory(conf []byte) (*Job, error) {
	if len(conf) != 4 {
		return nil, errors.New("want 4-byte conf")
	}
	factor := int(binary.LittleEndian.Uint32(conf))
	return &Job{
		NumReducers: 2,
		Map: func(key string, value []byte, emit Emit) error {
			v, err := strconv.Atoi(string(value))
			if err != nil {
				return err
			}
			emit(key, []byte(strconv.Itoa(v*factor)))
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(string(v))
				if err != nil {
					return err
				}
				total += n
			}
			emit(key, []byte(strconv.Itoa(total)))
			return nil
		},
	}, nil
}

func confFor(factor int) []byte {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(factor))
	return buf[:]
}

func TestFactoryJobOverTCP(t *testing.T) {
	RegisterFactory("factory-scale", scaleJobFactory)
	m, stop := startCluster(t, 2)
	defer stop()

	input := []Pair{
		{Key: "a", Value: []byte("1")},
		{Key: "a", Value: []byte("2")},
		{Key: "b", Value: []byte("5")},
	}
	for _, factor := range []int{2, 10} {
		job, err := scaleJobFactory(confFor(factor))
		if err != nil {
			t.Fatal(err)
		}
		job.Name = "factory-scale"
		job.Conf = confFor(factor)
		out, _, err := m.Run(job, input)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]int{"a": 3 * factor, "b": 5 * factor}
		for _, p := range out {
			got, _ := strconv.Atoi(string(p.Value))
			if got != want[p.Key] {
				t.Fatalf("factor %d: %s = %d, want %d", factor, p.Key, got, want[p.Key])
			}
		}
	}
}

func TestFactoryMissingOnMaster(t *testing.T) {
	m, stop := startCluster(t, 1)
	defer stop()
	job, _ := scaleJobFactory(confFor(2))
	job.Name = "never-a-factory"
	job.Conf = confFor(2)
	_, _, err := m.Run(job, []Pair{{Key: "x", Value: []byte("1")}})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestFactoryConfErrorSurfaces(t *testing.T) {
	RegisterFactory("factory-bad-conf", scaleJobFactory)
	m, stop := startCluster(t, 1)
	defer stop()
	job, _ := scaleJobFactory(confFor(1))
	job.Name = "factory-bad-conf"
	job.Conf = []byte("short") // 5 bytes: factory rejects on the worker
	_, _, err := m.Run(job, []Pair{{Key: "x", Value: []byte("1")}})
	if err == nil || !strings.Contains(err.Error(), "4-byte conf") {
		t.Fatalf("err = %v", err)
	}
}

func TestFactoryBuildCached(t *testing.T) {
	var builds atomic.Int32
	RegisterFactory("factory-counted", func(conf []byte) (*Job, error) {
		builds.Add(1)
		return scaleJobFactory(conf)
	})
	conf := confFor(3)
	j1, err := resolveJob("factory-counted", conf)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := resolveJob("factory-counted", conf)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("same conf must return the cached job")
	}
	if builds.Load() != 1 {
		t.Fatalf("factory ran %d times, want 1", builds.Load())
	}
	// A different conf builds a fresh job.
	if _, err := resolveJob("factory-counted", confFor(4)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 2 {
		t.Fatalf("factory ran %d times, want 2", builds.Load())
	}
}

func TestRegisterFactoryRequiresName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RegisterFactory("", scaleJobFactory)
}
