package mapreduce

// Spill-to-disk sorted runs: the out-of-core half of the merge shuffle.
//
// When Job.SpillBytes > 0, the executor buffers map-side sorted runs in
// memory only up to that budget (Hadoop's io.sort.mb analogue, measured
// as the runs' on-disk record size). Exceeding it flushes every
// buffered run to disk: each reduce partition owns ONE spill file and a
// flushed run becomes a (seq, offset, length) segment appended to that
// file, so the open-file count stays at the partition count no matter
// how many map tasks spill. Records are framed exactly like the wire
// codec's string/bytes fields — uvarint key length, key bytes, uvarint
// value length, value bytes — so a segment is a byte-for-byte
// length-prefixed run file.
//
// Reading back streams each segment through an io.SectionReader, one
// buffered record at a time; the k-way merge (MergeRunReaders) then
// consumes file-backed and still-buffered runs uniformly through the
// RunReader interface, ordered by map-task Seq. A spilled run holds the
// same pairs in the same order as its in-memory original, and the merge
// breaks ties by run order, so spilling can never change a job's
// output: the shuffle's determinism contract (see merge.go) is
// preserved bit for bit at any SpillBytes.

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// RunReader streams one key-sorted run of pairs. Next returns io.EOF
// after the last pair; Close releases whatever backs the run and must
// be called on every reader, on error paths included.
type RunReader interface {
	Next() (Pair, error)
	Close() error
}

// SliceRun wraps an in-memory key-sorted run as a RunReader.
func SliceRun(pairs []Pair) RunReader { return &sliceRun{pairs: pairs} }

type sliceRun struct {
	pairs []Pair
	i     int
}

func (r *sliceRun) Next() (Pair, error) {
	if r.i == len(r.pairs) {
		return Pair{}, io.EOF
	}
	p := r.pairs[r.i]
	r.i++
	return p, nil
}

func (r *sliceRun) Close() error { return nil }

// appendRunRecord appends one pair in the on-disk run framing — the
// same uvarint-length-prefixed layout the wire codec uses for its
// string and bytes fields.
func appendRunRecord(buf []byte, p Pair) []byte {
	buf = appendWireString(buf, p.Key)
	buf = appendWireBytes(buf, p.Value)
	return buf
}

// pairDiskBytes is a pair's framed size on disk; the spill budget is
// accounted in these units so the budget bounds real file bytes.
func pairDiskBytes(p Pair) int64 {
	return int64(uvarintLen(uint64(len(p.Key)))) + int64(len(p.Key)) +
		int64(uvarintLen(uint64(len(p.Value)))) + int64(len(p.Value))
}

// fileRun streams one spilled segment's records back. It reads through
// its own buffered view of the shared partition file (io.SectionReader
// wraps ReadAt, so concurrent fileRuns never disturb each other); a
// clean io.EOF on the leading uvarint is the end of the segment, while
// a truncated record surfaces as io.ErrUnexpectedEOF. Packed segments
// interpose a flate reader, so record framing past it is identical.
type fileRun struct {
	br *bufio.Reader
	zc io.Closer // the flate reader of a packed segment, else nil
}

func newFileRun(f *os.File, off, length int64) *fileRun {
	return &fileRun{br: bufio.NewReaderSize(io.NewSectionReader(f, off, length), 32*1024)}
}

func newPackedFileRun(f *os.File, off, length int64) *fileRun {
	zr := flate.NewReader(bufio.NewReaderSize(io.NewSectionReader(f, off, length), 32*1024))
	return &fileRun{br: bufio.NewReaderSize(zr, 32*1024), zc: zr}
}

func (r *fileRun) Next() (Pair, error) {
	klen, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return Pair{}, io.EOF
		}
		return Pair{}, fmt.Errorf("mapreduce: spill run key length: %w", err)
	}
	if klen > maxFrameBody {
		return Pair{}, fmt.Errorf("mapreduce: spill run key length %d too large", klen)
	}
	key := make([]byte, klen)
	if _, err := io.ReadFull(r.br, key); err != nil {
		return Pair{}, fmt.Errorf("mapreduce: spill run key: %w", noEOF(err))
	}
	vlen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return Pair{}, fmt.Errorf("mapreduce: spill run value length: %w", noEOF(err))
	}
	if vlen > maxFrameBody {
		return Pair{}, fmt.Errorf("mapreduce: spill run value length %d too large", vlen)
	}
	val := make([]byte, vlen)
	if _, err := io.ReadFull(r.br, val); err != nil {
		return Pair{}, fmt.Errorf("mapreduce: spill run value: %w", noEOF(err))
	}
	return Pair{Key: string(key), Value: val}, nil
}

func (r *fileRun) Close() error { // the spillSet owns the file
	if r.zc != nil {
		return r.zc.Close()
	}
	return nil
}

// noEOF upgrades a bare io.EOF inside a record to ErrUnexpectedEOF so
// it cannot be mistaken for a clean end of run.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// memRun is one map task's still-buffered sorted run for a partition.
type memRun struct {
	seq   int
	pairs []Pair
}

// segment is one spilled run inside a partition's spill file. n is the
// segment's on-disk length — the deflated length when packed.
type segment struct {
	seq    int
	off, n int64
	packed bool
}

// spillPartition is one reduce partition's spill state: at most one
// open file (segments append to it) plus the runs still in memory.
type spillPartition struct {
	f    *os.File
	w    *bufio.Writer
	off  int64
	mem  []memRun
	segs []segment
}

// spillSet is the executor-side spill manager for one job: it buffers
// map-side sorted runs per reduce partition under a byte budget,
// flushing every buffered run to the partitions' spill files when the
// budget is exceeded. add may be called concurrently (TCP results land
// from per-connection reader goroutines); reads happen after seal.
type spillSet struct {
	budget int64
	// compress deflates each run on flush (one flate stream per
	// segment). The budget, flush points, segment seqs, and therefore
	// the merge's tie-break order are all accounted in raw framed bytes
	// and do not change — only the file bytes do.
	compress bool

	mu       sync.Mutex
	dir      string // created lazily on first flush
	parts    []spillPartition
	buffered int64 // framed bytes of all in-memory runs

	spillBytes    int64 // bytes written to spill files (deflated when compress)
	spillRawBytes int64 // framed record bytes before compression
	spillNanos    int64
}

func newSpillSet(numPartitions int, budget int64, compress bool) *spillSet {
	return &spillSet{budget: budget, compress: compress, parts: make([]spillPartition, numPartitions)}
}

// add registers one map task's per-partition sorted runs under its task
// sequence number and flushes everything buffered if the budget is now
// exceeded. The runs are retained (not copied) until flushed.
func (s *spillSet) add(seq int, parts [][]Pair) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(parts) > len(s.parts) {
		return fmt.Errorf("mapreduce: spill: %d partitions for %d reducers", len(parts), len(s.parts))
	}
	for p, run := range parts {
		if len(run) == 0 {
			continue
		}
		s.parts[p].mem = append(s.parts[p].mem, memRun{seq: seq, pairs: run})
		for _, kv := range run {
			s.buffered += pairDiskBytes(kv)
		}
	}
	if s.buffered > s.budget {
		return s.flushLocked()
	}
	return nil
}

// flushLocked writes every buffered run out as a new segment of its
// partition's spill file. Called with s.mu held.
func (s *spillSet) flushLocked() error {
	start := time.Now()
	if s.dir == "" {
		dir, err := os.MkdirTemp("", "dasc-spill-*")
		if err != nil {
			return fmt.Errorf("mapreduce: spill dir: %w", err)
		}
		s.dir = dir
	}
	var buf []byte
	for p := range s.parts {
		sp := &s.parts[p]
		if len(sp.mem) == 0 {
			continue
		}
		if sp.f == nil {
			f, err := os.Create(fmt.Sprintf("%s/part-%04d.run", s.dir, p))
			if err != nil {
				return fmt.Errorf("mapreduce: spill file: %w", err)
			}
			sp.f = f
			sp.w = bufio.NewWriterSize(f, 256*1024)
		}
		for _, run := range sp.mem {
			n, raw, nbuf, err := s.writeRun(sp, run.pairs, buf)
			if err != nil {
				return err
			}
			buf = nbuf
			sp.segs = append(sp.segs, segment{seq: run.seq, off: sp.off, n: n, packed: s.compress})
			sp.off += n
			s.spillBytes += n
			s.spillRawBytes += raw
		}
		sp.mem = nil
		if err := sp.w.Flush(); err != nil {
			return fmt.Errorf("mapreduce: spill flush: %w", err)
		}
	}
	s.buffered = 0
	s.spillNanos += time.Since(start).Nanoseconds()
	return nil
}

// writeRun writes one run's framed records to sp's spill file —
// straight through, or via a per-segment flate stream when compress is
// on — returning the segment's on-disk and raw framed lengths plus the
// (possibly grown) scratch buffer. Called with s.mu held.
func (s *spillSet) writeRun(sp *spillPartition, pairs []Pair, buf []byte) (n, raw int64, scratch []byte, err error) {
	if !s.compress {
		for _, kv := range pairs {
			buf = appendRunRecord(buf[:0], kv)
			if _, err := sp.w.Write(buf); err != nil {
				return 0, 0, buf, fmt.Errorf("mapreduce: spill write: %w", err)
			}
			n += int64(len(buf))
		}
		return n, n, buf, nil
	}
	cw := &meteredWriter{w: sp.w}
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(cw)
	for _, kv := range pairs {
		buf = appendRunRecord(buf[:0], kv)
		if _, err := fw.Write(buf); err != nil {
			flateWriterPool.Put(fw)
			return 0, 0, buf, fmt.Errorf("mapreduce: spill write: %w", err)
		}
		raw += int64(len(buf))
	}
	err = fw.Close()
	flateWriterPool.Put(fw)
	if err != nil {
		return 0, 0, buf, fmt.Errorf("mapreduce: spill deflate: %w", err)
	}
	return cw.n, raw, buf, nil
}

// meteredWriter counts bytes passed through to w — the deflated length
// of a packed segment as flate flushes it.
type meteredWriter struct {
	w io.Writer
	n int64
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.n += int64(n)
	return n, err
}

// seal flushes pending file buffers so readers see complete segments.
// Unlike a budget flush it leaves in-memory runs in memory: what never
// exceeded the budget is merged straight from RAM.
func (s *spillSet) seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for p := range s.parts {
		if s.parts[p].w != nil {
			if err := s.parts[p].w.Flush(); err != nil {
				return fmt.Errorf("mapreduce: spill seal: %w", err)
			}
		}
	}
	return nil
}

// partitionRuns returns one partition's runs — spilled segments and
// still-buffered memory runs — ordered by map-task Seq, the order the
// merge's tie-break contract requires. Call after seal; safe for
// concurrent use across partitions (file access is ReadAt-based).
func (s *spillSet) partitionRuns(p int) []RunReader {
	s.mu.Lock()
	sp := &s.parts[p]
	type seqRun struct {
		seq int
		r   RunReader
	}
	runs := make([]seqRun, 0, len(sp.segs)+len(sp.mem))
	for _, seg := range sp.segs {
		if seg.packed {
			runs = append(runs, seqRun{seg.seq, newPackedFileRun(sp.f, seg.off, seg.n)})
		} else {
			runs = append(runs, seqRun{seg.seq, newFileRun(sp.f, seg.off, seg.n)})
		}
	}
	for _, m := range sp.mem {
		runs = append(runs, seqRun{m.seq, SliceRun(m.pairs)})
	}
	s.mu.Unlock()
	sort.Slice(runs, func(a, b int) bool { return runs[a].seq < runs[b].seq })
	out := make([]RunReader, len(runs))
	for i, r := range runs {
		out[i] = r.r
	}
	return out
}

// materialize merges one partition into a single key-sorted slice — the
// reduce-task payload the TCP master loads lazily, one in-flight task
// at a time, instead of holding every partition resident at once.
func (s *spillSet) materialize(p int) ([]Pair, error) {
	runs := s.partitionRuns(p)
	var out []Pair
	err := MergeRunReaders(runs, func(kv Pair) error {
		out = append(out, kv)
		return nil
	})
	if cerr := closeRuns(runs); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// stats reports the bytes written to spill files (deflated when the
// job compresses), the raw framed bytes they encode, and the wall time
// spent writing them.
func (s *spillSet) stats() (spillBytes, spillRawBytes, spillNanos int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spillBytes, s.spillRawBytes, s.spillNanos
}

// Close closes every spill file and removes the spill directory. Safe
// to call when nothing ever spilled.
func (s *spillSet) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for p := range s.parts {
		if s.parts[p].f != nil {
			err = errors.Join(err, s.parts[p].f.Close())
			s.parts[p].f = nil
		}
	}
	if s.dir != "" {
		err = errors.Join(err, os.RemoveAll(s.dir))
		s.dir = ""
	}
	return err
}

// closeRuns closes every reader, joining errors, so no error path leaks
// a file-backed run.
func closeRuns(runs []RunReader) error {
	var err error
	for _, r := range runs {
		err = errors.Join(err, r.Close())
	}
	return err
}

// grouper folds a key-sorted pair stream into (key, values) groups —
// the streaming counterpart of groupSorted, fed by MergeRunReaders so a
// reduce partition is never materialized whole.
type grouper struct {
	fn   func(key string, values [][]byte) error
	key  string
	vals [][]byte
	open bool
}

func (g *grouper) add(kv Pair) error {
	if g.open && kv.Key == g.key {
		g.vals = append(g.vals, kv.Value)
		return nil
	}
	if err := g.flush(); err != nil {
		return err
	}
	g.open = true
	g.key = kv.Key
	g.vals = [][]byte{kv.Value}
	return nil
}

// flush emits the pending group, if any. Call once after the stream
// ends.
func (g *grouper) flush() error {
	if !g.open {
		return nil
	}
	g.open = false
	return g.fn(g.key, g.vals)
}
