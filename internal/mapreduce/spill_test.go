package mapreduce

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// collectReaders drains a MergeRunReaders merge into a slice, closing
// every run.
func collectReaders(t *testing.T, runs []RunReader) []Pair {
	t.Helper()
	var out []Pair
	err := MergeRunReaders(runs, func(kv Pair) error {
		out = append(out, kv)
		return nil
	})
	if cerr := closeRuns(runs); cerr != nil {
		t.Fatalf("closeRuns: %v", cerr)
	}
	if err != nil {
		t.Fatalf("MergeRunReaders: %v", err)
	}
	return out
}

// TestMergeRunReadersEdgeCases covers the iterator merge on zero runs,
// a single run, all-empty runs, and duplicate keys across runs.
func TestMergeRunReadersEdgeCases(t *testing.T) {
	if got := collectReaders(t, nil); len(got) != 0 {
		t.Fatalf("zero runs merged to %v", got)
	}
	if got := collectReaders(t, []RunReader{}); len(got) != 0 {
		t.Fatalf("empty run set merged to %v", got)
	}
	single := []Pair{{"a", []byte("1")}, {"b", []byte("2")}}
	if got := collectReaders(t, []RunReader{SliceRun(single)}); !pairsEqual(got, single) {
		t.Fatalf("single run merged to %v", got)
	}
	empties := []RunReader{SliceRun(nil), SliceRun([]Pair{}), SliceRun(nil)}
	if got := collectReaders(t, empties); len(got) != 0 {
		t.Fatalf("all-empty runs merged to %v", got)
	}
	// Duplicate keys across runs: ties must pop in run order.
	a := []Pair{{"k", []byte("a0")}, {"k", []byte("a1")}}
	b := []Pair{{"k", []byte("b0")}}
	c := []Pair{{"j", []byte("c0")}, {"k", []byte("c1")}}
	got := collectReaders(t, []RunReader{SliceRun(a), SliceRun(b), SliceRun(c)})
	want := []Pair{{"j", []byte("c0")}, {"k", []byte("a0")}, {"k", []byte("a1")}, {"k", []byte("b0")}, {"k", []byte("c1")}}
	if !pairsEqual(got, want) {
		t.Fatalf("duplicate-key merge\n got %v\nwant %v", got, want)
	}
}

// TestMergeRunsEdgeCasesSlices mirrors the edge cases on the slice fast
// path, so both merge entry points honor the same contract.
func TestMergeRunsEdgeCasesSlices(t *testing.T) {
	if got := MergeRuns(nil); got != nil {
		t.Fatalf("zero runs merged to %v", got)
	}
	if got := MergeRuns([][]Pair{nil, {}, nil}); got != nil {
		t.Fatalf("all-empty runs merged to %v", got)
	}
	single := []Pair{{"a", []byte("1")}, {"b", []byte("2")}}
	if got := MergeRuns([][]Pair{single}); !pairsEqual(got, single) {
		t.Fatalf("single run merged to %v", got)
	}
	a := []Pair{{"k", []byte("a0")}, {"k", []byte("a1")}}
	b := []Pair{{"k", []byte("b0")}}
	c := []Pair{{"j", []byte("c0")}, {"k", []byte("c1")}}
	got := MergeRuns([][]Pair{a, b, c})
	want := []Pair{{"j", []byte("c0")}, {"k", []byte("a0")}, {"k", []byte("a1")}, {"k", []byte("b0")}, {"k", []byte("c1")}}
	if !pairsEqual(got, want) {
		t.Fatalf("duplicate-key merge\n got %v\nwant %v", got, want)
	}
}

// spillRuns writes each run as a segment of one spillSet partition and
// returns the file-backed readers, exercising the real on-disk framing.
func spillRuns(t *testing.T, runs [][]Pair) (*spillSet, []RunReader) {
	t.Helper()
	ss := newSpillSet(1, 1, false) // 1-byte budget: every add flushes
	for seq, run := range runs {
		parts := [][]Pair{run}
		if err := ss.add(seq, parts); err != nil {
			t.Fatalf("add run %d: %v", seq, err)
		}
	}
	if err := ss.seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
	return ss, ss.partitionRuns(0)
}

// TestPropFileBackedMergeEqualsInMemory is the file-backed vs in-memory
// equivalence property: the same sorted runs, merged once from memory
// and once from spill files, produce byte-identical output — and both
// equal MergeRuns on the raw slices.
func TestPropFileBackedMergeEqualsInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(runCount, runLen, keySpace uint8) bool {
		k := int(runCount)%6 + 1
		runs := make([][]Pair, k)
		for r := range runs {
			runs[r] = randomPairs(rng, int(runLen)%40, int(keySpace)%8+1)
			sortPairs(runs[r])
		}
		want := MergeRuns(runs)

		mem := make([]RunReader, k)
		for r := range runs {
			mem[r] = SliceRun(runs[r])
		}
		gotMem := []Pair{}
		if err := MergeRunReaders(mem, func(kv Pair) error { gotMem = append(gotMem, kv); return nil }); err != nil {
			t.Fatalf("in-memory merge: %v", err)
		}

		ss, fileRuns := spillRuns(t, runs)
		defer func() {
			if err := ss.Close(); err != nil {
				t.Fatalf("close spill set: %v", err)
			}
		}()
		gotFile := []Pair{}
		err := MergeRunReaders(fileRuns, func(kv Pair) error { gotFile = append(gotFile, kv); return nil })
		if cerr := closeRuns(fileRuns); cerr != nil {
			t.Fatalf("close runs: %v", cerr)
		}
		if err != nil {
			t.Fatalf("file-backed merge: %v", err)
		}
		return pairsEqual(want, gotMem) && pairsEqual(want, gotFile)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSpillSetOutOfOrderSeqs verifies the merge order follows task Seq,
// not arrival order — the TCP master's results land from concurrent
// reader goroutines in arbitrary order.
func TestSpillSetOutOfOrderSeqs(t *testing.T) {
	ss := newSpillSet(1, 1, false)
	defer func() {
		if err := ss.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	// Same key everywhere: output order is exactly tie-break order.
	if err := ss.add(2, [][]Pair{{{"k", []byte("seq2")}}}); err != nil {
		t.Fatal(err)
	}
	if err := ss.add(0, [][]Pair{{{"k", []byte("seq0")}}}); err != nil {
		t.Fatal(err)
	}
	if err := ss.add(1, [][]Pair{{{"k", []byte("seq1")}}}); err != nil {
		t.Fatal(err)
	}
	if err := ss.seal(); err != nil {
		t.Fatal(err)
	}
	got, err := ss.materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{"k", []byte("seq0")}, {"k", []byte("seq1")}, {"k", []byte("seq2")}}
	if !pairsEqual(got, want) {
		t.Fatalf("out-of-order seqs merged as %v", got)
	}
}

// TestSpillSetMixedMemoryAndDisk holds some runs under the budget in
// memory while others spill, and checks the mixed merge still follows
// seq order.
func TestSpillSetMixedMemoryAndDisk(t *testing.T) {
	ss := newSpillSet(1, 1<<20, false) // large budget: nothing flushes on its own
	defer func() {
		if err := ss.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	if err := ss.add(1, [][]Pair{{{"k", []byte("seq1")}}}); err != nil {
		t.Fatal(err)
	}
	ss.mu.Lock()
	if err := ss.flushLocked(); err != nil { // force seq 1 to disk
		ss.mu.Unlock()
		t.Fatal(err)
	}
	ss.mu.Unlock()
	if err := ss.add(0, [][]Pair{{{"k", []byte("seq0")}}}); err != nil {
		t.Fatal(err)
	}
	if err := ss.seal(); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := ss.stats(); got == 0 {
		t.Fatal("expected spilled bytes")
	}
	got, err := ss.materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Pair{{"k", []byte("seq0")}, {"k", []byte("seq1")}}
	if !pairsEqual(got, want) {
		t.Fatalf("mixed memory/disk merge %v", got)
	}
}

// TestFileRunRejectsTruncation: a segment cut mid-record must surface
// an error, not a silent short run.
func TestFileRunRejectsTruncation(t *testing.T) {
	ss, runs := spillRuns(t, [][]Pair{{{"key", []byte("value")}}})
	defer func() {
		if err := ss.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	if err := closeRuns(runs); err != nil {
		t.Fatal(err)
	}
	seg := ss.parts[0].segs[0]
	truncated := newFileRun(ss.parts[0].f, seg.off, seg.n-2)
	if _, err := truncated.Next(); err == nil || err == io.EOF {
		t.Fatalf("truncated segment read returned %v", err)
	}
}

// TestLocalSpillOutputIdentical runs one job through the Local executor
// at several spill budgets (including budgets forcing many flushes) and
// requires byte-identical output plus populated spill counters.
func TestLocalSpillOutputIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	input := make([]Pair, 400)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: []byte{byte(rng.Intn(8))}}
	}
	job := func(spill int64) *Job {
		return &Job{
			Name:        "spill-wc",
			SpillBytes:  spill,
			SplitSize:   16,
			NumReducers: 3,
			Map: func(key string, value []byte, emit Emit) error {
				emit(fmt.Sprintf("g%d", value[0]), []byte(key))
				return nil
			},
			Reduce: func(key string, values [][]byte, emit Emit) error {
				emit(key, []byte(strconv.Itoa(len(values))))
				return nil
			},
		}
	}
	exec := &Local{Workers: 4}
	base, baseCtr, err := exec.Run(job(0), input)
	if err != nil {
		t.Fatal(err)
	}
	if baseCtr.SpillBytes != 0 {
		t.Fatalf("in-memory run reported %d spill bytes", baseCtr.SpillBytes)
	}
	for _, budget := range []int64{1, 64, 1 << 20} {
		out, ctr, err := exec.Run(job(budget), input)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !pairsEqual(out, base) {
			t.Fatalf("budget %d: output diverged from in-memory run", budget)
		}
		if budget <= 64 && ctr.SpillBytes == 0 {
			t.Fatalf("budget %d: expected spilling", budget)
		}
		if ctr.MapOutputs != baseCtr.MapOutputs || ctr.ShuffleBytes != baseCtr.ShuffleBytes {
			t.Fatalf("budget %d: counters diverged: %+v vs %+v", budget, ctr, baseCtr)
		}
	}
}

// TestTCPSpillOutputIdentical is the same identity check over the TCP
// executor: the master spills map results as they arrive and re-merges
// reduce partitions lazily, and the output must match the in-memory
// master bit for bit.
func TestTCPSpillOutputIdentical(t *testing.T) {
	job := &Job{
		Name:        "tcp-spill-wc",
		SplitSize:   8,
		NumReducers: 3,
		Map: func(key string, value []byte, emit Emit) error {
			emit(fmt.Sprintf("g%d", value[0]%5), []byte(key))
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, []byte(strconv.Itoa(len(values))))
			return nil
		},
	}
	Register(job)
	input := make([]Pair, 200)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: []byte{byte(i * 7)}}
	}
	run := func(spill int64) ([]Pair, *Counters) {
		t.Helper()
		m, err := NewMaster("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if cerr := m.Close(); cerr != nil {
				t.Fatalf("close master: %v", cerr)
			}
		}()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < 2; i++ {
			go func() { _ = RunWorkerContext(ctx, m.Addr()) }()
		}
		j := *job
		j.SpillBytes = spill
		out, ctr, err := m.Run(&j, input)
		if err != nil {
			t.Fatal(err)
		}
		return out, ctr
	}
	base, baseCtr := run(0)
	spilled, ctr := run(128)
	if !pairsEqual(base, spilled) {
		t.Fatal("spill-enabled TCP output diverged from in-memory master")
	}
	if ctr.SpillBytes == 0 {
		t.Fatal("expected master-side spilling at a 128-byte budget")
	}
	if baseCtr.MapOutputs != ctr.MapOutputs {
		t.Fatalf("MapOutputs diverged: %d vs %d", baseCtr.MapOutputs, ctr.MapOutputs)
	}
}

// BenchmarkSpillMergeShuffle times the Local executor's fused
// spill-merge-reduce against the in-memory shuffle on the same job.
func BenchmarkSpillMergeShuffle(b *testing.B) {
	input := make([]Pair, 4096)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: make([]byte, 64)}
	}
	job := func(spill int64) *Job {
		return &Job{
			Name:        "bench-spill",
			SpillBytes:  spill,
			SplitSize:   256,
			NumReducers: 4,
			Map: func(key string, value []byte, emit Emit) error {
				emit(key[len(key)-1:], value)
				return nil
			},
			Reduce: func(key string, values [][]byte, emit Emit) error {
				emit(key, []byte(strconv.Itoa(len(values))))
				return nil
			},
		}
	}
	exec := &Local{}
	for _, budget := range []int64{0, 64 << 10} {
		b.Run(fmt.Sprintf("spill=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exec.Run(job(budget), input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
