package mapreduce

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitNoGoroutineLeak polls until the goroutine count drops back to the
// pre-test level (background GC helpers may fluctuate, so poll rather
// than compare once), dumping stacks on timeout.
func waitNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// manyRecords builds count map input records.
func manyRecords(count int) []Pair {
	input := make([]Pair, count)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i)}
	}
	return input
}

// TestLocalCancelMidJob cancels the context from inside the first map
// invocation: the Local executor checks the context before every record,
// so the job must stop early and return context.Canceled.
func TestLocalCancelMidJob(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	job := &Job{
		Name: "cancel-local",
		Map: func(key string, value []byte, emit Emit) error {
			once.Do(cancel)
			emit(key, nil)
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, nil)
			return nil
		},
	}
	_, _, err := (&Local{}).RunContext(ctx, job, manyRecords(10_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancel-local") {
		t.Errorf("error %q does not name the job", err)
	}
	waitNoGoroutineLeak(t, before)
}

// TestLocalDeadlineExceeded runs a job with an already-expired deadline.
func TestLocalDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	job := &Job{
		Name:   "deadline-local",
		Map:    func(key string, value []byte, emit Emit) error { emit(key, nil); return nil },
		Reduce: func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil },
	}
	_, _, err := (&Local{}).RunContext(ctx, job, manyRecords(16))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestTCPCancelMidJob cancels a job whose map tasks are blocked on a
// worker. RunContext must return promptly with context.Canceled, the
// master must end up closed (its gob streams are unrecoverable), and no
// goroutines may leak.
func TestTCPCancelMidJob(t *testing.T) {
	before := runtime.NumGoroutine()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	job := &Job{
		Name: "cancel-tcp",
		Map: func(key string, value []byte, emit Emit) error {
			once.Do(func() { close(started) })
			<-release
			emit(key, nil)
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			emit(key, nil)
			return nil
		},
	}
	Register(job)

	m, err := NewMaster("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()

	// The worker runs without a context: after the cancelled master
	// closes its socket, the result write fails and the worker returns.
	workerErr := make(chan error, 1)
	go func() { workerErr <- RunWorker(m.Addr()) }()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		_, _, err := m.RunContext(ctx, job, manyRecords(64))
		runErr <- err
	}()

	<-started
	cancel()
	select {
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}

	// The cancelled master must have torn itself down: its listener no
	// longer accepts and further Run calls refuse.
	if conn, err := net.DialTimeout("tcp", m.Addr(), time.Second); err == nil {
		_ = conn.Close()
		t.Error("master listener still accepting after cancelled job")
	}
	if _, _, err := m.Run(job, manyRecords(1)); err == nil || !strings.Contains(err.Error(), "master closed") {
		t.Errorf("Run after cancel = %v, want master closed", err)
	}

	// Unblock the worker's in-flight map so every goroutine can drain.
	close(release)
	select {
	case <-workerErr: // nil (EOF) or a send-result error; either is a clean exit
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit")
	}
	waitNoGoroutineLeak(t, before)
}

// TestTCPCancelWhileWaitingForWorkers cancels a RunContext that is still
// waiting for MinWorkers to join.
func TestTCPCancelWhileWaitingForWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	job := &Job{
		Name:   "cancel-join",
		Map:    func(key string, value []byte, emit Emit) error { emit(key, nil); return nil },
		Reduce: func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil },
	}
	Register(job)
	m, err := NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); cancel() }()
	_, _, err = m.RunContext(ctx, job, manyRecords(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	waitNoGoroutineLeak(t, before)
}

// TestRunWorkerContextCancel cancels an idle worker blocked reading the
// next task; the watchdog expires the socket and the worker returns the
// context error.
func TestRunWorkerContextCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	m, err := NewMaster("127.0.0.1:0", 2) // 2 joiners required: no job ever runs
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	workerErr := make(chan error, 1)
	go func() { workerErr <- RunWorkerContext(ctx, m.Addr()) }()
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker did not join")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-workerErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("worker err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not return after cancel")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	waitNoGoroutineLeak(t, before)
}

// TestTCPHungWorkerHitsIOTimeout joins a worker that completes the
// hello but then accepts tasks without ever answering: the in-flight
// IOTimeout must fire and, with no other workers alive, fail the job
// instead of hanging forever.
func TestTCPHungWorkerHitsIOTimeout(t *testing.T) {
	job := &Job{
		Name:   "hung-worker",
		Map:    func(key string, value []byte, emit Emit) error { emit(key, nil); return nil },
		Reduce: func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil },
	}
	Register(job)
	m, err := NewMasterTCP(TCPConfig{Addr: "127.0.0.1:0", MinWorkers: 1, IOTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	conn, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := sendHello(conn, WireVersionLatest, time.Second, &wireStats{}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := m.Run(job, manyRecords(8))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "all workers failed") {
			t.Fatalf("err = %v, want all-workers-failed from IO timeout", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("master hung on unresponsive worker despite IOTimeout")
	}
}

// TestTCPConfigDefaults checks the zero-value timeout fill-in.
func TestTCPConfigDefaults(t *testing.T) {
	c := TCPConfig{Addr: "x", MinWorkers: 1}.withDefaults()
	if c.DialTimeout != DefaultDialTimeout || c.IOTimeout != DefaultIOTimeout {
		t.Fatalf("defaults = %+v", c)
	}
	c = TCPConfig{DialTimeout: time.Second, IOTimeout: time.Minute}.withDefaults()
	if c.DialTimeout != time.Second || c.IOTimeout != time.Minute {
		t.Fatalf("explicit timeouts overwritten: %+v", c)
	}
}

// TestRunWithContextPlainExecutor checks the graceful degradation for
// executors that do not implement ContextExecutor: the context is
// consulted before the uninterruptible Run.
func TestRunWithContextPlainExecutor(t *testing.T) {
	job := &Job{
		Name:   "plain-exec",
		Map:    func(key string, value []byte, emit Emit) error { emit(key, nil); return nil },
		Reduce: func(key string, values [][]byte, emit Emit) error { emit(key, nil); return nil },
	}
	exec := plainExecutor{}
	if _, _, err := RunWithContext(context.Background(), exec, job, manyRecords(2)); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunWithContext(ctx, exec, job, manyRecords(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// plainExecutor implements only Executor.
type plainExecutor struct{}

func (plainExecutor) Run(job *Job, input []Pair) ([]Pair, *Counters, error) {
	return nil, &Counters{}, nil
}
