package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Local executes jobs in-process with a bounded worker pool — the
// single-machine analogue of a Hadoop task tracker with W slots.
type Local struct {
	// Workers caps concurrent map (and reduce) tasks
	// (default runtime.GOMAXPROCS(0)).
	Workers int
}

var _ ContextExecutor = (*Local)(nil)

// Run implements Executor.
func (l *Local) Run(job *Job, input []Pair) ([]Pair, *Counters, error) {
	return l.RunContext(context.Background(), job, input)
}

// RunContext implements ContextExecutor: cancellation is checked
// between records inside every map and reduce task, so a mid-job
// cancel returns within one user map/reduce call. With Job.SpillBytes
// set, map-side runs spill to per-partition disk files beyond the
// budget and each reduce partition is merge-grouped straight from its
// runs — never materialized whole — with bit-identical output.
func (l *Local) RunContext(ctx context.Context, job *Job, input []Pair) (_ []Pair, _ *Counters, err error) {
	if err := job.validate(); err != nil {
		return nil, nil, err
	}
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numReducers := job.numReducers()
	ctr := &Counters{InputRecords: len(input), ReduceTasks: numReducers}

	var ss *spillSet
	if job.SpillBytes > 0 {
		ss = newSpillSet(numReducers, job.SpillBytes, job.Compress)
		defer func() { err = errors.Join(err, ss.Close()) }()
	}

	tasks := splits(input, job.splitSize())
	ctr.MapTasks = len(tasks)

	// Map phase: each task produces per-partition output slices.
	type mapResult struct {
		parts [][]Pair
		err   error
	}
	results := make([]mapResult, len(tasks))
	var mapOutputs atomic.Int64

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for t := range tasks {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Pair
			emit := func(k string, v []byte) {
				local = append(local, Pair{k, v})
			}
			for _, rec := range tasks[t] {
				if err := ctx.Err(); err != nil {
					results[t].err = fmt.Errorf("mapreduce: %s map: %w", job.Name, err)
					return
				}
				if err := job.Map(rec.Key, rec.Value, emit); err != nil {
					results[t].err = fmt.Errorf("mapreduce: %s map: %w", job.Name, err)
					return
				}
			}
			mapOutputs.Add(int64(len(local)))
			if job.Combine != nil {
				combined, err := runCombine(job.Combine, local)
				if err != nil {
					results[t].err = fmt.Errorf("mapreduce: %s combine: %w", job.Name, err)
					return
				}
				local = combined
			}
			// Map-side sort: each partition leaves the task as a
			// key-sorted run, so the shuffle below is a pure merge.
			parts := partitionSorted(job, numReducers, local)
			if ss != nil {
				// Out-of-core mode: runs go to the spill manager (keyed by
				// task index, the merge's tie-break order) instead of
				// staying resident per task.
				results[t].err = ss.add(t, parts)
				return
			}
			results[t].parts = parts
		}(t)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
	}
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
	}
	ctr.MapOutputs = int(mapOutputs.Load())

	type reduceResult struct {
		out []Pair
		err error
	}
	red := make([]reduceResult, numReducers)
	var shuffleBytes atomic.Int64

	if ss != nil {
		// Out-of-core shuffle + reduce, fused per partition: stream the
		// k-way merge of the partition's runs (disk segments and
		// still-buffered memory runs, in map-task order) through a
		// grouper straight into the reducer, so the partition is never
		// resident as one slice. Same merge order, same groups, same
		// output as the in-memory path.
		if err := ss.seal(); err != nil {
			return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
		}
		for p := 0; p < numReducers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runs := ss.partitionRuns(p)
				g := &grouper{fn: func(key string, values [][]byte) error {
					if err := ctx.Err(); err != nil {
						return err
					}
					return job.Reduce(key, values, func(k string, v []byte) {
						red[p].out = append(red[p].out, Pair{k, v})
					})
				}}
				merr := MergeRunReaders(runs, func(kv Pair) error {
					shuffleBytes.Add(int64(len(kv.Key) + len(kv.Value)))
					return g.add(kv)
				})
				if merr == nil {
					merr = g.flush()
				}
				if cerr := closeRuns(runs); merr == nil {
					merr = cerr
				}
				if merr != nil {
					red[p].err = fmt.Errorf("mapreduce: %s reduce: %w", job.Name, merr)
					return
				}
				sortPairs(red[p].out)
			}(p)
		}
		wg.Wait()
		ctr.ShuffleBytes = shuffleBytes.Load()
		var raw int64
		ctr.SpillBytes, raw, ctr.SpillNanos = ss.stats()
		ctr.CompressedBytes = raw - ctr.SpillBytes
	} else {
		// Shuffle: k-way merge each reduce partition's sorted runs, in map
		// task order so ties reproduce the stable concat+sort order. The
		// per-partition merges are independent and run on the worker pool.
		partitions := make([][]Pair, numReducers)
		for p := range partitions {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				runs := make([][]Pair, 0, len(results))
				for _, r := range results {
					if p < len(r.parts) && len(r.parts[p]) > 0 {
						runs = append(runs, r.parts[p])
					}
				}
				merged := MergeRuns(runs)
				var bytes int64
				for _, kv := range merged {
					bytes += int64(len(kv.Key) + len(kv.Value))
				}
				shuffleBytes.Add(bytes)
				partitions[p] = merged
			}(p)
		}
		wg.Wait()
		ctr.ShuffleBytes = shuffleBytes.Load()

		// Reduce phase.
		for p := range partitions {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				// The merge shuffle delivers the partition key-sorted; the
				// sort call is the O(n) already-sorted fast path kept as a
				// contract check against custom shuffles.
				pairs := partitions[p]
				sortPairs(pairs)
				err := groupSorted(pairs, func(key string, values [][]byte) error {
					if err := ctx.Err(); err != nil {
						return err
					}
					return job.Reduce(key, values, func(k string, v []byte) {
						red[p].out = append(red[p].out, Pair{k, v})
					})
				})
				if err != nil {
					red[p].err = fmt.Errorf("mapreduce: %s reduce: %w", job.Name, err)
					return
				}
				// Sort this partition's output inside the task so the final
				// assembly is a pure merge.
				sortPairs(red[p].out)
			}(p)
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("mapreduce: %s: %w", job.Name, err)
	}

	outRuns := make([][]Pair, 0, len(red))
	for _, r := range red {
		if r.err != nil {
			return nil, nil, r.err
		}
		if len(r.out) > 0 {
			outRuns = append(outRuns, r.out)
		}
	}
	out := MergeRuns(outRuns)
	ctr.OutputRecords = len(out)
	return out, ctr, nil
}

// Chain runs a sequence of jobs, feeding each job's output to the next.
func Chain(exec Executor, input []Pair, jobs ...*Job) ([]Pair, []*Counters, error) {
	return ChainContext(context.Background(), exec, input, jobs...)
}

// ChainContext runs a sequence of jobs under ctx, feeding each job's
// output to the next and stopping at the first error or cancellation.
func ChainContext(ctx context.Context, exec Executor, input []Pair, jobs ...*Job) ([]Pair, []*Counters, error) {
	var counters []*Counters
	cur := input
	for _, j := range jobs {
		out, ctr, err := RunWithContext(ctx, exec, j, cur)
		if err != nil {
			return nil, counters, err
		}
		counters = append(counters, ctr)
		cur = out
	}
	return cur, counters, nil
}
