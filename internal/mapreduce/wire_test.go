package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"
)

// randomWireString includes empty, ASCII, and multi-byte contents.
func randomWireString(rng *rand.Rand) string {
	n := rng.Intn(20)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteRune(rune(rng.Intn(0x2FF) + 1))
	}
	return sb.String()
}

func randomWireBytes(rng *rand.Rand) []byte {
	switch rng.Intn(4) {
	case 0:
		return nil
	case 1:
		return []byte{}
	}
	b := make([]byte, rng.Intn(64))
	rng.Read(b)
	return b
}

func randomWirePairs(rng *rand.Rand, maxLen int) []Pair {
	n := rng.Intn(maxLen)
	if n == 0 {
		return nil
	}
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{Key: randomWireString(rng), Value: randomWireBytes(rng)}
	}
	return out
}

// semanticPairEq treats nil and empty values as equal — gob and the
// frame parser both collapse empty slices to nil, but the random
// generators produce both shapes.
func semanticPairEq(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// frameRoundTripTask encodes and decodes one taskMsg through the frame
// codec over an in-memory stream.
func frameRoundTripTask(t *testing.T, in *taskMsg) taskMsg {
	t.Helper()
	var st wireStats
	var buf writeBuffer
	enc := &frameCodec{w: &buf, st: &st}
	wn, err := enc.writeTask(in)
	if err != nil {
		t.Fatalf("writeTask: %v", err)
	}
	dec := &frameCodec{br: bufio.NewReader(&buf), st: &st}
	var out taskMsg
	rn, err := dec.readTask(&out)
	if err != nil {
		t.Fatalf("readTask: %v", err)
	}
	if wn != rn {
		t.Fatalf("wire size asymmetry: wrote %d, read %d", wn, rn)
	}
	if st.bytesOut.Load() != int64(wn) || st.bytesIn.Load() != int64(rn) {
		t.Fatalf("stats (%d out, %d in) disagree with frame size %d",
			st.bytesOut.Load(), st.bytesIn.Load(), wn)
	}
	return out
}

// TestWireTaskRoundTripAgainstGob is the codec property test: for
// random taskMsg values, the frame round trip must preserve exactly
// what a gob round trip preserves.
func TestWireTaskRoundTripAgainstGob(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		in := taskMsg{
			Seq:         rng.Intn(1 << 20),
			JobName:     randomWireString(rng),
			Phase:       randomWireString(rng),
			Conf:        randomWireBytes(rng),
			NumReducers: rng.Intn(64),
			Records:     randomWirePairs(rng, 12),
		}

		var gobBuf bytes.Buffer
		var gobOut taskMsg
		if err := gob.NewEncoder(&gobBuf).Encode(&in); err != nil {
			t.Fatal(err)
		}
		if err := gob.NewDecoder(&gobBuf).Decode(&gobOut); err != nil {
			t.Fatal(err)
		}

		frameOut := frameRoundTripTask(t, &in)
		if frameOut.Seq != gobOut.Seq || frameOut.JobName != gobOut.JobName ||
			frameOut.Phase != gobOut.Phase || !bytes.Equal(frameOut.Conf, gobOut.Conf) ||
			frameOut.NumReducers != gobOut.NumReducers ||
			!semanticPairEq(frameOut.Records, gobOut.Records) {
			t.Fatalf("trial %d: frame decode %+v differs from gob decode %+v (in %+v)",
				trial, frameOut, gobOut, in)
		}
	}
}

// TestWireResultRoundTripAgainstGob does the same for resultMsg,
// including multi-partition payloads and error strings.
func TestWireResultRoundTripAgainstGob(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 300; trial++ {
		nParts := rng.Intn(5)
		var parts [][]Pair
		if nParts > 0 {
			parts = make([][]Pair, nParts)
			for i := range parts {
				parts[i] = randomWirePairs(rng, 10)
			}
		}
		in := resultMsg{Seq: rng.Intn(1 << 20), Err: randomWireString(rng), Parts: parts}

		var gobBuf bytes.Buffer
		var gobOut resultMsg
		if err := gob.NewEncoder(&gobBuf).Encode(&in); err != nil {
			t.Fatal(err)
		}
		if err := gob.NewDecoder(&gobBuf).Decode(&gobOut); err != nil {
			t.Fatal(err)
		}

		var st wireStats
		var buf writeBuffer
		if _, err := (&frameCodec{w: &buf, st: &st}).writeResult(&in); err != nil {
			t.Fatal(err)
		}
		var frameOut resultMsg
		if _, err := (&frameCodec{br: bufio.NewReader(&buf), st: &st}).readResult(&frameOut); err != nil {
			t.Fatal(err)
		}
		if frameOut.Seq != gobOut.Seq || frameOut.Err != gobOut.Err ||
			len(frameOut.Parts) != len(gobOut.Parts) {
			t.Fatalf("trial %d: frame %+v vs gob %+v", trial, frameOut, gobOut)
		}
		for p := range frameOut.Parts {
			if !semanticPairEq(frameOut.Parts[p], gobOut.Parts[p]) {
				t.Fatalf("trial %d part %d: frame %v vs gob %v",
					trial, p, frameOut.Parts[p], gobOut.Parts[p])
			}
		}
	}
}

// TestWireMalformedFramesDoNotPanic feeds random garbage and truncated
// prefixes of valid bodies to the parsers: they must return errors (or
// succeed on the rare valid prefix), never panic or over-read.
func TestWireMalformedFramesDoNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		body := make([]byte, rng.Intn(80))
		rng.Read(body)
		var tm taskMsg
		_ = parseTask(body, &tm, false)
		var res resultMsg
		_ = parseResult(body, &res, false)
	}

	// Truncations of a known-good body must all fail cleanly.
	valid := taskMsg{Seq: 9, JobName: "j", Phase: "map", Conf: []byte("c"),
		NumReducers: 3, Records: []Pair{{Key: "k", Value: []byte("v")}}}
	var buf writeBuffer
	if _, err := (&frameCodec{w: &buf, st: &wireStats{}}).writeTask(&valid); err != nil {
		t.Fatal(err)
	}
	full := buf.b[uvarintLen(uint64(len(buf.b)-1)):] // strip the length prefix
	body := full[1:]                                 // strip the kind byte
	for cut := 0; cut < len(body); cut++ {
		var tm taskMsg
		if err := parseTask(body[:cut], &tm, false); err == nil {
			t.Fatalf("truncation at %d/%d parsed without error", cut, len(body))
		}
	}
	var tm taskMsg
	if err := parseTask(body, &tm, false); err != nil {
		t.Fatalf("full body failed: %v", err)
	}
	if err := parseTask(append(append([]byte(nil), body...), 0), &tm, false); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// helloPeers runs both handshake halves over an in-memory duplex pipe.
func helloPeers(t *testing.T, workerMax, masterMax byte) (workerV, masterV byte, workerErr, masterErr error) {
	t.Helper()
	wc, mc := net.Pipe()
	defer func() { _ = wc.Close(); _ = mc.Close() }()
	done := make(chan struct{})
	go func() {
		defer close(done)
		masterV, masterErr = acceptHello(mc, masterMax, time.Second, &wireStats{})
	}()
	workerV, workerErr = sendHello(wc, workerMax, time.Second, &wireStats{})
	<-done
	return workerV, masterV, workerErr, masterErr
}

// TestWireHelloNegotiation checks that both sides settle on
// min(worker max, master max), enabling rolling upgrades.
func TestWireHelloNegotiation(t *testing.T) {
	cases := []struct{ worker, master, want byte }{
		{WireVersionFrames, WireVersionFrames, WireVersionFrames},
		{WireVersionGob, WireVersionFrames, WireVersionGob},    // old worker, new master
		{WireVersionFrames, WireVersionGob, WireVersionGob},    // new worker, old master
		{WireVersionFrames + 5, WireVersionFrames, WireVersionFrames}, // future worker
	}
	for _, c := range cases {
		wv, mv, werr, merr := helloPeers(t, c.worker, c.master)
		if werr != nil || merr != nil {
			t.Fatalf("hello(%d,%d): worker err %v, master err %v", c.worker, c.master, werr, merr)
		}
		if wv != c.want || mv != c.want {
			t.Fatalf("hello(%d,%d) = worker %d, master %d; want %d", c.worker, c.master, wv, mv, c.want)
		}
	}
}

// TestWireHelloRejectsBadMagic ensures a non-DASC peer is refused
// during the handshake.
func TestWireHelloRejectsBadMagic(t *testing.T) {
	wc, mc := net.Pipe()
	defer func() { _ = wc.Close(); _ = mc.Close() }()
	errCh := make(chan error, 1)
	go func() {
		_, err := acceptHello(mc, WireVersionLatest, time.Second, &wireStats{})
		errCh <- err
	}()
	if _, err := wc.Write([]byte("HTTP/")); err != nil {
		t.Fatal(err)
	}
	err := <-errCh
	if err == nil || !strings.Contains(err.Error(), "bad hello magic") {
		t.Fatalf("err = %v, want bad-magic rejection", err)
	}
}

// BenchmarkWireRoundTrip times the frame codec's encode+decode of a
// shuffle-shaped result frame (the CI bench-smoke entry).
func BenchmarkWireRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	pairs := make([]Pair, 1024)
	for i := range pairs {
		pairs[i] = Pair{Key: randomWireString(rng), Value: randomWireBytes(rng)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WireRoundTrip(pairs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWireRoundTripHelper covers the exported dascbench hook.
func TestWireRoundTripHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pairs := randomWirePairs(rng, 200)
	n, err := WireRoundTrip(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("wire size = %d", n)
	}
	if _, err := WireRoundTrip(nil); err != nil {
		t.Fatalf("empty round trip: %v", err)
	}
}
