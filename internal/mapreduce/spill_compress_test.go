package mapreduce

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
)

// TestPackedSpillMergeEqualsInMemory is the packed-run correctness
// property: runs written through per-segment flate must merge to
// exactly the same sequence as the in-memory slices, at a 1-byte budget
// that forces every add into its own deflated segment.
func TestPackedSpillMergeEqualsInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	runs := make([][]Pair, 5)
	for r := range runs {
		runs[r] = randomPairs(rng, 30, 4)
		sortPairs(runs[r])
	}
	want := MergeRuns(runs)

	ss := newSpillSet(1, 1, true)
	defer func() {
		if err := ss.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	for seq, run := range runs {
		if err := ss.add(seq, [][]Pair{run}); err != nil {
			t.Fatalf("add run %d: %v", seq, err)
		}
	}
	if err := ss.seal(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range ss.parts[0].segs {
		if !seg.packed {
			t.Fatal("compressed spill set wrote an unpacked segment")
		}
	}
	got, err := ss.materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, want) {
		t.Fatalf("packed merge diverged\n got %v\nwant %v", got, want)
	}
	written, raw, _ := ss.stats()
	if written == 0 || raw == 0 {
		t.Fatalf("stats = (%d written, %d raw), want both nonzero", written, raw)
	}
}

// TestPackedSpillShrinksLargeRuns checks the accounting direction that
// matters operationally: once runs are big and repetitive, the deflated
// segments must be strictly smaller than their raw framed size.
func TestPackedSpillShrinksLargeRuns(t *testing.T) {
	run := make([]Pair, 600)
	for i := range run {
		run[i] = Pair{Key: fmt.Sprintf("table-0:sig-%04d", i/4),
			Value: bytes.Repeat([]byte{byte(i % 3)}, 48)}
	}
	sortPairs(run)

	ss := newSpillSet(1, 1, true)
	defer func() {
		if err := ss.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	if err := ss.add(0, [][]Pair{run}); err != nil {
		t.Fatal(err)
	}
	if err := ss.seal(); err != nil {
		t.Fatal(err)
	}
	written, raw, _ := ss.stats()
	if written >= raw {
		t.Fatalf("packed run wrote %d bytes for %d raw — no shrink", written, raw)
	}
	if raw < 2*written {
		t.Logf("compression ratio %.2f (written %d / raw %d)", float64(written)/float64(raw), written, raw)
	}
	got, err := ss.materialize(0)
	if err != nil {
		t.Fatal(err)
	}
	if !pairsEqual(got, run) {
		t.Fatal("large packed run did not round-trip")
	}

	// The same data through an uncompressed set must byte-count raw.
	plain := newSpillSet(1, 1, false)
	defer func() {
		if err := plain.Close(); err != nil {
			t.Fatalf("close plain: %v", err)
		}
	}()
	if err := plain.add(0, [][]Pair{run}); err != nil {
		t.Fatal(err)
	}
	if err := plain.seal(); err != nil {
		t.Fatal(err)
	}
	pw, praw, _ := plain.stats()
	if pw != praw {
		t.Fatalf("plain spill stats disagree: %d written vs %d raw", pw, praw)
	}
	if praw != raw {
		t.Fatalf("raw framed size depends on compression: %d vs %d", praw, raw)
	}
}

// TestLocalPackedSpillOutputIdentical is the end-to-end identity pin
// for the Local executor: Compress with any spill budget must produce
// bit-identical output to the in-memory, uncompressed run.
func TestLocalPackedSpillOutputIdentical(t *testing.T) {
	input := make([]Pair, 400)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: bytes.Repeat([]byte{byte(i % 8)}, 32)}
	}
	job := func(spill int64, compress bool) *Job {
		return &Job{
			Name:        "packed-spill-wc",
			SpillBytes:  spill,
			Compress:    compress,
			SplitSize:   16,
			NumReducers: 3,
			Map: func(key string, value []byte, emit Emit) error {
				emit(fmt.Sprintf("g%d", value[0]), []byte(key))
				return nil
			},
			Reduce: func(key string, values [][]byte, emit Emit) error {
				emit(key, []byte(strconv.Itoa(len(values))))
				return nil
			},
		}
	}
	exec := &Local{Workers: 4}
	base, _, err := exec.Run(job(0, false), input)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 64, 1 << 20} {
		out, ctr, err := exec.Run(job(budget, true), input)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if !pairsEqual(out, base) {
			t.Fatalf("budget %d: compressed spill output diverged", budget)
		}
		if budget <= 64 && ctr.SpillBytes == 0 {
			t.Fatalf("budget %d: expected spilling", budget)
		}
		// CompressedBytes is raw minus written: tiny per-flush runs can
		// legitimately expand under flate (negative savings), so only the
		// accounting identity is asserted here, not the sign.
		if budget <= 64 && ctr.CompressedBytes == 0 {
			t.Fatalf("budget %d: spill compression accounting missing", budget)
		}
	}
}

// BenchmarkCompressedSpillShuffle times the Local executor's spill
// shuffle with and without per-segment flate, on compressible map
// output (the CI compressed-shuffle smoke entry).
func BenchmarkCompressedSpillShuffle(b *testing.B) {
	input := make([]Pair, 2048)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: bytes.Repeat([]byte{byte(i % 7)}, 64)}
	}
	job := func(compress bool) *Job {
		return &Job{
			Name:        "bench-packed-spill",
			SpillBytes:  64 << 10,
			Compress:    compress,
			SplitSize:   256,
			NumReducers: 4,
			Map: func(key string, value []byte, emit Emit) error {
				emit(key[len(key)-1:], value)
				return nil
			},
			Reduce: func(key string, values [][]byte, emit Emit) error {
				emit(key, []byte(strconv.Itoa(len(values))))
				return nil
			},
		}
	}
	exec := &Local{}
	for _, compress := range []bool{false, true} {
		b.Run(fmt.Sprintf("compress=%v", compress), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := exec.Run(job(compress), input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestTCPPackedSpillOutputIdentical runs the compressed out-of-core
// shuffle over real TCP — deflated wire frames into deflated spill
// runs — and requires output identical to the plain in-memory master.
func TestTCPPackedSpillOutputIdentical(t *testing.T) {
	job := &Job{
		Name:        "tcp-packed-spill-wc",
		SplitSize:   8,
		NumReducers: 3,
		Map: func(key string, value []byte, emit Emit) error {
			emit(fmt.Sprintf("g%d", value[0]%5), bytes.Repeat([]byte(key), 8))
			return nil
		},
		Reduce: func(key string, values [][]byte, emit Emit) error {
			var n int
			for _, v := range values {
				n += len(v)
			}
			emit(key, []byte(strconv.Itoa(n)))
			return nil
		},
	}
	Register(job)
	input := make([]Pair, 200)
	for i := range input {
		input[i] = Pair{Key: strconv.Itoa(i), Value: []byte{byte(i * 7)}}
	}
	run := func(spill int64, compress bool) []Pair {
		t.Helper()
		m, err := NewMaster("127.0.0.1:0", 2)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if cerr := m.Close(); cerr != nil {
				t.Fatalf("close master: %v", cerr)
			}
		}()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		for i := 0; i < 2; i++ {
			go func() { _ = RunWorkerContext(ctx, m.Addr()) }()
		}
		j := *job
		j.SpillBytes = spill
		j.Compress = compress
		out, ctr, err := m.Run(&j, input)
		if err != nil {
			t.Fatal(err)
		}
		if spill > 0 && spill <= 64 && ctr.SpillBytes == 0 {
			t.Fatalf("spill budget %d produced no spill bytes", spill)
		}
		return out
	}
	base := run(0, false)
	for _, budget := range []int64{1, 64, 1 << 20} {
		if got := run(budget, true); !pairsEqual(got, base) {
			t.Fatalf("budget %d: compressed TCP spill output diverged", budget)
		}
	}
}
