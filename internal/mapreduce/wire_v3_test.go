package mapreduce

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// compressiblePairs returns a pair slice whose framed body is large and
// repetitive enough that flate reliably shrinks it past
// CompressThreshold.
func compressiblePairs(n int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		out[i] = Pair{
			Key:   "table-0:signature-aaaaaaaaaaaaaaaa",
			Value: bytes.Repeat([]byte{0x11, 0x22, 0x33, 0x44}, 16),
		}
	}
	return out
}

// v3Peers builds a connected encoder/decoder pair at wire v3 over an
// in-memory stream, with outbound compression set as requested.
func v3Peers(buf *writeBuffer, st *wireStats, compress bool) (enc, dec *frameCodec) {
	enc = &frameCodec{w: buf, st: st, version: WireVersionPacked}
	enc.setCompress(compress)
	dec = &frameCodec{br: bufio.NewReader(buf), st: st, version: WireVersionPacked}
	return enc, dec
}

// TestWireV3CompressedRoundTrip pushes a compressible result frame
// through the v3 codec with compression on: the decode must be exact
// and the stats must show real savings.
func TestWireV3CompressedRoundTrip(t *testing.T) {
	in := resultMsg{Seq: 41, Parts: [][]Pair{compressiblePairs(200)}}
	var st wireStats
	var buf writeBuffer
	enc, dec := v3Peers(&buf, &st, true)
	wn, err := enc.writeResult(&in)
	if err != nil {
		t.Fatal(err)
	}
	var out resultMsg
	rn, err := dec.readResult(&out)
	if err != nil {
		t.Fatal(err)
	}
	if wn != rn {
		t.Fatalf("wire size asymmetry: wrote %d, read %d", wn, rn)
	}
	if out.Seq != in.Seq || len(out.Parts) != 1 || !semanticPairEq(out.Parts[0], in.Parts[0]) {
		t.Fatalf("decode mismatch: %+v", out)
	}
	if saved := st.compressSaved.Load(); saved <= 0 {
		t.Fatalf("compressSaved = %d, want > 0 for repetitive payload", saved)
	}
	if st.compressNanos.Load() <= 0 {
		t.Fatal("compressNanos not accounted")
	}

	// Same payload with compression off must cost strictly more wire
	// bytes.
	var rawBuf writeBuffer
	rawEnc, _ := v3Peers(&rawBuf, &wireStats{}, false)
	rawN, err := rawEnc.writeResult(&in)
	if err != nil {
		t.Fatal(err)
	}
	if wn >= rawN {
		t.Fatalf("compressed frame %d bytes, raw %d — no shrink", wn, rawN)
	}
}

// TestWireV3CompressedTaskRoundTrip does the same through the task
// path, which also carries the compress request flag to the worker.
func TestWireV3CompressedTaskRoundTrip(t *testing.T) {
	in := taskMsg{
		Seq: 7, JobName: "lsh", Phase: "map", Conf: bytes.Repeat([]byte("conf"), 64),
		NumReducers: 8, Flags: taskFlagCompress, Records: compressiblePairs(150),
	}
	var st wireStats
	var buf writeBuffer
	enc, dec := v3Peers(&buf, &st, true)
	if _, err := enc.writeTask(&in); err != nil {
		t.Fatal(err)
	}
	var out taskMsg
	if _, err := dec.readTask(&out); err != nil {
		t.Fatal(err)
	}
	if out.Flags != taskFlagCompress || out.Seq != in.Seq || out.JobName != in.JobName ||
		out.Phase != in.Phase || !bytes.Equal(out.Conf, in.Conf) ||
		out.NumReducers != in.NumReducers || !semanticPairEq(out.Records, in.Records) {
		t.Fatalf("decode mismatch: %+v", out)
	}
	if st.compressSaved.Load() <= 0 {
		t.Fatal("task frame was not compressed")
	}
}

// TestWireV3OffMatchesV2Bytes is the compatibility pin: a v3 codec with
// compression off and no v3-only fields set must emit byte-identical
// streams to a v2 codec, so mixed-version clusters and Compression=off
// runs see exactly the PR 9 wire format.
func TestWireV3OffMatchesV2Bytes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		task := taskMsg{
			Seq: rng.Intn(1 << 16), JobName: randomWireString(rng), Phase: randomWireString(rng),
			Conf: randomWireBytes(rng), NumReducers: rng.Intn(16), Records: randomWirePairs(rng, 8),
		}
		res := resultMsg{Seq: rng.Intn(1 << 16), Err: randomWireString(rng)}
		for i := 0; i < rng.Intn(4); i++ {
			res.Parts = append(res.Parts, randomWirePairs(rng, 6))
		}

		var v2buf, v3buf writeBuffer
		v2 := &frameCodec{w: &v2buf, st: &wireStats{}, version: WireVersionFrames}
		v3, _ := v3Peers(&v3buf, &wireStats{}, false)
		if _, err := v2.writeTask(&task); err != nil {
			t.Fatal(err)
		}
		if _, err := v3.writeTask(&task); err != nil {
			t.Fatal(err)
		}
		if _, err := v2.writeResult(&res); err != nil {
			t.Fatal(err)
		}
		if _, err := v3.writeResult(&res); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v2buf.b, v3buf.b) {
			t.Fatalf("trial %d: v3-off stream differs from v2 stream", trial)
		}
	}
}

// TestWireV2GoldenFrameBytes pins the v2 frame layout against a
// hand-assembled byte string, independent of the codec's own encoder.
func TestWireV2GoldenFrameBytes(t *testing.T) {
	task := taskMsg{Seq: 7, JobName: "jb", Phase: "map", Conf: []byte{1, 2},
		NumReducers: 3, Records: []Pair{{Key: "k", Value: []byte("v")}}}

	var want []byte
	body := []byte{frameTask}
	body = binary.AppendUvarint(body, 7)          // Seq
	body = append(body, 2, 'j', 'b')              // JobName
	body = append(body, 3, 'm', 'a', 'p')         // Phase
	body = append(body, 2, 1, 2)                  // Conf
	body = append(body, 3)                        // NumReducers
	body = append(body, 1, 1, 'k', 1, 'v')        // Records
	want = binary.AppendUvarint(want, uint64(len(body)))
	want = append(want, body...)

	var buf writeBuffer
	enc := &frameCodec{w: &buf, st: &wireStats{}, version: WireVersionFrames}
	if _, err := enc.writeTask(&task); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.b, want) {
		t.Fatalf("task frame bytes:\n got %x\nwant %x", buf.b, want)
	}

	res := resultMsg{Seq: 9, Parts: [][]Pair{{{Key: "a", Value: []byte("b")}}}}
	var wantRes []byte
	rbody := []byte{frameResult}
	rbody = binary.AppendUvarint(rbody, 9)  // Seq
	rbody = append(rbody, 0)                // Err
	rbody = append(rbody, 1)                // len(Parts)
	rbody = append(rbody, 1, 1, 'a', 1, 'b')
	wantRes = binary.AppendUvarint(wantRes, uint64(len(rbody)))
	wantRes = append(wantRes, rbody...)

	var rbuf writeBuffer
	if _, err := (&frameCodec{w: &rbuf, st: &wireStats{}, version: WireVersionFrames}).writeResult(&res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rbuf.b, wantRes) {
		t.Fatalf("result frame bytes:\n got %x\nwant %x", rbuf.b, wantRes)
	}
}

// TestWireV3TaskFlagsAndResultIO round-trips the two v3-only frame
// kinds: 't' carrying task flags and 'r' carrying shard-read
// attribution.
func TestWireV3TaskFlagsAndResultIO(t *testing.T) {
	var st wireStats
	var buf writeBuffer
	enc, dec := v3Peers(&buf, &st, false)

	task := taskMsg{Seq: 3, JobName: "j", Phase: "reduce", Flags: taskFlagCompress,
		Records: []Pair{{Key: "k", Value: []byte("v")}}}
	if _, err := enc.writeTask(&task); err != nil {
		t.Fatal(err)
	}
	var outTask taskMsg
	if _, err := dec.readTask(&outTask); err != nil {
		t.Fatal(err)
	}
	if outTask.Flags != taskFlagCompress || outTask.Seq != 3 || outTask.Phase != "reduce" {
		t.Fatalf("task flags lost: %+v", outTask)
	}

	res := resultMsg{Seq: 5, ShardTok: 0xfeedface, ShardStart: 1 << 30, ShardEnd: 1<<30 + 4096}
	if _, err := enc.writeResult(&res); err != nil {
		t.Fatal(err)
	}
	var outRes resultMsg
	if _, err := dec.readResult(&outRes); err != nil {
		t.Fatal(err)
	}
	if outRes.ShardTok != res.ShardTok || outRes.ShardStart != res.ShardStart ||
		outRes.ShardEnd != res.ShardEnd || outRes.Seq != 5 {
		t.Fatalf("shard IO fields lost: %+v", outRes)
	}
}

// rawFrame frames body with its uvarint length prefix, as a peer would
// put it on the wire.
func rawFrame(body []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(len(body)))
	return append(out, body...)
}

// deflateBytes is a test helper for hand-building 'C' wrapper payloads.
func deflateBytes(t *testing.T, p []byte) []byte {
	t.Helper()
	var zbuf bytes.Buffer
	zw, err := flate.NewWriter(&zbuf, flate.BestSpeed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return zbuf.Bytes()
}

// TestWireMalformedCompressedFrames feeds every corruption mode of the
// 'C' wrapper to the decoder: each must produce an error, never a panic
// and never an allocation sized by the lying header.
func TestWireMalformedCompressedFrames(t *testing.T) {
	inner := append([]byte{frameResult}, rawFrameResultBody()...)
	good := deflateBytes(t, inner)

	cases := []struct {
		name string
		body []byte
	}{
		{"raw length zero", append([]byte{frameCompressed, 0}, good...)},
		{"raw length over cap", append(binary.AppendUvarint([]byte{frameCompressed}, maxFrameBody+1), good...)},
		{"incomplete length varint", []byte{frameCompressed, 0x80}},
		{"garbage flate", append(binary.AppendUvarint([]byte{frameCompressed}, uint64(len(inner))), 0xde, 0xad, 0xbe, 0xef)},
		{"truncated flate", append(binary.AppendUvarint([]byte{frameCompressed}, uint64(len(inner))), good[:len(good)/2]...)},
		{"declared longer than stream", append(binary.AppendUvarint([]byte{frameCompressed}, uint64(len(inner))+5), good...)},
		{"declared shorter than stream", append(binary.AppendUvarint([]byte{frameCompressed}, uint64(len(inner))-1), good...)},
		{"nested wrapper", append(binary.AppendUvarint([]byte{frameCompressed}, uint64(1+len(good))),
			deflateBytes(t, append([]byte{frameCompressed}, good...))...)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dec := &frameCodec{br: bufio.NewReader(bytes.NewReader(rawFrame(c.body))), st: &wireStats{}}
			var r resultMsg
			if _, err := dec.readResult(&r); err == nil {
				t.Fatal("malformed compressed frame decoded without error")
			}
		})
	}

	// Control: the well-formed wrapper must decode.
	ok := append(binary.AppendUvarint([]byte{frameCompressed}, uint64(len(inner))), good...)
	dec := &frameCodec{br: bufio.NewReader(bytes.NewReader(rawFrame(ok))), st: &wireStats{}}
	var r resultMsg
	if _, err := dec.readResult(&r); err != nil {
		t.Fatalf("control wrapper failed: %v", err)
	}
	if r.Seq != 9 {
		t.Fatalf("control decode Seq = %d", r.Seq)
	}
}

// rawFrameResultBody is the hand-assembled golden result body (sans
// kind byte) shared by the corruption tests.
func rawFrameResultBody() []byte {
	b := binary.AppendUvarint(nil, 9) // Seq
	b = append(b, 0)                  // Err
	b = append(b, 1)                  // len(Parts)
	return append(b, 1, 1, 'a', 1, 'b')
}

// TestWireIncompressibleShipsRaw checks the shrink gate: a frame of
// random bytes above the threshold must go out raw and byte-identical
// to a compression-off stream, with zero claimed savings.
func TestWireIncompressibleShipsRaw(t *testing.T) {
	noise := make([]byte, 8192)
	rand.New(rand.NewSource(33)).Read(noise)
	in := taskMsg{Seq: 1, JobName: "j", Phase: "map", Conf: noise}

	var onSt, offSt wireStats
	var onBuf, offBuf writeBuffer
	onEnc, onDec := v3Peers(&onBuf, &onSt, true)
	offEnc, _ := v3Peers(&offBuf, &offSt, false)
	if _, err := onEnc.writeTask(&in); err != nil {
		t.Fatal(err)
	}
	if _, err := offEnc.writeTask(&in); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onBuf.b, offBuf.b) {
		t.Fatal("incompressible frame was not shipped raw")
	}
	if onSt.compressSaved.Load() != 0 {
		t.Fatalf("compressSaved = %d for incompressible frame", onSt.compressSaved.Load())
	}
	var out taskMsg
	if _, err := onDec.readTask(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Conf, noise) {
		t.Fatal("raw-shipped frame decode mismatch")
	}
}

// TestWireV3HelloNegotiation extends the handshake matrix to the packed
// version: v2 and v1 peers pull a v3 peer down to their level.
func TestWireV3HelloNegotiation(t *testing.T) {
	cases := []struct{ worker, master, want byte }{
		{WireVersionPacked, WireVersionPacked, WireVersionPacked},
		{WireVersionFrames, WireVersionPacked, WireVersionFrames},
		{WireVersionPacked, WireVersionFrames, WireVersionFrames},
		{WireVersionGob, WireVersionPacked, WireVersionGob},
		{WireVersionPacked + 9, WireVersionPacked, WireVersionPacked},
	}
	for _, c := range cases {
		wv, mv, werr, merr := helloPeers(t, c.worker, c.master)
		if werr != nil || merr != nil {
			t.Fatalf("hello(%d,%d): worker err %v, master err %v", c.worker, c.master, werr, merr)
		}
		if wv != c.want || mv != c.want {
			t.Fatalf("hello(%d,%d) = worker %d, master %d; want %d", c.worker, c.master, wv, mv, c.want)
		}
	}
}

// TestReadExactlyBoundedByStream checks the hostile-length defense: a
// huge declared size backed by a short stream errors out without the
// reader ever holding more than the arrived bytes plus one chunk.
func TestReadExactlyBoundedByStream(t *testing.T) {
	if _, err := readExactly(strings.NewReader("short"), 1<<29); err == nil {
		t.Fatal("short stream satisfied a huge declared length")
	}
	payload := strings.Repeat("x", 3*readChunk+17)
	got, err := readExactly(strings.NewReader(payload+"tail"), len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatal("multi-chunk read mismatch")
	}
	small, err := readExactly(strings.NewReader("abc"), 3)
	if err != nil || string(small) != "abc" {
		t.Fatalf("small read = %q, %v", small, err)
	}
}

// TestPackedEmbedBucketRoundTrip checks the 'e' record against the 'E'
// record: same decode, fewer bytes for sorted indices, and dispatch
// through ParseAnyEmbedBucket for both kinds.
func TestPackedEmbedBucketRoundTrip(t *testing.T) {
	indices := []int32{3, 10, 11, 500, 501, 502, 90000}
	const dim = 4
	rng := rand.New(rand.NewSource(35))
	rows := make([]float64, len(indices)*dim)
	for i := range rows {
		rows[i] = rng.NormFloat64()
	}

	packed := AppendPackedEmbedBucket(nil, indices, dim, rows)
	raw := AppendEmbedBucket(nil, indices, dim, rows)
	if len(packed) >= len(raw) {
		t.Fatalf("packed %d bytes >= raw %d bytes for sorted indices", len(packed), len(raw))
	}
	for _, rec := range [][]byte{packed, raw} {
		gotIdx, gotDim, gotRows, err := ParseAnyEmbedBucket(rec)
		if err != nil {
			t.Fatal(err)
		}
		if gotDim != dim || len(gotIdx) != len(indices) || len(gotRows) != len(rows) {
			t.Fatalf("shape mismatch: dim %d, %d indices, %d row values", gotDim, len(gotIdx), len(gotRows))
		}
		for i := range indices {
			if gotIdx[i] != indices[i] {
				t.Fatalf("index %d: got %d want %d", i, gotIdx[i], indices[i])
			}
		}
		for i := range rows {
			if gotRows[i] != rows[i] {
				t.Fatalf("row value %d: got %v want %v", i, gotRows[i], rows[i])
			}
		}
	}

	// Truncations of the packed record must fail cleanly.
	for cut := 0; cut < len(packed); cut++ {
		if _, _, _, err := ParsePackedEmbedBucket(packed[:cut]); err == nil {
			t.Fatalf("packed truncation at %d accepted", cut)
		}
	}
	if _, _, _, err := ParsePackedEmbedBucket(append(append([]byte(nil), packed...), 0)); err == nil {
		t.Fatal("packed trailing garbage accepted")
	}
}

// TestForeignShardBytes checks the master-side attribution fold:
// per-token span aggregation across phases, with the driver's own
// process and zero tokens excluded.
func TestForeignShardBytes(t *testing.T) {
	mapPhase := []resultMsg{
		{ShardTok: processToken, ShardStart: 0, ShardEnd: 1 << 20}, // own process: skipped
		{ShardTok: 0xaaaa, ShardStart: 100, ShardEnd: 150},
		{ShardTok: 0, ShardStart: 5, ShardEnd: 999}, // no meter: skipped
	}
	redPhase := []resultMsg{
		{ShardTok: 0xaaaa, ShardStart: 120, ShardEnd: 300}, // same worker, span grows to [100,300]
		{ShardTok: 0xbbbb, ShardStart: 50, ShardEnd: 60},
	}
	got := foreignShardBytes(mapPhase, redPhase)
	if want := int64(200 + 10); got != want {
		t.Fatalf("foreignShardBytes = %d, want %d", got, want)
	}
	if foreignShardBytes(nil, nil) != 0 {
		t.Fatal("empty phases attributed bytes")
	}
}

// BenchmarkWireCompressRoundTrip times the v3 codec's deflate+inflate
// round trip on a shuffle-shaped, compressible result frame.
func BenchmarkWireCompressRoundTrip(b *testing.B) {
	pairs := compressiblePairs(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := WireRoundTripOpts(pairs, true); err != nil {
			b.Fatal(err)
		}
	}
}

// FuzzWireFrame drives the full frame decoder (including the 'C'
// inflate path) over arbitrary streams: errors are fine, panics and
// header-sized allocations are not.
func FuzzWireFrame(f *testing.F) {
	var seedBuf writeBuffer
	enc, _ := v3Peers(&seedBuf, &wireStats{}, true)
	_, _ = enc.writeTask(&taskMsg{Seq: 1, JobName: "j", Phase: "map",
		Records: compressiblePairs(150)})
	_, _ = enc.writeResult(&resultMsg{Seq: 2, ShardTok: 7, ShardEnd: 12,
		Parts: [][]Pair{{{Key: "k", Value: []byte("v")}}}})
	f.Add(seedBuf.b)
	f.Add([]byte{0x80})
	f.Add(rawFrame([]byte{frameCompressed, 0x05, 0xde, 0xad}))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tm taskMsg
		_, _ = (&frameCodec{br: bufio.NewReader(bytes.NewReader(data)), st: &wireStats{}}).readTask(&tm)
		var rm resultMsg
		_, _ = (&frameCodec{br: bufio.NewReader(bytes.NewReader(data)), st: &wireStats{}}).readResult(&rm)
	})
}

// FuzzParseEmbedBucket drives both embed record decoders over arbitrary
// bytes; a nil error must imply internally consistent shapes.
func FuzzParseEmbedBucket(f *testing.F) {
	f.Add(AppendEmbedBucket(nil, []int32{1, 2}, 2, []float64{1, 2, 3, 4}))
	f.Add(AppendPackedEmbedBucket(nil, []int32{1, 2}, 2, []float64{1, 2, 3, 4}))
	f.Add([]byte{PackedEmbedBucketKind, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, dim, rows, err := ParseAnyEmbedBucket(data)
		if err != nil {
			return
		}
		if dim <= 0 || len(idx) == 0 || len(rows) != len(idx)*dim {
			t.Fatalf("accepted inconsistent bucket: %d indices, dim %d, %d row values",
				len(idx), dim, len(rows))
		}
	})
}
