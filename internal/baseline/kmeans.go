package baseline

import (
	"errors"
	"time"

	"repro/internal/kmeans"
	"repro/internal/matrix"
)

// KM is plain (non-kernel) K-means on the raw feature vectors — the
// fourth comparator implied by the paper's §2 (Mahout's K-Means is the
// first distributed algorithm it names). It needs no Gram matrix at
// all, which makes it the memory floor every kernel method is traded
// off against, and it fails exactly where spectral methods shine
// (non-Gaussian cluster shapes).
func KM(points *matrix.Dense, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, errors.New("baseline: KM needs K > 0")
	}
	n := points.Rows()
	if n == 0 {
		return &Result{Labels: []int{}}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	start := time.Now()
	res, err := kmeans.Run(points, kmeans.Config{K: k, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return &Result{
		Labels:    res.Labels,
		GramBytes: 0, // no similarity matrix at all
		Elapsed:   time.Since(start),
	}, nil
}
