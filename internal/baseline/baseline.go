// Package baseline implements the three algorithms the paper compares
// DASC against (§5.4): SC, plain spectral clustering on the full Gram
// matrix (the Mahout-style reference); PSC, parallel spectral
// clustering with a t-nearest-neighbour sparse similarity graph and a
// parallel Lanczos eigensolver (Chen et al.); and NYST, spectral
// clustering with the Nyström extension (Shi et al.).
package baseline

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/spectral"
)

// Config is shared by the three baselines.
type Config struct {
	// K is the number of clusters (required).
	K int
	// Sigma is the Gaussian bandwidth; 0 selects the median heuristic.
	Sigma float64
	// Seed drives K-means and sampling.
	Seed int64
	// Neighbors is PSC's t (sparsity degree); 0 defaults to 20.
	Neighbors int
	// Samples is NYST's landmark count; 0 defaults to max(K*4, 64).
	Samples int
}

// Result reports a baseline run.
type Result struct {
	// Labels is the clustering.
	Labels []int
	// GramBytes models the similarity-matrix storage at 4 bytes per
	// entry, the paper's memory metric (Figure 6b).
	GramBytes int64
	// NNZ is the number of stored similarity entries the eigensolver
	// saw: n² for the dense SC path, the t-NN graph size for PSC.
	NNZ int64
	// Fill is NNZ divided by n² — 1 for SC, PSC's measured graph
	// density, comparable to the per-bucket fill DASC reports.
	Fill float64
	// Elapsed is the measured wall-clock time.
	Elapsed time.Duration
}

func (c Config) sigma(points *matrix.Dense) float64 {
	if c.Sigma > 0 {
		return c.Sigma
	}
	return kernel.MedianSigma(points, 512, c.Seed)
}

// SC runs plain spectral clustering on the full N x N Gram matrix.
func SC(points *matrix.Dense, cfg Config) (*Result, error) {
	start := time.Now()
	s := kernel.Gram(points, kernel.NewGaussian(cfg.sigma(points)))
	res, err := spectral.Cluster(s, spectral.Config{K: cfg.K, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	n := int64(points.Rows())
	return &Result{
		Labels:    res.Labels,
		GramBytes: kernel.GramBytes(points.Rows()),
		NNZ:       n * n,
		Fill:      1,
		Elapsed:   time.Since(start),
	}, nil
}
