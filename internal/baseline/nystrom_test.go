package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/matrix"
)

// scalarChainDot is the single ascending-chain dot the recognized
// kernel fast path accumulates in, so the scalar reference below lands
// on bitwise-identical rounding.
func scalarChainDot(x, y []float64) float64 {
	var s float64
	for t := range x {
		s += x[t] * y[t]
	}
	return s
}

// scalarNystBlocks is the per-pair reference construction of the
// Nyström blocks: the factorized Gaussian form over single-chain dots,
// one scalar Eval per entry, no blocking and no parallelism.
func scalarNystBlocks(points *matrix.Dense, landmarks []int, sigma float64) (w, c *matrix.Dense) {
	inv := 1 / (2 * sigma * sigma)
	m := len(landmarks)
	n := points.Rows()
	lmRows := make([][]float64, m)
	sqlm := make([]float64, m)
	for a, idx := range landmarks {
		lmRows[a] = points.Row(idx)
		sqlm[a] = scalarChainDot(lmRows[a], lmRows[a])
	}
	eval := func(x []float64, sqx float64, b int) float64 {
		d2 := sqx + sqlm[b] - 2*scalarChainDot(x, lmRows[b])
		if d2 < 0 {
			d2 = 0
		}
		return math.Exp(-d2 * inv)
	}
	w = matrix.NewDense(m, m)
	for a := 0; a < m; a++ {
		row := w.Row(a)
		for b := 0; b < m; b++ {
			row[b] = eval(lmRows[a], sqlm[a], b)
		}
	}
	c = matrix.NewDense(n, m)
	for i := 0; i < n; i++ {
		xi := points.Row(i)
		sqx := scalarChainDot(xi, xi)
		row := c.Row(i)
		for b := 0; b < m; b++ {
			row[b] = eval(xi, sqx, b)
		}
	}
	return w, c
}

// TestNystKernelBlocksMatchScalar pins the blocked W/C construction
// byte-for-byte against the scalar per-pair reference — n above the
// fast path's parallel cutoff so the worker-pool path is the one under
// test — and checks the structural invariants the downstream eigensolve
// relies on: unit diagonal, unit landmark entries in C, and bitwise
// symmetry of W.
func TestNystKernelBlocksMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, d, m = 300, 9, 41
	points := matrix.NewDense(n, d)
	data := points.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	landmarks := rng.Perm(n)[:m]
	const sigma = 1.3
	w, c, err := nystKernelBlocks(points, landmarks, kernel.NewGaussian(sigma))
	if err != nil {
		t.Fatal(err)
	}
	refW, refC := scalarNystBlocks(points, landmarks, sigma)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if w.At(a, b) != refW.At(a, b) {
				t.Fatalf("W[%d,%d] = %x, scalar %x", a, b, w.At(a, b), refW.At(a, b))
			}
			if w.At(a, b) != w.At(b, a) {
				t.Fatalf("W not bitwise symmetric at (%d,%d)", a, b)
			}
		}
		if w.At(a, a) != 1 {
			t.Fatalf("W diagonal [%d] = %v", a, w.At(a, a))
		}
	}
	for i := 0; i < n; i++ {
		for b := 0; b < m; b++ {
			if c.At(i, b) != refC.At(i, b) {
				t.Fatalf("C[%d,%d] = %x, scalar %x", i, b, c.At(i, b), refC.At(i, b))
			}
		}
	}
	for b, idx := range landmarks {
		if c.At(idx, b) != 1 {
			t.Fatalf("C landmark entry [%d,%d] = %v", idx, b, c.At(idx, b))
		}
	}
}
