package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

// testBlobs builds a labeled mixture for the baseline tests.
func testBlobs(t *testing.T, n, d, k int, noise float64, seed int64) *dataset.Labeled {
	t.Helper()
	l, err := dataset.Mixture(dataset.MixtureConfig{N: n, D: d, K: k, Noise: noise, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func accuracyOf(t *testing.T, truth, pred []int) float64 {
	t.Helper()
	acc, err := metrics.Accuracy(truth, pred)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestSCRecoversBlobs(t *testing.T) {
	l := testBlobs(t, 90, 16, 3, 0.02, 1)
	res, err := SC(l.Points, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, l.Labels, res.Labels); acc < 0.95 {
		t.Fatalf("SC accuracy = %v", acc)
	}
	if res.GramBytes != 4*90*90 {
		t.Fatalf("GramBytes = %d", res.GramBytes)
	}
}

func TestPSCRecoversBlobs(t *testing.T) {
	l := testBlobs(t, 120, 16, 3, 0.02, 3)
	res, err := PSC(l.Points, Config{K: 3, Seed: 4, Neighbors: 15})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, l.Labels, res.Labels); acc < 0.9 {
		t.Fatalf("PSC accuracy = %v", acc)
	}
	// Sparse graph must be far below the dense Gram cost.
	if res.GramBytes >= 4*120*120 {
		t.Fatalf("PSC memory %d not sparse", res.GramBytes)
	}
}

func TestPSCValidation(t *testing.T) {
	pts := matrix.NewDense(5, 2)
	if _, err := PSC(pts, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := PSC(pts, Config{K: 2, Neighbors: -3}); err == nil {
		t.Fatal("expected error for negative neighbors")
	}
	// Empty input.
	res, err := PSC(matrix.NewDense(0, 0), Config{K: 2})
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

func TestPSCNeighborsClamped(t *testing.T) {
	l := testBlobs(t, 20, 4, 2, 0.02, 5)
	res, err := PSC(l.Points, Config{K: 2, Seed: 6, Neighbors: 500})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, l.Labels, res.Labels); acc < 0.9 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestNYSTRecoversBlobs(t *testing.T) {
	l := testBlobs(t, 150, 16, 3, 0.02, 7)
	res, err := NYST(l.Points, Config{K: 3, Seed: 8, Samples: 40})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, l.Labels, res.Labels); acc < 0.9 {
		t.Fatalf("NYST accuracy = %v", acc)
	}
	// n*m + m^2 entries at 4 bytes.
	want := int64(4 * (150*40 + 40*40))
	if res.GramBytes != want {
		t.Fatalf("GramBytes = %d, want %d", res.GramBytes, want)
	}
}

func TestNYSTValidation(t *testing.T) {
	pts := matrix.NewDense(5, 2)
	if _, err := NYST(pts, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	res, err := NYST(matrix.NewDense(0, 0), Config{K: 2})
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

func TestNYSTSamplesClamped(t *testing.T) {
	l := testBlobs(t, 30, 8, 2, 0.02, 9)
	res, err := NYST(l.Points, Config{K: 2, Seed: 10, Samples: 500})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, l.Labels, res.Labels); acc < 0.9 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestKEqualsNDegenerate(t *testing.T) {
	l := testBlobs(t, 6, 3, 2, 0.02, 11)
	for name, run := range map[string]func() (*Result, error){
		"sc":   func() (*Result, error) { return SC(l.Points, Config{K: 6, Seed: 1}) },
		"psc":  func() (*Result, error) { return PSC(l.Points, Config{K: 6, Seed: 1}) },
		"nyst": func() (*Result, error) { return NYST(l.Points, Config{K: 6, Seed: 1}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Labels) != 6 {
			t.Fatalf("%s: labels = %v", name, res.Labels)
		}
	}
}

func TestMemoryOrdering(t *testing.T) {
	// The paper's Figure 6(b) ordering: DASC < PSC < SC. Here we verify
	// the baseline halves: sparse PSC below dense SC, NYST below SC.
	l := testBlobs(t, 200, 8, 4, 0.03, 12)
	sc, err := SC(l.Points, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	psc, err := PSC(l.Points, Config{K: 4, Seed: 1, Neighbors: 10})
	if err != nil {
		t.Fatal(err)
	}
	nyst, err := NYST(l.Points, Config{K: 4, Seed: 1, Samples: 50})
	if err != nil {
		t.Fatal(err)
	}
	if psc.GramBytes >= sc.GramBytes || nyst.GramBytes >= sc.GramBytes {
		t.Fatalf("memory ordering violated: sc=%d psc=%d nyst=%d",
			sc.GramBytes, psc.GramBytes, nyst.GramBytes)
	}
}

func TestKMRecoversBlobsButNotRings(t *testing.T) {
	// On Gaussian blobs, plain K-means is fine.
	l := testBlobs(t, 90, 8, 3, 0.02, 20)
	res, err := KM(l.Points, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(t, l.Labels, res.Labels); acc < 0.95 {
		t.Fatalf("KM blob accuracy = %v", acc)
	}
	if res.GramBytes != 0 {
		t.Fatalf("KM must report zero Gram memory, got %d", res.GramBytes)
	}
	// On concentric rings it must fail where spectral methods succeed —
	// the paper's motivation for spectral clustering (§3.1).
	rng := rand.New(rand.NewSource(21))
	n := 60
	pts := matrix.NewDense(2*n, 2)
	truth := make([]int, 2*n)
	for i := 0; i < n; i++ {
		theta := rng.Float64() * 2 * math.Pi
		pts.Set(i, 0, math.Cos(theta))
		pts.Set(i, 1, math.Sin(theta))
		theta = rng.Float64() * 2 * math.Pi
		pts.Set(n+i, 0, 5*math.Cos(theta))
		pts.Set(n+i, 1, 5*math.Sin(theta))
		truth[n+i] = 1
	}
	km, err := KM(pts, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := SC(pts, Config{K: 2, Seed: 1, Sigma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	kmAcc := accuracyOf(t, truth, km.Labels)
	scAcc := accuracyOf(t, truth, sc.Labels)
	if scAcc != 1 {
		t.Fatalf("SC must separate rings, got %v", scAcc)
	}
	if kmAcc >= scAcc {
		t.Fatalf("KM should fail on rings: km=%v sc=%v", kmAcc, scAcc)
	}
}

func TestKMValidation(t *testing.T) {
	if _, err := KM(matrix.NewDense(3, 2), Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	res, err := KM(matrix.NewDense(0, 0), Config{K: 2})
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

func TestKNNGraphSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := matrix.NewDense(30, 3)
	for i := range pts.Data() {
		pts.Data()[i] = rng.Float64()
	}
	g, err := buildKNNGraph(pts, 5, kernel.Func(func(x, y []float64) float64 {
		return 1 / (1 + matrix.SqDist(x, y))
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsSymmetric(0) {
		t.Fatal("t-NN graph must be symmetric after OR-symmetrization")
	}
	// Each node has at least t edges after OR-symmetrization.
	d := g.Dense()
	for i := 0; i < 30; i++ {
		edges := 0
		for _, v := range d.Row(i) {
			if v != 0 {
				edges++
			}
		}
		if edges < 5 {
			t.Fatalf("node %d has %d < 5 edges", i, edges)
		}
	}
}

// TestBaselineSparsityCounters: the baselines must report the entry
// counts their eigensolvers actually saw — dense n² for SC, the
// measured t-NN graph for PSC — so memory comparisons against DASC's
// per-bucket fill use one metric.
func TestBaselineSparsityCounters(t *testing.T) {
	l := testBlobs(t, 120, 8, 3, 0.04, 17)
	n := int64(120)

	sc, err := SC(l.Points, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sc.NNZ != n*n || sc.Fill != 1 {
		t.Fatalf("SC counters: nnz=%d fill=%v", sc.NNZ, sc.Fill)
	}

	psc, err := PSC(l.Points, Config{K: 3, Seed: 2, Neighbors: 10})
	if err != nil {
		t.Fatal(err)
	}
	if psc.NNZ == 0 || psc.NNZ >= n*n {
		t.Fatalf("PSC nnz = %d, want sparse", psc.NNZ)
	}
	if want := float64(psc.NNZ) / float64(n*n); math.Abs(psc.Fill-want) > 1e-15 {
		t.Fatalf("PSC fill = %v, want %v", psc.Fill, want)
	}
	if psc.GramBytes != 8*psc.NNZ {
		t.Fatalf("PSC GramBytes %d vs 8·nnz %d", psc.GramBytes, 8*psc.NNZ)
	}

	ny, err := NYST(l.Points, Config{K: 3, Seed: 2, Samples: 24})
	if err != nil {
		t.Fatal(err)
	}
	if ny.NNZ == 0 || ny.Fill <= 0 || ny.Fill >= 1 {
		t.Fatalf("NYST counters: nnz=%d fill=%v", ny.NNZ, ny.Fill)
	}
}
