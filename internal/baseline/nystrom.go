package baseline

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/kernel"
	"repro/internal/kmeans"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// NYST runs spectral clustering with the Nyström extension in the
// style of Shi et al. (§5.4's Matlab comparator): sample m landmark
// points, compute the landmark kernel block W (m x m) and the cross
// block C (n x m), extend W's eigenvectors to all points as
// V ~= C U Lambda^{-1}, normalize rows, and run K-means. Only
// O(n m + m^2) kernel entries are ever computed or stored.
func NYST(points *matrix.Dense, cfg Config) (*Result, error) {
	n := points.Rows()
	if cfg.K <= 0 {
		return nil, errors.New("baseline: NYST needs K > 0")
	}
	if n == 0 {
		return &Result{Labels: []int{}}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	m := cfg.Samples
	if m == 0 {
		m = cfg.K * 4
		if m < 64 {
			m = 64
		}
	}
	if m < k {
		m = k
	}
	if m > n {
		m = n
	}
	start := time.Now()
	kf := kernel.NewGaussian(cfg.sigma(points))
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Landmark sample without replacement (Fisher–Yates prefix).
	perm := rng.Perm(n)
	landmarks := perm[:m]

	// Both kernel blocks go through the blocked recognized-kernel fast
	// path (micro-tiled dot blocks over precomputed row norms) instead of
	// per-pair scalar Eval loops. The cross path yields k(x,x)=1 exactly
	// for coincident rows — the norm and dot terms cancel bitwise — so W
	// keeps its unit diagonal and C its unit landmark entries without
	// special-casing, and W stays bitwise symmetric for the eigensolver.
	w, c, err := nystKernelBlocks(points, landmarks, kf)
	if err != nil {
		return nil, err
	}

	// Approximate degrees for normalization: d ~= C W^{-1} (C^T 1)
	// reduces to row sums of the Nyström-approximated similarity; the
	// standard one-shot approximation uses d = C * (W^+ * (C^T * 1)).
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	ctOnes := make([]float64, m) // C^T * 1
	for i := 0; i < n; i++ {
		row := c.Row(i)
		for b, v := range row {
			ctOnes[b] += v
		}
	}
	vals, vecs, err := linalg.EigenSym(w)
	if err != nil {
		return nil, fmt.Errorf("baseline: NYST landmark eigensolver: %w", err)
	}
	// Pseudo-inverse application: W^+ x = U Lambda^+ U^T x.
	winvCtOnes := applyPinv(vals, vecs, ctOnes)
	deg, err := c.MulVec(winvCtOnes)
	if err != nil {
		return nil, err
	}
	dInv := make([]float64, n)
	for i, v := range deg {
		if v > 1e-12 {
			dInv[i] = 1 / math.Sqrt(v)
		}
	}

	// Extended eigenvectors of the normalized similarity:
	// V[:, j] = D^{-1/2} C u_j / lambda_j for the top-k landmark pairs.
	embed := matrix.NewDense(n, k)
	for j := 0; j < k && j < len(vals); j++ {
		if vals[j] <= 1e-12 {
			break
		}
		uj := vecs.Col(j)
		cu, err := c.MulVec(uj)
		if err != nil {
			return nil, err
		}
		inv := 1 / vals[j]
		for i := 0; i < n; i++ {
			embed.Set(i, j, cu[i]*inv*dInv[i])
		}
	}
	matrix.NormalizeRows(embed)
	km, err := kmeans.Run(embed, kmeans.Config{K: k, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("baseline: NYST kmeans: %w", err)
	}
	stored := int64(n)*int64(m) + int64(m)*int64(m)
	return &Result{
		Labels:    km.Labels,
		GramBytes: 4 * stored,
		NNZ:       stored,
		Fill:      float64(stored) / (float64(n) * float64(n)),
		Elapsed:   time.Since(start),
	}, nil
}

// nystKernelBlocks builds the Nyström kernel blocks W (m×m,
// landmark-landmark) and C (n×m, all points vs landmarks) through
// kernel.CrossGramInto's deterministic blocked path. Split out so the
// byte-identity test can pin it against a scalar reference.
func nystKernelBlocks(points *matrix.Dense, landmarks []int, kf kernel.Kernel) (w, c *matrix.Dense, err error) {
	m := len(landmarks)
	lm := matrix.NewDense(m, points.Cols())
	for a, idx := range landmarks {
		copy(lm.Row(a), points.Row(idx))
	}
	w = matrix.NewDense(m, m)
	if err := kernel.CrossGramInto(w, lm, lm, kf); err != nil {
		return nil, nil, fmt.Errorf("baseline: NYST landmark block: %w", err)
	}
	c = matrix.NewDense(points.Rows(), m)
	if err := kernel.CrossGramInto(c, points, lm, kf); err != nil {
		return nil, nil, fmt.Errorf("baseline: NYST cross block: %w", err)
	}
	return w, c, nil
}

// applyPinv computes U diag(1/vals) U^T x, skipping tiny eigenvalues.
func applyPinv(vals []float64, vecs *matrix.Dense, x []float64) []float64 {
	n := vecs.Rows()
	out := make([]float64, n)
	for j, lambda := range vals {
		if math.Abs(lambda) < 1e-10 {
			continue
		}
		uj := vecs.Col(j)
		c := matrix.Dot(uj, x) / lambda
		matrix.AXPY(c, uj, out)
	}
	return out
}
