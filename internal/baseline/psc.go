package baseline

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/sparse"
	"repro/internal/spectral"
)

// PSC runs Parallel Spectral Clustering in the style of Chen et al.
// (§5.4's C++/MPI/PARPACK comparator): build a t-nearest-neighbour
// sparse similarity graph in parallel, symmetrize it, and run sparse
// spectral clustering (implicit normalized Laplacian + Lanczos — the
// ARPACK stand-in — + K-means).
func PSC(points *matrix.Dense, cfg Config) (*Result, error) {
	n := points.Rows()
	if cfg.K <= 0 {
		return nil, errors.New("baseline: PSC needs K > 0")
	}
	if n == 0 {
		return &Result{Labels: []int{}}, nil
	}
	t := cfg.Neighbors
	if t == 0 {
		// The sparse graph must stay connected enough for K eigenvectors
		// to be informative: with many clusters a fixed small t leaves
		// components whose indicator eigenvectors are arbitrary mixtures
		// under Lanczos. Scale the default with the cluster count.
		t = 20
		if 2*cfg.K > t {
			t = 2 * cfg.K
		}
	}
	if t < 1 {
		return nil, fmt.Errorf("baseline: PSC neighbors %d", t)
	}
	if t >= n {
		t = n - 1
	}
	start := time.Now()
	k := cfg.K
	if k > n {
		k = n
	}

	graph, err := buildKNNGraph(points, t, kernel.NewGaussian(cfg.sigma(points)))
	if err != nil {
		return nil, fmt.Errorf("baseline: PSC graph: %w", err)
	}
	if graph.NNZ() == 0 {
		return &Result{Labels: make([]int, n), Elapsed: time.Since(start)}, nil
	}

	res, err := spectral.ClusterSparse(graph, spectral.Config{K: k, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("baseline: PSC: %w", err)
	}
	return &Result{
		Labels:    res.Labels,
		GramBytes: graph.Bytes(),
		NNZ:       int64(graph.NNZ()),
		Fill:      graph.Fill(),
		Elapsed:   time.Since(start),
	}, nil
}

// edge is one directed similarity edge found during the t-NN search.
type edge struct {
	to int
	w  float64
}

// buildKNNGraph computes each point's t nearest neighbours in parallel
// and returns the OR-symmetrized CSR similarity graph.
func buildKNNGraph(points *matrix.Dense, t int, k kernel.Kernel) (*sparse.CSR, error) {
	n := points.Rows()
	nbrs := make([][]edge, n)
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			h := &edgeHeap{}
			for i := lo; i < hi; i++ {
				h.edges = h.edges[:0]
				xi := points.Row(i)
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					w := k.Eval(xi, points.Row(j))
					if len(h.edges) < t {
						heap.Push(h, edge{j, w})
					} else if w > h.edges[0].w {
						h.edges[0] = edge{j, w}
						heap.Fix(h, 0)
					}
				}
				nbrs[i] = append([]edge(nil), h.edges...)
			}
		}(lo, hi)
	}
	wg.Wait()

	var triplets []sparse.Triplet
	for i, list := range nbrs {
		for _, e := range list {
			triplets = append(triplets, sparse.Triplet{Row: i, Col: e.to, Val: e.w})
		}
	}
	return sparse.Symmetrized(n, triplets)
}

// edgeHeap is a min-heap on similarity, keeping the t best neighbours.
type edgeHeap struct{ edges []edge }

func (h *edgeHeap) Len() int           { return len(h.edges) }
func (h *edgeHeap) Less(i, j int) bool { return h.edges[i].w < h.edges[j].w }
func (h *edgeHeap) Swap(i, j int)      { h.edges[i], h.edges[j] = h.edges[j], h.edges[i] }
func (h *edgeHeap) Push(x interface{}) { h.edges = append(h.edges, x.(edge)) }
func (h *edgeHeap) Pop() interface{} {
	old := h.edges
	n := len(old)
	e := old[n-1]
	h.edges = old[:n-1]
	return e
}
