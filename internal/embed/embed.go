// Package embed implements low-dimensional kernel embeddings for the
// embed-and-conquer solve path (PAPERS.md "Embed and Conquer: Scalable
// Embeddings for Kernel k-Means on MapReduce", arXiv:1311.2334): a map
// φ: R^d → R^d′ with ⟨φ(x), φ(y)⟩ ≈ k(x, y), so kernel k-means on a
// bucket becomes plain Hamerly k-means on embedded rows — no Gram, no
// eigensolve, and shuffle payloads of O(n·d′) instead of O(n²).
//
// Two embedders are provided behind one interface: random Fourier
// features for the Gaussian kernel (seed-derived frequencies, cos/sin
// pairing) and a Nyström embedding that reuses the landmark math of
// internal/baseline/nystrom.go via the blocked cross-kernel engine.
//
// Determinism contract. Every embedder is a pure per-row function of
// (row, fitted parameters): the blocked transform computes each output
// with a fixed accumulation order that depends only on the parameter
// layout — never on which rows are co-resident in a block, the subset
// being transformed, or the worker count. Embedding a bucket's rows
// therefore produces bitwise the same floats as slicing those rows out
// of a whole-dataset embedding, which is what lets the local,
// incremental, closure-MapReduce and shipped drivers agree bit for bit.
package embed

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// Embedder maps rows of a point matrix into a d′-dimensional feature
// space whose ordinary dot products approximate a kernel.
type Embedder interface {
	// Dim returns d′, the embedded dimension.
	Dim() int
	// InputDim returns the expected point dimensionality d.
	InputDim() int
	// TransformInto fills dst (len(indices) × Dim() row-major; indices
	// nil means all rows) with the embeddings of the listed rows of
	// points. The output is a pure per-row function: bitwise identical
	// for a given row regardless of the subset, block position, or
	// worker count.
	TransformInto(dst []float64, points *matrix.Dense, indices []int) error
}

const (
	// blockRows mirrors the kernel engine's cache-resident block edge.
	blockRows = 64
	// parallelCutoff is the row count above which transforms go
	// parallel; below it the goroutine handoff costs more than the work.
	parallelCutoff = 192
)

// scratchPool recycles gather and dot scratch across transforms, the
// same recipe as the kernel engine's pool.
var scratchPool = sync.Pool{
	New: func() interface{} { s := make([]float64, 0, blockRows*blockRows); return &s },
}

func getScratch(n int) (*[]float64, []float64) {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	buf := (*p)[:n]
	//lint:ignore poolescape deliberate ownership transfer: every caller pairs this with putScratch(p) (usually deferred), and buf aliases the loan so it dies when p is returned
	return p, buf
}

func putScratch(p *[]float64) { scratchPool.Put(p) }

// checkTransform validates the common TransformInto contract and
// returns the row count.
func checkTransform(dst []float64, points *matrix.Dense, indices []int, inputDim, dim int) (int, error) {
	if points.Cols() != inputDim {
		return 0, fmt.Errorf("embed: points have %d dims, embedder fitted for %d", points.Cols(), inputDim)
	}
	n := points.Rows()
	if indices != nil {
		n = len(indices)
		for _, idx := range indices {
			if idx < 0 || idx >= points.Rows() {
				return 0, fmt.Errorf("embed: row index %d out of range [0,%d)", idx, points.Rows())
			}
		}
	}
	if len(dst) != n*dim {
		return 0, fmt.Errorf("embed: dst length %d, want %d rows x %d dims = %d", len(dst), n, dim, n*dim)
	}
	return n, nil
}

// gatherRows returns a contiguous row-major view of the selected rows:
// the matrix storage itself when indices is nil, a pooled copy
// otherwise. The returned token is nil when no scratch was borrowed.
func gatherRows(points *matrix.Dense, indices []int) (*[]float64, []float64) {
	if indices == nil {
		return nil, points.Data()
	}
	d := points.Cols()
	tok, buf := getScratch(len(indices) * d)
	for a, idx := range indices {
		copy(buf[a*d:(a+1)*d], points.Row(idx))
	}
	return tok, buf
}

// forEachRowBlock runs fn over fixed blockRows-edged row blocks
// [i0, i1), serially for small n and via an atomic-counter worker pool
// above parallelCutoff. Blocks are a deterministic function of n alone;
// fn must write only its own block's outputs.
func forEachRowBlock(n int, fn func(i0, i1 int)) {
	nb := (n + blockRows - 1) / blockRows
	workers := runtime.GOMAXPROCS(0)
	if workers > nb {
		workers = nb
	}
	if n < parallelCutoff || workers <= 1 {
		for b := 0; b < nb; b++ {
			fn(b*blockRows, min(n, (b+1)*blockRows))
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				fn(b*blockRows, min(n, (b+1)*blockRows))
			}
		}()
	}
	wg.Wait()
}

// Bytes returns the storage footprint of an n-row embedding at
// dimension dim: 8·n·d′ for float64 rows. It is the embedded-path
// analogue of kernel.GramBytes.
func Bytes(n, dim int) int64 {
	return 8 * int64(n) * int64(dim)
}
