package embed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// nystromSeedSalt decorrelates landmark sampling from the RFF frequency
// stream and every other Config.Seed consumer.
const nystromSeedSalt = 0x4e59535453414c54 // "NYSTSALT"

// eigenFloor is the smallest landmark eigenvalue the projection keeps;
// directions below it are numerically null and map to zero coordinates.
const eigenFloor = 1e-10

// Nystrom is the landmark embedding of internal/baseline/nystrom.go
// recast as an Embedder: sample m landmarks, eigendecompose the
// landmark kernel block W = U Λ Uᵀ, and embed any point as
//
//	φ(x) = Λ^{-1/2} Uᵀ k_x,   k_x[j] = k(x, landmark_j)
//
// so ⟨φ(x), φ(y)⟩ = k_xᵀ W⁺ k_y — exactly the Nyström approximation of
// k(x, y). Unlike RFF the map is data-dependent (fitted to the landmark
// sample) and spends its whole budget on the kernel's actual spectrum,
// so it usually needs a smaller d′ for the same approximation quality.
type Nystrom struct {
	landmarks *matrix.Dense // m × d sampled rows, contiguous
	projT     *matrix.Dense // dim × m: row j = U[:,j] / sqrt(λ_j)
	kf        *kernel.GaussianKernel
	inputDim  int
	dim       int
}

// NewNystrom fits a Nyström embedding on a seed-derived landmark sample
// of the given points: samples rows are drawn without replacement, the
// landmark kernel block runs through the blocked cross-kernel engine,
// and its top dim eigenpairs form the projection. Requires
// dim <= samples <= n. Eigen-directions with λ <= 1e-10 (a rank-deficient
// landmark block) become zero coordinates, keeping Dim() stable.
func NewNystrom(points *matrix.Dense, samples, dim int, sigma float64, seed int64) (*Nystrom, error) {
	n, d := points.Rows(), points.Cols()
	if dim <= 0 {
		return nil, fmt.Errorf("embed: Nystrom dim %d must be positive", dim)
	}
	if samples < dim {
		return nil, fmt.Errorf("embed: Nystrom samples %d < dim %d", samples, dim)
	}
	if samples > n {
		return nil, fmt.Errorf("embed: Nystrom samples %d exceeds %d points", samples, n)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("embed: Nystrom sigma %v must be positive", sigma)
	}
	kf := kernel.NewGaussian(sigma)
	rng := rand.New(rand.NewSource(seed ^ nystromSeedSalt))
	perm := rng.Perm(n)
	landmarks := matrix.NewDense(samples, d)
	for a := 0; a < samples; a++ {
		copy(landmarks.Row(a), points.Row(perm[a]))
	}

	// W: landmark-landmark kernel block. The cross engine yields exact
	// unit self pairs on the diagonal and a bitwise-symmetric matrix
	// (every (a,b) and (b,a) run the same single-chain accumulation), so
	// it feeds EigenSym directly.
	w, err := kernel.CrossGram(landmarks, landmarks, kf)
	if err != nil {
		return nil, fmt.Errorf("embed: Nystrom landmark block: %w", err)
	}
	vals, vecs, err := linalg.EigenSym(w)
	if err != nil {
		return nil, fmt.Errorf("embed: Nystrom landmark eigensolver: %w", err)
	}
	projT := matrix.NewDense(dim, samples)
	for j := 0; j < dim && j < len(vals); j++ {
		if vals[j] <= eigenFloor {
			break // descending order: everything after is null too
		}
		row := projT.Row(j)
		inv := 1 / math.Sqrt(vals[j])
		for a := 0; a < samples; a++ {
			row[a] = vecs.At(a, j) * inv
		}
	}
	return &Nystrom{landmarks: landmarks, projT: projT, kf: kf, inputDim: d, dim: dim}, nil
}

// Dim returns the embedded dimension d′.
func (ny *Nystrom) Dim() int { return ny.dim }

// InputDim returns the fitted point dimensionality.
func (ny *Nystrom) InputDim() int { return ny.inputDim }

// TransformInto implements Embedder: per point-row block, the kernel
// responses against the fixed landmark set come from the bit-uniform
// cross engine, then one DotBlock pass against the fixed-blocked
// projection rows turns them into coordinates. Both stages are pure
// per-row functions of the fitted parameters, so the output is bitwise
// identical across subsets, drivers, and worker counts.
func (ny *Nystrom) TransformInto(dst []float64, points *matrix.Dense, indices []int) error {
	n, err := checkTransform(dst, points, indices, ny.inputDim, ny.dim)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	gatherTok, rows := gatherRows(points, indices)
	if gatherTok != nil {
		defer putScratch(gatherTok)
	}
	d := ny.inputDim
	m := ny.landmarks.Rows()
	pd := ny.projT.Data()
	forEachRowBlock(n, func(i0, i1 int) {
		nr := i1 - i0
		kxTok, kxBuf := getScratch(nr * m)
		defer putScratch(kxTok)
		dotsTok, dots := getScratch(blockRows * blockRows)
		defer putScratch(dotsTok)
		// Shapes were validated in checkTransform and the buffers are
		// sized here, so construction/cross failures are programming
		// bugs, not runtime conditions.
		sub, derr := matrix.NewDenseData(nr, d, rows[i0*d:i1*d])
		if derr != nil {
			matrix.Panicf("embed: Nystrom row view: %v", derr)
		}
		kx, derr := matrix.NewDenseData(nr, m, kxBuf)
		if derr != nil {
			matrix.Panicf("embed: Nystrom response view: %v", derr)
		}
		if cerr := kernel.CrossGramInto(kx, sub, ny.landmarks, ny.kf); cerr != nil {
			matrix.Panicf("embed: Nystrom cross block: %v", cerr)
		}
		for j0 := 0; j0 < ny.dim; j0 += blockRows {
			j1 := min(ny.dim, j0+blockRows)
			nc := j1 - j0
			block := dots[:nr*nc]
			matrix.DotBlock(kxBuf, nr, pd[j0*m:j1*m], nc, m, block)
			for i := i0; i < i1; i++ {
				out := dst[i*ny.dim : (i+1)*ny.dim]
				copy(out[j0:j1], block[(i-i0)*nc:(i-i0)*nc+nc])
			}
		}
	})
	return nil
}
