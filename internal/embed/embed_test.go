package embed

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/kernel"
	"repro/internal/matrix"
)

func randPoints(rng *rand.Rand, n, d int) *matrix.Dense {
	m := matrix.NewDense(n, d)
	data := m.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}

func embedAll(t *testing.T, e Embedder, points *matrix.Dense) []float64 {
	t.Helper()
	dst := make([]float64, points.Rows()*e.Dim())
	if err := e.TransformInto(dst, points, nil); err != nil {
		t.Fatalf("TransformInto: %v", err)
	}
	return dst
}

// TestRFFApproximatesGaussianKernel is the concentration property test:
// over sampled pairs, the embedded dot product approximates the
// Gaussian kernel within the Hoeffding bound for an average of m
// bounded terms, and the measured error tightens as d′ grows.
func TestRFFApproximatesGaussianKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n, d, pairs = 80, 12, 400
	const sigma = 1.4
	points := randPoints(rng, n, d)
	kf := kernel.NewGaussian(sigma)

	type pair struct{ a, b int }
	sampled := make([]pair, pairs)
	for p := range sampled {
		sampled[p] = pair{rng.Intn(n), rng.Intn(n)}
	}

	maxErrAt := func(dim int) float64 {
		e, err := NewRFF(d, dim, sigma, 7)
		if err != nil {
			t.Fatalf("NewRFF(dim=%d): %v", dim, err)
		}
		emb := embedAll(t, e, points)
		var worst float64
		for _, pr := range sampled {
			var dot float64
			ra, rb := emb[pr.a*dim:(pr.a+1)*dim], emb[pr.b*dim:(pr.b+1)*dim]
			for t2, v := range ra {
				dot += v * rb[t2]
			}
			got := math.Abs(dot - kf.Eval(points.Row(pr.a), points.Row(pr.b)))
			if got > worst {
				worst = got
			}
		}
		return worst
	}

	dims := []int{32, 128, 512}
	errs := make([]float64, len(dims))
	for i, dim := range dims {
		errs[i] = maxErrAt(dim)
		// Hoeffding for an average of m = dim/2 terms in [-1, 1], union
		// bound over the sampled pairs at failure probability 1e-3:
		// t = sqrt(2 ln(2·pairs/δ) / m).
		m := float64(dim / 2)
		bound := math.Sqrt(2 * math.Log(2*pairs/1e-3) / m)
		if errs[i] > bound {
			t.Fatalf("dim %d: max |<phi,phi> - k| = %v exceeds concentration bound %v", dim, errs[i], bound)
		}
	}
	if errs[len(errs)-1] >= errs[0] {
		t.Fatalf("approximation did not tighten with d': errs = %v for dims %v", errs, dims)
	}
}

// TestRFFPerRowPurity pins the determinism contract: embedding a subset
// of rows is bitwise identical to slicing those rows out of a
// whole-dataset embedding, for ragged and aligned subsets alike.
func TestRFFPerRowPurity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := randPoints(rng, 300, 9)
	e, err := NewRFF(9, 26, 1.1, 42) // 13 frequencies: ragged DotBlock tail
	if err != nil {
		t.Fatal(err)
	}
	whole := embedAll(t, e, points)
	for _, indices := range [][]int{
		{0}, {299}, {17, 3, 250, 8}, rangeInts(5, 200),
	} {
		sub := make([]float64, len(indices)*e.Dim())
		if err := e.TransformInto(sub, points, indices); err != nil {
			t.Fatal(err)
		}
		for a, idx := range indices {
			for j := 0; j < e.Dim(); j++ {
				if sub[a*e.Dim()+j] != whole[idx*e.Dim()+j] {
					t.Fatalf("row %d coord %d: subset %v, whole %v", idx, j, sub[a*e.Dim()+j], whole[idx*e.Dim()+j])
				}
			}
		}
	}
}

func TestNystromPerRowPurity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points := randPoints(rng, 260, 7)
	e, err := NewNystrom(points, 40, 18, 1.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	whole := embedAll(t, e, points)
	indices := []int{255, 0, 31, 100, 101, 102}
	sub := make([]float64, len(indices)*e.Dim())
	if err := e.TransformInto(sub, points, indices); err != nil {
		t.Fatal(err)
	}
	for a, idx := range indices {
		for j := 0; j < e.Dim(); j++ {
			if sub[a*e.Dim()+j] != whole[idx*e.Dim()+j] {
				t.Fatalf("row %d coord %d: subset %v, whole %v", idx, j, sub[a*e.Dim()+j], whole[idx*e.Dim()+j])
			}
		}
	}
}

// TestTransformWorkerCountInvariant checks both embedders produce
// bitwise identical output at GOMAXPROCS 1 and 8.
func TestTransformWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	points := randPoints(rng, 500, 8)
	rff, err := NewRFF(8, 16, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	nys, err := NewNystrom(points, 64, 16, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, e := range []Embedder{rff, nys} {
		runtime.GOMAXPROCS(1)
		serial := embedAll(t, e, points)
		runtime.GOMAXPROCS(8)
		parallel := embedAll(t, e, points)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("%T: coord %d differs across worker counts: %v vs %v", e, i, serial[i], parallel[i])
			}
		}
	}
}

// TestNystromExactOnLandmarkSpan: with every point a landmark and the
// full spectrum kept, the Nyström approximation is the exact kernel
// (up to eigensolver round-off).
func TestNystromExactOnLandmarkSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, d = 48, 5
	points := randPoints(rng, n, d)
	kf := kernel.NewGaussian(0.9)
	e, err := NewNystrom(points, n, n, 0.9, 13)
	if err != nil {
		t.Fatal(err)
	}
	emb := embedAll(t, e, points)
	for i := 0; i < n; i += 7 {
		for j := 0; j < n; j += 5 {
			var dot float64
			ri, rj := emb[i*n:(i+1)*n], emb[j*n:(j+1)*n]
			for t2, v := range ri {
				dot += v * rj[t2]
			}
			want := kf.Eval(points.Row(i), points.Row(j))
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("pair (%d,%d): embedded dot %v, kernel %v", i, j, dot, want)
			}
		}
	}
}

func TestRFFSeedReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points := randPoints(rng, 20, 4)
	a, err := NewRFF(4, 8, 1.0, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRFF(4, 8, 1.0, 99)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := embedAll(t, a, points), embedAll(t, b, points)
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed diverged at coord %d", i)
		}
	}
	c, err := NewRFF(4, 8, 1.0, 100)
	if err != nil {
		t.Fatal(err)
	}
	ec := embedAll(t, c, points)
	same := true
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical embeddings")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewRFF(0, 8, 1, 1); err == nil {
		t.Error("RFF accepted zero input dim")
	}
	if _, err := NewRFF(4, 7, 1, 1); err == nil {
		t.Error("RFF accepted odd dim")
	}
	if _, err := NewRFF(4, 8, 0, 1); err == nil {
		t.Error("RFF accepted zero sigma")
	}
	pts := matrix.NewDense(10, 3)
	if _, err := NewNystrom(pts, 4, 8, 1, 1); err == nil {
		t.Error("Nystrom accepted dim > samples")
	}
	if _, err := NewNystrom(pts, 20, 4, 1, 1); err == nil {
		t.Error("Nystrom accepted samples > n")
	}
	if _, err := NewNystrom(pts, 8, 4, -1, 1); err == nil {
		t.Error("Nystrom accepted negative sigma")
	}
}

func TestTransformValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points := randPoints(rng, 10, 4)
	e, err := NewRFF(4, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.TransformInto(make([]float64, 5), points, nil); err == nil {
		t.Error("short dst accepted")
	}
	if err := e.TransformInto(make([]float64, 8), points, []int{10}); err == nil {
		t.Error("out-of-range index accepted")
	}
	wrong := randPoints(rng, 3, 5)
	if err := e.TransformInto(make([]float64, 24), wrong, nil); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
