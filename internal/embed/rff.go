package embed

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// rffSeedSalt decorrelates the RFF frequency stream from every other
// consumer of Config.Seed (LSH table seeds, k-means seeding, landmark
// sampling) while keeping the map a pure function of the seed.
const rffSeedSalt = 0x52464653414c54 // "RFFSALT"

// RFF is a random Fourier feature map for the Gaussian kernel
// (Rahimi & Recht): m frequencies w_j ~ N(0, σ⁻²I) give
//
//	φ(x) = sqrt(1/m) · [cos(w_1·x), sin(w_1·x), …, cos(w_m·x), sin(w_m·x)]
//
// so ⟨φ(x), φ(y)⟩ = (1/m) Σ_j cos(w_j·(x−y)), an unbiased estimate of
// exp(-‖x−y‖²/(2σ²)). The cos/sin pairing evaluates both phases of each
// frequency, halving the estimator variance of the single-phase
// cos(w·x+b) form at the same output dimension. Dim() = 2m.
type RFF struct {
	freqs    *matrix.Dense // m × d frequency rows, contiguous for DotBlock
	inputDim int
	dim      int     // 2m
	scale    float64 // sqrt(1/m)
}

// NewRFF fits a random Fourier feature map: dim must be positive and
// even (cos/sin pairs), sigma is the Gaussian bandwidth, and the
// frequency matrix is drawn from a seed-derived stream in fixed
// row-major order — the same (inputDim, dim, sigma, seed) always yields
// bitwise the same map.
func NewRFF(inputDim, dim int, sigma float64, seed int64) (*RFF, error) {
	if inputDim <= 0 {
		return nil, fmt.Errorf("embed: RFF input dim %d must be positive", inputDim)
	}
	if dim <= 0 || dim%2 != 0 {
		return nil, fmt.Errorf("embed: RFF dim %d must be positive and even", dim)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("embed: RFF sigma %v must be positive", sigma)
	}
	m := dim / 2
	freqs := matrix.NewDense(m, inputDim)
	rng := rand.New(rand.NewSource(seed ^ rffSeedSalt))
	data := freqs.Data()
	invSigma := 1 / sigma
	for i := range data {
		data[i] = rng.NormFloat64() * invSigma
	}
	return &RFF{freqs: freqs, inputDim: inputDim, dim: dim, scale: math.Sqrt(1 / float64(m))}, nil
}

// Dim returns the embedded dimension d′ = 2m.
func (r *RFF) Dim() int { return r.dim }

// InputDim returns the fitted point dimensionality.
func (r *RFF) InputDim() int { return r.inputDim }

// TransformInto implements Embedder with the blocked DotBlock idiom:
// point-row blocks × frequency-row blocks of pairwise dots, each dot
// turned into one cos/sin pair. The frequency matrix is always
// decomposed into the same fixed blocks, so every projection w_j·x is
// accumulated in the same order no matter which rows ride along —
// per-row purity, hence bitwise reproducibility across subsets,
// drivers, and worker counts.
func (r *RFF) TransformInto(dst []float64, points *matrix.Dense, indices []int) error {
	n, err := checkTransform(dst, points, indices, r.inputDim, r.dim)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	gatherTok, rows := gatherRows(points, indices)
	if gatherTok != nil {
		defer putScratch(gatherTok)
	}
	d := r.inputDim
	m := r.freqs.Rows()
	fd := r.freqs.Data()
	forEachRowBlock(n, func(i0, i1 int) {
		nr := i1 - i0
		tok, dots := getScratch(blockRows * blockRows)
		defer putScratch(tok)
		for j0 := 0; j0 < m; j0 += blockRows {
			j1 := min(m, j0+blockRows)
			nc := j1 - j0
			block := dots[:nr*nc]
			matrix.DotBlock(rows[i0*d:i1*d], nr, fd[j0*d:j1*d], nc, d, block)
			for i := i0; i < i1; i++ {
				out := dst[i*r.dim : (i+1)*r.dim]
				drow := block[(i-i0)*nc:]
				for j := j0; j < j1; j++ {
					s, c := math.Sincos(drow[j-j0])
					out[2*j] = r.scale * c
					out[2*j+1] = r.scale * s
				}
			}
		}
	})
	return nil
}
