package embed

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// BenchmarkEmbedTransform measures the blocked RFF and Nyström
// transforms on a large-bucket-sized input — the map-side cost the
// embedded solve policy pays to skip the Gram + eigensolve.
func BenchmarkEmbedTransform(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n, d, dim = 2048, 32, 64
	points := matrix.NewDense(n, d)
	data := points.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	rff, err := NewRFF(d, dim, 1.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	nys, err := NewNystrom(points, 128, dim, 1.0, 1)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, n*dim)
	b.Run("rff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rff.TransformInto(dst, points, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nystrom", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := nys.TransformInto(dst, points, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
