package emr

import (
	"fmt"
	"math/rand"
)

// DFS models the HDFS layer under the simulated cluster: input splits
// are replicated on ReplicationFactor nodes (Table 2 sets 3), and the
// scheduler can place a task on a node that holds its split to avoid
// reading it over the network — Hadoop's data-locality optimization,
// which §5.1 credits the LSH partitioning step with enabling.
type DFS struct {
	nodes       int
	replication int
	placement   map[string][]int // split id -> nodes holding a replica
}

// NewDFS creates a DFS over the cluster's nodes using its configured
// replication factor.
func (c *Cluster) NewDFS(seed int64) *DFS {
	r := c.Config.ReplicationFactor
	if r < 1 {
		r = 1
	}
	if r > c.Nodes {
		r = c.Nodes
	}
	return &DFS{
		nodes:       c.Nodes,
		replication: r,
		placement:   map[string][]int{},
	}
}

// Place assigns a split to replication-many distinct nodes, chosen
// round-robin with a seeded rotation (HDFS's rack-unaware default).
func (d *DFS) Place(splitID string, seed int64) []int {
	if nodes, ok := d.placement[splitID]; ok {
		return nodes
	}
	rng := rand.New(rand.NewSource(seed + int64(len(d.placement))))
	start := rng.Intn(d.nodes)
	nodes := make([]int, 0, d.replication)
	for i := 0; i < d.replication; i++ {
		nodes = append(nodes, (start+i)%d.nodes)
	}
	d.placement[splitID] = nodes
	return nodes
}

// Holders returns the nodes storing splitID (nil when never placed).
func (d *DFS) Holders(splitID string) []int { return d.placement[splitID] }

// LocalTask couples a task with the input split it reads.
type LocalTask struct {
	Task
	// SplitID names the DFS split the task reads; empty means no input
	// affinity (e.g. a reducer reading shuffled data).
	SplitID string
	// InputBytes is the split size charged to the network when the
	// task runs on a node without a replica.
	InputBytes int64
}

// LocalitySchedule extends Schedule with data-locality accounting.
type LocalitySchedule struct {
	Schedule
	// LocalTasks ran on a node holding their input split.
	LocalTasks int
	// RemoteTasks had to read their split over the network.
	RemoteTasks int
	// NetworkBytes is the traffic caused by remote reads.
	NetworkBytes int64
}

// ScheduleLocal places tasks LPT like ScheduleTasks, but when several
// slots tie within `slack` seconds of the least-loaded one, it prefers
// a slot on a node that holds the task's split. Remote placements are
// charged the split's bytes to the network counter.
func (c *Cluster) ScheduleLocal(tasks []LocalTask, dfs *DFS, slack float64) (*LocalitySchedule, error) {
	if dfs == nil {
		return nil, fmt.Errorf("emr: ScheduleLocal needs a DFS")
	}
	if slack < 0 {
		return nil, fmt.Errorf("emr: negative slack %v", slack)
	}
	slots := c.Slots()
	perNode := slots / c.Nodes
	out := &LocalitySchedule{}
	out.SlotBusy = make([]float64, slots)
	out.NodeBusy = make([]float64, c.Nodes)
	out.Assignments = make([]int, len(tasks))

	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	// LPT order.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && tasks[order[j]].Cost > tasks[order[j-1]].Cost; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	slotPeak := make([]int64, slots)
	for _, t := range order {
		task := tasks[t]
		// Least-loaded slot overall.
		best := 0
		for s := 1; s < slots; s++ {
			if out.SlotBusy[s] < out.SlotBusy[best] {
				best = s
			}
		}
		chosen := best
		local := false
		if task.SplitID != "" {
			holders := dfs.Holders(task.SplitID)
			// Least-loaded slot on a holder node within the slack.
			bestLocal, found := -1, false
			for _, node := range holders {
				for s := node * perNode; s < (node+1)*perNode; s++ {
					if !found || out.SlotBusy[s] < out.SlotBusy[bestLocal] {
						bestLocal, found = s, true
					}
				}
			}
			if found && out.SlotBusy[bestLocal] <= out.SlotBusy[best]+slack {
				chosen = bestLocal
				local = true
			}
		}
		out.SlotBusy[chosen] += task.Cost
		out.Assignments[t] = chosen
		out.TotalMemory += task.MemoryBytes
		if task.MemoryBytes > slotPeak[chosen] {
			slotPeak[chosen] = task.MemoryBytes
		}
		if task.SplitID == "" {
			// No affinity: counts as neither local nor remote.
			continue
		}
		if local {
			out.LocalTasks++
		} else {
			out.RemoteTasks++
			out.NetworkBytes += task.InputBytes
		}
	}
	for s, busy := range out.SlotBusy {
		node := s / perNode
		out.NodeBusy[node] += busy
		if busy > out.Makespan {
			out.Makespan = busy
		}
	}
	var nodeMem int64
	for n := 0; n < c.Nodes; n++ {
		var sum int64
		for s := n * perNode; s < (n+1)*perNode; s++ {
			sum += slotPeak[s]
		}
		if sum > nodeMem {
			nodeMem = sum
		}
	}
	out.PeakNodeMemory = nodeMem
	return out, nil
}
