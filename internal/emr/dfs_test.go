package emr

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestDFSPlacement(t *testing.T) {
	c, _ := NewCluster(8)
	dfs := c.NewDFS(1)
	nodes := dfs.Place("split-0", 1)
	if len(nodes) != 3 { // Table 2 replication factor
		t.Fatalf("replicas = %d, want 3", len(nodes))
	}
	seen := map[int]bool{}
	for _, n := range nodes {
		if n < 0 || n >= 8 || seen[n] {
			t.Fatalf("bad replica set %v", nodes)
		}
		seen[n] = true
	}
	// Idempotent.
	again := dfs.Place("split-0", 99)
	for i := range nodes {
		if nodes[i] != again[i] {
			t.Fatal("re-placing a split must be stable")
		}
	}
	if dfs.Holders("never") != nil {
		t.Fatal("unknown split must have no holders")
	}
}

func TestDFSReplicationClamped(t *testing.T) {
	c, _ := NewCluster(2) // fewer nodes than replication factor 3
	dfs := c.NewDFS(1)
	if got := len(dfs.Place("s", 1)); got != 2 {
		t.Fatalf("replicas = %d, want 2", got)
	}
}

func TestScheduleLocalPrefersHolders(t *testing.T) {
	c, _ := NewCluster(4)
	dfs := c.NewDFS(1)
	var tasks []LocalTask
	for i := 0; i < 32; i++ {
		id := fmt.Sprintf("split-%d", i)
		dfs.Place(id, int64(i))
		tasks = append(tasks, LocalTask{
			Task:       Task{Name: id, Cost: 1, MemoryBytes: 10},
			SplitID:    id,
			InputBytes: 1000,
		})
	}
	// Generous slack: everything can be placed locally.
	sched, err := c.ScheduleLocal(tasks, dfs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sched.LocalTasks != 32 || sched.RemoteTasks != 0 {
		t.Fatalf("local=%d remote=%d, want all local", sched.LocalTasks, sched.RemoteTasks)
	}
	if sched.NetworkBytes != 0 {
		t.Fatalf("network = %d, want 0", sched.NetworkBytes)
	}

	// Zero slack: locality only when the holder slot is also globally
	// least loaded; some remote reads appear but the makespan matches
	// plain LPT.
	strict, err := c.ScheduleLocal(tasks, dfs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strict.LocalTasks+strict.RemoteTasks != 32 {
		t.Fatalf("accounting: %d+%d", strict.LocalTasks, strict.RemoteTasks)
	}
	if strict.NetworkBytes != int64(strict.RemoteTasks)*1000 {
		t.Fatalf("network bytes %d for %d remote tasks", strict.NetworkBytes, strict.RemoteTasks)
	}
	plain := c.ScheduleTasks(toPlain(tasks))
	if strict.Makespan > plain.Makespan+1e-9 {
		t.Fatalf("zero-slack locality hurt makespan: %v vs %v", strict.Makespan, plain.Makespan)
	}
}

func toPlain(tasks []LocalTask) []Task {
	out := make([]Task, len(tasks))
	for i, t := range tasks {
		out[i] = t.Task
	}
	return out
}

func TestScheduleLocalSlackTradeoff(t *testing.T) {
	// With a modest slack, locality improves markedly versus zero slack
	// at bounded makespan cost.
	c, _ := NewCluster(8)
	dfs := c.NewDFS(2)
	rng := rand.New(rand.NewSource(3))
	var tasks []LocalTask
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("s%d", i)
		dfs.Place(id, int64(i))
		tasks = append(tasks, LocalTask{
			Task:       Task{Cost: 0.5 + rng.Float64(), MemoryBytes: 5},
			SplitID:    id,
			InputBytes: 100,
		})
	}
	strict, err := c.ScheduleLocal(tasks, dfs, 0)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := c.ScheduleLocal(tasks, dfs, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.LocalTasks <= strict.LocalTasks {
		t.Fatalf("slack did not improve locality: %d vs %d", relaxed.LocalTasks, strict.LocalTasks)
	}
	if relaxed.Makespan > strict.Makespan*1.6+1.5 {
		t.Fatalf("slack makespan blew up: %v vs %v", relaxed.Makespan, strict.Makespan)
	}
}

func TestScheduleLocalNoAffinityTasks(t *testing.T) {
	c, _ := NewCluster(2)
	dfs := c.NewDFS(1)
	tasks := []LocalTask{
		{Task: Task{Cost: 1}},
		{Task: Task{Cost: 1}},
	}
	sched, err := c.ScheduleLocal(tasks, dfs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sched.LocalTasks != 0 || sched.RemoteTasks != 0 || sched.NetworkBytes != 0 {
		t.Fatalf("affinity-free tasks must not be counted: %+v", sched)
	}
}

func TestScheduleLocalValidation(t *testing.T) {
	c, _ := NewCluster(2)
	if _, err := c.ScheduleLocal(nil, nil, 0); err == nil {
		t.Fatal("expected nil-DFS error")
	}
	if _, err := c.ScheduleLocal(nil, c.NewDFS(1), -1); err == nil {
		t.Fatal("expected negative-slack error")
	}
}
