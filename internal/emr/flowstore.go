package emr

import (
	"errors"
	"fmt"
)

// StoredStep couples a job-flow step with its blob-store dataflow: the
// keys it expects to read and the keys it writes — §5.1's "intermediate
// results of hashing (buckets) are stored on S3 and then incrementally
// processed". RunStoredFlow verifies the dataflow before scheduling a
// step, catching wiring mistakes a plain flow would silently ignore.
type StoredStep struct {
	Step
	// Reads lists blob keys (or prefixes ending in '/') the step
	// consumes; all must exist when the step starts.
	Reads []string
	// Writes lists blob keys the step produces; they are materialized
	// (with placeholder sizes from the task memory accounting) when the
	// step completes.
	Writes []string
}

// StoredFlow is a job flow with explicit S3-style dataflow.
type StoredFlow struct {
	Name  string
	Steps []StoredStep
}

// StoredFlowReport extends the flow report with storage traffic.
type StoredFlowReport struct {
	FlowReport
	// BytesWritten is the total payload written to the store.
	BytesWritten int64
}

// RunStoredFlow executes the steps in order against the cluster and
// blob store: for each step it checks every Read is satisfiable,
// schedules the tasks, then publishes the Writes.
func (c *Cluster) RunStoredFlow(flow *StoredFlow, store *BlobStore) (*StoredFlowReport, error) {
	if flow == nil || len(flow.Steps) == 0 {
		return nil, errors.New("emr: empty stored flow")
	}
	if store == nil {
		return nil, errors.New("emr: stored flow needs a blob store")
	}
	rep := &StoredFlowReport{}
	rep.Cluster = c.Nodes
	for _, step := range flow.Steps {
		for _, key := range step.Reads {
			if isPrefix(key) {
				if len(store.List(key)) == 0 {
					return nil, fmt.Errorf("emr: step %q reads empty prefix %q", step.Name, key)
				}
				continue
			}
			if _, err := store.Get(key); err != nil {
				return nil, fmt.Errorf("emr: step %q: %w", step.Name, err)
			}
		}
		s := c.ScheduleTasks(step.Tasks)
		rep.Steps = append(rep.Steps, StepReport{
			Name:     step.Name,
			Tasks:    len(step.Tasks),
			Makespan: s.Makespan,
			Schedule: s,
		})
		rep.TotalTime += s.Makespan
		if s.PeakNodeMemory > rep.PeakNodeMemory {
			rep.PeakNodeMemory = s.PeakNodeMemory
		}
		if s.TotalMemory > rep.TotalMemory {
			rep.TotalMemory = s.TotalMemory
		}
		// Publish outputs: size each write as an equal share of the
		// step's task memory (a placeholder payload; callers that care
		// about content Put real data themselves before/after).
		share := int64(0)
		if len(step.Writes) > 0 {
			share = s.TotalMemory / int64(len(step.Writes))
		}
		for _, key := range step.Writes {
			store.Put(key, make([]byte, clampInt64(share, 0, 1<<20)))
			rep.BytesWritten += share
		}
	}
	return rep, nil
}

func isPrefix(key string) bool { return len(key) > 0 && key[len(key)-1] == '/' }

func clampInt64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
