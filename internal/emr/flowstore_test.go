package emr

import (
	"strings"
	"testing"
)

func storedFlowFixture() *StoredFlow {
	return &StoredFlow{
		Name: "dasc",
		Steps: []StoredStep{
			{
				Step:   Step{Name: "lsh", Tasks: []Task{{Cost: 1, MemoryBytes: 100}}},
				Reads:  []string{"input/points"},
				Writes: []string{"buckets/0", "buckets/1"},
			},
			{
				Step:   Step{Name: "cluster", Tasks: []Task{{Cost: 2, MemoryBytes: 400}}},
				Reads:  []string{"buckets/"},
				Writes: []string{"results/labels"},
			},
		},
	}
}

func TestRunStoredFlow(t *testing.T) {
	c, _ := NewCluster(2)
	store := NewBlobStore()
	store.Put("input/points", []byte("csv"))
	rep, err := c.RunStoredFlow(storedFlowFixture(), store)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalTime != 3 {
		t.Fatalf("total = %v", rep.TotalTime)
	}
	// Outputs must be visible in the store afterwards.
	if _, err := store.Get("results/labels"); err != nil {
		t.Fatal("results not published")
	}
	if len(store.List("buckets/")) != 2 {
		t.Fatalf("buckets = %v", store.List("buckets/"))
	}
	if rep.BytesWritten == 0 {
		t.Fatal("no bytes accounted")
	}
}

func TestRunStoredFlowMissingInput(t *testing.T) {
	c, _ := NewCluster(2)
	store := NewBlobStore() // input/points never uploaded
	_, err := c.RunStoredFlow(storedFlowFixture(), store)
	if err == nil || !strings.Contains(err.Error(), "input/points") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunStoredFlowEmptyPrefix(t *testing.T) {
	c, _ := NewCluster(2)
	store := NewBlobStore()
	store.Put("input/points", []byte("csv"))
	flow := storedFlowFixture()
	flow.Steps[0].Writes = nil // stage 1 publishes nothing
	_, err := c.RunStoredFlow(flow, store)
	if err == nil || !strings.Contains(err.Error(), "buckets/") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunStoredFlowValidation(t *testing.T) {
	c, _ := NewCluster(1)
	if _, err := c.RunStoredFlow(nil, NewBlobStore()); err == nil {
		t.Fatal("expected empty-flow error")
	}
	if _, err := c.RunStoredFlow(&StoredFlow{Steps: []StoredStep{{}}}, nil); err == nil {
		t.Fatal("expected nil-store error")
	}
}
