package emr

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultNodeConfigMatchesTable2(t *testing.T) {
	cfg := DefaultNodeConfig()
	if cfg.JobTrackerHeapMB != 768 || cfg.NameNodeHeapMB != 256 ||
		cfg.TaskTrackerHeapMB != 512 || cfg.DataNodeHeapMB != 256 ||
		cfg.MaxMapTasks != 4 || cfg.MaxReduceTasks != 2 ||
		cfg.ReplicationFactor != 3 {
		t.Fatalf("config diverged from Table 2: %+v", cfg)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	c, err := NewCluster(16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Slots() != 64 {
		t.Fatalf("16 nodes x 4 map slots = %d, want 64", c.Slots())
	}
}

func TestScheduleUniformTasks(t *testing.T) {
	c, _ := NewCluster(2) // 8 slots
	tasks := make([]Task, 16)
	for i := range tasks {
		tasks[i] = Task{Name: "t", Cost: 1, MemoryBytes: 100}
	}
	s := c.ScheduleTasks(tasks)
	// 16 unit tasks over 8 slots: makespan exactly 2.
	if s.Makespan != 2 {
		t.Fatalf("makespan = %v, want 2", s.Makespan)
	}
	if s.TotalMemory != 1600 {
		t.Fatalf("total memory = %d", s.TotalMemory)
	}
	// Each slot runs tasks sequentially, so per-slot peak is one task;
	// per node: 4 slots x 100.
	if s.PeakNodeMemory != 400 {
		t.Fatalf("peak node memory = %d, want 400", s.PeakNodeMemory)
	}
}

func TestScheduleLPTBeatsNaiveOnSkew(t *testing.T) {
	c := &Cluster{Nodes: 1, Config: NodeConfig{MaxMapTasks: 2}}
	// One big task and four small: LPT puts the big task alone.
	tasks := []Task{{Cost: 4}, {Cost: 1}, {Cost: 1}, {Cost: 1}, {Cost: 1}}
	s := c.ScheduleTasks(tasks)
	if s.Makespan != 4 {
		t.Fatalf("makespan = %v, want 4 (big task alone on one slot)", s.Makespan)
	}
}

func TestScheduleElasticityShape(t *testing.T) {
	// Table 3's key property: doubling nodes roughly halves the
	// makespan when tasks are plentiful, and memory stays flat.
	rng := rand.New(rand.NewSource(1))
	tasks := make([]Task, 512)
	for i := range tasks {
		tasks[i] = Task{Cost: 0.5 + rng.Float64(), MemoryBytes: 1000}
	}
	var prev float64
	for i, nodes := range []int{16, 32, 64} {
		c, _ := NewCluster(nodes)
		s := c.ScheduleTasks(tasks)
		if i > 0 {
			ratio := prev / s.Makespan
			if ratio < 1.7 || ratio > 2.3 {
				t.Fatalf("nodes %d: speedup %v, want ~2", nodes, ratio)
			}
		}
		prev = s.Makespan
		if s.TotalMemory != 512_000 {
			t.Fatalf("memory must not depend on node count")
		}
	}
}

func TestRunJobFlow(t *testing.T) {
	c, _ := NewCluster(2)
	flow := &JobFlow{
		Name: "dasc",
		Steps: []Step{
			{Name: "lsh", Tasks: []Task{{Cost: 1, MemoryBytes: 10}}},
			{Name: "cluster", Tasks: []Task{{Cost: 2, MemoryBytes: 30}, {Cost: 2, MemoryBytes: 20}}},
		},
	}
	rep, err := c.RunJobFlow(flow)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("steps = %d", len(rep.Steps))
	}
	if rep.TotalTime != 3 { // 1 + 2 (steps are barriers)
		t.Fatalf("total = %v, want 3", rep.TotalTime)
	}
	if rep.TotalMemory != 50 {
		t.Fatalf("total memory = %d, want 50", rep.TotalMemory)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestRunJobFlowValidation(t *testing.T) {
	c, _ := NewCluster(1)
	if _, err := c.RunJobFlow(nil); err == nil {
		t.Fatal("expected error for nil flow")
	}
	if _, err := c.RunJobFlow(&JobFlow{}); err == nil {
		t.Fatal("expected error for empty flow")
	}
}

func TestBlobStoreBasics(t *testing.T) {
	b := NewBlobStore()
	b.Put("buckets/0", []byte("alpha"))
	b.Put("buckets/1", []byte("beta"))
	b.Put("results/out", []byte("x"))
	got, err := b.Get("buckets/0")
	if err != nil || string(got) != "alpha" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Returned copies must not alias.
	got[0] = 'X'
	again, _ := b.Get("buckets/0")
	if string(again) != "alpha" {
		t.Fatal("Get must copy")
	}
	if _, err := b.Get("missing"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v, want ErrNoObject", err)
	}
	keys := b.List("buckets/")
	if len(keys) != 2 || keys[0] != "buckets/0" {
		t.Fatalf("List = %v", keys)
	}
	if b.Size() != 3 || b.Bytes() != int64(len("alpha")+len("beta")+1) {
		t.Fatalf("Size=%d Bytes=%d", b.Size(), b.Bytes())
	}
	b.Delete("buckets/0")
	b.Delete("buckets/0") // idempotent
	if b.Size() != 2 {
		t.Fatalf("Size after delete = %d", b.Size())
	}
}

func TestBlobStoreConcurrent(t *testing.T) {
	b := NewBlobStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			for j := 0; j < 100; j++ {
				b.Put(key, []byte{byte(j)})
				if _, err := b.Get(key); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				b.List("")
			}
		}(i)
	}
	wg.Wait()
	if b.Size() != 8 {
		t.Fatalf("Size = %d, want 8", b.Size())
	}
}

func TestRescheduleAfterFailure(t *testing.T) {
	c, _ := NewCluster(4) // 16 slots
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{Cost: 1}
	}
	// Base makespan: 64 unit tasks / 16 slots = 4.
	rep, err := c.RescheduleAfterFailure(tasks, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OriginalMakespan != 4 {
		t.Fatalf("original = %v", rep.OriginalMakespan)
	}
	// The failed node held a quarter of the tasks.
	if rep.ReexecutedTasks != 16 || rep.ReexecutedWork != 16 {
		t.Fatalf("reexecuted %d tasks / %v work", rep.ReexecutedTasks, rep.ReexecutedWork)
	}
	// Survivors finish their own 4s of work, then absorb 16 tasks over
	// 12 slots: makespan grows but stays bounded.
	if rep.NewMakespan <= rep.OriginalMakespan || rep.NewMakespan > 7 {
		t.Fatalf("new makespan = %v", rep.NewMakespan)
	}
}

func TestRescheduleAfterFailureValidation(t *testing.T) {
	c1, _ := NewCluster(1)
	if _, err := c1.RescheduleAfterFailure(nil, 0, 0); err == nil {
		t.Fatal("expected single-node error")
	}
	c, _ := NewCluster(2)
	if _, err := c.RescheduleAfterFailure(nil, 5, 0); err == nil {
		t.Fatal("expected bad-node error")
	}
	if _, err := c.RescheduleAfterFailure(nil, 0, -1); err == nil {
		t.Fatal("expected negative-time error")
	}
}

func TestRescheduleFailureNeverShrinksMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c, _ := NewCluster(3)
	tasks := make([]Task, 40)
	for i := range tasks {
		tasks[i] = Task{Cost: rng.Float64()*3 + 0.1}
	}
	for node := 0; node < 3; node++ {
		for _, at := range []float64{0, 1, 100} {
			rep, err := c.RescheduleAfterFailure(tasks, node, at)
			if err != nil {
				t.Fatal(err)
			}
			if rep.NewMakespan < rep.OriginalMakespan-1e-9 {
				t.Fatalf("failure shrank makespan: %+v", rep)
			}
			if rep.NewMakespan < at && rep.ReexecutedTasks > 0 {
				t.Fatalf("re-execution cannot finish before the failure: %+v", rep)
			}
		}
	}
}

// Property: makespan is always at least total-work/slots (lower bound)
// and at most total work (upper bound), and never below the largest
// single task.
func TestPropMakespanBounds(t *testing.T) {
	f := func(seed int64, nodesSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := int(nodesSeed%8) + 1
		c, err := NewCluster(nodes)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(60)
		tasks := make([]Task, n)
		var total, biggest float64
		for i := range tasks {
			cost := rng.Float64()*10 + 0.01
			tasks[i] = Task{Cost: cost}
			total += cost
			if cost > biggest {
				biggest = cost
			}
		}
		s := c.ScheduleTasks(tasks)
		lower := total / float64(c.Slots())
		if biggest > lower {
			lower = biggest
		}
		return s.Makespan >= lower-1e-9 && s.Makespan <= total+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: more nodes never increases the LPT makespan.
func TestPropMonotoneInNodes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{Cost: rng.Float64()*5 + 0.01}
		}
		prev := -1.0
		for _, nodes := range []int{1, 2, 4, 8} {
			c, _ := NewCluster(nodes)
			ms := c.ScheduleTasks(tasks).Makespan
			if prev >= 0 && ms > prev+1e-9 {
				return false
			}
			prev = ms
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
