// Package emr simulates the Amazon Elastic MapReduce deployment of the
// paper's §5.1: a cluster of nodes with task slots (Table 2), an S3-like
// blob store for inputs and results, and job flows made of steps. The
// simulator schedules real task workloads (e.g. DASC's per-bucket
// spectral clustering, with costs measured or modeled from bucket
// sizes) onto n nodes with an LPT greedy scheduler and reports the
// simulated makespan and memory footprint — reproducing the elasticity
// behaviour of Table 3 without renting a cluster.
package emr

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// NodeConfig mirrors the Hadoop configuration of Table 2 plus the
// m1.small instance geometry of §5.1.
type NodeConfig struct {
	JobTrackerHeapMB  int
	NameNodeHeapMB    int
	TaskTrackerHeapMB int
	DataNodeHeapMB    int
	MaxMapTasks       int
	MaxReduceTasks    int
	ReplicationFactor int
	MemoryMB          int
	DiskGB            int
}

// DefaultNodeConfig returns the exact values of Table 2 (and the
// 1.7 GB / 350 GB m1.small geometry from §5.1).
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{
		JobTrackerHeapMB:  768,
		NameNodeHeapMB:    256,
		TaskTrackerHeapMB: 512,
		DataNodeHeapMB:    256,
		MaxMapTasks:       4,
		MaxReduceTasks:    2,
		ReplicationFactor: 3,
		MemoryMB:          1700,
		DiskGB:            350,
	}
}

// Task is one schedulable unit of work.
type Task struct {
	// Name identifies the task in reports.
	Name string
	// Cost is the simulated execution time in seconds on one slot,
	// including any disk time the flow builder folded in for DiskBytes.
	Cost float64
	// MemoryBytes is the task's resident footprint while running.
	MemoryBytes int64
	// DiskBytes is the task's local-disk traffic: spill-run writes plus
	// re-reads and demand-read input shard bytes. Flow builders fold the
	// corresponding transfer time into Cost; the scheduler aggregates
	// the bytes so reports can separate I/O volume from compute.
	DiskBytes int64
}

// Cluster is a simulated elastic cluster.
type Cluster struct {
	// Nodes is the instance count (the paper uses 16, 32, 64).
	Nodes int
	// Config is the per-node configuration.
	Config NodeConfig
}

// NewCluster builds a cluster of n nodes with the Table 2 configuration.
func NewCluster(n int) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("emr: cluster needs at least 1 node, got %d", n)
	}
	return &Cluster{Nodes: n, Config: DefaultNodeConfig()}, nil
}

// Slots returns the number of parallel task slots in the cluster
// (map slots per node times nodes, per Table 2).
func (c *Cluster) Slots() int {
	s := c.Config.MaxMapTasks
	if s < 1 {
		s = 1
	}
	return s * c.Nodes
}

// Schedule is the outcome of placing tasks on the cluster.
type Schedule struct {
	// Makespan is the simulated wall-clock seconds until the last slot
	// finishes.
	Makespan float64
	// SlotBusy[i] is the total busy time of slot i.
	SlotBusy []float64
	// NodeBusy[i] aggregates the busy time of node i's slots.
	NodeBusy []float64
	// Assignments[t] is the slot index task t ran on.
	Assignments []int
	// PeakNodeMemory is the largest simulated concurrent memory
	// footprint of any node: the sum of its slots' biggest tasks.
	PeakNodeMemory int64
	// TotalMemory sums every task's footprint — the aggregate Gram
	// storage the algorithm needs across the cluster.
	TotalMemory int64
	// TotalDiskBytes sums every task's local-disk traffic (spill and
	// shard I/O).
	TotalDiskBytes int64
}

// ScheduleTasks places tasks with the classic LPT (longest processing
// time first) greedy: sort by descending cost, assign each to the
// least-loaded slot. LPT is within 4/3 of the optimal makespan, which
// is accurate enough to study scaling shape.
func (c *Cluster) ScheduleTasks(tasks []Task) *Schedule {
	slots := c.Slots()
	sched := &Schedule{
		SlotBusy:    make([]float64, slots),
		NodeBusy:    make([]float64, c.Nodes),
		Assignments: make([]int, len(tasks)),
	}
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tasks[order[a]].Cost > tasks[order[b]].Cost })

	// slotPeak[s] tracks the largest single task on each slot: slots run
	// tasks sequentially, so a slot's concurrent footprint is its
	// largest task.
	slotPeak := make([]int64, slots)
	for _, t := range order {
		best := 0
		for s := 1; s < slots; s++ {
			if sched.SlotBusy[s] < sched.SlotBusy[best] {
				best = s
			}
		}
		sched.SlotBusy[best] += tasks[t].Cost
		sched.Assignments[t] = best
		if tasks[t].MemoryBytes > slotPeak[best] {
			slotPeak[best] = tasks[t].MemoryBytes
		}
		sched.TotalMemory += tasks[t].MemoryBytes
		sched.TotalDiskBytes += tasks[t].DiskBytes
	}
	perNode := slots / c.Nodes
	for s, busy := range sched.SlotBusy {
		node := s / perNode
		sched.NodeBusy[node] += busy
		if busy > sched.Makespan {
			sched.Makespan = busy
		}
	}
	var nodeMem int64
	for n := 0; n < c.Nodes; n++ {
		var sum int64
		for s := n * perNode; s < (n+1)*perNode; s++ {
			sum += slotPeak[s]
		}
		if sum > nodeMem {
			nodeMem = sum
		}
	}
	sched.PeakNodeMemory = nodeMem
	return sched
}

// FailureReport quantifies the cost of losing a node mid-step.
type FailureReport struct {
	// OriginalMakespan is the no-failure makespan.
	OriginalMakespan float64
	// NewMakespan includes re-executing the failed node's tasks.
	NewMakespan float64
	// ReexecutedTasks counts the tasks that had to run again.
	ReexecutedTasks int
	// ReexecutedWork is their summed cost in seconds.
	ReexecutedWork float64
}

// RescheduleAfterFailure models a Hadoop node failure: at time atTime
// the given node dies, and — because a dead task-tracker's map output
// is unreachable — every task that was assigned to it is re-executed on
// the surviving nodes after they drain their own queues. Returns the
// makespan inflation; errors if the cluster has a single node (no
// survivors) or arguments are out of range.
func (c *Cluster) RescheduleAfterFailure(tasks []Task, failedNode int, atTime float64) (*FailureReport, error) {
	if c.Nodes < 2 {
		return nil, errors.New("emr: failure simulation needs at least 2 nodes")
	}
	if failedNode < 0 || failedNode >= c.Nodes {
		return nil, fmt.Errorf("emr: failed node %d of %d", failedNode, c.Nodes)
	}
	if atTime < 0 {
		return nil, fmt.Errorf("emr: negative failure time %v", atTime)
	}
	base := c.ScheduleTasks(tasks)
	rep := &FailureReport{OriginalMakespan: base.Makespan}

	slots := c.Slots()
	perNode := slots / c.Nodes
	isFailedSlot := func(s int) bool { return s/perNode == failedNode }

	// Collect the failed node's tasks and the survivors' availability.
	var lost []float64
	avail := make([]float64, 0, slots-perNode)
	for s := 0; s < slots; s++ {
		if isFailedSlot(s) {
			continue
		}
		// A surviving slot keeps running its own queue; it can take
		// re-executed work only after both its queue and the failure
		// have happened.
		a := base.SlotBusy[s]
		if a < atTime {
			a = atTime
		}
		avail = append(avail, a)
	}
	for ti, slot := range base.Assignments {
		if isFailedSlot(slot) {
			lost = append(lost, tasks[ti].Cost)
			rep.ReexecutedTasks++
			rep.ReexecutedWork += tasks[ti].Cost
		}
	}
	// LPT the lost tasks onto the earliest-available surviving slots.
	sort.Sort(sort.Reverse(sort.Float64Slice(lost)))
	for _, cost := range lost {
		best := 0
		for s := 1; s < len(avail); s++ {
			if avail[s] < avail[best] {
				best = s
			}
		}
		avail[best] += cost
	}
	rep.NewMakespan = rep.OriginalMakespan
	for _, a := range avail {
		if a > rep.NewMakespan {
			rep.NewMakespan = a
		}
	}
	return rep, nil
}

// Step is one stage of a job flow (the paper's flows are: LSH
// partitioning, per-bucket spectral clustering, result collection).
type Step struct {
	Name  string
	Tasks []Task
}

// JobFlow is an ordered list of steps run on a cluster, mirroring the
// EMR job-flow abstraction of §5.1.
type JobFlow struct {
	Name  string
	Steps []Step
}

// StepReport is the per-step outcome.
type StepReport struct {
	Name     string
	Tasks    int
	Makespan float64
	Schedule *Schedule
}

// FlowReport aggregates a job flow run.
type FlowReport struct {
	Cluster   int
	Steps     []StepReport
	TotalTime float64
	// PeakNodeMemory is the worst per-node footprint over all steps.
	PeakNodeMemory int64
	// TotalMemory is the largest aggregate footprint over steps.
	TotalMemory int64
	// TotalDiskBytes sums disk traffic across all steps' tasks.
	TotalDiskBytes int64
}

// RunJobFlow executes the steps sequentially (steps have a barrier
// between them, as EMR steps do) and aggregates the reports.
func (c *Cluster) RunJobFlow(flow *JobFlow) (*FlowReport, error) {
	return c.RunJobFlowContext(context.Background(), flow)
}

// RunJobFlowContext is RunJobFlow with cancellation: the context is
// checked at each step barrier, so a cancel abandons the remaining
// steps (mirroring terminating an EMR job flow between steps).
func (c *Cluster) RunJobFlowContext(ctx context.Context, flow *JobFlow) (*FlowReport, error) {
	if flow == nil || len(flow.Steps) == 0 {
		return nil, errors.New("emr: empty job flow")
	}
	rep := &FlowReport{Cluster: c.Nodes}
	for _, step := range flow.Steps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("emr: job flow %q at step %q: %w", flow.Name, step.Name, err)
		}
		s := c.ScheduleTasks(step.Tasks)
		rep.Steps = append(rep.Steps, StepReport{
			Name:     step.Name,
			Tasks:    len(step.Tasks),
			Makespan: s.Makespan,
			Schedule: s,
		})
		rep.TotalTime += s.Makespan
		if s.PeakNodeMemory > rep.PeakNodeMemory {
			rep.PeakNodeMemory = s.PeakNodeMemory
		}
		if s.TotalMemory > rep.TotalMemory {
			rep.TotalMemory = s.TotalMemory
		}
		rep.TotalDiskBytes += s.TotalDiskBytes
	}
	return rep, nil
}

// String renders the flow report as a small table.
func (r *FlowReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "job flow on %d nodes: total %.2fs", r.Cluster, r.TotalTime)
	if r.TotalDiskBytes > 0 {
		fmt.Fprintf(&sb, " disk=%dB", r.TotalDiskBytes)
	}
	sb.WriteString("\n")
	for _, s := range r.Steps {
		fmt.Fprintf(&sb, "  step %-24s tasks=%-5d makespan=%.2fs\n", s.Name, s.Tasks, s.Makespan)
	}
	return sb.String()
}

// BlobStore is an in-memory S3 stand-in used by job flows to exchange
// inputs, intermediate buckets, and results. It is safe for concurrent
// use.
type BlobStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewBlobStore returns an empty store.
func NewBlobStore() *BlobStore {
	return &BlobStore{objects: make(map[string][]byte)}
}

// Put stores data under key, copying the bytes.
func (b *BlobStore) Put(key string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.objects[key] = append([]byte(nil), data...)
}

// ErrNoObject is returned by Get for missing keys.
var ErrNoObject = errors.New("emr: no such object")

// Get returns a copy of the object at key.
func (b *BlobStore) Get(key string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoObject, key)
	}
	return append([]byte(nil), data...), nil
}

// List returns the keys with the given prefix, sorted.
func (b *BlobStore) List(prefix string) []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []string
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a key (idempotent).
func (b *BlobStore) Delete(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.objects, key)
}

// Size returns the number of stored objects.
func (b *BlobStore) Size() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.objects)
}

// Bytes returns the total stored payload size.
func (b *BlobStore) Bytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var total int64
	for _, v := range b.objects {
		total += int64(len(v))
	}
	return total
}
