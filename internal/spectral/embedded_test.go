package spectral

import (
	"math/rand"
	"testing"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/matrix"
)

// accuracy computes label agreement under the best greedy mapping —
// good enough for well-separated blobs where clusters are unambiguous.
func embeddedAccuracy(labels, truth []int, k int) float64 {
	counts := make([][]int, k)
	for i := range counts {
		counts[i] = make([]int, k)
	}
	for i, l := range labels {
		counts[l][truth[i]]++
	}
	correct := 0
	for _, row := range counts {
		best := 0
		for _, c := range row {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(labels))
}

// TestClusterBucketEmbeddedPolicy: with embed mode on, buckets at or
// above the cutoff take the embedded solver (no Gram), report d′-sized
// stats, and still recover well-separated blobs; buckets below the
// cutoff are untouched.
func TestClusterBucketEmbeddedPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, truth := makeBlobs(rng, 4, 80, 8, 8, 0.3)
	n := pts.Rows()
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(1.5)
	e, err := embed.NewRFF(8, 64, 1.5, 11)
	if err != nil {
		t.Fatal(err)
	}

	var buf []float64
	cfg := EngineConfig{K: 4, Seed: 9, Embedder: e, EmbedCutoff: 256}
	res, stats, err := ClusterBucket(pts, indices, kf, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Solver != SolverEmbedded {
		t.Fatalf("solver = %q, want %q", stats.Solver, SolverEmbedded)
	}
	if stats.NNZ != int64(n)*64 || stats.GramBytes != embed.Bytes(n, 64) {
		t.Fatalf("embedded stats: %+v", stats)
	}
	if acc := embeddedAccuracy(res.Labels, truth, 4); acc < 0.95 {
		t.Fatalf("embedded solve accuracy %v on separated blobs", acc)
	}

	// Below the cutoff the dense policy is untouched.
	small := indices[:100]
	_, stats, err = ClusterBucket(pts, small, kf, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Solver == SolverEmbedded {
		t.Fatalf("bucket of 100 embedded at cutoff 256 (solver %q)", stats.Solver)
	}
}

// TestClusterBucketEmbeddedMatchesRowsHalf pins the local/shipped split
// contract: the engine's one-shot embedded solve must produce bitwise
// the labels of embedding the rows first and calling ClusterEmbeddedRows
// on them — the exact sequence the shipped worker executes.
func TestClusterBucketEmbeddedMatchesRowsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := makeBlobs(rng, 3, 90, 6, 7, 0.4)
	indices := []int{5, 250, 7, 100, 42, 199, 0, 269, 77, 133, 201, 18, 93, 150, 222, 60,
		11, 12, 13, 14, 15, 16, 17, 30, 31, 32, 33, 34, 35, 36, 37, 38}
	kf := kernel.NewGaussian(1.2)
	e, err := embed.NewNystrom(pts, 48, 16, 1.2, 3)
	if err != nil {
		t.Fatal(err)
	}

	var buf []float64
	cfg := EngineConfig{K: 3, Seed: 41, Embedder: e, EmbedCutoff: 16}
	engine, stats, err := ClusterBucket(pts, indices, kf, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Solver != SolverEmbedded {
		t.Fatalf("solver = %q", stats.Solver)
	}

	// The shipped worker's half: rows were embedded map-side, only
	// k-means runs on the reduce side.
	rows := make([]float64, len(indices)*e.Dim())
	if err := e.TransformInto(rows, pts, indices); err != nil {
		t.Fatal(err)
	}
	emb, err := matrix.NewDenseData(len(indices), e.Dim(), rows)
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := ClusterEmbeddedRows(emb, Config{K: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i := range engine.Labels {
		if engine.Labels[i] != shipped.Labels[i] {
			t.Fatalf("label[%d]: engine %d, rows-half %d", i, engine.Labels[i], shipped.Labels[i])
		}
	}
	if engine.Inertia != shipped.Inertia {
		t.Fatalf("inertia: engine %v, rows-half %v", engine.Inertia, shipped.Inertia)
	}
}

// TestClusterBucketEmbedPrecedesSparse: a bucket eligible for both
// approximate modes takes the embedded path.
func TestClusterBucketEmbedPrecedesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := makeBlobs(rng, 4, 70, 8, 9, 0.3)
	indices := make([]int, pts.Rows())
	for i := range indices {
		indices[i] = i
	}
	e, err := embed.NewRFF(8, 32, 1.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf []float64
	cfg := EngineConfig{
		K: 4, Seed: 1,
		SparseCutoff: 128, Epsilon: 1e-3,
		Embedder: e, EmbedCutoff: 128,
	}
	_, stats, err := ClusterBucket(pts, indices, kernel.NewGaussian(1.5), cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Solver != SolverEmbedded {
		t.Fatalf("solver = %q, want embedded to take precedence", stats.Solver)
	}
}

func TestClusterEmbeddedRowsValidation(t *testing.T) {
	emb := matrix.NewDense(4, 2)
	if _, err := ClusterEmbeddedRows(emb, Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	res, err := ClusterEmbeddedRows(matrix.NewDense(0, 2), Config{K: 2})
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty input: %v %v", res, err)
	}
}
