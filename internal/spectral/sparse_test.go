package spectral

import (
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// denseToCSR converts a dense similarity matrix into CSR triplets.
func denseToCSR(t *testing.T, s *matrix.Dense) *sparse.CSR {
	t.Helper()
	var trip []sparse.Triplet
	for i := 0; i < s.Rows(); i++ {
		for j, v := range s.Row(i) {
			if v != 0 {
				trip = append(trip, sparse.Triplet{Row: i, Col: j, Val: v})
			}
		}
	}
	m, err := sparse.NewCSR(s.Rows(), trip)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClusterSparseMatchesDenseOnBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, truth := makeBlobs(rng, 3, 30, 3, 6, 0.2)
	s := kernel.Gram(pts, kernel.Gaussian(1))
	csr := denseToCSR(t, s)

	sp, err := ClusterSparse(csr, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !sameParition(truth, sp.Labels) {
		t.Fatal("sparse path must recover blobs")
	}
	if len(sp.Eigenvalues) != 3 {
		t.Fatalf("eigenvalues = %v", sp.Eigenvalues)
	}
}

func TestClusterSparseValidation(t *testing.T) {
	empty, err := sparse.NewCSR(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterSparse(empty, Config{K: 2})
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	one, _ := sparse.NewCSR(2, []sparse.Triplet{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1}})
	if _, err := ClusterSparse(one, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	// K >= n gives singletons.
	res, err = ClusterSparse(one, Config{K: 5})
	if err != nil || res.Labels[0] == res.Labels[1] {
		t.Fatalf("K>=n: %v %v", res, err)
	}
}

func TestClusterSparseIsolatedVertex(t *testing.T) {
	// Vertex 2 has no edges: zero degree must not produce NaNs.
	g, err := sparse.NewCSR(3, []sparse.Triplet{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusterSparse(g, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Embedding.Data() {
		if v != v { // NaN check
			t.Fatal("NaN in sparse embedding")
		}
	}
	if len(res.Labels) != 3 {
		t.Fatalf("labels = %v", res.Labels)
	}
}
