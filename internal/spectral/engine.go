package spectral

// This file is the per-bucket solve engine shared by the DASC bucket
// path, the bucketed kernel-ML front-ends, and anything else that turns
// (points, indices, kernel) into labels. It owns the adaptive solver
// policy:
//
//	bucket size / measured fill          solver            similarity form
//	------------------------------------ ----------------- ---------------
//	embed mode on, ni >= EmbedCutoff     embedded          none (d′ rows)
//	ni <= 96 or 3K >= ni                 dense-eigen       dense (pooled)
//	larger, sparse mode off              dense-lanczos     dense (pooled)
//	sparse mode on, fill <= 0.35         sparse-lanczos    CSR (owned)
//	sparse mode on, fill  > 0.35         dense-*           CSR densified
//
// Sparse mode is opt-in (SparseCutoff > 0 and Epsilon > 0) and is an
// approximation: entries below ε are dropped before the eigensolve.
// Embed mode (an Embedder plus EmbedCutoff > 0) is likewise opt-in and
// likewise approximate — it skips the Gram entirely and runs k-means on
// kernel-embedded rows (see embedded.go) — and it takes precedence over
// the sparse attempt, since a bucket big enough to embed never needs
// the ε-cut. With both modes off the engine executes exactly the
// pre-existing dense sequence (pooled SubGram + ClusterInPlace), so
// default configurations reproduce byte-identical labels. Every branch
// of the policy is a deterministic function of the bucket's size,
// config, and measured fill — never of the worker count — and each
// solver is itself bitwise worker-independent, so label bits never
// depend on parallelism.

import (
	"time"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// Solver kind names reported in SolveStats and on core counters.
const (
	// SolverDenseEigen is the full tred2+tqli reduction of a dense
	// Laplacian — small buckets, or most of the spectrum wanted.
	SolverDenseEigen = "dense-eigen"
	// SolverDenseLanczos is Lanczos on a dense Laplacian via the
	// blocked MatVec — mid-size buckets without sparse mode.
	SolverDenseLanczos = "dense-lanczos"
	// SolverSparseLanczos is Lanczos on a thresholded CSR Laplacian —
	// large buckets whose ε-cut fill stays below MaxSparseFill.
	SolverSparseLanczos = "sparse-lanczos"
)

// MaxSparseFill is the measured-fill ceiling for the CSR solver: above
// it the thresholded matrix is densified into the pooled scratch
// instead, since CSR row scans at ~8 bytes/entry stop paying for
// themselves against the dense engine's 1x4 micro-tiled rows well
// before the pattern is actually dense.
const MaxSparseFill = 0.35

// EngineConfig configures one bucket solve.
type EngineConfig struct {
	// K is the number of clusters to extract. Required.
	K int
	// Seed feeds the Lanczos start vector and the K-means stage.
	Seed int64
	// KMeansIter bounds Lloyd iterations (default 100).
	KMeansIter int
	// SparseCutoff is the bucket size at or above which the engine
	// attempts the ε-thresholded CSR path. 0 disables sparse mode.
	SparseCutoff int
	// Epsilon is the similarity threshold of the sparse emit: entries
	// with |v| < Epsilon are dropped. Must be > 0 for sparse mode;
	// defaults (0) keep the exact dense path.
	Epsilon float64
	// Embedder, when non-nil together with EmbedCutoff > 0, enables the
	// embedded solve for buckets of at least EmbedCutoff rows: kernel
	// embedding + k-means instead of Gram + eigensolve.
	Embedder embed.Embedder
	// EmbedCutoff is the bucket size at or above which the embedded
	// solve runs. 0 disables embed mode.
	EmbedCutoff int
}

// SolveStats reports what one bucket solve actually did.
type SolveStats struct {
	// Solver is the SolverKind that produced the result.
	Solver string
	// N is the bucket size.
	N int
	// NNZ is the stored-entry count of the similarity matrix the
	// eigensolver consumed (n² for a pure dense solve).
	NNZ int64
	// Fill is NNZ/n².
	Fill float64
	// GramBytes is the similarity storage actually held during the
	// solve: 8·nnz for the CSR path, the paper's 4·n² for dense.
	GramBytes int64
	// Nanos is the solve wall time, sub-Gram build included.
	Nanos int64
}

// denseSolverName names the solver TopKEigenSym will pick for an n x n
// dense problem with k wanted pairs.
func denseSolverName(n, k int) string {
	if linalg.UsesLanczos(n, k) {
		return SolverDenseLanczos
	}
	return SolverDenseEigen
}

// ClusterBucket runs spectral clustering on the sub-Gram of the listed
// rows, choosing the solver by the policy above. scratch is the
// caller's pooled dense sub-Gram buffer (grown as needed, reused across
// buckets); the sparse path never touches it. The returned stats
// describe the solver choice, the similarity storage, and the wall
// time; they are filled even when err != nil, so fallback paths can
// still be accounted.
func ClusterBucket(points *matrix.Dense, indices []int, kf kernel.Kernel, cfg EngineConfig, scratch *[]float64) (*Result, SolveStats, error) {
	start := time.Now()
	ni := len(indices)
	k := cfg.K
	if k > ni {
		k = ni
	}
	stats := SolveStats{N: ni}
	sCfg := Config{K: cfg.K, Seed: cfg.Seed, KMeansIter: cfg.KMeansIter}

	// Embed mode takes the bucket out of the Gram economy altogether.
	// k == ni stays with the exact path (its identity-label degenerate
	// case), and embed errors surface instead of downgrading — the
	// shipped driver has already committed to the record shape.
	if cfg.Embedder != nil && cfg.EmbedCutoff > 0 && ni >= cfg.EmbedCutoff && k < ni {
		return clusterEmbedded(points, indices, cfg.Embedder, cfg, scratch)
	}

	// The CSR attempt is gated on the policy being able to use it: the
	// sparse solver is Lanczos-only, so buckets the dense policy would
	// solve with the full reduction anyway skip the emit entirely.
	if cfg.SparseCutoff > 0 && cfg.Epsilon > 0 && ni >= cfg.SparseCutoff && linalg.UsesLanczos(ni, k) {
		csr, err := kernel.SubGramSparse(points, indices, kf, cfg.Epsilon)
		if err == nil {
			stats.NNZ = int64(csr.NNZ())
			stats.Fill = csr.Fill()
			if stats.Fill <= MaxSparseFill {
				res, serr := clusterCSR(csr, sCfg, true)
				if serr == nil {
					stats.Solver = SolverSparseLanczos
					stats.GramBytes = csr.Bytes()
					stats.Nanos = time.Since(start).Nanoseconds()
					return res, stats, nil
				}
				// A degenerate thresholded graph (e.g. isolated rows)
				// falls through to the exact dense solve below.
			} else {
				// The ε-cut kept too much: densify the thresholded
				// matrix into the pooled scratch and solve dense.
				if cap(*scratch) < ni*ni {
					*scratch = make([]float64, ni*ni)
				}
				sub, derr := matrix.NewDenseData(ni, ni, (*scratch)[:ni*ni])
				if derr == nil {
					csr.DenseInto(sub)
					res, cerr := ClusterInPlace(sub, sCfg)
					if cerr == nil {
						stats.Solver = denseSolverName(ni, k)
						stats.GramBytes = kernel.GramBytes(ni)
						stats.Nanos = time.Since(start).Nanoseconds()
						return res, stats, nil
					}
				}
			}
		}
	}

	// Default path: the exact pre-engine dense sequence.
	stats.Solver = denseSolverName(ni, k)
	stats.NNZ = int64(ni) * int64(ni)
	stats.Fill = 1
	stats.GramBytes = kernel.GramBytes(ni)
	sub, err := kernel.SubGramPooled(points, indices, kf, scratch, false)
	if err != nil {
		stats.Nanos = time.Since(start).Nanoseconds()
		return nil, stats, err
	}
	res, err := ClusterInPlace(sub, sCfg)
	stats.Nanos = time.Since(start).Nanoseconds()
	if err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}
