package spectral

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/kernel"
)

// TestClusterBucketDenseDefaultIdentical: with sparse mode off the
// engine must reproduce the pre-engine dense sequence bit for bit —
// same labels, same eigenvalues — since default DASC configs route
// every bucket through here.
func TestClusterBucketDenseDefaultIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := makeBlobs(rng, 4, 40, 8, 6, 0.3)
	indices := make([]int, pts.Rows())
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(1.5)

	// The pre-engine sequence: pooled sub-Gram, in-place Laplacian.
	var refBuf []float64
	sub, err := kernel.SubGramPooled(pts, indices, kf, &refBuf, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ClusterInPlace(sub, Config{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}

	var buf []float64
	got, stats, err := ClusterBucket(pts, indices, kf, EngineConfig{K: 4, Seed: 9}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels {
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got.Labels[i], want.Labels[i])
		}
	}
	for i := range want.Eigenvalues {
		if got.Eigenvalues[i] != want.Eigenvalues[i] {
			t.Fatalf("eigenvalue[%d] differs: %v vs %v", i, got.Eigenvalues[i], want.Eigenvalues[i])
		}
	}
	if stats.Solver != SolverDenseLanczos {
		t.Fatalf("solver = %q (n=%d k=4)", stats.Solver, pts.Rows())
	}
	if stats.GramBytes != kernel.GramBytes(pts.Rows()) || stats.Fill != 1 {
		t.Fatalf("dense stats: %+v", stats)
	}
	if stats.Nanos <= 0 {
		t.Fatal("wall time not recorded")
	}
}

// TestClusterBucketSmallUsesDenseEigen: tiny buckets report the full
// reduction even when sparse mode is on (the policy gates on
// linalg.UsesLanczos).
func TestClusterBucketSmallUsesDenseEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts, _ := makeBlobs(rng, 2, 20, 4, 5, 0.2)
	indices := make([]int, pts.Rows())
	for i := range indices {
		indices[i] = i
	}
	var buf []float64
	cfg := EngineConfig{K: 2, Seed: 1, SparseCutoff: 8, Epsilon: 1e-3}
	_, stats, err := ClusterBucket(pts, indices, kernel.NewGaussian(1), cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Solver != SolverDenseEigen {
		t.Fatalf("solver = %q for n=40", stats.Solver)
	}
}

// TestClusterBucketSparsePath: a tight bandwidth on separated blobs
// drives fill below the ceiling, so the CSR solver runs, recovers the
// partition, and reports Gram storage far below the dense 4n².
func TestClusterBucketSparsePath(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, truth := makeBlobs(rng, 4, 60, 8, 12, 0.3)
	n := pts.Rows()
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(1.0)
	var buf []float64
	cfg := EngineConfig{K: 4, Seed: 5, SparseCutoff: 128, Epsilon: 1e-4}
	res, stats, err := ClusterBucket(pts, indices, kf, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Solver != SolverSparseLanczos {
		t.Fatalf("solver = %q fill = %v", stats.Solver, stats.Fill)
	}
	if stats.Fill <= 0 || stats.Fill > MaxSparseFill {
		t.Fatalf("fill = %v", stats.Fill)
	}
	if stats.GramBytes >= kernel.GramBytes(n) {
		t.Fatalf("sparse GramBytes %d not below dense %d", stats.GramBytes, kernel.GramBytes(n))
	}
	if !sameParition(truth, res.Labels) {
		t.Fatal("sparse solver must still recover the separated blobs")
	}
	if buf != nil {
		t.Fatal("sparse path must not touch the dense scratch")
	}
}

// TestClusterBucketHighFillDensifies: a wide bandwidth keeps nearly
// every entry, so the engine densifies the thresholded CSR into the
// pooled scratch and reports a dense solver with the measured fill.
func TestClusterBucketHighFillDensifies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := makeBlobs(rng, 4, 50, 6, 3, 0.4)
	n := pts.Rows()
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(20) // everything similar: fill ~ 1
	var buf []float64
	cfg := EngineConfig{K: 4, Seed: 5, SparseCutoff: 128, Epsilon: 1e-4}
	_, stats, err := ClusterBucket(pts, indices, kf, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Solver != SolverDenseLanczos {
		t.Fatalf("solver = %q", stats.Solver)
	}
	if stats.Fill <= MaxSparseFill {
		t.Fatalf("fill = %v should exceed the sparse ceiling", stats.Fill)
	}
	if len(buf) < n*n {
		t.Fatal("densify must land in the pooled scratch")
	}
}

// TestSparseDenseSolversAgree is the ISSUE's property test: at ε = 0
// the thresholded CSR holds every entry (fill = 1 off-diagonal), so
// the ClusterSparse-routed Lanczos and the dense TopKEigenSym path see
// the same similarity structure and must produce matching top-k
// eigenvalues and identical labels. n and k are chosen so the dense
// policy also runs Lanczos from seed 0; Seed = 0 aligns the sparse
// start vector with it.
func TestSparseDenseSolversAgree(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		// Unequal blob sizes keep the spectrum non-degenerate.
		pts, _ := makeBlobs(rng, 4, 50, 8, 8, 0.4)
		n := pts.Rows()
		indices := make([]int, n)
		for i := range indices {
			indices[i] = i
		}
		const k = 4
		kf := kernel.NewGaussian(1.5)

		dense := kernel.SubGram(pts, indices, kf)
		dres, err := Cluster(dense, Config{K: k, Seed: 0})
		if err != nil {
			t.Fatal(err)
		}
		csr, err := kernel.SubGramSparse(pts, indices, kf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if csr.NNZ() != n*(n-1) {
			t.Fatalf("eps=0 must keep every off-diagonal entry, nnz=%d", csr.NNZ())
		}
		sres, err := ClusterSparse(csr, Config{K: k, Seed: 0})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if math.Abs(dres.Eigenvalues[i]-sres.Eigenvalues[i]) > 1e-8 {
				t.Fatalf("seed %d eigenvalue %d: dense %v sparse %v",
					seed, i, dres.Eigenvalues[i], sres.Eigenvalues[i])
			}
		}
		for i := range dres.Labels {
			if dres.Labels[i] != sres.Labels[i] {
				t.Fatalf("seed %d label[%d]: dense %d sparse %d", seed, i, dres.Labels[i], sres.Labels[i])
			}
		}
	}
}

// TestClusterBucketWorkerDeterminism: the engine's labels must be
// bitwise identical at GOMAXPROCS=1 and the ambient worker count, in
// both dense and sparse modes.
func TestClusterBucketWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := makeBlobs(rng, 4, 60, 8, 10, 0.3)
	indices := make([]int, pts.Rows())
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(1.0)
	for _, cfg := range []EngineConfig{
		{K: 4, Seed: 7},
		{K: 4, Seed: 7, SparseCutoff: 64, Epsilon: 1e-4},
	} {
		var buf1 []float64
		base, baseStats, err := ClusterBucket(pts, indices, kf, cfg, &buf1)
		if err != nil {
			t.Fatal(err)
		}
		prev := runtime.GOMAXPROCS(1)
		var buf2 []float64
		serial, serialStats, err := ClusterBucket(pts, indices, kf, cfg, &buf2)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if baseStats.Solver != serialStats.Solver || baseStats.NNZ != serialStats.NNZ {
			t.Fatalf("policy changed with workers: %+v vs %+v", baseStats, serialStats)
		}
		for i := range base.Labels {
			if base.Labels[i] != serial.Labels[i] {
				t.Fatalf("solver %s label[%d]: %d vs %d", baseStats.Solver, i, base.Labels[i], serial.Labels[i])
			}
		}
	}
}

func BenchmarkBucketSolveDense(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	pts, _ := makeBlobs(rng, 8, 128, 16, 14, 0.3)
	indices := make([]int, pts.Rows())
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(1.0)
	var buf []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ClusterBucket(pts, indices, kf, EngineConfig{K: 8, Seed: 1}, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBucketSolveSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	pts, _ := makeBlobs(rng, 8, 128, 16, 14, 0.3)
	indices := make([]int, pts.Rows())
	for i := range indices {
		indices[i] = i
	}
	kf := kernel.NewGaussian(1.0)
	cfg := EngineConfig{K: 8, Seed: 1, SparseCutoff: 256, Epsilon: 1e-4}
	var buf []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ClusterBucket(pts, indices, kf, cfg, &buf); err != nil {
			b.Fatal(err)
		}
	}
}
