// Package spectral implements the Ng–Jordan–Weiss spectral clustering
// algorithm on a precomputed similarity matrix: normalized Laplacian
// (Eq. 2), top-K eigenvectors, row normalization, K-means. It is the
// kernel-based machine learning stage that DASC runs per bucket and
// that the SC baseline runs on the full Gram matrix.
package spectral

import (
	"errors"
	"fmt"

	"repro/internal/kmeans"
	"repro/internal/linalg"
	"repro/internal/matrix"
)

// Config controls one spectral-clustering invocation.
type Config struct {
	// K is the number of clusters (and eigenvectors). Required.
	K int
	// Seed feeds the K-means stage.
	Seed int64
	// KMeansIter bounds Lloyd iterations (default 100).
	KMeansIter int
}

// Result carries the clustering plus the spectral intermediates that
// the evaluation metrics need.
type Result struct {
	// Labels[i] is the cluster of row i of the similarity matrix.
	Labels []int
	// Eigenvalues of the normalized Laplacian, descending, length K.
	Eigenvalues []float64
	// Embedding is the row-normalized eigenvector matrix (n x K) that
	// K-means ran on.
	Embedding *matrix.Dense
	// Inertia of the final K-means solution.
	Inertia float64
}

// ErrBadInput reports an unusable similarity matrix or configuration.
var ErrBadInput = errors.New("spectral: bad input")

// Cluster runs spectral clustering on the similarity matrix s, which is
// left untouched.
func Cluster(s *matrix.Dense, cfg Config) (*Result, error) {
	return cluster(s, cfg, false)
}

// ClusterInPlace is Cluster for callers that own s and do not need it
// afterwards: the normalized Laplacian overwrites s instead of being
// materialized in a fresh n x n allocation. The per-bucket DASC solve
// uses it with pooled sub-Gram buffers, halving the large transient
// allocations of the solve stage.
func ClusterInPlace(s *matrix.Dense, cfg Config) (*Result, error) {
	return cluster(s, cfg, true)
}

func cluster(s *matrix.Dense, cfg Config, inPlace bool) (*Result, error) {
	n := s.Rows()
	if s.Cols() != n {
		return nil, fmt.Errorf("%w: similarity matrix %dx%d not square", ErrBadInput, n, s.Cols())
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("%w: K=%d", ErrBadInput, cfg.K)
	}
	if n == 0 {
		return &Result{Labels: []int{}, Eigenvalues: []float64{}, Embedding: matrix.NewDense(0, 0)}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	// Degenerate but legal: every point its own cluster.
	if k == n {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		return &Result{Labels: labels, Eigenvalues: make([]float64, k), Embedding: matrix.NewDense(n, k)}, nil
	}

	lap := s
	if inPlace {
		deg, err := matrix.RowSums(s)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
		if err := deg.InvSqrt().ScaleSymInPlace(s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	} else {
		var err error
		lap, err = Laplacian(s)
		if err != nil {
			return nil, err
		}
	}
	vals, vecs, err := linalg.TopKEigenSym(lap, k)
	if err != nil {
		return nil, fmt.Errorf("spectral: eigendecomposition: %w", err)
	}
	matrix.NormalizeRows(vecs)

	km, err := kmeans.Run(vecs, kmeans.Config{K: k, Seed: cfg.Seed, MaxIter: cfg.KMeansIter})
	if err != nil {
		return nil, fmt.Errorf("spectral: kmeans: %w", err)
	}
	return &Result{
		Labels:      km.Labels,
		Eigenvalues: vals,
		Embedding:   vecs,
		Inertia:     km.Inertia,
	}, nil
}

// Laplacian computes the normalized Laplacian L = D^{-1/2} S D^{-1/2}
// of Eq. 2, where D is the diagonal row-sum (degree) matrix of S.
func Laplacian(s *matrix.Dense) (*matrix.Dense, error) {
	deg, err := matrix.RowSums(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	lap, err := deg.InvSqrt().ScaleSym(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	return lap, nil
}
