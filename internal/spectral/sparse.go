package spectral

import (
	"fmt"
	"math"

	"repro/internal/kmeans"
	"repro/internal/linalg"
	"repro/internal/matrix"
	"repro/internal/sparse"
)

// ClusterSparse runs Ng–Jordan–Weiss spectral clustering on a sparse
// similarity graph: the normalized Laplacian is applied implicitly
// through the CSR matrix, the top-K eigenvectors come from Lanczos, and
// the row-normalized embedding is clustered with K-means. This is the
// eigensolver path the PSC baseline and any user-supplied sparse
// affinity share.
func ClusterSparse(s *sparse.CSR, cfg Config) (*Result, error) {
	return clusterCSR(s, cfg, false)
}

// clusterCSR is the shared sparse eigensolver path. owned callers (the
// per-bucket solve engine, which built the CSR itself and drops it
// afterwards) let the Laplacian scaling overwrite the stored
// similarities instead of copying the matrix.
func clusterCSR(s *sparse.CSR, cfg Config, owned bool) (*Result, error) {
	n := s.N()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("%w: K=%d", ErrBadInput, cfg.K)
	}
	if n == 0 {
		return &Result{Labels: []int{}, Eigenvalues: []float64{}, Embedding: matrix.NewDense(0, 0)}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	if k == n {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		return &Result{Labels: labels, Eigenvalues: make([]float64, k), Embedding: matrix.NewDense(n, k)}, nil
	}

	dInv := s.RowSums()
	for i, v := range dInv {
		if v > 0 {
			dInv[i] = 1 / math.Sqrt(v)
		} else {
			dInv[i] = 0
		}
	}
	lap := s
	if owned {
		if err := s.ScaleSymInPlace(dInv); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	} else {
		var err error
		lap, err = s.ScaleSym(dInv)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	}
	op := func(dst, src []float64) {
		if err := lap.MulVec(dst, src); err != nil {
			// Lengths are fixed by construction; a mismatch here is a
			// spectral-package bug, not a runtime condition.
			matrix.Panicf("spectral: %v", err)
		}
	}
	lz, err := linalg.Lanczos(op, n, k, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("spectral: sparse eigensolver: %w", err)
	}
	vecs := lz.Vectors
	matrix.NormalizeRows(vecs)
	km, err := kmeans.Run(vecs, kmeans.Config{K: k, Seed: cfg.Seed, MaxIter: cfg.KMeansIter})
	if err != nil {
		return nil, fmt.Errorf("spectral: kmeans: %w", err)
	}
	return &Result{
		Labels:      km.Labels,
		Eigenvalues: lz.Values,
		Embedding:   vecs,
		Inertia:     km.Inertia,
	}, nil
}
