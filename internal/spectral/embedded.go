package spectral

// This file is the embedded solve policy of the per-bucket engine: the
// embed-and-conquer path (PAPERS.md arXiv:1311.2334) that replaces the
// Gram build + eigensolve of a large bucket with a kernel embedding
// followed by plain Hamerly k-means on the embedded rows. Where the
// dense path pays O(n²d) for the Gram and O(n³)/O(n²k) for the
// eigensolve, the embedded path pays O(n·d·d′) for the transform and
// O(n·d′·k) per Lloyd iteration — dot-product-bound, not solver-bound —
// and its working set is 8·n·d′ bytes instead of the 4·n² Gram.
//
// The split into EmbedRows + ClusterEmbeddedRows is deliberate: the
// local engine runs both back to back, while the MapReduce shipped
// worker receives already-embedded rows over the wire and runs only the
// second half. Because embeddings are pure per-row functions (see
// internal/embed) and ClusterEmbeddedRows is deterministic in
// (rows, cfg), both executions produce bitwise identical labels.

import (
	"fmt"
	"time"

	"repro/internal/embed"
	"repro/internal/kmeans"
	"repro/internal/matrix"
)

// SolverEmbedded is the embedded solve of the engine policy: kernel
// embedding + k-means, no Gram and no eigensolve.
const SolverEmbedded = "embedded"

// ClusterEmbeddedRows runs the reduce half of the embedded solve: plain
// k-means on already-embedded rows. The returned Result carries labels
// and inertia only — there is no eigensystem, and Embedding is left nil
// because emb usually aliases pooled scratch that the caller reuses.
func ClusterEmbeddedRows(emb *matrix.Dense, cfg Config) (*Result, error) {
	n := emb.Rows()
	if cfg.K <= 0 {
		return nil, fmt.Errorf("%w: K=%d", ErrBadInput, cfg.K)
	}
	if n == 0 {
		return &Result{Labels: []int{}, Eigenvalues: []float64{}}, nil
	}
	k := cfg.K
	if k > n {
		k = n
	}
	km, err := kmeans.Run(emb, kmeans.Config{K: k, Seed: cfg.Seed, MaxIter: cfg.KMeansIter})
	if err != nil {
		return nil, fmt.Errorf("spectral: embedded kmeans: %w", err)
	}
	return &Result{Labels: km.Labels, Inertia: km.Inertia}, nil
}

// clusterEmbedded runs the full embedded solve for the engine: embed
// the bucket rows into the pooled scratch, then cluster them. Errors
// are returned, not silently downgraded to a Gram solve — the shipped
// driver commits to the embedded record shape before the reduce runs,
// so a quiet local fallback would break cross-driver label identity.
func clusterEmbedded(points *matrix.Dense, indices []int, e embed.Embedder, cfg EngineConfig, scratch *[]float64) (*Result, SolveStats, error) {
	start := time.Now()
	ni := len(indices)
	dim := e.Dim()
	stats := SolveStats{
		Solver:    SolverEmbedded,
		N:         ni,
		NNZ:       int64(ni) * int64(dim),
		Fill:      float64(dim) / float64(ni),
		GramBytes: embed.Bytes(ni, dim),
	}
	if cap(*scratch) < ni*dim {
		*scratch = make([]float64, ni*dim)
	}
	buf := (*scratch)[:ni*dim]
	if err := e.TransformInto(buf, points, indices); err != nil {
		stats.Nanos = time.Since(start).Nanoseconds()
		return nil, stats, err
	}
	emb, err := matrix.NewDenseData(ni, dim, buf)
	if err != nil {
		stats.Nanos = time.Since(start).Nanoseconds()
		return nil, stats, err
	}
	res, err := ClusterEmbeddedRows(emb, Config{K: cfg.K, Seed: cfg.Seed, KMeansIter: cfg.KMeansIter})
	stats.Nanos = time.Since(start).Nanoseconds()
	if err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}
