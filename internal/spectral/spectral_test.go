package spectral

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kernel"
	"repro/internal/matrix"
)

// ringsOrBlobs builds k Gaussian blobs with unit separation scale.
func makeBlobs(rng *rand.Rand, k, perBlob, d int, sep, noise float64) (*matrix.Dense, []int) {
	n := k * perBlob
	pts := matrix.NewDense(n, d)
	truth := make([]int, n)
	for c := 0; c < k; c++ {
		center := make([]float64, d)
		for j := range center {
			center[j] = float64((c+j)%k) * sep
		}
		center[0] = float64(c) * sep
		for i := 0; i < perBlob; i++ {
			row := pts.Row(c*perBlob + i)
			for j := range row {
				row[j] = center[j] + rng.NormFloat64()*noise
			}
			truth[c*perBlob+i] = c
		}
	}
	return pts, truth
}

func sameParition(a, b []int) bool {
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestClusterTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, truth := makeBlobs(rng, 2, 30, 2, 5, 0.2)
	s := kernel.Gram(pts, kernel.Gaussian(1))
	res, err := Cluster(s, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !sameParition(truth, res.Labels) {
		t.Fatal("two well-separated blobs must be recovered")
	}
}

func TestClusterThreeBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, truth := makeBlobs(rng, 3, 25, 3, 6, 0.2)
	s := kernel.Gram(pts, kernel.Gaussian(1.2))
	res, err := Cluster(s, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !sameParition(truth, res.Labels) {
		t.Fatal("three blobs must be recovered")
	}
	if len(res.Eigenvalues) != 3 {
		t.Fatalf("eigenvalues = %v", res.Eigenvalues)
	}
	// Leading eigenvalue of the normalized similarity is ~1 for a
	// connected graph.
	if res.Eigenvalues[0] < 0.8 || res.Eigenvalues[0] > 1.0001 {
		t.Fatalf("lambda0 = %v", res.Eigenvalues[0])
	}
}

func TestClusterNonGaussianShapes(t *testing.T) {
	// Two concentric rings: K-means fails on raw coordinates, spectral
	// clustering separates them — the paper's §3.1 motivation.
	rng := rand.New(rand.NewSource(3))
	n := 80
	pts := matrix.NewDense(2*n, 2)
	truth := make([]int, 2*n)
	for i := 0; i < n; i++ {
		theta := rng.Float64() * 2 * math.Pi
		r := 1 + rng.NormFloat64()*0.03
		pts.Set(i, 0, r*math.Cos(theta))
		pts.Set(i, 1, r*math.Sin(theta))
		truth[i] = 0
		theta = rng.Float64() * 2 * math.Pi
		r = 5 + rng.NormFloat64()*0.03
		pts.Set(n+i, 0, r*math.Cos(theta))
		pts.Set(n+i, 1, r*math.Sin(theta))
		truth[n+i] = 1
	}
	s := kernel.Gram(pts, kernel.Gaussian(0.4))
	res, err := Cluster(s, Config{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !sameParition(truth, res.Labels) {
		t.Fatal("concentric rings must be separated by spectral clustering")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(matrix.NewDense(2, 3), Config{K: 1}); err == nil {
		t.Fatal("expected error for non-square")
	}
	if _, err := Cluster(matrix.NewDense(2, 2), Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
}

func TestClusterEmptyAndDegenerate(t *testing.T) {
	res, err := Cluster(matrix.NewDense(0, 0), Config{K: 2})
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
	// K >= n: singleton clusters.
	s, _ := matrix.FromRows([][]float64{{0, 1}, {1, 0}})
	res, err = Cluster(s, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Labels[0] == res.Labels[1] {
		t.Fatal("K>=n must yield singletons")
	}
}

func TestClusterIsolatedPoint(t *testing.T) {
	// A zero row (isolated point) must not produce NaNs.
	s, _ := matrix.FromRows([][]float64{
		{0, 1, 0},
		{1, 0, 0},
		{0, 0, 0},
	})
	res, err := Cluster(s, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l < 0 || l >= 2 {
			t.Fatalf("labels = %v", res.Labels)
		}
	}
	for _, v := range res.Embedding.Data() {
		if math.IsNaN(v) {
			t.Fatal("NaN in embedding")
		}
	}
}

func TestLaplacianProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts, _ := makeBlobs(rng, 2, 10, 2, 3, 0.3)
	s := kernel.Gram(pts, kernel.Gaussian(1))
	lap, err := Laplacian(s)
	if err != nil {
		t.Fatal(err)
	}
	if !lap.IsSymmetric(1e-10) {
		t.Fatal("Laplacian must be symmetric")
	}
	if lap.MaxAbs() > 1+1e-9 {
		t.Fatalf("normalized Laplacian entries must be <= 1, got %v", lap.MaxAbs())
	}
	if _, err := Laplacian(matrix.NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square")
	}
}

func TestClusterDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := makeBlobs(rng, 2, 20, 2, 4, 0.3)
	s := kernel.Gram(pts, kernel.Gaussian(1))
	r1, err := Cluster(s, Config{K: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(s, Config{K: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatal("same seed must reproduce labels")
		}
	}
}
