// Package shard stores a dense row matrix as a directory of row-range
// shard files, so out-of-core drivers can stream or demand-read input
// rows instead of holding the full matrix resident. The layout is the
// DASC analogue of HDFS input splits: each shard owns a contiguous,
// half-open row range [StartRow, StartRow+Rows), shards tile the
// matrix without gaps or overlap, and any row is addressable with one
// ReadAt at a fixed stride.
//
// File format ("DSHD", version 1), all integers little-endian:
//
//	offset  size  field
//	0       4     magic "DSHD"
//	4       4     version (uint32, = 1)
//	8       8     startRow (uint64)
//	16      8     rows (uint64)
//	24      8     cols (uint64)
//	32      8·cols·rows  row-major float64 payload
//
// The fixed 32-byte header plus the fixed 8·cols row stride means
// row i of the matrix lives in the shard covering i at offset
// 32 + (i-startRow)·8·cols, with no index structure to load.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// magic identifies a shard file; version gates format evolution.
const (
	magic      = "DSHD"
	version    = 1
	headerSize = 32
)

// DefaultRowsPerShard is the Writer's shard size when none is given —
// small enough that a worker's working set is a modest slice of the
// matrix, large enough that a million-row corpus stays under a few
// hundred files.
const DefaultRowsPerShard = 8192

// Writer splits an incoming row stream into shard files under a
// directory. Rows arrive through Append in matrix order; Close seals
// the final partial shard.
type Writer struct {
	dir     string
	cols    int
	perFile int

	f        *os.File // current shard, nil between shards
	shardIdx int
	startRow int // first row of the current shard
	rowInFil int // rows written to the current shard
	nextRow  int // global row index of the next Append
	buf      []byte
	closed   bool
}

// NewWriter creates a shard writer for rows of cols float64 columns,
// writing at most rowsPerShard rows per file (DefaultRowsPerShard when
// rowsPerShard <= 0). The directory is created if missing.
func NewWriter(dir string, cols, rowsPerShard int) (*Writer, error) {
	if cols <= 0 {
		return nil, fmt.Errorf("shard: cols must be positive, got %d", cols)
	}
	if rowsPerShard <= 0 {
		rowsPerShard = DefaultRowsPerShard
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return &Writer{
		dir:     dir,
		cols:    cols,
		perFile: rowsPerShard,
		buf:     make([]byte, 8*cols),
	}, nil
}

// Append writes one row. The row must have exactly cols values.
func (w *Writer) Append(row []float64) error {
	if w.closed {
		return errors.New("shard: append after Close")
	}
	if len(row) != w.cols {
		return fmt.Errorf("shard: row has %d cols, want %d", len(row), w.cols)
	}
	if w.f == nil {
		if err := w.openShard(); err != nil {
			return err
		}
	}
	for i, v := range row {
		binary.LittleEndian.PutUint64(w.buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return errors.Join(fmt.Errorf("shard: write row %d: %w", w.nextRow, err), w.f.Close())
	}
	w.rowInFil++
	w.nextRow++
	if w.rowInFil == w.perFile {
		return w.sealShard()
	}
	return nil
}

// openShard starts the next shard file with a placeholder header; the
// real row count lands in sealShard.
func (w *Writer) openShard() error {
	name := filepath.Join(w.dir, fmt.Sprintf("shard-%06d.dshd", w.shardIdx))
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	w.f = f
	w.startRow = w.nextRow
	w.rowInFil = 0
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(w.startRow))
	// rows written as 0 here; fixed up on seal.
	binary.LittleEndian.PutUint64(hdr[24:], uint64(w.cols))
	if _, err := f.Write(hdr); err != nil {
		return errors.Join(fmt.Errorf("shard: write header: %w", err), f.Close())
	}
	return nil
}

// sealShard stamps the row count into the header and closes the file.
func (w *Writer) sealShard() error {
	var rows [8]byte
	binary.LittleEndian.PutUint64(rows[:], uint64(w.rowInFil))
	_, werr := w.f.WriteAt(rows[:], 16)
	cerr := w.f.Close()
	w.f = nil
	w.shardIdx++
	if err := errors.Join(werr, cerr); err != nil {
		return fmt.Errorf("shard: seal shard %d: %w", w.shardIdx-1, err)
	}
	return nil
}

// Close seals any partial final shard. It is safe to call once.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("shard: double Close")
	}
	w.closed = true
	if w.f != nil {
		return w.sealShard()
	}
	return nil
}

// Rows returns the number of rows appended so far.
func (w *Writer) Rows() int { return w.nextRow }

// WriteRows shards an in-memory row slice in one call — the batch
// convenience over NewWriter/Append/Close.
func WriteRows(dir string, rows [][]float64, cols, rowsPerShard int) (err error) {
	w, werr := NewWriter(dir, cols, rowsPerShard)
	if werr != nil {
		return werr
	}
	defer func() { err = errors.Join(err, w.Close()) }()
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// shardFile is one opened shard with its decoded header.
type shardFile struct {
	f          *os.File
	startRow   int
	rows       int
	colsCached int
}

// Reader exposes a shard directory as a random-access row matrix. All
// read methods are safe for concurrent use (reads go through ReadAt);
// BytesRead tallies payload bytes fetched from disk.
type Reader struct {
	shards []shardFile
	rows   int
	cols   int
	read   atomic.Int64
}

// Open scans dir for shard-*.dshd files, validates their headers tile
// a contiguous [0, rows) range with one column count, and returns a
// Reader over them.
func Open(dir string) (_ *Reader, err error) {
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		return nil, fmt.Errorf("shard: %w", derr)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "shard-") && strings.HasSuffix(e.Name(), ".dshd") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("shard: no shard files in %s", dir)
	}
	sort.Strings(names)
	r := &Reader{}
	defer func() {
		if err != nil {
			err = errors.Join(err, r.Close())
		}
	}()
	for _, name := range names {
		sf, oerr := openShard(filepath.Join(dir, name))
		if oerr != nil {
			return nil, oerr
		}
		r.shards = append(r.shards, sf)
		if len(r.shards) == 1 {
			r.cols = sf.cols()
		} else if sf.cols() != r.cols {
			return nil, fmt.Errorf("shard: %s has %d cols, want %d", name, sf.cols(), r.cols)
		}
		if sf.startRow != r.rows {
			return nil, fmt.Errorf("shard: %s starts at row %d, want %d (gap or overlap)", name, sf.startRow, r.rows)
		}
		r.rows += sf.rows
	}
	return r, nil
}

// cols reads the column count back out of the shard header cache.
func (s *shardFile) cols() int { return s.colsCached }

// openShard opens and validates one shard file.
func openShard(path string) (shardFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return shardFile{}, fmt.Errorf("shard: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: short header: %w", path, err), f.Close())
	}
	if string(hdr[:4]) != magic {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: bad magic %q", path, hdr[:4]), f.Close())
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: unsupported version %d", path, v), f.Close())
	}
	startRow := binary.LittleEndian.Uint64(hdr[8:])
	rows := binary.LittleEndian.Uint64(hdr[16:])
	cols := binary.LittleEndian.Uint64(hdr[24:])
	const maxDim = 1 << 40
	if cols == 0 || cols > maxDim || rows > maxDim || startRow > maxDim {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: implausible header (start=%d rows=%d cols=%d)", path, startRow, rows, cols), f.Close())
	}
	st, serr := f.Stat()
	if serr != nil {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: %w", path, serr), f.Close())
	}
	want := int64(headerSize) + int64(rows)*int64(cols)*8
	if st.Size() != want {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: size %d, want %d for %d×%d", path, st.Size(), want, rows, cols), f.Close())
	}
	return shardFile{f: f, startRow: int(startRow), rows: int(rows), colsCached: int(cols)}, nil
}

// Rows returns the total row count across all shards.
func (r *Reader) Rows() int { return r.rows }

// Cols returns the column count.
func (r *Reader) Cols() int { return r.cols }

// BytesRead returns the payload bytes read from shard files so far.
func (r *Reader) BytesRead() int64 { return r.read.Load() }

// locate finds the shard covering global row i by binary search.
func (r *Reader) locate(i int) (*shardFile, error) {
	if i < 0 || i >= r.rows {
		return nil, fmt.Errorf("shard: row %d out of range [0,%d)", i, r.rows)
	}
	lo, hi := 0, len(r.shards)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.shards[mid].startRow+r.shards[mid].rows <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &r.shards[lo], nil
}

// ReadRow reads global row i into dst (allocated when nil or short)
// and returns it. Safe for concurrent use.
func (r *Reader) ReadRow(i int, dst []float64) ([]float64, error) {
	sf, err := r.locate(i)
	if err != nil {
		return nil, err
	}
	if cap(dst) < r.cols {
		dst = make([]float64, r.cols)
	}
	dst = dst[:r.cols]
	stride := int64(r.cols) * 8
	off := headerSize + int64(i-sf.startRow)*stride
	buf := make([]byte, stride)
	if _, err := sf.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("shard: read row %d: %w", i, err)
	}
	r.read.Add(stride)
	for j := range dst {
		dst[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
	}
	return dst, nil
}

// ReadRows gathers the given global rows into a freshly allocated
// [len(indices)][cols] slice — the demand-hydration primitive for
// bucket solves that touch a sparse subset of rows.
func (r *Reader) ReadRows(indices []int) ([][]float64, error) {
	out := make([][]float64, len(indices))
	for k, i := range indices {
		row, err := r.ReadRow(i, nil)
		if err != nil {
			return nil, err
		}
		out[k] = row
	}
	return out, nil
}

// Stream visits rows [start, start+count) in order, reusing one row
// buffer across calls — the sequential scan primitive for map tasks
// assigned a row range. fn must not retain the slice.
func (r *Reader) Stream(start, count int, fn func(i int, row []float64) error) error {
	if count == 0 {
		return nil
	}
	if start < 0 || count < 0 || start+count > r.rows {
		return fmt.Errorf("shard: range [%d,%d) out of [0,%d)", start, start+count, r.rows)
	}
	buf := make([]float64, r.cols)
	for i := start; i < start+count; i++ {
		row, err := r.ReadRow(i, buf)
		if err != nil {
			return err
		}
		if err := fn(i, row); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every shard file handle.
func (r *Reader) Close() error {
	var errs []error
	for i := range r.shards {
		if r.shards[i].f != nil {
			errs = append(errs, r.shards[i].f.Close())
			r.shards[i].f = nil
		}
	}
	return errors.Join(errs...)
}

// Ranges returns the [start, start+rows) row range of every shard in
// order — the natural map-task split list for a sharded job.
func (r *Reader) Ranges() [][2]int {
	out := make([][2]int, len(r.shards))
	for i, s := range r.shards {
		out[i] = [2]int{s.startRow, s.startRow + s.rows}
	}
	return out
}
