// Package shard stores a dense row matrix as a directory of row-range
// shard files, so out-of-core drivers can stream or demand-read input
// rows instead of holding the full matrix resident. The layout is the
// DASC analogue of HDFS input splits: each shard owns a contiguous,
// half-open row range [StartRow, StartRow+Rows), shards tile the
// matrix without gaps or overlap, and any row is addressable with one
// ReadAt at a fixed stride.
//
// File format ("DSHD", version 1), all integers little-endian:
//
//	offset  size  field
//	0       4     magic "DSHD"
//	4       4     version (uint32, = 1)
//	8       8     startRow (uint64)
//	16      8     rows (uint64)
//	24      8     cols (uint64)
//	32      8·cols·rows  row-major float64 payload
//
// The fixed 32-byte header plus the fixed 8·cols row stride means
// row i of the matrix lives in the shard covering i at offset
// 32 + (i-startRow)·8·cols, with no index structure to load.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// magic identifies a shard file; version gates format evolution.
const (
	magic      = "DSHD"
	version    = 1
	headerSize = 32
)

// DefaultRowsPerShard is the Writer's shard size when none is given —
// small enough that a worker's working set is a modest slice of the
// matrix, large enough that a million-row corpus stays under a few
// hundred files.
const DefaultRowsPerShard = 8192

// Writer splits an incoming row stream into shard files under a
// directory. Rows arrive through Append in matrix order; Close seals
// the final partial shard.
type Writer struct {
	dir     string
	cols    int
	perFile int

	f        *os.File // current shard, nil between shards
	shardIdx int
	startRow int // first row of the current shard
	rowInFil int // rows written to the current shard
	nextRow  int // global row index of the next Append
	buf      []byte
	closed   bool
}

// NewWriter creates a shard writer for rows of cols float64 columns,
// writing at most rowsPerShard rows per file (DefaultRowsPerShard when
// rowsPerShard <= 0). The directory is created if missing.
func NewWriter(dir string, cols, rowsPerShard int) (*Writer, error) {
	if cols <= 0 {
		return nil, fmt.Errorf("shard: cols must be positive, got %d", cols)
	}
	if rowsPerShard <= 0 {
		rowsPerShard = DefaultRowsPerShard
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return &Writer{
		dir:     dir,
		cols:    cols,
		perFile: rowsPerShard,
		buf:     make([]byte, 8*cols),
	}, nil
}

// Append writes one row. The row must have exactly cols values.
func (w *Writer) Append(row []float64) error {
	if w.closed {
		return errors.New("shard: append after Close")
	}
	if len(row) != w.cols {
		return fmt.Errorf("shard: row has %d cols, want %d", len(row), w.cols)
	}
	if w.f == nil {
		if err := w.openShard(); err != nil {
			return err
		}
	}
	for i, v := range row {
		binary.LittleEndian.PutUint64(w.buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return errors.Join(fmt.Errorf("shard: write row %d: %w", w.nextRow, err), w.f.Close())
	}
	w.rowInFil++
	w.nextRow++
	if w.rowInFil == w.perFile {
		return w.sealShard()
	}
	return nil
}

// openShard starts the next shard file with a placeholder header; the
// real row count lands in sealShard.
func (w *Writer) openShard() error {
	name := filepath.Join(w.dir, fmt.Sprintf("shard-%06d.dshd", w.shardIdx))
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("shard: %w", err)
	}
	w.f = f
	w.startRow = w.nextRow
	w.rowInFil = 0
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(w.startRow))
	// rows written as 0 here; fixed up on seal.
	binary.LittleEndian.PutUint64(hdr[24:], uint64(w.cols))
	if _, err := f.Write(hdr); err != nil {
		return errors.Join(fmt.Errorf("shard: write header: %w", err), f.Close())
	}
	return nil
}

// sealShard stamps the row count into the header and closes the file.
func (w *Writer) sealShard() error {
	var rows [8]byte
	binary.LittleEndian.PutUint64(rows[:], uint64(w.rowInFil))
	_, werr := w.f.WriteAt(rows[:], 16)
	cerr := w.f.Close()
	w.f = nil
	w.shardIdx++
	if err := errors.Join(werr, cerr); err != nil {
		return fmt.Errorf("shard: seal shard %d: %w", w.shardIdx-1, err)
	}
	return nil
}

// Close seals any partial final shard. It is safe to call once.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("shard: double Close")
	}
	w.closed = true
	if w.f != nil {
		return w.sealShard()
	}
	return nil
}

// Rows returns the number of rows appended so far.
func (w *Writer) Rows() int { return w.nextRow }

// WriteRows shards an in-memory row slice in one call — the batch
// convenience over NewWriter/Append/Close.
func WriteRows(dir string, rows [][]float64, cols, rowsPerShard int) (err error) {
	w, werr := NewWriter(dir, cols, rowsPerShard)
	if werr != nil {
		return werr
	}
	defer func() { err = errors.Join(err, w.Close()) }()
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// shardFile is one opened shard with its decoded header.
type shardFile struct {
	f          *os.File
	startRow   int
	rows       int
	colsCached int
}

// Reader exposes a shard directory as a random-access row matrix. All
// read methods are safe for concurrent use (reads go through ReadAt);
// BytesRead tallies payload bytes fetched from disk, ReadOps the
// ReadAt calls issued, and CoalescedReads how many of those calls
// served more than one requested row (the gather-coalescing and
// streaming-readahead paths).
type Reader struct {
	shards    []shardFile
	rows      int
	cols      int
	read      atomic.Int64
	ops       atomic.Int64
	coalesced atomic.Int64
}

// coalesceBlockBytes caps the reusable gather block: adjacent requested
// rows are fetched with one ReadAt as long as the run stays under this
// many bytes (always at least one row).
const coalesceBlockBytes = 1 << 20

// streamBlockBytes is the readahead granule for Stream: the producer
// goroutine fetches blocks of about this size one block ahead of the
// consumer.
const streamBlockBytes = 256 << 10

// Open scans dir for shard-*.dshd files, validates their headers tile
// a contiguous [0, rows) range with one column count, and returns a
// Reader over them.
func Open(dir string) (_ *Reader, err error) {
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		return nil, fmt.Errorf("shard: %w", derr)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "shard-") && strings.HasSuffix(e.Name(), ".dshd") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("shard: no shard files in %s", dir)
	}
	sort.Strings(names)
	r := &Reader{}
	defer func() {
		if err != nil {
			err = errors.Join(err, r.Close())
		}
	}()
	for _, name := range names {
		sf, oerr := openShard(filepath.Join(dir, name))
		if oerr != nil {
			return nil, oerr
		}
		r.shards = append(r.shards, sf)
		if len(r.shards) == 1 {
			r.cols = sf.cols()
		} else if sf.cols() != r.cols {
			return nil, fmt.Errorf("shard: %s has %d cols, want %d", name, sf.cols(), r.cols)
		}
		if sf.startRow != r.rows {
			return nil, fmt.Errorf("shard: %s starts at row %d, want %d (gap or overlap)", name, sf.startRow, r.rows)
		}
		r.rows += sf.rows
	}
	return r, nil
}

// cols reads the column count back out of the shard header cache.
func (s *shardFile) cols() int { return s.colsCached }

// openShard opens and validates one shard file.
func openShard(path string) (shardFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return shardFile{}, fmt.Errorf("shard: %w", err)
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: short header: %w", path, err), f.Close())
	}
	if string(hdr[:4]) != magic {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: bad magic %q", path, hdr[:4]), f.Close())
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: unsupported version %d", path, v), f.Close())
	}
	startRow := binary.LittleEndian.Uint64(hdr[8:])
	rows := binary.LittleEndian.Uint64(hdr[16:])
	cols := binary.LittleEndian.Uint64(hdr[24:])
	const maxDim = 1 << 40
	if cols == 0 || cols > maxDim || rows > maxDim || startRow > maxDim {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: implausible header (start=%d rows=%d cols=%d)", path, startRow, rows, cols), f.Close())
	}
	st, serr := f.Stat()
	if serr != nil {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: %w", path, serr), f.Close())
	}
	want := int64(headerSize) + int64(rows)*int64(cols)*8
	if st.Size() != want {
		return shardFile{}, errors.Join(fmt.Errorf("shard: %s: size %d, want %d for %d×%d", path, st.Size(), want, rows, cols), f.Close())
	}
	return shardFile{f: f, startRow: int(startRow), rows: int(rows), colsCached: int(cols)}, nil
}

// Rows returns the total row count across all shards.
func (r *Reader) Rows() int { return r.rows }

// Cols returns the column count.
func (r *Reader) Cols() int { return r.cols }

// BytesRead returns the payload bytes read from shard files so far.
func (r *Reader) BytesRead() int64 { return r.read.Load() }

// ReadOps returns the ReadAt calls issued against shard files so far.
func (r *Reader) ReadOps() int64 { return r.ops.Load() }

// CoalescedReads returns how many ReadAt calls served more than one
// requested row.
func (r *Reader) CoalescedReads() int64 { return r.coalesced.Load() }

// locate finds the shard covering global row i by binary search.
func (r *Reader) locate(i int) (*shardFile, error) {
	if i < 0 || i >= r.rows {
		return nil, fmt.Errorf("shard: row %d out of range [0,%d)", i, r.rows)
	}
	lo, hi := 0, len(r.shards)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.shards[mid].startRow+r.shards[mid].rows <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &r.shards[lo], nil
}

// ReadRow reads global row i into dst (allocated when nil or short)
// and returns it. Safe for concurrent use.
func (r *Reader) ReadRow(i int, dst []float64) ([]float64, error) {
	sf, err := r.locate(i)
	if err != nil {
		return nil, err
	}
	if cap(dst) < r.cols {
		dst = make([]float64, r.cols)
	}
	dst = dst[:r.cols]
	stride := int64(r.cols) * 8
	off := headerSize + int64(i-sf.startRow)*stride
	buf := make([]byte, stride)
	if _, err := sf.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("shard: read row %d: %w", i, err)
	}
	r.read.Add(stride)
	r.ops.Add(1)
	for j := range dst {
		dst[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
	}
	return dst, nil
}

// ReadRowsInto gathers the given global rows, writing row indices[pos]
// into the slice dst(pos) returns (which must hold at least cols
// values). The requests are visited in sorted row order and adjacent
// rows are coalesced into single bounded ReadAt calls through one
// reusable block buffer, so a bucket whose rows cluster inside a shard
// costs a handful of large sequential reads instead of one seek per
// row. Results are identical to per-row ReadRow calls for any request
// order, duplicates included.
func (r *Reader) ReadRowsInto(indices []int, dst func(pos int) []float64) error {
	if len(indices) == 0 {
		return nil
	}
	stride := int64(r.cols) * 8
	maxRows := int(coalesceBlockBytes / stride)
	if maxRows < 1 {
		maxRows = 1
	}
	// Sort request positions by row; ties keep request order (the
	// comparator falls back to the position, which is unique).
	order := make([]int, len(indices))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := indices[order[a]], indices[order[b]]
		if ia != ib {
			return ia < ib
		}
		return order[a] < order[b]
	})
	var block []byte
	for k := 0; k < len(order); {
		first := indices[order[k]]
		sf, err := r.locate(first)
		if err != nil {
			return err
		}
		shardEnd := sf.startRow + sf.rows
		// Extend the run over duplicate or adjacent rows while it fits
		// the shard and the block budget.
		last := first
		j := k + 1
		for j < len(order) {
			idx := indices[order[j]]
			if idx == last {
				j++
				continue
			}
			if idx != last+1 || idx >= shardEnd || idx-first+1 > maxRows {
				break
			}
			last = idx
			j++
		}
		n := last - first + 1
		need := int64(n) * stride
		if int64(cap(block)) < need {
			block = make([]byte, need)
		}
		b := block[:need]
		if _, err := sf.f.ReadAt(b, headerSize+int64(first-sf.startRow)*stride); err != nil {
			return fmt.Errorf("shard: read rows [%d,%d]: %w", first, last, err)
		}
		r.read.Add(need)
		r.ops.Add(1)
		if j-k > 1 {
			r.coalesced.Add(1)
		}
		for ; k < j; k++ {
			pos := order[k]
			base := (indices[pos] - first) * int(stride)
			d := dst(pos)[:r.cols]
			for c := range d {
				d[c] = math.Float64frombits(binary.LittleEndian.Uint64(b[base+8*c:]))
			}
		}
	}
	return nil
}

// ReadRows gathers the given global rows into a freshly allocated
// [len(indices)][cols] slice — the demand-hydration primitive for
// bucket solves that touch a sparse subset of rows.
func (r *Reader) ReadRows(indices []int) ([][]float64, error) {
	out := make([][]float64, len(indices))
	for k := range out {
		out[k] = make([]float64, r.cols)
	}
	if err := r.ReadRowsInto(indices, func(pos int) []float64 { return out[pos] }); err != nil {
		return nil, err
	}
	return out, nil
}

// Stream visits rows [start, start+count) in order, reusing one row
// buffer across calls — the sequential scan primitive for map tasks
// assigned a row range. A readahead goroutine fetches
// streamBlockBytes-sized blocks double-buffered ahead of the consumer,
// so disk latency overlaps fn. fn must not retain the slice.
func (r *Reader) Stream(start, count int, fn func(i int, row []float64) error) error {
	if count == 0 {
		return nil
	}
	if start < 0 || count < 0 || start+count > r.rows {
		return fmt.Errorf("shard: range [%d,%d) out of [0,%d)", start, start+count, r.rows)
	}
	stride := int64(r.cols) * 8
	blockRows := int(streamBlockBytes / stride)
	if blockRows < 1 {
		blockRows = 1
	}
	type block struct {
		start, n int
		buf      []byte
		err      error
	}
	// Two buffers circulate producer -> blocks -> consumer -> free, so
	// the producer reads block k+1 while the consumer decodes block k.
	free := make(chan []byte, 2)
	free <- nil
	free <- nil
	blocks := make(chan block, 1)
	stop := make(chan struct{})
	go func() {
		defer close(blocks)
		for i, rem := start, count; rem > 0; {
			sf, err := r.locate(i)
			if err != nil {
				select {
				case blocks <- block{err: err}:
				case <-stop:
				}
				return
			}
			n := sf.startRow + sf.rows - i
			if n > rem {
				n = rem
			}
			if n > blockRows {
				n = blockRows
			}
			var buf []byte
			select {
			case buf = <-free:
			case <-stop:
				return
			}
			need := int(int64(n) * stride)
			if cap(buf) < need {
				buf = make([]byte, need)
			}
			buf = buf[:need]
			if _, err := sf.f.ReadAt(buf, headerSize+int64(i-sf.startRow)*stride); err != nil {
				select {
				case blocks <- block{err: fmt.Errorf("shard: stream rows [%d,%d): %w", i, i+n, err)}:
				case <-stop:
				}
				return
			}
			r.read.Add(int64(need))
			r.ops.Add(1)
			if n > 1 {
				r.coalesced.Add(1)
			}
			select {
			case blocks <- block{start: i, n: n, buf: buf}:
			case <-stop:
				return
			}
			i += n
			rem -= n
		}
	}()
	defer close(stop) // unblocks the producer on any early return
	row := make([]float64, r.cols)
	for b := range blocks {
		if b.err != nil {
			return b.err
		}
		for k := 0; k < b.n; k++ {
			base := k * int(stride)
			for c := range row {
				row[c] = math.Float64frombits(binary.LittleEndian.Uint64(b.buf[base+8*c:]))
			}
			if err := fn(b.start+k, row); err != nil {
				return err
			}
		}
		select {
		case free <- b.buf:
		default:
		}
	}
	return nil
}

// Close releases every shard file handle.
func (r *Reader) Close() error {
	var errs []error
	for i := range r.shards {
		if r.shards[i].f != nil {
			errs = append(errs, r.shards[i].f.Close())
			r.shards[i].f = nil
		}
	}
	return errors.Join(errs...)
}

// Ranges returns the [start, start+rows) row range of every shard in
// order — the natural map-task split list for a sharded job.
func (r *Reader) Ranges() [][2]int {
	out := make([][2]int, len(r.shards))
	for i, s := range r.shards {
		out[i] = [2]int{s.startRow, s.startRow + s.rows}
	}
	return out
}
