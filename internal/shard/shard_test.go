package shard

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// writeMatrix shards a deterministic rows×cols matrix and returns it.
func writeMatrix(t *testing.T, dir string, rows, cols, perShard int) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(rows*1000 + cols)))
	m := make([][]float64, rows)
	for i := range m {
		m[i] = make([]float64, cols)
		for j := range m[i] {
			m[i][j] = rng.NormFloat64()
		}
	}
	if err := WriteRows(dir, m, cols, perShard); err != nil {
		t.Fatalf("WriteRows: %v", err)
	}
	return m
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, tc := range []struct{ rows, cols, per int }{
		{1, 1, 1},
		{10, 3, 4},  // partial final shard
		{12, 3, 4},  // exact multiple
		{7, 5, 100}, // single shard
	} {
		dir := t.TempDir()
		m := writeMatrix(t, dir, tc.rows, tc.cols, tc.per)
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("%+v: Open: %v", tc, err)
		}
		if r.Rows() != tc.rows || r.Cols() != tc.cols {
			t.Fatalf("%+v: got %d×%d", tc, r.Rows(), r.Cols())
		}
		wantShards := (tc.rows + tc.per - 1) / tc.per
		if tc.per > tc.rows {
			wantShards = 1
		}
		if got := len(r.Ranges()); got != wantShards {
			t.Fatalf("%+v: %d shards, want %d", tc, got, wantShards)
		}
		for i := 0; i < tc.rows; i++ {
			row, err := r.ReadRow(i, nil)
			if err != nil {
				t.Fatalf("%+v: ReadRow(%d): %v", tc, i, err)
			}
			for j, v := range row {
				if v != m[i][j] {
					t.Fatalf("%+v: row %d col %d: got %v want %v", tc, i, j, v, m[i][j])
				}
			}
		}
		if r.BytesRead() != int64(tc.rows)*int64(tc.cols)*8 {
			t.Fatalf("%+v: BytesRead %d", tc, r.BytesRead())
		}
		if err := r.Close(); err != nil {
			t.Fatalf("%+v: Close: %v", tc, err)
		}
	}
}

func TestReadRowsGather(t *testing.T) {
	dir := t.TempDir()
	m := writeMatrix(t, dir, 20, 4, 6)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	idx := []int{19, 0, 7, 7, 13}
	rows, err := r.ReadRows(idx)
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range idx {
		for j := range rows[k] {
			if rows[k][j] != m[i][j] {
				t.Fatalf("gathered row %d differs at col %d", i, j)
			}
		}
	}
	if _, err := r.ReadRows([]int{20}); err == nil {
		t.Fatal("out-of-range gather succeeded")
	}
}

func TestStreamMatchesReadRow(t *testing.T) {
	dir := t.TempDir()
	m := writeMatrix(t, dir, 15, 3, 4)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	var visited []int
	err = r.Stream(3, 9, func(i int, row []float64) error {
		visited = append(visited, i)
		for j, v := range row {
			if v != m[i][j] {
				t.Fatalf("stream row %d col %d mismatch", i, j)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 9 || visited[0] != 3 || visited[8] != 11 {
		t.Fatalf("visited %v", visited)
	}
	if err := r.Stream(10, 10, func(int, []float64) error { return nil }); err == nil {
		t.Fatal("out-of-range stream succeeded")
	}
}

func TestConcurrentReads(t *testing.T) {
	dir := t.TempDir()
	m := writeMatrix(t, dir, 64, 8, 16)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]float64, 8)
			for i := 0; i < 64; i++ {
				row, err := r.ReadRow((i+g*7)%64, buf)
				if err != nil {
					t.Errorf("ReadRow: %v", err)
					return
				}
				want := m[(i+g*7)%64]
				for j := range row {
					if row[j] != want[j] {
						t.Errorf("goroutine %d: row mismatch", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestOpenRejectsCorruption(t *testing.T) {
	newDir := func() string {
		dir := t.TempDir()
		writeMatrix(t, dir, 10, 2, 4)
		return dir
	}
	firstShard := func(dir string) string {
		return filepath.Join(dir, "shard-000000.dshd")
	}

	t.Run("empty dir", func(t *testing.T) {
		if _, err := Open(t.TempDir()); err == nil {
			t.Fatal("Open on empty dir succeeded")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		dir := newDir()
		f, err := os.OpenFile(firstShard(dir), os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("XXXX"), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		dir := newDir()
		st, err := os.Stat(firstShard(dir))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(firstShard(dir), st.Size()-8); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("truncated shard accepted")
		}
	})
	t.Run("gap in row ranges", func(t *testing.T) {
		dir := newDir()
		// Shift shard 1's startRow forward by one: creates a gap.
		name := filepath.Join(dir, "shard-000001.dshd")
		f, err := os.OpenFile(name, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		var b [8]byte
		if _, err := f.ReadAt(b[:], 8); err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(b[:], binary.LittleEndian.Uint64(b[:])+1)
		if _, err := f.WriteAt(b[:], 8); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("gapped shard set accepted")
		}
	})
	t.Run("mixed cols", func(t *testing.T) {
		dir := newDir()
		name := filepath.Join(dir, "shard-000001.dshd")
		f, err := os.OpenFile(name, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		// cols 2 → 1 and rows 2 → 4 keeps the size equation consistent
		// (4 rows × 1 col == 2 rows × 2 cols) so only the col check fires.
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], 4)
		if _, err := f.WriteAt(b[:], 16); err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(b[:], 1)
		if _, err := f.WriteAt(b[:], 24); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("mixed-cols shard set accepted")
		}
	})
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(t.TempDir(), 0, 4); err == nil {
		t.Fatal("zero cols accepted")
	}
	w, err := NewWriter(t.TempDir(), 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1, 2}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := w.Append([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 1 {
		t.Fatalf("Rows() = %d", w.Rows())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]float64{1, 2, 3}); err == nil {
		t.Fatal("append after Close accepted")
	}
	if err := w.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
}

func TestSpecialFloatValues(t *testing.T) {
	dir := t.TempDir()
	rows := [][]float64{{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1)}}
	if err := WriteRows(dir, rows, 4, 0); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()
	got, err := r.ReadRow(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range rows[0] {
		if math.Float64bits(got[j]) != math.Float64bits(rows[0][j]) {
			t.Fatalf("col %d: bits differ", j)
		}
	}
}

// BenchmarkShardStream measures the sequential streaming read path the
// sharded LSH mappers use, and BenchmarkShardGather the random
// demand-hydration path of the bucket reducers.
func BenchmarkShardStream(b *testing.B) {
	dir := b.TempDir()
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = make([]float64, 16)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	if err := WriteRows(dir, rows, 16, 1024); err != nil {
		b.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum float64
		if err := r.Stream(0, len(rows), func(_ int, row []float64) error {
			sum += row[0]
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShardGather(b *testing.B) {
	dir := b.TempDir()
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = make([]float64, 16)
		for j := range rows[i] {
			rows[i][j] = rng.NormFloat64()
		}
	}
	if err := WriteRows(dir, rows, 16, 1024); err != nil {
		b.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	indices := make([]int, 512)
	for i := range indices {
		indices[i] = rng.Intn(len(rows))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadRows(indices); err != nil {
			b.Fatal(err)
		}
	}
}
