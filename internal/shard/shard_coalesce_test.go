package shard

import (
	"errors"
	"math/rand"
	"testing"
)

// TestReadRowsIntoMatchesReadRow drives the coalescing gather with
// unsorted, duplicated, and cross-shard index sets: every destination
// row must match the single-row read path exactly.
func TestReadRowsIntoMatchesReadRow(t *testing.T) {
	dir := t.TempDir()
	m := writeMatrix(t, dir, 50, 6, 7) // 8 shards, awkward boundaries
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()

	rng := rand.New(rand.NewSource(41))
	cases := [][]int{
		{0},
		{49, 0},
		{7, 7, 7},                      // duplicates share one read
		{6, 7, 8, 13, 14, 20, 21, 22}, // runs crossing shard boundaries
		nil,
	}
	perm := rng.Perm(50)
	cases = append(cases, perm, perm[:25])
	for ci, idx := range cases {
		got := make([][]float64, len(idx))
		err := r.ReadRowsInto(idx, func(pos int) []float64 {
			got[pos] = make([]float64, 6)
			return got[pos]
		})
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for k, i := range idx {
			for j := range got[k] {
				if got[k][j] != m[i][j] {
					t.Fatalf("case %d: row %d col %d: got %v want %v", ci, i, j, got[k][j], m[i][j])
				}
			}
		}
	}

	for _, bad := range [][]int{{-1}, {50}, {0, 50}} {
		if err := r.ReadRowsInto(bad, func(int) []float64 { return make([]float64, 6) }); err == nil {
			t.Fatalf("out-of-range gather %v succeeded", bad)
		}
	}
}

// TestGatherCoalescesAdjacentRows pins the perf mechanism itself: a
// contiguous index set must land in far fewer ReadAt calls than rows,
// and the coalesced-read counter must see it.
func TestGatherCoalescesAdjacentRows(t *testing.T) {
	dir := t.TempDir()
	writeMatrix(t, dir, 256, 8, 64)
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()

	idx := make([]int, 128)
	for i := range idx {
		idx[i] = 64 + i // two full shards, perfectly contiguous
	}
	opsBefore, coalBefore := r.ReadOps(), r.CoalescedReads()
	if _, err := r.ReadRows(idx); err != nil {
		t.Fatal(err)
	}
	ops := r.ReadOps() - opsBefore
	coal := r.CoalescedReads() - coalBefore
	if ops >= int64(len(idx)) {
		t.Fatalf("contiguous gather used %d reads for %d rows — no coalescing", ops, len(idx))
	}
	if coal == 0 {
		t.Fatal("coalesced-read counter did not move")
	}
	if ops > 4 {
		t.Fatalf("contiguous gather of 2 shards took %d reads, want ≤ 4", ops)
	}

	// A maximally scattered gather (every other shard, one row each)
	// cannot coalesce: reads ≈ rows.
	scattered := []int{0, 128, 64, 192}
	opsBefore = r.ReadOps()
	if _, err := r.ReadRows(scattered); err != nil {
		t.Fatal(err)
	}
	if got := r.ReadOps() - opsBefore; got != int64(len(scattered)) {
		t.Fatalf("scattered gather used %d reads for %d isolated rows", got, len(scattered))
	}
}

// TestStreamReadaheadMatchesAndStops checks the double-buffered stream
// against the row reads and makes sure a callback error stops the
// readahead goroutine cleanly (no deadlock, error surfaced).
func TestStreamReadaheadMatchesAndStops(t *testing.T) {
	dir := t.TempDir()
	m := writeMatrix(t, dir, 300, 5, 32) // enough rows for several readahead blocks
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}()

	var n int
	err = r.Stream(0, 300, func(i int, row []float64) error {
		if i != n {
			t.Fatalf("stream visited %d, want %d", i, n)
		}
		for j, v := range row {
			if v != m[i][j] {
				t.Fatalf("stream row %d col %d mismatch", i, j)
			}
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("visited %d rows", n)
	}

	boom := errors.New("stop early")
	var seen int
	err = r.Stream(0, 300, func(i int, row []float64) error {
		seen++
		if i == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("early-stop error = %v", err)
	}
	if seen != 11 {
		t.Fatalf("callback ran %d times after error at row 10", seen)
	}

	// The reader must remain usable after an aborted stream.
	if _, err := r.ReadRow(42, nil); err != nil {
		t.Fatalf("read after aborted stream: %v", err)
	}
}
