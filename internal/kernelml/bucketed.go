package kernelml

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

// This file composes the kernel algorithms with the DASC bucket
// partition, the same way internal/core composes spectral clustering:
// the LSH front-end shrinks the Gram matrix to per-bucket blocks and
// the kernel algorithm runs independently per bucket. It demonstrates
// the paper's claim that the approximation is algorithm-independent.
//
// Buckets are independent, so KMeans and PCA solve them on a worker
// pool with LPT scheduling (largest bucket first — solve cost grows
// like Ni^2 and beyond); global label offsets are prefix-summed up
// front so the parallel result is identical to sequential execution.
// Each worker reuses one sub-Gram scratch buffer across its buckets.

// runBuckets executes solve(bi, scratch) for every bucket index on a
// pool of GOMAXPROCS workers in LPT order. Each worker owns a scratch
// buffer passed through to its solves. The first error (by bucket
// index) is returned; the context is checked before every solve.
func runBuckets(ctx context.Context, part *lsh.Partition, solve func(bi int, scratch *[]float64) error) error {
	order := make([]int, len(part.Buckets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(part.Buckets[order[a]].Indices) > len(part.Buckets[order[b]].Indices)
	})
	workers := runtime.GOMAXPROCS(0)
	if workers > len(order) {
		workers = len(order)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, len(part.Buckets))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch []float64
			for {
				oi := int(cursor.Add(1)) - 1
				if oi >= len(order) {
					return
				}
				bi := order[oi]
				if err := ctx.Err(); err != nil {
					errs[bi] = err
					return
				}
				errs[bi] = solve(bi, &scratch)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// subGramInto builds the bucket's sub-Gram inside *scratch (grown as
// needed) and optionally completes the diagonal with the true
// self-similarities k(x,x) that SVM and kernel PCA require. It is the
// shared pooled builder from internal/kernel — the same code the
// spectral solve engine's dense path uses.
func subGramInto(points *matrix.Dense, indices []int, kf kernel.Kernel, scratch *[]float64, withDiagonal bool) (*matrix.Dense, error) {
	return kernel.SubGramPooled(points, indices, kf, scratch, withDiagonal)
}

// BucketedKernelKMeans runs kernel k-means inside every bucket of the
// partition, allocating the global cluster budget k proportionally.
// Returned labels are globally unique across buckets.
func BucketedKernelKMeans(points *matrix.Dense, part *lsh.Partition, kf kernel.Kernel, k int, seed int64) ([]int, int, error) {
	return BucketedKernelKMeansContext(context.Background(), points, part, kf, k, seed)
}

// BucketedKernelKMeansContext is BucketedKernelKMeans with
// cancellation: the context is checked before each bucket solve.
func BucketedKernelKMeansContext(ctx context.Context, points *matrix.Dense, part *lsh.Partition, kf kernel.Kernel, k int, seed int64) ([]int, int, error) {
	n := points.Rows()
	if k < 1 || k > n {
		return nil, 0, fmt.Errorf("kernelml: K=%d with %d points", k, n)
	}
	// Per-bucket cluster counts and their prefix-sum offsets, computed
	// up front so every bucket's global label range is known before the
	// parallel solves and the output matches sequential execution.
	counts := make([]int, len(part.Buckets))
	offsets := make([]int, len(part.Buckets))
	total := 0
	for bi, b := range part.Buckets {
		ni := len(b.Indices)
		ki := proportionalK(k, ni, n)
		if ki >= ni {
			ki = ni
		}
		offsets[bi] = total
		counts[bi] = ki
		total += ki
	}
	labels := make([]int, n)
	err := runBuckets(ctx, part, func(bi int, scratch *[]float64) error {
		b := part.Buckets[bi]
		ni := len(b.Indices)
		if counts[bi] >= ni {
			for pos, idx := range b.Indices {
				labels[idx] = offsets[bi] + pos
			}
			return nil
		}
		sub, err := subGramInto(points, b.Indices, kf, scratch, false)
		if err != nil {
			return err
		}
		res, err := KernelKMeans(sub, KernelKMeansConfig{K: counts[bi], Seed: seed + int64(b.Signature)})
		if err != nil {
			return fmt.Errorf("kernelml: bucket %x: %w", b.Signature, err)
		}
		for pos, idx := range b.Indices {
			labels[idx] = offsets[bi] + res.Labels[pos]
		}
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("kernelml: kmeans: %w", err)
	}
	return labels, total, nil
}

// BucketedKernelPCA computes k kernel principal components inside every
// bucket and returns the n x k embedding (rows of points outside any
// bucket stay zero, which cannot happen for a partition that covers the
// dataset). Component axes are per-bucket, as the Gram approximation
// has no cross-bucket similarities by construction.
func BucketedKernelPCA(points *matrix.Dense, part *lsh.Partition, kf kernel.Kernel, k int) (*matrix.Dense, error) {
	return BucketedKernelPCAContext(context.Background(), points, part, kf, k)
}

// BucketedKernelPCAContext is BucketedKernelPCA with cancellation: the
// context is checked before each bucket decomposition.
func BucketedKernelPCAContext(ctx context.Context, points *matrix.Dense, part *lsh.Partition, kf kernel.Kernel, k int) (*matrix.Dense, error) {
	if k < 1 {
		return nil, fmt.Errorf("kernelml: k=%d", k)
	}
	out := matrix.NewDense(points.Rows(), k)
	err := runBuckets(ctx, part, func(bi int, scratch *[]float64) error {
		b := part.Buckets[bi]
		if len(b.Indices) == 1 {
			return nil // a singleton has no variance to decompose
		}
		sub, err := subGramInto(points, b.Indices, kf, scratch, true)
		if err != nil {
			return err
		}
		res, err := KernelPCA(sub, k)
		if err != nil {
			return fmt.Errorf("kernelml: bucket %x: %w", b.Signature, err)
		}
		for pos, idx := range b.Indices {
			copy(out.Row(idx), res.Projections.Row(pos))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernelml: pca: %w", err)
	}
	return out, nil
}

// BucketedSVM is a locality-sensitive SVM ensemble: one binary SVM per
// bucket, each trained on its bucket's (diagonal-complete) sub-Gram.
// At prediction time the LSH family routes the query to its bucket's
// model — training cost falls from O(N^2) kernel entries to
// sum(Ni^2), mirroring DASC's clustering savings.
type BucketedSVM struct {
	family lsh.Family
	points *matrix.Dense
	kf     kernel.Kernel
	models map[uint64]*bucketModel
	// Fallback handles signatures never seen in training: the model of
	// the nearest training signature by Hamming distance.
	signatures []uint64
}

type bucketModel struct {
	svm     *SVM
	indices []int
}

// TrainBucketedSVM trains the per-bucket ensemble. y must be -1/+1 per
// training point. Buckets whose labels are single-class get a trivial
// constant model (SVM with no support vectors and bias = the class).
func TrainBucketedSVM(points *matrix.Dense, y []int, family lsh.Family, kf kernel.Kernel, cfg SVMConfig) (*BucketedSVM, error) {
	return TrainBucketedSVMContext(context.Background(), points, y, family, kf, cfg)
}

// TrainBucketedSVMContext is TrainBucketedSVM with cancellation: the
// context is checked before each bucket's SVM training. Training stays
// sequential — the ensemble's signature list is order-dependent — but
// one sub-Gram scratch buffer is reused across all buckets.
func TrainBucketedSVMContext(ctx context.Context, points *matrix.Dense, y []int, family lsh.Family, kf kernel.Kernel, cfg SVMConfig) (*BucketedSVM, error) {
	n := points.Rows()
	if len(y) != n {
		return nil, fmt.Errorf("kernelml: %d labels for %d points", len(y), n)
	}
	part := lsh.PartitionWith(family, points, 1)
	ens := &BucketedSVM{
		family: family,
		points: points,
		kf:     kf,
		models: make(map[uint64]*bucketModel, len(part.Buckets)),
	}
	var scratch []float64
	for _, b := range part.Buckets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kernelml: svm: %w", err)
		}
		ens.signatures = append(ens.signatures, b.Signature)
		subY := make([]int, len(b.Indices))
		pos, neg := 0, 0
		for i, idx := range b.Indices {
			subY[i] = y[idx]
			if y[idx] > 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			// Single-class bucket: constant decision.
			bias := 1.0
			if pos == 0 {
				bias = -1
			}
			ens.models[b.Signature] = &bucketModel{
				svm:     &SVM{Alpha: map[int]float64{}, B: bias, Labels: subY},
				indices: b.Indices,
			}
			continue
		}
		sub, err := subGramInto(points, b.Indices, kf, &scratch, true)
		if err != nil {
			return nil, err
		}
		svm, err := TrainSVM(sub, subY, cfg)
		if err != nil {
			return nil, fmt.Errorf("kernelml: bucket %x: %w", b.Signature, err)
		}
		ens.models[b.Signature] = &bucketModel{svm: svm, indices: b.Indices}
	}
	return ens, nil
}

// Predict routes x to its bucket's SVM (nearest training signature by
// Hamming distance when the exact signature was never seen).
func (e *BucketedSVM) Predict(x []float64) int {
	sig := e.family.Signature(x)
	m, ok := e.models[sig]
	if !ok {
		best, bestD := e.signatures[0], 65
		for _, s := range e.signatures {
			if d := lsh.HammingDistance(sig, s); d < bestD {
				best, bestD = s, d
			}
		}
		m = e.models[best]
	}
	// Decision over the bucket's own training subset, summed in
	// ascending support index order — float addition in map-iteration
	// order would flip near-boundary predictions between runs.
	s := m.svm.B
	for _, i := range m.svm.supportIndices() {
		s += m.svm.Alpha[i] * float64(m.svm.Labels[i]) * e.kf.Eval(e.points.Row(m.indices[i]), x)
	}
	if s >= 0 {
		return 1
	}
	return -1
}

// Buckets returns the number of per-bucket models.
func (e *BucketedSVM) Buckets() int { return len(e.models) }

// proportionalK mirrors core.BucketK without importing core (which
// would create an import cycle through the experiment harness).
func proportionalK(k, ni, n int) int {
	ki := (k*ni + n/2) / n
	if ki < 1 {
		ki = 1
	}
	if ki > ni {
		ki = ni
	}
	return ki
}
