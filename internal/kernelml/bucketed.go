package kernelml

import (
	"context"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

// This file composes the kernel algorithms with the DASC bucket
// partition, the same way internal/core composes spectral clustering:
// the LSH front-end shrinks the Gram matrix to per-bucket blocks and
// the kernel algorithm runs independently per bucket. It demonstrates
// the paper's claim that the approximation is algorithm-independent.

// BucketedKernelKMeans runs kernel k-means inside every bucket of the
// partition, allocating the global cluster budget k proportionally.
// Returned labels are globally unique across buckets.
func BucketedKernelKMeans(points *matrix.Dense, part *lsh.Partition, kf kernel.Func, k int, seed int64) ([]int, int, error) {
	return BucketedKernelKMeansContext(context.Background(), points, part, kf, k, seed)
}

// BucketedKernelKMeansContext is BucketedKernelKMeans with
// cancellation: the context is checked before each bucket solve.
func BucketedKernelKMeansContext(ctx context.Context, points *matrix.Dense, part *lsh.Partition, kf kernel.Func, k int, seed int64) ([]int, int, error) {
	n := points.Rows()
	if k < 1 || k > n {
		return nil, 0, fmt.Errorf("kernelml: K=%d with %d points", k, n)
	}
	labels := make([]int, n)
	offset := 0
	for _, b := range part.Buckets {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("kernelml: kmeans: %w", err)
		}
		ni := len(b.Indices)
		ki := proportionalK(k, ni, n)
		if ki >= ni {
			for pos, idx := range b.Indices {
				labels[idx] = offset + pos
			}
			offset += ni
			continue
		}
		sub := kernel.SubGram(points, b.Indices, kf)
		res, err := KernelKMeans(sub, KernelKMeansConfig{K: ki, Seed: seed + int64(b.Signature)})
		if err != nil {
			return nil, 0, fmt.Errorf("kernelml: bucket %x: %w", b.Signature, err)
		}
		for pos, idx := range b.Indices {
			labels[idx] = offset + res.Labels[pos]
		}
		offset += ki
	}
	return labels, offset, nil
}

// BucketedKernelPCA computes k kernel principal components inside every
// bucket and returns the n x k embedding (rows of points outside any
// bucket stay zero, which cannot happen for a partition that covers the
// dataset). Component axes are per-bucket, as the Gram approximation
// has no cross-bucket similarities by construction.
func BucketedKernelPCA(points *matrix.Dense, part *lsh.Partition, kf kernel.Func, k int) (*matrix.Dense, error) {
	return BucketedKernelPCAContext(context.Background(), points, part, kf, k)
}

// BucketedKernelPCAContext is BucketedKernelPCA with cancellation: the
// context is checked before each bucket decomposition.
func BucketedKernelPCAContext(ctx context.Context, points *matrix.Dense, part *lsh.Partition, kf kernel.Func, k int) (*matrix.Dense, error) {
	if k < 1 {
		return nil, fmt.Errorf("kernelml: k=%d", k)
	}
	out := matrix.NewDense(points.Rows(), k)
	for _, b := range part.Buckets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kernelml: pca: %w", err)
		}
		if len(b.Indices) == 1 {
			continue // a singleton has no variance to decompose
		}
		sub := kernel.SubGram(points, b.Indices, kf)
		for i := range b.Indices {
			sub.Set(i, i, kf(points.Row(b.Indices[i]), points.Row(b.Indices[i])))
		}
		res, err := KernelPCA(sub, k)
		if err != nil {
			return nil, fmt.Errorf("kernelml: bucket %x: %w", b.Signature, err)
		}
		for pos, idx := range b.Indices {
			copy(out.Row(idx), res.Projections.Row(pos))
		}
	}
	return out, nil
}

// BucketedSVM is a locality-sensitive SVM ensemble: one binary SVM per
// bucket, each trained on its bucket's (diagonal-complete) sub-Gram.
// At prediction time the LSH family routes the query to its bucket's
// model — training cost falls from O(N^2) kernel entries to
// sum(Ni^2), mirroring DASC's clustering savings.
type BucketedSVM struct {
	family lsh.Family
	points *matrix.Dense
	kf     kernel.Func
	models map[uint64]*bucketModel
	// Fallback handles signatures never seen in training: the model of
	// the nearest training signature by Hamming distance.
	signatures []uint64
}

type bucketModel struct {
	svm     *SVM
	indices []int
}

// TrainBucketedSVM trains the per-bucket ensemble. y must be -1/+1 per
// training point. Buckets whose labels are single-class get a trivial
// constant model (SVM with no support vectors and bias = the class).
func TrainBucketedSVM(points *matrix.Dense, y []int, family lsh.Family, kf kernel.Func, cfg SVMConfig) (*BucketedSVM, error) {
	return TrainBucketedSVMContext(context.Background(), points, y, family, kf, cfg)
}

// TrainBucketedSVMContext is TrainBucketedSVM with cancellation: the
// context is checked before each bucket's SVM training.
func TrainBucketedSVMContext(ctx context.Context, points *matrix.Dense, y []int, family lsh.Family, kf kernel.Func, cfg SVMConfig) (*BucketedSVM, error) {
	n := points.Rows()
	if len(y) != n {
		return nil, fmt.Errorf("kernelml: %d labels for %d points", len(y), n)
	}
	part := lsh.PartitionWith(family, points, 1)
	ens := &BucketedSVM{
		family: family,
		points: points,
		kf:     kf,
		models: make(map[uint64]*bucketModel, len(part.Buckets)),
	}
	for _, b := range part.Buckets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("kernelml: svm: %w", err)
		}
		ens.signatures = append(ens.signatures, b.Signature)
		subY := make([]int, len(b.Indices))
		pos, neg := 0, 0
		for i, idx := range b.Indices {
			subY[i] = y[idx]
			if y[idx] > 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			// Single-class bucket: constant decision.
			bias := 1.0
			if pos == 0 {
				bias = -1
			}
			ens.models[b.Signature] = &bucketModel{
				svm:     &SVM{Alpha: map[int]float64{}, B: bias, Labels: subY},
				indices: b.Indices,
			}
			continue
		}
		sub := kernel.SubGram(points, b.Indices, kf)
		for i := range b.Indices {
			sub.Set(i, i, kf(points.Row(b.Indices[i]), points.Row(b.Indices[i])))
		}
		svm, err := TrainSVM(sub, subY, cfg)
		if err != nil {
			return nil, fmt.Errorf("kernelml: bucket %x: %w", b.Signature, err)
		}
		ens.models[b.Signature] = &bucketModel{svm: svm, indices: b.Indices}
	}
	return ens, nil
}

// Predict routes x to its bucket's SVM (nearest training signature by
// Hamming distance when the exact signature was never seen).
func (e *BucketedSVM) Predict(x []float64) int {
	sig := e.family.Signature(x)
	m, ok := e.models[sig]
	if !ok {
		best, bestD := e.signatures[0], 65
		for _, s := range e.signatures {
			if d := lsh.HammingDistance(sig, s); d < bestD {
				best, bestD = s, d
			}
		}
		m = e.models[best]
	}
	// Decision over the bucket's own training subset.
	s := m.svm.B
	for i, a := range m.svm.Alpha {
		s += a * float64(m.svm.Labels[i]) * e.kf(e.points.Row(m.indices[i]), x)
	}
	if s >= 0 {
		return 1
	}
	return -1
}

// Buckets returns the number of per-bucket models.
func (e *BucketedSVM) Buckets() int { return len(e.models) }

// proportionalK mirrors core.BucketK without importing core (which
// would create an import cycle through the experiment harness).
func proportionalK(k, ni, n int) int {
	ki := (k*ni + n/2) / n
	if ki < 1 {
		ki = 1
	}
	if ki > ni {
		ki = ni
	}
	return ki
}
