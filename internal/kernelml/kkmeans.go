// Package kernelml implements additional kernel-based machine learning
// algorithms on top of (approximated) Gram matrices: kernel k-means,
// kernel PCA, and a support vector machine trained with SMO. The
// paper's central claim (§1) is that its LSH Gram-matrix approximation
// "is independent of the subsequently used kernel-based machine
// learning algorithm, and thus can be used with many of them" — this
// package provides those other consumers, and bucketed front-ends that
// compose them with the LSH partition exactly as DASC composes spectral
// clustering.
package kernelml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// KernelKMeansConfig controls a kernel k-means run.
type KernelKMeansConfig struct {
	// K is the number of clusters (required).
	K int
	// MaxIter bounds the assignment/update sweeps (default 100).
	MaxIter int
	// Seed drives the random initial assignment.
	Seed int64
}

// KernelKMeansResult reports a kernel k-means run.
type KernelKMeansResult struct {
	// Labels[i] is the cluster of point i.
	Labels []int
	// Objective is the final within-cluster feature-space scatter.
	Objective float64
	// Iterations actually performed.
	Iterations int
}

// KernelKMeans clusters points given only their Gram matrix, using the
// feature-space distance identity
//
//	d^2(x, c_k) = K(x,x) - 2/|C_k| sum_{j in C_k} K(x,j)
//	              + 1/|C_k|^2 sum_{i,j in C_k} K(i,j).
//
// The Gram matrix must be symmetric; a zero diagonal (the pipeline's
// convention) is fine since constant diagonals do not change argmin.
func KernelKMeans(gram *matrix.Dense, cfg KernelKMeansConfig) (*KernelKMeansResult, error) {
	n := gram.Rows()
	if gram.Cols() != n {
		return nil, fmt.Errorf("kernelml: gram %dx%d not square", n, gram.Cols())
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kernelml: K=%d with %d points", cfg.K, n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := seedKernelPlusPlus(gram, cfg.K, rng)

	sizes := make([]int, cfg.K)
	intra := make([]float64, cfg.K)    // sum_{i,j in C} K(i,j)
	pointToC := make([]float64, cfg.K) // per-point scratch: sum_{j in C} K(x,j)

	recompute := func() {
		for c := range sizes {
			sizes[c] = 0
			intra[c] = 0
		}
		for i := 0; i < n; i++ {
			sizes[labels[i]]++
		}
		for i := 0; i < n; i++ {
			row := gram.Row(i)
			ci := labels[i]
			for j, v := range row {
				if labels[j] == ci {
					intra[ci] += v
				}
			}
		}
	}
	recompute()

	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		changed := 0
		for i := 0; i < n; i++ {
			row := gram.Row(i)
			for c := range pointToC {
				pointToC[c] = 0
			}
			for j, v := range row {
				pointToC[labels[j]] += v
			}
			best, bestD := labels[i], math.Inf(1)
			for c := 0; c < cfg.K; c++ {
				if sizes[c] == 0 {
					continue
				}
				sz := float64(sizes[c])
				d := -2*pointToC[c]/sz + intra[c]/(sz*sz)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if best != labels[i] {
				labels[i] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
		recompute()
	}

	// Objective: sum over clusters of (|C| K(x,x)=0 terms omitted)
	// -intra/|C| up to the constant diagonal; report the standard
	// non-negative scatter by adding the diagonal back as 0.
	var obj float64
	for c := 0; c < cfg.K; c++ {
		if sizes[c] > 0 {
			obj -= intra[c] / float64(sizes[c])
		}
	}
	return &KernelKMeansResult{Labels: labels, Objective: obj, Iterations: iter + 1}, nil
}

// seedKernelPlusPlus initializes kernel k-means with a k-means++-style
// seeding in feature space: pick seed points far apart under the kernel
// distance d^2(x,y) = K(x,x) - 2K(x,y) + K(y,y), then assign every
// point to its nearest seed. Random-assignment initialization collapses
// easily for kernel k-means; seeding by exemplars does not.
func seedKernelPlusPlus(gram *matrix.Dense, k int, rng *rand.Rand) []int {
	n := gram.Rows()
	// The clustering pipeline stores Gram matrices with a zero diagonal;
	// kernel distances need the true self-similarity, which for the
	// normalized kernels used here is 1. A nonzero stored diagonal is
	// used as-is.
	self := func(i int) float64 {
		if v := gram.At(i, i); !matrix.IsZero(v) {
			return v
		}
		return 1
	}
	kdist := func(i, j int) float64 {
		if i == j {
			return 0
		}
		return self(i) + self(j) - 2*gram.At(i, j)
	}
	seeds := make([]int, 0, k)
	seeds = append(seeds, rng.Intn(n))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = kdist(i, seeds[0])
	}
	for len(seeds) < k {
		// A zero-diagonal Gram shifts kernel distances by a constant,
		// which can make them negative; shift to non-negative weights
		// before the proportional draw (ordering is unaffected).
		min := math.Inf(1)
		for _, d := range dist {
			if d < min {
				min = d
			}
		}
		var total float64
		for _, d := range dist {
			total += d - min
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			var acc float64
			pick = n - 1
			for i, d := range dist {
				acc += d - min
				if acc >= r {
					pick = i
					break
				}
			}
		}
		seeds = append(seeds, pick)
		for i := range dist {
			if d := kdist(i, pick); d < dist[i] {
				dist[i] = d
			}
		}
	}
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		best, bestD := 0, math.Inf(1)
		for c, s := range seeds {
			if d := kdist(i, s); d < bestD {
				best, bestD = c, d
			}
		}
		labels[i] = best
	}
	// Seeds anchor their own clusters so none starts empty.
	for c, s := range seeds {
		labels[s] = c
	}
	return labels
}

// ErrEmptyGram reports an empty input matrix.
var ErrEmptyGram = errors.New("kernelml: empty gram matrix")
