package kernelml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/kernel"
	"repro/internal/matrix"
)

// SVMConfig controls SMO training.
type SVMConfig struct {
	// C is the soft-margin penalty (default 1).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of full passes without updates before
	// SMO stops (default 5).
	MaxPasses int
	// Seed drives the second-multiplier choice.
	Seed int64
}

// SVM is a trained binary kernel support vector machine. Labels are
// -1/+1. Prediction needs the kernel function and the support vectors'
// original points, which the model retains by index.
type SVM struct {
	// Alpha holds the nonzero Lagrange multipliers by training index.
	Alpha map[int]float64
	// B is the bias term.
	B float64
	// Labels are the training labels (+-1).
	Labels []int
	// SupportCount is the number of support vectors.
	SupportCount int
}

// TrainSVM runs simplified SMO (Platt) over a precomputed Gram matrix.
// This is the training-phase bottleneck the paper's §2 discusses — the
// kernel matrix dominates, which is exactly what the LSH approximation
// shrinks. y must contain only +-1.
func TrainSVM(gram *matrix.Dense, y []int, cfg SVMConfig) (*SVM, error) {
	n := gram.Rows()
	if gram.Cols() != n {
		return nil, fmt.Errorf("kernelml: gram %dx%d not square", n, gram.Cols())
	}
	if n == 0 {
		return nil, ErrEmptyGram
	}
	if len(y) != n {
		return nil, fmt.Errorf("kernelml: %d labels for %d points", len(y), n)
	}
	for _, v := range y {
		if v != 1 && v != -1 {
			return nil, errors.New("kernelml: SVM labels must be -1 or +1")
		}
	}
	if matrix.IsZero(cfg.C) {
		cfg.C = 1
	}
	if cfg.C < 0 {
		return nil, fmt.Errorf("kernelml: C=%v", cfg.C)
	}
	if matrix.IsZero(cfg.Tol) {
		cfg.Tol = 1e-3
	}
	if cfg.MaxPasses == 0 {
		cfg.MaxPasses = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	alpha := make([]float64, n)
	b := 0.0
	f := func(i int) float64 {
		var s float64
		row := gram.Row(i)
		for j, a := range alpha {
			if !matrix.IsZero(a) {
				s += a * float64(y[j]) * row[j]
			}
		}
		return s + b
	}

	passes := 0
	for passes < cfg.MaxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - float64(y[i])
			if !((float64(y[i])*ei < -cfg.Tol && alpha[i] < cfg.C) ||
				(float64(y[i])*ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - float64(y[j])
			aiOld, ajOld := alpha[i], alpha[j]
			var lo, hi float64
			if y[i] != y[j] {
				lo = math.Max(0, ajOld-aiOld)
				hi = math.Min(cfg.C, cfg.C+ajOld-aiOld)
			} else {
				lo = math.Max(0, aiOld+ajOld-cfg.C)
				hi = math.Min(cfg.C, aiOld+ajOld)
			}
			if matrix.ApproxEqual(lo, hi, 0) {
				continue
			}
			eta := 2*gram.At(i, j) - gram.At(i, i) - gram.At(j, j)
			if eta >= 0 {
				continue
			}
			aj := ajOld - float64(y[j])*(ei-ej)/eta
			if aj > hi {
				aj = hi
			} else if aj < lo {
				aj = lo
			}
			if math.Abs(aj-ajOld) < 1e-7 {
				continue
			}
			ai := aiOld + float64(y[i]*y[j])*(ajOld-aj)
			alpha[i], alpha[j] = ai, aj

			b1 := b - ei - float64(y[i])*(ai-aiOld)*gram.At(i, i) -
				float64(y[j])*(aj-ajOld)*gram.At(i, j)
			b2 := b - ej - float64(y[i])*(ai-aiOld)*gram.At(i, j) -
				float64(y[j])*(aj-ajOld)*gram.At(j, j)
			switch {
			case ai > 0 && ai < cfg.C:
				b = b1
			case aj > 0 && aj < cfg.C:
				b = b2
			default:
				b = (b1 + b2) / 2
			}
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	model := &SVM{Alpha: map[int]float64{}, B: b, Labels: append([]int(nil), y...)}
	for i, a := range alpha {
		if a > 1e-9 {
			model.Alpha[i] = a
			model.SupportCount++
		}
	}
	return model, nil
}

// Decision evaluates the decision function for a new point, given the
// training points and the kernel (only support vectors are touched —
// the paper's §2 point that SVM testing is cheap compared to training).
func (m *SVM) Decision(train *matrix.Dense, k kernel.Kernel, x []float64) float64 {
	s := m.B
	// Sum over support vectors in ascending index order: float addition
	// does not associate, so summing in map-iteration order would make
	// the decision value (and near-boundary predictions) vary per run.
	for _, i := range m.supportIndices() {
		s += m.Alpha[i] * float64(m.Labels[i]) * k.Eval(train.Row(i), x)
	}
	return s
}

// supportIndices returns the support-vector indices in ascending order,
// giving every Alpha consumer a deterministic summation order.
func (m *SVM) supportIndices() []int {
	idx := make([]int, 0, len(m.Alpha))
	for i := range m.Alpha {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Predict returns the +-1 class for x.
func (m *SVM) Predict(train *matrix.Dense, k kernel.Kernel, x []float64) int {
	if m.Decision(train, k, x) >= 0 {
		return 1
	}
	return -1
}
