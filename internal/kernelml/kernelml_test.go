package kernelml

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

func blobs(t *testing.T, n, d, k int, noise float64, seed int64) *dataset.Labeled {
	t.Helper()
	l, err := dataset.Mixture(dataset.MixtureConfig{N: n, D: d, K: k, Noise: noise, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestKernelKMeansRecoversBlobs(t *testing.T) {
	l := blobs(t, 90, 8, 3, 0.02, 1)
	gram := kernel.Gram(l.Points, kernel.Gaussian(0.5))
	res, err := KernelKMeans(gram, KernelKMeansConfig{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(l.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("kernel k-means accuracy = %v", acc)
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestKernelKMeansValidation(t *testing.T) {
	if _, err := KernelKMeans(matrix.NewDense(2, 3), KernelKMeansConfig{K: 1}); err == nil {
		t.Fatal("expected error for non-square gram")
	}
	g := matrix.NewDense(3, 3)
	if _, err := KernelKMeans(g, KernelKMeansConfig{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := KernelKMeans(g, KernelKMeansConfig{K: 4}); err == nil {
		t.Fatal("expected error for K>n")
	}
}

func TestKernelKMeansDeterministic(t *testing.T) {
	l := blobs(t, 60, 4, 2, 0.05, 3)
	gram := kernel.Gram(l.Points, kernel.Gaussian(0.5))
	a, err := KernelKMeans(gram, KernelKMeansConfig{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KernelKMeans(gram, KernelKMeansConfig{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed must reproduce labels")
		}
	}
}

func TestKernelPCASeparatesBlobsInOneComponent(t *testing.T) {
	l := blobs(t, 80, 6, 2, 0.02, 4)
	gram := kernel.GramWithDiagonal(l.Points, kernel.Gaussian(1))
	res, err := KernelPCA(gram, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Projections.Rows() != 80 || res.Projections.Cols() != 2 {
		t.Fatalf("projection dims %dx%d", res.Projections.Rows(), res.Projections.Cols())
	}
	// The first component must separate the two blobs by sign or by a
	// threshold — check means differ strongly relative to spread.
	var m0, m1 float64
	var n0, n1 int
	for i := 0; i < 80; i++ {
		if l.Labels[i] == 0 {
			m0 += res.Projections.At(i, 0)
			n0++
		} else {
			m1 += res.Projections.At(i, 0)
			n1++
		}
	}
	m0 /= float64(n0)
	m1 /= float64(n1)
	if math.Abs(m0-m1) < 0.1 {
		t.Fatalf("first component does not separate blobs: %v vs %v", m0, m1)
	}
	// Eigenvalues descending and non-negative after clamping.
	if res.Eigenvalues[0] < res.Eigenvalues[1] {
		t.Fatalf("eigenvalues not sorted: %v", res.Eigenvalues)
	}
}

func TestKernelPCAValidation(t *testing.T) {
	if _, err := KernelPCA(matrix.NewDense(2, 3), 1); err == nil {
		t.Fatal("expected error for non-square")
	}
	if _, err := KernelPCA(matrix.NewDense(0, 0), 1); err == nil {
		t.Fatal("expected error for empty")
	}
	if _, err := KernelPCA(matrix.NewDense(3, 3), 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	// k > n clamps.
	g := kernel.GramWithDiagonal(blobs(t, 5, 2, 2, 0.05, 5).Points, kernel.Gaussian(1))
	res, err := KernelPCA(g, 10)
	if err != nil || res.Projections.Cols() != 5 {
		t.Fatalf("clamp: %v %v", res, err)
	}
}

func TestCenterGramZeroRowMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 12
	g := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.Float64()
			g.Set(i, j, v)
			g.Set(j, i, v)
		}
	}
	c := centerGram(g)
	for i := 0; i < n; i++ {
		if m := matrix.Mean(c.Row(i)); math.Abs(m) > 1e-10 {
			t.Fatalf("row %d mean = %v after centering", i, m)
		}
	}
	if !c.IsSymmetric(1e-10) {
		t.Fatal("centering must preserve symmetry")
	}
}

// svmData builds a linearly separated two-class problem with labels
// in {-1, +1}.
func svmData(t *testing.T, n int, seed int64) (*matrix.Dense, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := matrix.NewDense(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		cx := float64(cls) * 3
		pts.Set(i, 0, cx+rng.NormFloat64()*0.3)
		pts.Set(i, 1, rng.NormFloat64()*0.3)
		if cls == 0 {
			y[i] = -1
		} else {
			y[i] = 1
		}
	}
	return pts, y
}

func TestTrainSVMSeparable(t *testing.T) {
	pts, y := svmData(t, 60, 7)
	kf := kernel.Gaussian(1)
	gram := kernel.GramWithDiagonal(pts, kf)
	model, err := TrainSVM(gram, y, SVMConfig{C: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.SupportCount == 0 {
		t.Fatal("no support vectors")
	}
	correct := 0
	for i := 0; i < pts.Rows(); i++ {
		if model.Predict(pts, kf, pts.Row(i)) == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(pts.Rows()) < 0.95 {
		t.Fatalf("training accuracy = %d/%d", correct, pts.Rows())
	}
}

func TestTrainSVMValidation(t *testing.T) {
	g := kernel.GramWithDiagonal(matrix.Identity(3), kernel.Gaussian(1))
	if _, err := TrainSVM(g, []int{1, -1}, SVMConfig{}); err == nil {
		t.Fatal("expected label-length error")
	}
	if _, err := TrainSVM(g, []int{1, -1, 2}, SVMConfig{}); err == nil {
		t.Fatal("expected label-value error")
	}
	if _, err := TrainSVM(matrix.NewDense(2, 3), []int{1, -1}, SVMConfig{}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := TrainSVM(matrix.NewDense(0, 0), nil, SVMConfig{}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := TrainSVM(g, []int{1, -1, 1}, SVMConfig{C: -1}); err == nil {
		t.Fatal("expected negative-C error")
	}
}

func TestBucketedKernelKMeans(t *testing.T) {
	l := blobs(t, 160, 8, 4, 0.02, 8)
	kf := kernel.Gaussian(0.5)
	h, err := lsh.Fit(l.Points, lsh.Config{M: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	part := h.Partition(l.Points, 1)
	labels, clusters, err := BucketedKernelKMeans(l.Points, part, kf, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if clusters < 2 {
		t.Fatalf("clusters = %d", clusters)
	}
	acc, err := metrics.Accuracy(l.Labels, labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("bucketed kernel k-means accuracy = %v", acc)
	}
	if _, _, err := BucketedKernelKMeans(l.Points, part, kf, 0, 1); err == nil {
		t.Fatal("expected error for K=0")
	}
}

func TestBucketedKernelPCA(t *testing.T) {
	l := blobs(t, 120, 6, 3, 0.03, 9)
	kf := kernel.Gaussian(0.8)
	h, err := lsh.Fit(l.Points, lsh.Config{M: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	part := h.Partition(l.Points, 1)
	emb, err := BucketedKernelPCA(l.Points, part, kf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if emb.Rows() != 120 || emb.Cols() != 2 {
		t.Fatalf("embedding %dx%d", emb.Rows(), emb.Cols())
	}
	var nonzero int
	for _, v := range emb.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("embedding is all zeros")
	}
	if _, err := BucketedKernelPCA(l.Points, part, kf, 0); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestBucketedSVMEndToEnd(t *testing.T) {
	pts, y := svmData(t, 200, 10)
	kf := kernel.Gaussian(1)
	fam, err := lsh.FitSimHash(pts, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := TrainBucketedSVM(pts, y, fam, kf, SVMConfig{C: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ens.Buckets() < 1 {
		t.Fatal("no bucket models")
	}
	correct := 0
	for i := 0; i < pts.Rows(); i++ {
		if ens.Predict(pts.Row(i)) == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(pts.Rows()) < 0.9 {
		t.Fatalf("bucketed SVM training accuracy = %d/%d", correct, pts.Rows())
	}
	// A fresh point near class +1 must classify as +1, even if its
	// signature is unseen.
	if got := ens.Predict([]float64{3, 0}); got != 1 {
		t.Fatalf("Predict(+1 region) = %d", got)
	}
	if got := ens.Predict([]float64{0, 0}); got != -1 {
		t.Fatalf("Predict(-1 region) = %d", got)
	}
}

func TestTrainBucketedSVMValidation(t *testing.T) {
	pts, y := svmData(t, 20, 11)
	fam, err := lsh.FitSimHash(pts, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainBucketedSVM(pts, y[:10], fam, kernel.Gaussian(1), SVMConfig{}); err == nil {
		t.Fatal("expected label-length error")
	}
}

func TestBucketedSVMSingleClassBucket(t *testing.T) {
	// All labels +1: every bucket is single-class and predicts +1.
	rng := rand.New(rand.NewSource(12))
	pts := matrix.NewDense(30, 2)
	for i := range pts.Data() {
		pts.Data()[i] = rng.Float64()
	}
	y := make([]int, 30)
	for i := range y {
		y[i] = 1
	}
	fam, err := lsh.FitSimHash(pts, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	ens, err := TrainBucketedSVM(pts, y, fam, kernel.Gaussian(1), SVMConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if ens.Predict(pts.Row(i)) != 1 {
			t.Fatal("single-class ensemble must predict the class")
		}
	}
}

func TestProportionalK(t *testing.T) {
	if proportionalK(10, 50, 100) != 5 {
		t.Fatal("proportionalK(10,50,100) != 5")
	}
	if proportionalK(10, 1, 100) != 1 {
		t.Fatal("floor at 1")
	}
	if proportionalK(100, 5, 100) != 5 {
		t.Fatal("cap at ni")
	}
}

func TestBucketedSVMWithEnsembleFamily(t *testing.T) {
	// An *lsh.Ensemble passed as the family must train on the merged
	// multi-table partition and still route predictions through the
	// table-0 signature.
	pts, y := svmData(t, 160, 13)
	e, err := lsh.FitEnsemble(pts, lsh.Config{M: 4, Seed: 1},
		lsh.EnsembleConfig{Tables: 3, ProbeRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	ens, err := TrainBucketedSVM(pts, y, e, kernel.Gaussian(1), SVMConfig{C: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ens.Buckets() < 1 {
		t.Fatal("no bucket models")
	}
	correct := 0
	for i := 0; i < pts.Rows(); i++ {
		if ens.Predict(pts.Row(i)) == y[i] {
			correct++
		}
	}
	if float64(correct)/float64(pts.Rows()) < 0.9 {
		t.Fatalf("ensemble-bucketed SVM training accuracy = %d/%d", correct, pts.Rows())
	}
	// Merging across tables can only coarsen the partition: never more
	// buckets than the single-table split.
	single := lsh.PartitionWith(e.Families()[0], pts, 1)
	if ens.Buckets() > single.NumBuckets() {
		t.Fatalf("ensemble produced %d buckets, single table %d", ens.Buckets(), single.NumBuckets())
	}
}
