package kernelml

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/matrix"
)

// KPCAResult holds a kernel principal component analysis.
type KPCAResult struct {
	// Projections is the n x k matrix of kernel principal components.
	Projections *matrix.Dense
	// Eigenvalues of the centered Gram matrix, descending, length k.
	Eigenvalues []float64
}

// KernelPCA computes the top-k kernel principal components from a Gram
// matrix (Schölkopf et al., the paper's reference [31] for kernel
// dimensionality reduction): double-center the Gram matrix, take its
// leading eigenpairs, and scale eigenvectors by sqrt(lambda) so row i
// of Projections is the image of point i in the principal subspace.
func KernelPCA(gram *matrix.Dense, k int) (*KPCAResult, error) {
	n := gram.Rows()
	if gram.Cols() != n {
		return nil, fmt.Errorf("kernelml: gram %dx%d not square", n, gram.Cols())
	}
	if n == 0 {
		return nil, ErrEmptyGram
	}
	if k < 1 {
		return nil, fmt.Errorf("kernelml: k=%d", k)
	}
	if k > n {
		k = n
	}
	centered := centerGram(gram)
	vals, vecs, err := linalg.TopKEigenSym(centered, k)
	if err != nil {
		return nil, fmt.Errorf("kernelml: kpca eigensolver: %w", err)
	}
	proj := matrix.NewDense(n, len(vals))
	for c, lambda := range vals {
		var scale float64
		if lambda > 0 {
			// Scale the unit eigenvector so its coordinates have
			// variance lambda along the component.
			scale = math.Sqrt(lambda)
		}
		for r := 0; r < n; r++ {
			proj.Set(r, c, vecs.At(r, c)*scale)
		}
	}
	return &KPCAResult{Projections: proj, Eigenvalues: vals}, nil
}

// centerGram applies the double-centering K - 1K - K1 + 1K1 that moves
// the feature-space origin to the data mean.
func centerGram(gram *matrix.Dense) *matrix.Dense {
	n := gram.Rows()
	rowMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		var s float64
		for _, v := range gram.Row(i) {
			s += v
		}
		rowMean[i] = s / float64(n)
		total += s
	}
	grand := total / float64(n*n)
	out := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		src := gram.Row(i)
		dst := out.Row(i)
		for j := range src {
			dst[j] = src[j] - rowMean[i] - rowMean[j] + grand
		}
	}
	return out
}
