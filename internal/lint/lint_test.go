package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one Loader (and its type-checked stdlib) across
// all tests; the source importer is the expensive part.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

func loadFixture(t *testing.T, rel string) (*Loader, *Package) {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", rel))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", rel, err)
	}
	if pkg == nil {
		t.Fatalf("LoadDir(%s): no Go files", rel)
	}
	return loader, pkg
}

// want is one expected diagnostic parsed from a fixture's
// `// want <analyzer> "substring"` marker.
type want struct {
	line     int
	analyzer string
	substr   string
}

var wantRE = regexp.MustCompile(`// want ([a-z-]+) "([^"]+)"`)

// parseWants extracts the expectation markers from every file of the
// fixture directory.
func parseWants(t *testing.T, dir string) []want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRE.FindStringSubmatch(line); m != nil {
				wants = append(wants, want{line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return wants
}

// golden pairs each analyzer with its positive and negative fixture
// packages under testdata/.
var golden = []struct {
	analyzer *Analyzer
	pos, neg string
}{
	{CtxArg, "ctxarg_pos", "ctxarg_neg"},
	{FloatCmp, "floatcmp_pos", "floatcmp_neg"},
	{ErrcheckGob, "errcheckgob_pos", "errcheckgob_neg"},
	{GoroutineGuard, "goroutineguard_pos", "goroutineguard_neg"},
	{MutexCopy, "mutexcopy_pos", "mutexcopy_neg"},
	{PanicFree, "panicfree_pos", "matrixcase/internal/matrix"},
	{MapOrder, "maporder_pos", "maporder_neg"},
	{FloatAccum, "floataccum_pos", "floataccum_neg"},
	{PoolEscape, "poolescape_pos", "poolescape_neg"},
	{WgMisuse, "wgmisuse_pos", "wgmisuse_neg"},
}

func TestAnalyzersGolden(t *testing.T) {
	for _, tc := range golden {
		t.Run(tc.analyzer.Name+"/positive", func(t *testing.T) {
			loader, pkg := loadFixture(t, tc.pos)
			diags := Run(loader.Fset, []*Package{pkg}, []*Analyzer{tc.analyzer})
			wants := parseWants(t, pkg.Dir)
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no // want markers", tc.pos)
			}
			matched := make([]bool, len(diags))
			for _, w := range wants {
				found := false
				for i, d := range diags {
					if !matched[i] && d.Line == w.line && d.Analyzer == w.analyzer &&
						strings.Contains(d.Message, w.substr) {
						matched[i], found = true, true
						break
					}
				}
				if !found {
					t.Errorf("missing diagnostic: line %d %s %q", w.line, w.analyzer, w.substr)
				}
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
		t.Run(tc.analyzer.Name+"/negative", func(t *testing.T) {
			loader, pkg := loadFixture(t, tc.neg)
			diags := Run(loader.Fset, []*Package{pkg}, []*Analyzer{tc.analyzer})
			for _, d := range diags {
				t.Errorf("unexpected diagnostic in negative fixture: %s", d)
			}
		})
	}
}

// TestDriverExactDiagnostics runs the full suite against the fixture
// package and asserts the exact formatted output dasclint would print.
func TestDriverExactDiagnostics(t *testing.T) {
	loader, pkg := loadFixture(t, "fixture")
	diags := Run(loader.Fset, []*Package{pkg}, All)
	var got []string
	for _, d := range diags {
		rel, err := filepath.Rel(pkg.Dir, d.File)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%s:%d:%d: %s: %s", rel, d.Line, d.Col, d.Analyzer, d.Message))
	}
	wantLines := []string{
		"fixture.go:7:11: floatcmp: floating-point == comparison; use matrix.ApproxEqual or an explicit tolerance",
		"fixture.go:11:2: panicfree: panic in library package repro/internal/lint/testdata/fixture; return an error or route through a matrix invariant helper",
	}
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("diagnostics mismatch:\ngot:\n%s\nwant:\n%s",
			strings.Join(got, "\n"), strings.Join(wantLines, "\n"))
	}
}

// TestSuppression checks that well-formed //lint:ignore comments
// silence findings on their own and the following line, and that a
// malformed directive is itself reported.
func TestSuppression(t *testing.T) {
	loader, pkg := loadFixture(t, "suppressed")
	diags := Run(loader.Fset, []*Package{pkg}, All)
	if len(diags) != 1 {
		t.Fatalf("want exactly the malformed-directive diagnostic, got %d:\n%v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "malformed //lint:ignore") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if d.Line != 17 {
		t.Errorf("malformed directive reported at line %d, want 17", d.Line)
	}
}

// TestLoaderModule sanity-checks module discovery from the package
// directory.
func TestLoaderModule(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module() != "repro" {
		t.Errorf("module = %q, want repro", loader.Module())
	}
	if _, err := os.Stat(filepath.Join(loader.Root(), "go.mod")); err != nil {
		t.Errorf("root %q has no go.mod: %v", loader.Root(), err)
	}
}
