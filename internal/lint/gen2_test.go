package lint

// Tests for the second-generation analysis layer: the shared inspector,
// the fact store, the stale-suppression check, parallel-run
// determinism, and exact diagnostic positions for the four determinism
// and concurrency analyzers.

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strings"
	"testing"
)

// TestInspectorMatchesAstInspect replays the inspector's filtered
// traversals against a reference ast.Inspect walk over a real fixture
// package and requires identical node sequences.
func TestInspectorMatchesAstInspect(t *testing.T) {
	_, pkg := loadFixture(t, "maporder_pos")
	in := NewInspector(pkg.Files)

	filters := [][]ast.Node{
		nil, // every node
		{(*ast.CallExpr)(nil)},
		{(*ast.AssignStmt)(nil), (*ast.RangeStmt)(nil)},
		{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)},
	}
	match := func(n ast.Node, filter []ast.Node) bool {
		if len(filter) == 0 {
			return true
		}
		return typeBit(n)&maskOf(filter) != 0
	}
	for fi, filter := range filters {
		var want []ast.Node
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if n != nil && match(n, filter) {
					want = append(want, n)
				}
				return true
			})
		}
		var got []ast.Node
		in.Preorder(filter, func(n ast.Node) { got = append(got, n) })
		if len(got) != len(want) {
			t.Fatalf("filter %d: Preorder visited %d nodes, ast.Inspect %d", fi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("filter %d: node %d differs: %T vs %T", fi, i, got[i], want[i])
			}
		}
	}
}

// TestInspectorWithStack checks that the reported stack runs from the
// file down to the node itself.
func TestInspectorWithStack(t *testing.T) {
	_, pkg := loadFixture(t, "maporder_pos")
	in := NewInspector(pkg.Files)
	seen := 0
	in.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		seen++
		if len(stack) < 2 {
			t.Fatalf("stack too short: %d", len(stack))
		}
		if _, ok := stack[0].(*ast.File); !ok {
			t.Errorf("stack[0] = %T, want *ast.File", stack[0])
		}
		if stack[len(stack)-1] != n {
			t.Errorf("stack top is %T, want the visited node", stack[len(stack)-1])
		}
		foundFunc := false
		for _, s := range stack {
			if _, ok := s.(*ast.FuncDecl); ok {
				foundFunc = true
			}
		}
		if !foundFunc {
			t.Errorf("range statement with no enclosing FuncDecl on the stack")
		}
		return true
	})
	if seen == 0 {
		t.Fatal("WithStack visited no range statements")
	}
}

// TestFactStore checks the per-function facts on the floataccum
// fixture, whose helper is the canonical shared-float accumulator.
func TestFactStore(t *testing.T) {
	_, pkg := loadFixture(t, "floataccum_pos")
	in := NewInspector(pkg.Files)
	facts := computeFacts(in, pkg.Info)

	byName := map[string]*FuncFacts{}
	for fn, ff := range facts.funcs {
		byName[fn.Name()] = ff
	}
	if ff := byName["accumulateInto"]; ff == nil || !ff.AccumulatesSharedFloat {
		t.Errorf("accumulateInto: want AccumulatesSharedFloat, got %+v", ff)
	}
	if ff := byName["oneCallDeep"]; ff == nil || !ff.Spawns {
		t.Errorf("oneCallDeep: want Spawns, got %+v", ff)
	}
	if ff := byName["intoGlobal"]; ff == nil || ff.TouchesPool {
		t.Errorf("intoGlobal: want !TouchesPool, got %+v", ff)
	}
}

// TestFactStorePool checks pool-touch facts on the poolescape fixture.
func TestFactStorePool(t *testing.T) {
	_, pkg := loadFixture(t, "poolescape_neg")
	in := NewInspector(pkg.Files)
	facts := computeFacts(in, pkg.Info)
	byName := map[string]*FuncFacts{}
	for fn, ff := range facts.funcs {
		byName[fn.Name()] = ff
	}
	if ff := byName["borrowAndReturn"]; ff == nil || !ff.TouchesPool {
		t.Errorf("borrowAndReturn: want TouchesPool, got %+v", ff)
	}
	if ff := byName["returnsFresh"]; ff == nil || ff.TouchesPool {
		t.Errorf("returnsFresh: want !TouchesPool, got %+v", ff)
	}
}

// TestStaleSuppression: a dead //lint:ignore is reported when
// ReportUnusedIgnores is set, silent by default, and a live directive
// is never reported.
func TestStaleSuppression(t *testing.T) {
	loader, pkg := loadFixture(t, "staleignore")

	if diags := Run(loader.Fset, []*Package{pkg}, All); len(diags) != 0 {
		t.Fatalf("default run reported %d diagnostics: %v", len(diags), diags)
	}

	diags := RunWith(loader.Fset, []*Package{pkg}, All, Options{ReportUnusedIgnores: true})
	if len(diags) != 1 {
		t.Fatalf("want exactly the stale directive, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "lint" || !strings.Contains(d.Message, "suppresses no diagnostic") {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if d.Line != 7 {
		t.Errorf("stale directive reported at line %d, want 7", d.Line)
	}

	// A directive whose analyzer is not in the run set cannot be proven
	// stale and must not be reported.
	diags = RunWith(loader.Fset, []*Package{pkg}, []*Analyzer{MapOrder}, Options{ReportUnusedIgnores: true})
	for _, d := range diags {
		if strings.Contains(d.Message, "suppresses no diagnostic") && strings.Contains(d.Message, "floatcmp") {
			t.Errorf("directive for analyzer outside the run set reported stale: %s", d)
		}
	}
}

// TestParallelRunDeterministic requires byte-identical diagnostics from
// sequential and parallel runs over the same fixture set.
func TestParallelRunDeterministic(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []string{
		"maporder_pos", "floataccum_pos", "poolescape_pos", "wgmisuse_pos",
		"fixture", "ctxarg_pos", "mutexcopy_pos",
	}
	var pkgs []*Package
	for _, rel := range fixtures {
		pkg, err := loader.LoadDir(filepath.Join("testdata", rel))
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", rel, err)
		}
		pkgs = append(pkgs, pkg)
	}
	render := func(diags []Diagnostic) string {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	seq := render(RunWith(loader.Fset, pkgs, All, Options{Workers: 1}))
	for _, workers := range []int{2, 4, 8} {
		par := render(RunWith(loader.Fset, pkgs, All, Options{Workers: workers}))
		if par != seq {
			t.Errorf("workers=%d: diagnostics differ from sequential run:\n%s\nvs\n%s", workers, par, seq)
		}
	}
}

// TestNewAnalyzersExactPositions mirrors TestDriverExactDiagnostics for
// the gen-2 analyzers: the full suite over each positive fixture must
// produce exactly the expected file:line:col positions.
func TestNewAnalyzersExactPositions(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *Analyzer
		want     []string
	}{
		{"maporder_pos", MapOrder, []string{
			"maporder_pos.go:8:3",
			"maporder_pos.go:17:3",
			"maporder_pos.go:26:3",
			"maporder_pos.go:35:3",
			"maporder_pos.go:43:3",
		}},
		{"floataccum_pos", FloatAccum, []string{
			"floataccum_pos.go:17:4",
			"floataccum_pos.go:30:4",
			"floataccum_pos.go:43:5",
			"floataccum_pos.go:62:4",
		}},
		{"poolescape_pos", PoolEscape, []string{
			"poolescape_pos.go:18:9",
			"poolescape_pos.go:23:14",
			"poolescape_pos.go:28:9",
			"poolescape_pos.go:33:8",
			"poolescape_pos.go:41:16",
			"poolescape_pos.go:46:16",
		}},
		{"wgmisuse_pos", WgMisuse, []string{
			"wgmisuse_pos.go:11:4",
			"wgmisuse_pos.go:36:2",
			"wgmisuse_pos.go:53:2",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			loader, pkg := loadFixture(t, tc.fixture)
			diags := Run(loader.Fset, []*Package{pkg}, []*Analyzer{tc.analyzer})
			var got []string
			for _, d := range diags {
				rel, err := filepath.Rel(pkg.Dir, d.File)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, fmt.Sprintf("%s:%d:%d", rel, d.Line, d.Col))
			}
			if strings.Join(got, "\n") != strings.Join(tc.want, "\n") {
				t.Errorf("positions mismatch:\ngot:\n%s\nwant:\n%s",
					strings.Join(got, "\n"), strings.Join(tc.want, "\n"))
			}
		})
	}
}
