package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape guards the pooled-scratch discipline of the Gram and
// Lanczos engines: a value obtained from sync.Pool.Get is on loan, and
// letting it escape the borrowing function — returned, stored into a
// struct field or package variable, or sent on a channel — means the
// pool and the escapee can alias the same backing memory, the exact
// corruption class a dirty reused buffer produces. Also flagged are
// Put calls whose argument is not the original loan: Put(append(...))
// may pool a reallocated copy while the grown original leaks, and
// Put(x[i:]) pools a slice whose head is gone, so the next Get sees a
// shifted window over memory another borrower may still hold.
//
// Deliberate ownership transfer (a get-helper returning the pool token
// for the caller to Put) is a legitimate pattern; such sites carry a
// //lint:ignore poolescape with the ownership contract spelled out.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "reject sync.Pool.Get values that escape (return/store/send) " +
		"and Put of append/re-sliced buffers; pooled scratch is a loan",
	Run: runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	pass.Inspect.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		// The fact store knows which functions touch a pool; skip the
		// rest without walking them.
		if fn, ok := pass.Info.Defs[decl.Name].(*types.Func); ok {
			if facts := pass.Facts.funcs[fn]; facts != nil && !facts.TouchesPool {
				return
			}
		}
		checkPoolUse(pass, decl.Body)
	})
}

// checkPoolUse tracks Get loans and flags escapes and bad Puts within
// one function body.
func checkPoolUse(pass *Pass, body *ast.BlockStmt) {
	loans := map[types.Object]bool{}

	// First pass: find `v := pool.Get()` and `v := pool.Get().(T)`.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isPoolGet(pass, rhs) || i >= len(as.Lhs) {
				continue
			}
			if id, ok := unparen(as.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.Info.Defs[id]; obj != nil {
					loans[obj] = true
				} else if obj := pass.Info.Uses[id]; obj != nil {
					loans[obj] = true
				}
			}
		}
		return true
	})

	// Second pass: escapes of loans and malformed Puts.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if obj := loanedObject(pass, res, loans); obj != nil {
					pass.Reportf(res.Pos(),
						"pooled value %s (from sync.Pool.Get) is returned; the loan escapes its borrower — Put it here or document the ownership transfer", obj.Name())
				}
			}
		case *ast.SendStmt:
			if obj := loanedObject(pass, x.Value, loans); obj != nil {
				pass.Reportf(x.Value.Pos(),
					"pooled value %s (from sync.Pool.Get) is sent on a channel; the loan escapes its borrower", obj.Name())
			}
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN {
				return true
			}
			for i, rhs := range x.Rhs {
				obj := loanedObject(pass, rhs, loans)
				if obj == nil || i >= len(x.Lhs) {
					continue
				}
				switch lhs := unparen(x.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					pass.Reportf(rhs.Pos(),
						"pooled value %s (from sync.Pool.Get) is stored in field %s; the loan outlives its borrower", obj.Name(), lhs.Sel.Name)
				case *ast.Ident:
					if v, ok := identVar(pass, lhs); ok && v.Parent() == v.Pkg().Scope() {
						pass.Reportf(rhs.Pos(),
							"pooled value %s (from sync.Pool.Get) is stored in package variable %s; the loan outlives its borrower", obj.Name(), v.Name())
					}
				case *ast.IndexExpr:
					pass.Reportf(rhs.Pos(),
						"pooled value %s (from sync.Pool.Get) is stored in a container; the loan outlives its borrower", obj.Name())
				}
			}
		case *ast.CallExpr:
			checkPut(pass, x)
		}
		return true
	})
}

// checkPut flags Put arguments that are not the original loan token.
func checkPut(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || !isSyncPoolExpr(pass.Info, sel.X) {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	switch arg := unparen(call.Args[0]).(type) {
	case *ast.CallExpr:
		if id, ok := arg.Fun.(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				pass.Reportf(arg.Pos(),
					"Put(append(...)): append may reallocate, pooling a different buffer than the loan; Put the original and re-slice after Get")
			}
		}
	case *ast.SliceExpr:
		if arg.Low != nil && !isZeroLiteral(arg.Low) {
			pass.Reportf(arg.Pos(),
				"Put of a re-sliced buffer drops its head; the next Get sees a shifted window over memory another borrower may hold")
		}
	}
}

// isPoolGet reports whether e is pool.Get() or pool.Get().(T) for a
// sync.Pool-typed pool.
func isPoolGet(pass *Pass, e ast.Expr) bool {
	e = unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	return isSyncPoolExpr(pass.Info, sel.X)
}

// loanedObject reports the loan behind e when e is a loaned identifier
// or a slice/dereference view of one ((*p)[:n], p, *p). A view still
// aliases the pooled backing array, so it escapes just the same.
func loanedObject(pass *Pass, e ast.Expr, loans map[types.Object]bool) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[x]
		if obj != nil && loans[obj] {
			return obj
		}
	case *ast.SliceExpr:
		return loanedObject(pass, x.X, loans)
	case *ast.StarExpr:
		return loanedObject(pass, x.X, loans)
	}
	return nil
}

// isZeroLiteral reports whether e is the literal 0.
func isZeroLiteral(e ast.Expr) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}
