package lint

import (
	"go/ast"
	"go/types"
)

// CtxArg enforces the standard library's context conventions, which the
// cancellable pipeline and MapReduce runtime rely on: a context.Context
// travels as the first parameter of a call chain (named ctx by
// convention) and is never stored inside a struct, where it would
// outlive the request it scopes and silently pin its values and cancel
// signal. Flagged sites: any function, method, function literal, or
// interface method whose context.Context parameter is not the first
// parameter, and any struct field of type context.Context.
var CtxArg = &Analyzer{
	Name: "ctxarg",
	Doc: "require context.Context to be the first parameter and " +
		"forbid storing one in a struct field",
	Run: runCtxArg,
}

func runCtxArg(pass *Pass) {
	pass.Inspect.Preorder([]ast.Node{(*ast.FuncType)(nil), (*ast.StructType)(nil)}, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.FuncType:
			checkCtxParams(pass, x.Params)
		case *ast.StructType:
			checkCtxFields(pass, x)
		}
	})
}

// checkCtxParams reports context.Context parameters at any flattened
// position other than the first. The receiver of a method is not a
// parameter, so a method's context still belongs at position 0.
func checkCtxParams(pass *Pass, params *ast.FieldList) {
	if params == nil {
		return
	}
	pos := 0
	for _, field := range params.List {
		// An unnamed parameter ("func(context.Context)") occupies one
		// position; named groups ("a, b int") occupy one per name.
		count := len(field.Names)
		if count == 0 {
			count = 1
		}
		if isContextType(pass.Info.TypeOf(field.Type)) && pos != 0 {
			pass.Reportf(field.Type.Pos(), "context.Context must be the first parameter")
		}
		pos += count
	}
}

// checkCtxFields reports struct fields whose declared type is
// context.Context (embedded or named).
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(pass.Info.TypeOf(field.Type)) {
			pass.Reportf(field.Type.Pos(), "struct field stores a context.Context; pass it as a function argument instead")
		}
	}
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
