package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree reports panic calls in library (internal/...) packages.
// A panic in a worker goroutine or a reducer takes down the whole job
// with a stack trace instead of an error the master can act on, so
// library code must return errors. The only sanctioned panics are the
// designated invariant helpers in internal/matrix — matrix.Panicf and
// the unexported bounds helpers whose names start with "check" — which
// express programmer-error contracts (negative dimensions, mismatched
// lengths) that are bugs at the call site, not runtime conditions.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc: "reject panic in library packages outside the designated " +
		"invariant helpers in internal/matrix (Panicf and check* funcs)",
	Run: runPanicFree,
}

// panicAllowed reports whether funcName in pkgPath is a designated
// invariant helper.
func panicAllowed(pkgPath, funcName string) bool {
	if !strings.HasSuffix(pkgPath, "/internal/matrix") {
		return false
	}
	return funcName == "Panicf" || strings.HasPrefix(funcName, "check")
}

func runPanicFree(pass *Pass) {
	if !strings.Contains(pass.Path, "/internal/") {
		return // commands and examples may crash; libraries may not
	}
	pass.Inspect.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		call := n.(*ast.CallExpr)
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return true // a local function shadowing the builtin
		}
		// The invariant-helper waiver keys on the outermost enclosing
		// function declaration (a panic in a closure belongs to the
		// function that defines the closure).
		for _, outer := range stack {
			if fn, ok := outer.(*ast.FuncDecl); ok {
				if panicAllowed(pass.Path, fn.Name.Name) {
					return true
				}
				break
			}
		}
		pass.Reportf(call.Pos(),
			"panic in library package %s; return an error or route through a matrix invariant helper", pass.Path)
		return true
	})
}
