package lint

// The inspector is the shared walk engine of the analyzer suite. The
// first generation of analyzers each ran their own ast.Inspect over
// every file, so a package with a dozen analyzers was walked a dozen
// times. The inspector walks each package exactly once, flattening the
// ASTs into an event list (push/pop per node) tagged with a type
// bitmask; each analyzer then replays only the events whose node types
// it subscribed to. This is the same design as
// golang.org/x/tools/go/ast/inspector, rebuilt on the standard library
// because the lint toolchain is deliberately dependency-free.

import (
	"go/ast"
)

// event is one node boundary in the flattened traversal. A push event
// stores the index of its matching pop in pair, so a filtered replay
// can skip an entire subtree in O(1); a pop event stores the index of
// its push.
type event struct {
	node ast.Node
	typ  uint64 // bit of the node's concrete type
	pair int32  // matching pop (for push) or push (for pop) index
	push bool
}

// Inspector replays a pre-flattened AST traversal, filtered by node
// type. Build one per package with NewInspector and share it across
// analyzers; replays are read-only and cheap.
type Inspector struct {
	events []event
}

// NewInspector flattens files into a reusable traversal.
func NewInspector(files []*ast.File) *Inspector {
	in := &Inspector{}
	for _, f := range files {
		in.flatten(f)
	}
	return in
}

// flatten records push/pop events for every node of the subtree.
func (in *Inspector) flatten(root ast.Node) {
	// stack holds the event indices of currently open pushes.
	var stack []int32
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			in.events[top].pair = int32(len(in.events))
			in.events = append(in.events, event{
				node: in.events[top].node,
				typ:  in.events[top].typ,
				pair: top,
			})
			return true
		}
		idx := int32(len(in.events))
		stack = append(stack, idx)
		in.events = append(in.events, event{node: n, typ: typeBit(n), push: true})
		return true
	})
}

// Preorder calls f for every node whose concrete type is one of types,
// in depth-first source order. A nil or empty types slice matches every
// node.
func (in *Inspector) Preorder(types []ast.Node, f func(n ast.Node)) {
	mask := maskOf(types)
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if !ev.push {
			continue
		}
		if ev.typ&mask != 0 {
			f(ev.node)
		}
	}
}

// WithStack is Preorder with the enclosing-node stack: stack[0] is the
// *ast.File and stack[len-1] is n itself. Returning false from f prunes
// the walk below n (matching nodes inside n are skipped). The stack
// slice is reused between calls; copy it to retain.
func (in *Inspector) WithStack(types []ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	mask := maskOf(types)
	var stack []ast.Node
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if !ev.push {
			stack = stack[:len(stack)-1]
			continue
		}
		stack = append(stack, ev.node)
		if ev.typ&mask != 0 {
			if !f(ev.node, stack) {
				stack = stack[:len(stack)-1]
				i = int(ev.pair) // jump to the pop; loop increment skips it
			}
		}
	}
}

// Nodes calls f twice per matching node — (n, true) entering, (n,
// false) leaving — in traversal order. Returning false from the push
// call prunes the subtree (the pop call still runs).
func (in *Inspector) Nodes(types []ast.Node, f func(n ast.Node, push bool) bool) {
	mask := maskOf(types)
	for i := 0; i < len(in.events); i++ {
		ev := in.events[i]
		if ev.typ&mask == 0 {
			continue
		}
		if ev.push {
			if !f(ev.node, true) {
				f(ev.node, false)
				i = int(ev.pair)
			}
			continue
		}
		f(ev.node, false)
	}
}

// typeBit maps a node's concrete type to one bit of the filter mask.
// Only the types analyzers actually subscribe to get distinct bits;
// everything else shares the overflow bit and is matched (cheaply,
// never wrongly) by the nil-filter mask only.
func typeBit(n ast.Node) uint64 {
	switch n.(type) {
	case *ast.AssignStmt:
		return 1 << 0
	case *ast.BinaryExpr:
		return 1 << 1
	case *ast.CallExpr:
		return 1 << 2
	case *ast.DeferStmt:
		return 1 << 3
	case *ast.ExprStmt:
		return 1 << 4
	case *ast.FuncDecl:
		return 1 << 5
	case *ast.FuncLit:
		return 1 << 6
	case *ast.FuncType:
		return 1 << 7
	case *ast.GoStmt:
		return 1 << 8
	case *ast.RangeStmt:
		return 1 << 9
	case *ast.ReturnStmt:
		return 1 << 10
	case *ast.SelectorExpr:
		return 1 << 11
	case *ast.SendStmt:
		return 1 << 12
	case *ast.StructType:
		return 1 << 13
	case *ast.ValueSpec:
		return 1 << 14
	case *ast.IncDecStmt:
		return 1 << 15
	case *ast.UnaryExpr:
		return 1 << 16
	case *ast.IndexExpr:
		return 1 << 17
	case *ast.File:
		return 1 << 18
	}
	return 1 << 63 // overflow: types no analyzer filters on
}

// maskOf folds the example nodes' type bits into one filter mask.
func maskOf(types []ast.Node) uint64 {
	if len(types) == 0 {
		return ^uint64(0)
	}
	var mask uint64
	for _, n := range types {
		mask |= typeBit(n)
	}
	return mask
}
