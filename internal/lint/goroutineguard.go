package lint

import (
	"go/ast"
	"strings"
)

// GoroutineGuard reports `go func` literals in internal packages whose
// body neither signals completion (a Done() call, a channel send, or a
// channel close) nor installs a deferred recover. A worker goroutine
// that panics without one of these leaves the job's WaitGroup or result
// channel waiting forever — the MapReduce master deadlocks instead of
// failing the job.
var GoroutineGuard = &Analyzer{
	Name: "goroutine-guard",
	Doc: "goroutine literals in internal/ must signal a WaitGroup/channel " +
		"or defer a recover, so a panicking worker cannot deadlock the job",
	Run: runGoroutineGuard,
}

func runGoroutineGuard(pass *Pass) {
	if !strings.Contains(pass.Path, "/internal/") {
		return
	}
	pass.Inspect.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gostmt := n.(*ast.GoStmt)
		lit, ok := gostmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return // named function: its body is checked where defined
		}
		if !hasCompletionGuard(lit.Body) {
			pass.Reportf(gostmt.Pos(),
				"goroutine literal has no completion signal (Done/channel send/close) and no deferred recover; a panic here deadlocks the job")
		}
	})
}

// hasCompletionGuard reports whether body contains any of: a call to a
// method named Done (WaitGroup-style), a channel send, a close() call,
// or a recover() inside a defer.
func hasCompletionGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" {
					found = true
				}
			}
		case *ast.DeferStmt:
			if deferRecovers(x) {
				found = true
			}
		}
		return !found
	})
	return found
}

// deferRecovers reports whether the defer statement calls recover,
// either directly or inside a deferred function literal.
func deferRecovers(d *ast.DeferStmt) bool {
	if id, ok := d.Call.Fun.(*ast.Ident); ok && id.Name == "recover" {
		return true
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	recovers := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
				recovers = true
			}
		}
		return !recovers
	})
	return recovers
}
