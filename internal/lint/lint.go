// Package lint is a pure-stdlib static-analysis framework for the DASC
// codebase. It loads every package in the module with go/parser and
// go/types, runs a suite of project-specific analyzers over the typed
// ASTs, and reports diagnostics in a stable "file:line:col: analyzer:
// message" format.
//
// DASC re-implements its MapReduce runtime and numerics from scratch
// instead of inheriting Hadoop's battle-tested ones, so the invariants
// those layers rely on (checked gob errors, guarded goroutines,
// tolerance-based float comparisons) are enforced here rather than by
// the upstream framework. See cmd/dasclint for the command-line driver
// and DESIGN.md for the analyzer catalogue.
//
// Findings can be suppressed at a specific site with a comment on the
// flagged line or the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a bare ignore is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description shown by `dasclint -list`.
	Doc string
	// Run inspects pass.Files and calls pass.Reportf for findings.
	Run func(pass *Pass)
}

// All is the analyzer suite run by default, in reporting order.
var All = []*Analyzer{
	CtxArg,
	FloatCmp,
	ErrcheckGob,
	GoroutineGuard,
	MutexCopy,
	PanicFree,
	MapOrder,
	FloatAccum,
	PoolEscape,
	WgMisuse,
}

// Pass carries one package's parsed and type-checked state to an
// analyzer invocation. The Inspect traversal and the Facts store are
// built once per package and shared by every analyzer in the suite.
type Pass struct {
	// Analyzer is the check currently running.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions; shared by all packages.
	Fset *token.FileSet
	// Path is the package import path (e.g. "repro/internal/matrix").
	Path string
	// Files are the package's parsed sources (test files excluded).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression and object facts.
	Info *types.Info
	// Inspect replays the package's flattened AST traversal filtered by
	// node type; analyzers subscribe instead of re-walking the files.
	Inspect *Inspector
	// Facts answers one-call-deep questions about functions declared in
	// this package (does the callee spawn goroutines / touch a pool /
	// accumulate shared floats).
	Facts *FactStore

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the diagnostic as "file:line:col: analyzer: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}
