package lint

// The fact store gives analyzers one call level of interprocedural
// sight without a real call graph: for every function declared in the
// package it records a handful of coarse behavioural facts (spawns
// goroutines, touches a sync.Pool, writes package-level state,
// accumulates floats into shared memory, locks a mutex). An analyzer
// looking at a call site can then ask "does the callee do X" instead of
// either re-walking the callee's body or giving up at the package
// boundary. Facts are computed once per package, from the same
// inspector traversal the analyzers replay.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncFacts are the per-function behaviour bits the analyzers consult.
type FuncFacts struct {
	// Spawns: the body contains a go statement.
	Spawns bool
	// TouchesPool: the body calls Get or Put on a sync.Pool.
	TouchesPool bool
	// WritesGlobal: the body assigns to a package-level variable.
	WritesGlobal bool
	// AccumulatesSharedFloat: the body has a float += / -= whose target
	// is not a plain function-local variable — a global, a dereference,
	// a field, or an element of a parameter/captured slice or map. Such
	// a function makes its caller's accumulation order observable.
	AccumulatesSharedFloat bool
	// LocksMutex: the body calls Lock or RLock on something.
	LocksMutex bool
}

// FactStore maps the package's declared functions (and methods) to
// their facts. Function literals are not entries: their bodies are
// visible at the use site, so analyzers inspect them directly.
type FactStore struct {
	funcs map[*types.Func]*FuncFacts
}

// ForCallee resolves a call expression to the facts of its callee, when
// the callee is a function or method declared in this package. Calls
// through interfaces, function values, and other packages return nil —
// one level deep means exactly the neighbours we have source for.
func (fs *FactStore) ForCallee(info *types.Info, call *ast.CallExpr) *FuncFacts {
	if fs == nil {
		return nil
	}
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	return fs.funcs[fn]
}

// computeFacts builds the store from one inspector traversal: every
// FuncDecl body is scanned once for the fact-relevant statement shapes.
func computeFacts(in *Inspector, info *types.Info) *FactStore {
	fs := &FactStore{funcs: map[*types.Func]*FuncFacts{}}
	in.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		fn, ok := info.Defs[decl.Name].(*types.Func)
		if !ok {
			return
		}
		fs.funcs[fn] = scanBody(decl, info)
	})
	return fs
}

// scanBody derives one function's facts from its body.
func scanBody(decl *ast.FuncDecl, info *types.Info) *FuncFacts {
	f := &FuncFacts{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			f.Spawns = true
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Get", "Put":
					if isSyncPoolExpr(info, sel.X) {
						f.TouchesPool = true
					}
				case "Lock", "RLock":
					f.LocksMutex = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if writesGlobal(info, lhs) {
					f.WritesGlobal = true
				}
			}
			if x.Tok == token.ADD_ASSIGN || x.Tok == token.SUB_ASSIGN {
				lhs := x.Lhs[0]
				if isFloat(info.TypeOf(lhs)) && !isLocalVar(info, decl, lhs) {
					f.AccumulatesSharedFloat = true
				}
			}
		}
		return true
	})
	return f
}

// isSyncPoolExpr reports whether e's type is sync.Pool or *sync.Pool.
func isSyncPoolExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// writesGlobal reports whether lhs names a package-level variable.
func writesGlobal(info *types.Info, lhs ast.Expr) bool {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// isLocalVar reports whether e is a plain identifier naming a variable
// declared inside decl's body (not a parameter, receiver, or outer
// binding). Accumulating into such a variable is invisible to callers.
func isLocalVar(info *types.Info, decl *ast.FuncDecl, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Inside the body's position range and not a field or parameter.
	return !v.IsField() && v.Pos() >= decl.Body.Pos() && v.Pos() <= decl.Body.End()
}
