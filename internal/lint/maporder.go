package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder reports `range` over a map whose body makes iteration order
// observable: appending to a slice that outlives the loop, writing
// through a loop-varying index, or accumulating floating-point values.
// Map iteration order is randomized per run, so any of these leaks
// nondeterminism into the output — the exact failure mode that would
// break DASC's byte-identical-labels invariant if a histogram or stats
// path ranged a map straight into a report.
//
// The canonical fix — collect the keys, sort, iterate the sorted
// slice — is recognized: an append target that is later passed to a
// sort.* or slices.Sort* call (or to sortPairs-style helpers whose name
// starts with "sort"/"Sort") in the same function is not flagged.
// Integer/boolean accumulation (counters, max tracking) is
// order-independent and never flagged; float accumulation is flagged
// because float addition does not associate.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "reject map range loops whose body appends, writes indexed " +
		"output, or accumulates floats — map order is random; sort the " +
		"keys first",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	pass.Inspect.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, stack []ast.Node) bool {
		rng := n.(*ast.RangeStmt)
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		fnBody := enclosingFuncBody(stack)
		checkMapRangeBody(pass, rng, fnBody)
		return true
	})
}

// enclosingFuncBody returns the body of the innermost function literal
// or declaration on the stack, or nil at package scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncLit:
			return fn.Body
		case *ast.FuncDecl:
			return fn.Body
		}
	}
	return nil
}

// checkMapRangeBody flags the order-observable statement shapes inside
// one map-range body.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a deferred/stored closure runs outside the loop
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range as.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if i < len(as.Lhs) && sortedAfter(pass, as.Lhs[i], rng, fnBody) {
					continue
				}
				pass.Reportf(as.Pos(),
					"append inside a map range makes iteration order observable; collect and sort the keys first")
			}
			// Indexed writes: out[i] = v with a loop-varying index makes
			// element order follow map order. The scatter-by-key idiom
			// out[k] = f(k, v) with k exactly the range key is allowed:
			// map keys are unique, so each slot is written at most once
			// and order cannot matter.
			if as.Tok == token.ASSIGN {
				for _, lhs := range as.Lhs {
					idx, ok := unparen(lhs).(*ast.IndexExpr)
					if !ok {
						continue
					}
					if isMapIndex(pass, idx) {
						continue // writing into another map is order-free
					}
					if isRangeKey(pass, idx.Index, rng) {
						continue // keyed scatter: one write per unique key
					}
					if !loopVarying(pass, idx.Index, rng) {
						continue
					}
					if sortedAfter(pass, idx.X, rng, fnBody) {
						continue
					}
					pass.Reportf(lhs.Pos(),
						"indexed write with a loop-varying index inside a map range depends on iteration order; sort the keys first")
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := as.Lhs[0]
			if isFloat(pass.Info.TypeOf(lhs)) && !isMapIndexExpr(pass, lhs) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation inside a map range is order-dependent (float ops do not associate); sort the keys first")
			}
		}
		return true
	})
}

// isMapIndex reports whether idx indexes a map (m[k] = v), which is
// order-insensitive, as opposed to a slice/array position.
func isMapIndex(pass *Pass, idx *ast.IndexExpr) bool {
	t := pass.Info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isMapIndexExpr reports whether e is a map index expression.
func isMapIndexExpr(pass *Pass, e ast.Expr) bool {
	idx, ok := unparen(e).(*ast.IndexExpr)
	return ok && isMapIndex(pass, idx)
}

// isRangeKey reports whether the index expression is exactly the
// range statement's key variable. The range value does not qualify:
// values repeat across keys, so out[v] = x is last-writer-wins in map
// order.
func isRangeKey(pass *Pass, index ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := unparen(index).(*ast.Ident)
	if !ok {
		return false
	}
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	keyObj := pass.Info.Defs[key]
	if keyObj == nil {
		keyObj = pass.Info.Uses[key]
	}
	return keyObj != nil && pass.Info.Uses[id] == keyObj
}

// loopVarying reports whether the index expression can change between
// iterations: it mentions the range's key/value variables or any
// non-constant identifier assigned inside the loop body (a manual
// cursor like i++). A fixed index writes the same slot every iteration
// — last-writer-wins nondeterminism is the map value's problem, which
// range variables already cover.
func loopVarying(pass *Pass, index ast.Expr, rng *ast.RangeStmt) bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = true
			} else if obj := pass.Info.Uses[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	// Identifiers mutated inside the body (i++ cursors, k = k+1).
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IncDecStmt:
			if id, ok := unparen(x.X).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					vars[obj] = true
				}
			}
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						vars[obj] = true
					}
				}
			}
		}
		return true
	})
	varying := false
	ast.Inspect(index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if vars[pass.Info.Uses[id]] {
				varying = true
			}
		}
		return !varying
	})
	return varying
}

// sortedAfter reports whether dest (a slice-valued expression) is later
// passed — directly or by address — to a sorting call within the same
// function: sort.*/slices.Sort*, or any function whose name begins with
// "sort"/"Sort" (project helpers like sortPairs). The check is lexical:
// only calls after the range statement count.
func sortedAfter(pass *Pass, dest ast.Expr, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if fnBody == nil {
		return false
	}
	obj := rootObject(pass, dest)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			a := unparen(arg)
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				a = unparen(u.X)
			}
			// sort.Sort(byLen(keys)): unwrap a single-argument
			// conversion around the destination.
			if conv, ok := a.(*ast.CallExpr); ok && len(conv.Args) == 1 {
				a = unparen(conv.Args[0])
			}
			if rootObject(pass, a) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// rootObject resolves the base identifier of an expression chain
// (x, x.f, x[i] → object of x).
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isSortCall recognizes sort.X(...), slices.SortX(...), and local
// helpers named sort*/Sort*.
func isSortCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok && (pkg.Name == "sort" || pkg.Name == "slices") {
			return true
		}
		return hasSortPrefix(fun.Sel.Name)
	case *ast.Ident:
		return hasSortPrefix(fun.Name)
	}
	return false
}

func hasSortPrefix(name string) bool {
	return len(name) >= 4 && (name[:4] == "sort" || name[:4] == "Sort")
}
