package lint

import (
	"go/ast"
	"go/types"
)

// MutexCopy reports by-value copies of structs that contain sync.Mutex,
// sync.RWMutex, sync.WaitGroup, or other sync primitives (directly or
// through nested fields and arrays). A copied lock guards nothing: the
// original and the copy synchronize independently, which in the
// MapReduce runtime means two goroutines both "holding" the job mutex.
// Flagged sites: non-pointer parameters, results, and receivers;
// assignments from an existing value; range value variables; and
// arguments passed by value.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc: "reject by-value copies of structs containing sync.Mutex, " +
		"sync.RWMutex, or sync.WaitGroup",
	Run: runMutexCopy,
}

func runMutexCopy(pass *Pass) {
	seen := map[types.Type]bool{}
	contains := func(t types.Type) bool { return containsLock(t, seen) }

	types := []ast.Node{
		(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil), (*ast.AssignStmt)(nil),
		(*ast.ValueSpec)(nil), (*ast.RangeStmt)(nil), (*ast.CallExpr)(nil),
	}
	pass.Inspect.Preorder(types, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Recv != nil {
				checkFieldList(pass, x.Recv, "receiver", contains)
			}
			checkFieldList(pass, x.Type.Params, "parameter", contains)
			checkFieldList(pass, x.Type.Results, "result", contains)
		case *ast.FuncLit:
			checkFieldList(pass, x.Type.Params, "parameter", contains)
			checkFieldList(pass, x.Type.Results, "result", contains)
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if copiesLock(pass, rhs, contains) {
					pass.Reportf(rhs.Pos(), "assignment copies a lock-containing value (type %s)", typeOf(pass, rhs))
				}
			}
		case *ast.ValueSpec:
			for _, rhs := range x.Values {
				if copiesLock(pass, rhs, contains) {
					pass.Reportf(rhs.Pos(), "declaration copies a lock-containing value (type %s)", typeOf(pass, rhs))
				}
			}
		case *ast.RangeStmt:
			if x.Value != nil {
				// A `:=` range value is a definition, so its type
				// lives in Defs rather than Types; TypeOf checks both.
				if t := pass.Info.TypeOf(x.Value); t != nil && contains(t) {
					pass.Reportf(x.Value.Pos(), "range value copies a lock-containing value (type %s)", t)
				}
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if copiesLock(pass, arg, contains) {
					pass.Reportf(arg.Pos(), "call argument copies a lock-containing value (type %s)", typeOf(pass, arg))
				}
			}
		}
	})
}

// checkFieldList reports fields declared with a non-pointer
// lock-containing type.
func checkFieldList(pass *Pass, fl *ast.FieldList, kind string, contains func(types.Type) bool) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if contains(tv.Type) {
			pass.Reportf(field.Type.Pos(), "%s receives a lock-containing value by value (type %s); use a pointer", kind, tv.Type)
		}
	}
}

// copiesLock reports whether expr reads an existing addressable value
// whose type contains a lock — the cases where evaluation performs a
// real copy of a possibly-in-use lock. Fresh composite literals and
// function results are the callee's responsibility.
func copiesLock(pass *Pass, expr ast.Expr, contains func(types.Type) bool) bool {
	switch unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := pass.Info.Types[expr]
	if !ok {
		return false
	}
	return contains(tv.Type)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func typeOf(pass *Pass, e ast.Expr) types.Type {
	return pass.Info.Types[e].Type
}

// lockTypes are the sync primitives that must never be copied after
// first use.
var lockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Cond":      true,
	"Once":      true,
	"Map":       true,
	"Pool":      true,
}

// containsLock reports whether t is, or transitively contains by value,
// one of the sync primitives. seen memoizes results and breaks cycles
// (recursive struct types recurse only through pointers, which stop the
// walk anyway).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if v, ok := seen[t]; ok {
		return v
	}
	seen[t] = false // break cycles; overwritten below
	result := false
	switch x := t.(type) {
	case *types.Named:
		obj := x.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			result = true
		} else {
			result = containsLock(x.Underlying(), seen)
		}
	case *types.Struct:
		for i := 0; i < x.NumFields() && !result; i++ {
			result = containsLock(x.Field(i).Type(), seen)
		}
	case *types.Array:
		result = containsLock(x.Elem(), seen)
	}
	seen[t] = result
	return result
}
