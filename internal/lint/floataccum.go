package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAccum reports floating-point accumulation (`+=`, `-=`) inside a
// `go` statement's function literal when the target is shared memory:
// a variable captured from the enclosing function, a package-level
// variable, or an element of a captured slice indexed by something the
// goroutine does not own. Concurrent goroutines interleave such
// accumulations in scheduler order, and float addition does not
// associate — the sum changes with the worker count, which breaks
// DASC's workers-invariant numerics (the Gram engine, k-means partial
// sums, and every reduction the byte-identical-labels test pins).
//
// The deterministic idiom — each worker accumulating into its own slot
// (`partials[w] += x` where w is the worker id bound inside or passed
// into the literal) and a sequential fold afterwards — is recognized
// and not flagged.
//
// One call level deep: a goroutine body calling a function declared in
// the same package that itself accumulates floats into shared state
// (per the fact store) is flagged at the call site.
var FloatAccum = &Analyzer{
	Name: "floataccum",
	Doc: "reject float += into shared memory inside goroutines; " +
		"scheduler order changes the sum across worker counts — use " +
		"per-worker slots and a sequential fold",
	Run: runFloatAccum,
}

func runFloatAccum(pass *Pass) {
	pass.Inspect.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gostmt := n.(*ast.GoStmt)
		lit, ok := gostmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return
		}
		checkGoroutineBody(pass, lit)
	})
}

// checkGoroutineBody scans one goroutine literal for shared float
// accumulation, directly and one call deep.
func checkGoroutineBody(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.ADD_ASSIGN && x.Tok != token.SUB_ASSIGN {
				return true
			}
			lhs := x.Lhs[0]
			if !isFloat(pass.Info.TypeOf(lhs)) {
				return true
			}
			if target := sharedFloatTarget(pass, lhs, lit); target != "" {
				pass.Reportf(x.Pos(),
					"floating-point accumulation into %s inside a goroutine; the sum depends on scheduler order — accumulate into a per-worker slot and fold sequentially", target)
			}
		case *ast.CallExpr:
			facts := pass.Facts.ForCallee(pass.Info, x)
			if facts != nil && facts.AccumulatesSharedFloat {
				pass.Reportf(x.Pos(),
					"call inside a goroutine to a function that accumulates floats into shared state; the result depends on scheduler order")
			}
		}
		return true
	})
}

// sharedFloatTarget classifies the accumulation target; it returns a
// description of the shared memory, or "" when the target is
// goroutine-owned.
func sharedFloatTarget(pass *Pass, lhs ast.Expr, lit *ast.FuncLit) string {
	switch x := unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := identVar(pass, x)
		if !ok {
			return ""
		}
		if v.Parent() == v.Pkg().Scope() {
			return "package variable " + v.Name()
		}
		if definedWithin(v, lit) {
			return "" // the goroutine's own accumulator
		}
		return "captured variable " + v.Name()
	case *ast.IndexExpr:
		// arr[i] += v: owned iff the index is a variable bound inside
		// the literal (worker id, local loop var). A captured or
		// constant index means every goroutine hits the same slots.
		base := rootObject(pass, x.X)
		bv, ok := base.(*types.Var)
		if !ok {
			return ""
		}
		if definedWithin(bv, lit) {
			return "" // goroutine-local slice
		}
		if indexOwned(pass, x.Index, lit) {
			return ""
		}
		return "shared element " + exprString(x)
	case *ast.SelectorExpr:
		base := rootObject(pass, x.X)
		bv, ok := base.(*types.Var)
		if !ok {
			return ""
		}
		if definedWithin(bv, lit) && !isPointer(bv.Type()) {
			return ""
		}
		return "shared field " + exprString(x)
	case *ast.StarExpr:
		return "shared memory " + exprString(x)
	}
	return ""
}

// identVar resolves an identifier to its variable object.
func identVar(pass *Pass, id *ast.Ident) (*types.Var, bool) {
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	return v, ok
}

// definedWithin reports whether v is declared inside the literal
// (including its parameters) — i.e. the goroutine owns it.
func definedWithin(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() >= lit.Pos() && v.Pos() <= lit.End()
}

// indexOwned reports whether every variable mentioned by the index
// expression is bound inside the literal, making the indexed slot
// goroutine-private by construction (per-worker partials).
func indexOwned(pass *Pass, index ast.Expr, lit *ast.FuncLit) bool {
	owned := true
	sawVar := false
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, isVar := identVar(pass, id)
		if !isVar {
			return true
		}
		sawVar = true
		if !definedWithin(v, lit) {
			owned = false
		}
		return owned
	})
	return owned && sawVar
}

// isPointer reports whether t is a pointer type.
func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// exprString renders a short source-ish form of e for diagnostics.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	}
	return "expression"
}
