package lint

import (
	"go/ast"
	"go/token"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// IgnorePrefix starts a suppression comment: //lint:ignore <analyzer>
// <reason>. The comment silences that analyzer on its own line and on
// the line directly below it (so it can trail the flagged expression or
// sit on its own line above).
const IgnorePrefix = "//lint:ignore"

// Options controls a Run: worker count and whether suppression
// directives that matched nothing are themselves reported.
type Options struct {
	// Workers is the number of packages analyzed concurrently; values
	// below 1 mean GOMAXPROCS. Output is deterministic regardless.
	Workers int
	// ReportUnusedIgnores reports //lint:ignore directives that
	// suppressed no diagnostic of an analyzer in the run set, under the
	// "lint" pseudo-analyzer. dasclint enables this by default (escape
	// hatch: -ignore-unused) so dead waivers cannot accumulate.
	ReportUnusedIgnores bool
}

// Run executes the analyzers over every package with default options.
// See RunWith.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWith(fset, pkgs, analyzers, Options{})
}

// RunWith executes the analyzers over every package, filters findings
// through //lint:ignore comments, and returns the remaining diagnostics
// sorted by file, line, column, and analyzer. Packages are analyzed
// concurrently (each on one goroutine: the flattened traversal and fact
// store are built once and replayed by every analyzer), and the global
// sort makes the output order independent of scheduling. Malformed
// ignore comments (missing analyzer or reason) — and, with
// ReportUnusedIgnores, directives that matched nothing — are reported
// under the pseudo-analyzer "lint".
func RunWith(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	if workers <= 1 {
		for i, pkg := range pkgs {
			perPkg[i] = runPackage(fset, pkg, analyzers, opts)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					perPkg[i] = runPackage(fset, pkgs[i], analyzers, opts)
				}
			}()
		}
		for i := range pkgs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// runPackage analyzes one package: shared traversal and facts first,
// then every analyzer replayed over them, then suppression filtering
// and (optionally) stale-directive reporting.
func runPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	dirs, diags := suppressions(fset, pkg.Files)
	inspect := NewInspector(pkg.Files)
	facts := computeFacts(inspect, pkg.Info)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Path:     pkg.Path,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Inspect:  inspect,
			Facts:    facts,
		}
		pass.report = func(d Diagnostic) {
			d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
			for _, dir := range dirs {
				if dir.analyzer == d.Analyzer && dir.file == d.File &&
					(dir.line == d.Line || dir.line+1 == d.Line) {
					dir.used = true
					return
				}
			}
			diags = append(diags, d)
		}
		a.Run(pass)
	}
	if opts.ReportUnusedIgnores {
		ran := map[string]bool{}
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, dir := range dirs {
			// A directive for an analyzer outside the run set may still
			// be live; only directives whose analyzer actually ran can be
			// proven stale.
			if dir.used || !ran[dir.analyzer] {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      dir.pos,
				File:     dir.file,
				Line:     dir.line,
				Col:      dir.pos.Column,
				Analyzer: "lint",
				Message:  "//lint:ignore " + dir.analyzer + " suppresses no diagnostic; remove it (or run with -ignore-unused)",
			})
		}
	}
	return diags
}

// directive is one well-formed //lint:ignore comment. It suppresses its
// analyzer on the comment's line and the next line; used records
// whether it ever did.
type directive struct {
	file     string
	line     int
	analyzer string
	pos      token.Position
	used     bool
}

// suppressions scans the files' comments for //lint:ignore directives.
// Malformed directives (missing analyzer or reason) are returned as
// diagnostics.
func suppressions(fset *token.FileSet, files []*ast.File) ([]*directive, []Diagnostic) {
	var dirs []*directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				dirs = append(dirs, &directive{
					file: pos.Filename, line: pos.Line, analyzer: fields[0], pos: pos,
				})
			}
		}
	}
	return dirs, bad
}
