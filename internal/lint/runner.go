package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// IgnorePrefix starts a suppression comment: //lint:ignore <analyzer>
// <reason>. The comment silences that analyzer on its own line and on
// the line directly below it (so it can trail the flagged expression or
// sit on its own line above).
const IgnorePrefix = "//lint:ignore"

// Run executes the analyzers over every package, filters findings
// through //lint:ignore comments, and returns the remaining
// diagnostics sorted by file, line, column, and analyzer. Malformed
// ignore comments (missing analyzer or reason) are reported under the
// pseudo-analyzer "lint".
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := suppressions(fset, pkg.Files)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
				if sup[suppressKey{d.File, d.Line, d.Analyzer}] {
					return
				}
				diags = append(diags, d)
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppressKey locates one suppressed (file, line, analyzer) triple.
type suppressKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions scans the files' comments for //lint:ignore directives.
// Each well-formed directive suppresses its analyzer on the comment's
// line and the next line; malformed directives are returned as
// diagnostics.
func suppressions(fset *token.FileSet, files []*ast.File) (map[suppressKey]bool, []Diagnostic) {
	sup := map[suppressKey]bool{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				sup[suppressKey{pos.Filename, pos.Line, fields[0]}] = true
				sup[suppressKey{pos.Filename, pos.Line + 1, fields[0]}] = true
			}
		}
	}
	return sup, bad
}
