// Package suppressed exercises //lint:ignore handling: both real
// findings below carry well-formed suppressions and must not be
// reported, while the malformed directive must be reported under the
// "lint" pseudo-analyzer.
package suppressed

func commentAbove(a, b float64) bool {
	//lint:ignore floatcmp fixture demonstrates suppression from the preceding line
	return a == b
}

func trailingComment(a float64) bool {
	return a == 0 //lint:ignore floatcmp fixture demonstrates same-line suppression
}

func malformed() int {
	//lint:ignore floatcmp
	return 0
}
