// Positive fixtures for the ctxarg analyzer: every site below must be
// flagged.
package ctxarg_pos

import "context"

func ctxSecond(name string, ctx context.Context) error { // want ctxarg "must be the first parameter"
	_ = name
	return ctx.Err()
}

func ctxLast(a, b int, ctx context.Context) int { // want ctxarg "must be the first parameter"
	_ = ctx
	return a + b
}

type server struct{}

func (s *server) handle(id int, ctx context.Context) { // want ctxarg "must be the first parameter"
	_ = ctx
}

type runner interface {
	Run(name string, ctx context.Context) error // want ctxarg "must be the first parameter"
}

var process = func(job string, ctx context.Context) { // want ctxarg "must be the first parameter"
	_ = ctx
}

type request struct {
	ctx  context.Context // want ctxarg "struct field stores a context.Context"
	name string
}

type embedded struct {
	context.Context // want ctxarg "struct field stores a context.Context"
	id              int
}
