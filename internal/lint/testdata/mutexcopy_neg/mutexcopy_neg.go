// Negative fixtures for the mutexcopy analyzer: nothing here may be
// flagged.
package mutexcopy_neg

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type plain struct{ n int }

func pointerParam(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func freshValue() *guarded {
	g := guarded{} // composite literal: constructing, not copying
	return &g
}

func zeroValue() *guarded {
	var g guarded
	return &g
}

func plainCopy(p plain) plain {
	cp := p // no lock inside: copying is fine
	return cp
}

func pointerRange(gs []*guarded) {
	for _, g := range gs {
		g.mu.Lock()
		g.mu.Unlock()
	}
}
