// Positive fixtures for the poolescape analyzer: every site below
// lets a pooled loan escape its borrower (or Puts back something other
// than the loan) and must be flagged.
package poolescape_pos

import "sync"

var bufPool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 64); return &b }}

type holder struct {
	scratch *[]byte
}

var kept *[]byte

func returnsLoan() *[]byte {
	p := bufPool.Get().(*[]byte)
	return p // want poolescape "is returned; the loan escapes its borrower"
}

func storesInField(h *holder) {
	p := bufPool.Get().(*[]byte)
	h.scratch = p // want poolescape "stored in field scratch"
}

func storesInGlobal() {
	p := bufPool.Get().(*[]byte)
	kept = p // want poolescape "stored in package variable kept"
}

func sendsOnChannel(ch chan *[]byte) {
	p := bufPool.Get().(*[]byte)
	ch <- p // want poolescape "sent on a channel"
}

var slicePool = sync.Pool{New: func() interface{} { return []byte(nil) }}

func putsAppend(data []byte) {
	buf := slicePool.Get().([]byte)
	buf = buf[:0]
	slicePool.Put(append(buf, data...)) // want poolescape "append may reallocate"
}

func putsResliced() {
	buf := slicePool.Get().([]byte)
	slicePool.Put(buf[1:]) // want poolescape "re-sliced buffer drops its head"
}
