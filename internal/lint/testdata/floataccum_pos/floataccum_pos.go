// Positive fixtures for the floataccum analyzer: every accumulation
// below is shared across goroutines, so the sum depends on scheduler
// order and must be flagged.
package floataccum_pos

import "sync"

var globalSum float64

func sharedCapture(xs []float64) float64 {
	var sum float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			sum += x // want floataccum "captured variable sum"
		}(x)
	}
	wg.Wait()
	return sum
}

func intoGlobal(xs []float64) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			globalSum += x // want floataccum "package variable globalSum"
		}(x)
	}
	wg.Wait()
}

func sharedSlot(xs []float64, out []float64) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, x := range xs {
				out[0] += x // want floataccum "shared element"
			}
		}()
	}
	wg.Wait()
}

// accumulateInto has the AccumulatesSharedFloat fact: it adds into an
// element of a parameter slice, so its caller's concurrency leaks in.
func accumulateInto(out []float64, x float64) {
	out[0] += x
}

func oneCallDeep(xs []float64, out []float64) {
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x float64) {
			defer wg.Done()
			accumulateInto(out, x) // want floataccum "accumulates floats into shared state"
		}(x)
	}
	wg.Wait()
}
