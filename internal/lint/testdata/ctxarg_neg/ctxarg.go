// Negative fixtures for the ctxarg analyzer: none of these may be
// flagged.
package ctxarg_neg

import "context"

// Context first is the convention.
func ctxFirst(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// No context at all is fine.
func plain(a, b int) int { return a + b }

// A method with the context as its first parameter (the receiver is
// not a parameter).
type server struct{ n int }

func (s *server) handle(ctx context.Context, id int) {
	_ = ctx
	_ = id
}

// Interface methods follow the same rule.
type runner interface {
	Run(ctx context.Context, name string) error
}

// Function literals too.
var process = func(ctx context.Context, job string) {
	_ = ctx
}

// A context.CancelFunc field is not a context.
type request struct {
	cancel context.CancelFunc
	name   string
}

// Passing a context through a local variable is fine; only struct
// storage is flagged.
func local(ctx context.Context) error {
	inner := ctx
	return inner.Err()
}
