// Positive fixtures for the floatcmp analyzer: every comparison below
// must be flagged.
package floatcmp_pos

func exactEqual(a, b float64) bool {
	return a == b // want floatcmp "floating-point == comparison"
}

func exactNotEqual(a float32) bool {
	var b float32
	return a != b // want floatcmp "floating-point != comparison"
}

func zeroLiteral(x float64) bool {
	return x == 0 // want floatcmp "floating-point == comparison"
}

func mixedIntFloat(x float64, n int) bool {
	return x == float64(n) // want floatcmp "floating-point == comparison"
}
