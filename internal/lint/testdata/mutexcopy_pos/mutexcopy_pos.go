// Positive fixtures for the mutexcopy analyzer: every copy below must
// be flagged.
package mutexcopy_pos

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type nested struct{ g guarded }

func byValueParam(g guarded) int { // want mutexcopy "receives a lock-containing value"
	return g.n
}

func assignCopy(g *guarded) int {
	cp := *g // want mutexcopy "assignment copies a lock-containing value"
	return cp.n
}

func rangeCopy(gs []nested) {
	for _, g := range gs { // want mutexcopy "range value copies a lock-containing value"
		_ = g.g.n
	}
}

func sink(v interface{}) {}

func argCopy(g *guarded) {
	sink(*g) // want mutexcopy "call argument copies a lock-containing value"
}

func wgParam(wg sync.WaitGroup) { // want mutexcopy "receives a lock-containing value"
	wg.Wait()
}
