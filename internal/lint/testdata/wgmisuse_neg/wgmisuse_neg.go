// Negative fixtures for the wgmisuse analyzer: the disciplined worker
// pool shapes used throughout the runtime; none may be flagged.
package wgmisuse_neg

import "sync"

// Add in the spawner, before the go statement — the canonical pool.
func addBeforeSpawn(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

type guarded struct {
	mu      sync.Mutex
	results []int
}

// Unlocking before Wait lets the workers through.
func unlockBeforeWait(g *guarded, n int) {
	var wg sync.WaitGroup
	g.mu.Lock()
	g.results = g.results[:0]
	g.mu.Unlock()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.mu.Lock()
			g.results = append(g.results, i)
			g.mu.Unlock()
		}(i)
	}
	wg.Wait()
}

// Holding a mutex over Wait is fine when the goroutines never touch it.
func waitUnderUnrelatedLock(g *guarded, n int, out []int) {
	var wg sync.WaitGroup
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
}

// A goroutine may manage a WaitGroup it created itself.
func ownWaitGroup(work []func()) {
	done := make(chan struct{})
	go func() {
		var inner sync.WaitGroup
		for _, f := range work {
			inner.Add(1)
			go func(f func()) {
				defer inner.Done()
				f()
			}(f)
		}
		inner.Wait()
		close(done)
	}()
	<-done
}
