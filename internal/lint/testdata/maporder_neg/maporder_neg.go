// Negative fixtures for the maporder analyzer: every map range below
// is order-independent (or made deterministic by a later sort) and
// must not be flagged.
package maporder_neg

import "sort"

// The canonical fix: collect, then sort before anything order-sensitive.
func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortSliceVariant(m map[uint64]int) []uint64 {
	var sigs []uint64
	for s := range m {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i] < sigs[j] })
	return sigs
}

// Integer accumulation is exact and commutative: order cannot matter.
func intCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Scatter by key: map keys are unique, so each slot is written at most
// once regardless of order.
func scatterByKey(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] = v * 2
	}
}

// Writing into another map is keyed, not positional.
func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// A fixed-slot float accumulation through a map value is still flagged
// only for slice positions; map-to-map accumulation stays keyed.
func mergeCounts(dst, src map[string]int) {
	for k, v := range src {
		dst[k] += v
	}
}
