// Negative fixtures for the panicfree analyzer: this fixture package's
// import path ends in /internal/matrix, so Panicf and the check*
// helpers are designated invariant helpers and may panic.
package matrix

import (
	"errors"
	"fmt"
)

// Panicf mirrors the real matrix.Panicf designated helper.
func Panicf(format string, args ...interface{}) {
	panic(fmt.Sprintf(format, args...))
}

func checkIndex(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("index %d out of range %d", i, n))
	}
}

// At routes its invariant through a designated helper: not flagged.
func At(xs []float64, i int) float64 {
	checkIndex(i, len(xs))
	return xs[i]
}

// Get returns an error instead of panicking: the preferred pattern.
func Get(xs []float64, i int) (float64, error) {
	if i < 0 || i >= len(xs) {
		return 0, errors.New("index out of range")
	}
	return xs[i], nil
}

// shadowed calls a local function named panic, not the builtin.
func shadowed() {
	panic := func(s string) {}
	panic("not the builtin")
}
