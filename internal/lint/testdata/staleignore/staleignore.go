// Package staleignore exercises the unused-suppression check: the
// directive below names a real analyzer but suppresses nothing (the
// comparison is integral), so a run with ReportUnusedIgnores must
// report it — and a default run must not.
package staleignore

//lint:ignore floatcmp this directive is dead: the comparison below is integral
func equalInts(a, b int) bool {
	return a == b
}

func keysOf(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore maporder live directive: order is re-established by the caller, which sorts
		keys = append(keys, k)
	}
	return keys
}
