// Positive fixtures for the panicfree analyzer: this package sits under
// internal/ but is not internal/matrix, so every panic must be flagged.
package panicfree_pos

import "fmt"

func explode(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n)) // want panicfree "panic in library package"
	}
}

func inClosure(xs []int) func() {
	return func() {
		panic("closure panic") // want panicfree "panic in library package"
	}
}
