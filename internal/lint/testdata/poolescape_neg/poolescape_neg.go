// Negative fixtures for the poolescape analyzer: the disciplined
// borrow/Put patterns the engines actually use; none may be flagged.
package poolescape_neg

import "sync"

var bufPool = sync.Pool{New: func() interface{} { b := make([]byte, 0, 64); return &b }}

// The canonical loan: Get, use, deferred Put of the same token.
func borrowAndReturn(n int) int {
	p := bufPool.Get().(*[]byte)
	defer bufPool.Put(p)
	buf := (*p)[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i))
	}
	return len(buf)
}

// Putting the loan back re-sliced to zero length keeps the whole
// backing array pooled; only a nonzero low bound drops memory.
func putEmptied() {
	p := bufPool.Get().(*[]byte)
	*p = (*p)[:0]
	bufPool.Put(p)
}

// A fresh allocation may be returned freely; only Get loans are loans.
func returnsFresh() *[]byte {
	b := make([]byte, 0, 64)
	return &b
}

// Copying out of the loan and returning the copy is the sanctioned way
// to keep results past the Put.
func copiesOut(n int) []byte {
	p := bufPool.Get().(*[]byte)
	defer bufPool.Put(p)
	buf := (*p)[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, byte(i))
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	return out
}
