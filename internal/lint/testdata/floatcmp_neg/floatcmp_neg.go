// Negative fixtures for the floatcmp analyzer: nothing here may be
// flagged.
package floatcmp_neg

import "math"

const eps = 1e-9

func tolerance(a, b float64) bool {
	return math.Abs(a-b) <= eps
}

func ints(a, b int) bool {
	return a == b
}

func strings(a, b string) bool {
	return a != b
}

func constFolded() bool {
	return 1.5 == 1.5 // both operands constant: resolved at compile time
}

func ordering(a, b float64) bool {
	return a < b // only == and != are unreliable spellings
}
