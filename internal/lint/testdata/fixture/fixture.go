// Package fixture is the driver test's target: a small package with
// one finding per line so the test can assert the exact formatted
// diagnostics dasclint would print.
package fixture

func exactEqual(a, b float64) bool {
	return a == b
}

func alwaysPanics() {
	panic("fixture")
}
