// Positive fixtures for the maporder analyzer: every map range below
// leaks iteration order into its output and must be flagged.
package maporder_pos

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want maporder "append inside a map range"
	}
	return keys
}

func indexedCursor(m map[string]float64) []float64 {
	out := make([]float64, len(m))
	i := 0
	for _, v := range m {
		out[i] = v // want maporder "indexed write with a loop-varying index"
		i++
	}
	return out
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want maporder "floating-point accumulation inside a map range"
	}
	return sum
}

type stats struct{ total float64 }

func floatFieldSum(m map[int]float64, s *stats) {
	for _, v := range m {
		s.total += v // want maporder "floating-point accumulation inside a map range"
	}
}

func scatterByValue(m map[string]int, out []int) {
	// The range value repeats across keys, so this is last-writer-wins
	// in map order — unlike scattering by key.
	for _, v := range m {
		out[v] = v // want maporder "indexed write with a loop-varying index"
	}
}
