// Negative fixtures for the floataccum analyzer: every accumulation
// below is goroutine-owned (or sequential), so worker count cannot
// change the result.
package floataccum_neg

import "sync"

// The deterministic idiom: per-worker partial sums folded sequentially.
func perWorkerPartials(xs []float64, workers int) float64 {
	partials := make([]float64, workers)
	var wg sync.WaitGroup
	chunk := (len(xs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, min((w+1)*chunk, len(xs))
			for _, x := range xs[lo:hi] {
				partials[w] += x // index bound inside the literal: owned
			}
		}(w)
	}
	wg.Wait()
	var sum float64
	for _, p := range partials {
		sum += p // sequential fold: deterministic
	}
	return sum
}

// A local accumulator inside the goroutine is invisible outside it.
func localAccumulator(xs []float64, out chan<- float64) {
	go func() {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		out <- sum
	}()
}

// Sequential accumulation without goroutines is ordinary code.
func sequentialSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Integer accumulation is exact: scheduler order cannot change the
// value, only the interleaving (races are the race detector's job).
func sharedIntCounter(xs []int, n *int64, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		var local int64
		for _, x := range xs {
			local += int64(x)
		}
	}()
}
