// Negative fixtures for the goroutine-guard analyzer: nothing here may
// be flagged.
package goroutineguard_neg

import "sync"

func waitGroup(wg *sync.WaitGroup, work func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func channelSend(done chan struct{}, work func()) {
	go func() {
		work()
		done <- struct{}{}
	}()
}

func channelClose(results chan int) {
	go func() {
		close(results)
	}()
}

func recovered(work func()) {
	go func() {
		defer func() {
			_ = recover()
		}()
		work()
	}()
}

func named() {
	go namedWorker() // named functions are vetted where they are defined
}

func namedWorker() {}
