// Positive fixtures for the goroutine-guard analyzer: every goroutine
// below must be flagged.
package goroutineguard_pos

func unguarded(work func()) {
	go func() { // want goroutine-guard "no completion signal"
		work()
	}()
}

func unguardedWithArgs(xs []int) {
	for i := range xs {
		go func(i int) { // want goroutine-guard "no completion signal"
			xs[i]++
		}(i)
	}
}
