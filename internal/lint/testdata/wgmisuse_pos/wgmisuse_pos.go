// Positive fixtures for the wgmisuse analyzer: the Add-in-goroutine
// race and the Wait-under-lock deadlock; every site must be flagged.
package wgmisuse_pos

import "sync"

func addInsideGoroutine(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		go func(f func()) {
			wg.Add(1) // want wgmisuse "WaitGroup.Add inside the spawned goroutine"
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

type guarded struct {
	mu      sync.Mutex
	results []int
}

func waitUnderLock(g *guarded, n int) {
	var wg sync.WaitGroup
	g.mu.Lock()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.mu.Lock()
			g.results = append(g.results, i)
			g.mu.Unlock()
		}(i)
	}
	wg.Wait() // want wgmisuse "Wait while holding g.mu"
	g.mu.Unlock()
}

func waitUnderDeferredLock(g *guarded, n int) {
	var wg sync.WaitGroup
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.mu.Lock()
			g.results = append(g.results, i)
			g.mu.Unlock()
		}(i)
	}
	wg.Wait() // want wgmisuse "Wait while holding g.mu"
}
