// Negative fixtures for the errcheck-gob analyzer: nothing here may be
// flagged.
package errcheckgob_neg

import (
	"encoding/gob"
	"os"
)

func checked(enc *gob.Encoder, v interface{}) error {
	if err := enc.Encode(v); err != nil {
		return err
	}
	return nil
}

func explicitDiscard(f *os.File, data []byte) {
	_ = f.Close()
	_, _ = f.Write(data)
}

func propagated(dec *gob.Decoder, v interface{}) error {
	return dec.Decode(v)
}

type voidEncoder interface{ Encode() }

func noErrorResult(e voidEncoder) {
	e.Encode() // returns nothing: no error to drop
}
