// Positive fixtures for the errcheck-gob analyzer: every discarded
// error below must be flagged.
package errcheckgob_pos

import (
	"encoding/gob"
	"os"
)

func dropEncode(enc *gob.Encoder, v interface{}) {
	enc.Encode(v) // want errcheck-gob "error result of Encode is discarded"
}

func dropDecode(dec *gob.Decoder, v interface{}) {
	dec.Decode(v) // want errcheck-gob "error result of Decode is discarded"
}

func dropCloseAndWrite(f *os.File, data []byte) {
	defer f.Close() // want errcheck-gob "deferred error result of Close is discarded"
	f.Write(data)   // want errcheck-gob "error result of Write is discarded"
}
