package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// WgMisuse reports the two WaitGroup shapes that turn a worker pool
// into a race or a deadlock:
//
//  1. wg.Add called inside the spawned goroutine itself. The spawner
//     can reach Wait before the goroutine is scheduled, so Wait
//     observes a zero counter and returns while work is still running
//     — the textbook Add-after-Wait race. Add belongs in the spawner,
//     before the go statement.
//  2. wg.Wait called while a mutex is held (Lock with no intervening
//     Unlock, or an Unlock deferred to function exit) when a goroutine
//     spawned in the same function locks that same mutex. The workers
//     block on the mutex, Wait blocks on the workers, and the job
//     deadlocks.
var WgMisuse = &Analyzer{
	Name: "wgmisuse",
	Doc: "reject WaitGroup.Add inside the spawned goroutine and Wait " +
		"while holding a mutex the goroutines lock",
	Run: runWgMisuse,
}

func runWgMisuse(pass *Pass) {
	// Rule 1: Add inside a goroutine literal, on a WaitGroup the
	// goroutine did not create itself.
	pass.Inspect.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		gostmt := n.(*ast.GoStmt)
		lit, ok := gostmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Add" || !isWaitGroupExpr(pass, sel.X) {
				return true
			}
			if v, ok := rootObject(pass, sel.X).(*types.Var); ok && definedWithinNode(v, lit) {
				return true // the goroutine's own WaitGroup is its business
			}
			pass.Reportf(call.Pos(),
				"WaitGroup.Add inside the spawned goroutine races with Wait; call Add in the spawner before the go statement")
			return true
		})
	})

	// Rule 2: Wait while holding a mutex the spawned goroutines lock.
	pass.Inspect.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		checkWaitUnderLock(pass, decl.Body)
	})
}

// checkWaitUnderLock does a lexical scan of one function body: it
// tracks which mutexes are held at each point (keyed by their selector
// chain) and, at every WaitGroup.Wait, reports held mutexes that some
// goroutine spawned in this function also locks.
func checkWaitUnderLock(pass *Pass, body *ast.BlockStmt) {
	// Mutexes the function's goroutine literals lock, by chain key.
	goroutineLocks := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		gostmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gostmt.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
					if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
						goroutineLocks[chainKey(pass, sel.X)] = true
					}
				}
			}
			return true
		})
		return true
	})
	if len(goroutineLocks) == 0 {
		return
	}

	held := map[string]bool{}
	// walk skips goroutine literal bodies: their statements execute on
	// another goroutine, not at this lexical point.
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.GoStmt:
				return false
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// A deferred Unlock releases at return, after any Wait
				// in the body — so it does not clear held here.
				walk(x.Call, true)
				return false
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				key := chainKey(pass, sel.X)
				switch sel.Sel.Name {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					if !inDefer {
						delete(held, key)
					}
				case "Wait":
					if !isWaitGroupExpr(pass, sel.X) {
						return true
					}
					// Sorted so multiple held mutexes report in a
					// stable order.
					var hot []string
					for k := range held {
						if goroutineLocks[k] {
							hot = append(hot, k)
						}
					}
					sort.Strings(hot)
					for _, k := range hot {
						pass.Reportf(x.Pos(),
							"WaitGroup.Wait while holding %s, which a goroutine spawned here locks; the workers block on the mutex and Wait blocks on the workers", strings.SplitN(k, "@", 2)[0])
					}
				}
			}
			return true
		})
	}
	walk(body, false)
}

// isWaitGroupExpr reports whether e's type is sync.WaitGroup or
// *sync.WaitGroup.
func isWaitGroupExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// chainKey renders a selector chain as a stable key anchored at the
// root object's identity, so `s.mu` in two scopes keys differently but
// the same mutex reached the same way keys identically.
func chainKey(pass *Pass, e ast.Expr) string {
	obj := rootObject(pass, e)
	key := exprString(unparen(e))
	if obj != nil {
		return key + "@" + strconv.Itoa(int(obj.Pos()))
	}
	return key
}

// definedWithinNode reports whether v is declared inside n's source
// range.
func definedWithinNode(v *types.Var, n ast.Node) bool {
	return v.Pos() >= n.Pos() && v.Pos() <= n.End()
}
