package lint

import (
	"go/ast"
	"go/types"
)

// ErrcheckGob reports statements that silently discard the error result
// of Encode, Decode, Close, or Write calls. The TCP executor ships the
// shuffle over stateful gob streams and the DFS layer persists blobs; a
// dropped encode/decode/close/write error corrupts the stream without a
// crash. The error must be checked, propagated, or — where discarding
// is genuinely intended — assigned to the blank identifier so the
// decision is visible at the call site.
var ErrcheckGob = &Analyzer{
	Name: "errcheck-gob",
	Doc: "reject discarded error results from Encode/Decode/Close/Write; " +
		"a dropped stream error corrupts the shuffle silently",
	Run: runErrcheckGob,
}

// errcheckMethods are the stream-integrity methods whose error result
// must never be dropped on the floor.
var errcheckMethods = map[string]bool{
	"Encode": true,
	"Decode": true,
	"Close":  true,
	"Write":  true,
}

func runErrcheckGob(pass *Pass) {
	check := func(call *ast.CallExpr, how string) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !errcheckMethods[sel.Sel.Name] {
			return
		}
		sig, ok := pass.Info.Types[call.Fun].Type.(*types.Signature)
		if !ok || !returnsError(sig) {
			return
		}
		pass.Reportf(call.Pos(),
			"%serror result of %s is discarded; check it or assign it to _ explicitly",
			how, sel.Sel.Name)
	}
	pass.Inspect.Preorder([]ast.Node{(*ast.ExprStmt)(nil), (*ast.DeferStmt)(nil), (*ast.GoStmt)(nil)}, func(n ast.Node) {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				check(call, "")
			}
		case *ast.DeferStmt:
			check(stmt.Call, "deferred ")
		case *ast.GoStmt:
			check(stmt.Call, "spawned ")
		}
	})
}

// returnsError reports whether any result of sig is the built-in error
// type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "error" && obj.Pkg() == nil {
				return true
			}
		}
	}
	return false
}
