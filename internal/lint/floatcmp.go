package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp reports == and != between floating-point operands. DASC's
// per-bucket Gram/spectral pipeline produces wrong clusters, not
// crashes, when numeric code compares floats exactly; comparisons must
// go through matrix.ApproxEqual (tol=0 spells out an intentional exact
// comparison) or an explicit tolerance. Comparisons where both sides
// are compile-time constants are allowed. Test files are never loaded,
// so assertions in _test.go files are unaffected.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "reject ==/!= on floating-point operands; numeric code must use " +
		"matrix.ApproxEqual or an explicit tolerance",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	pass.Inspect.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		bin := n.(*ast.BinaryExpr)
		if bin.Op != token.EQL && bin.Op != token.NEQ {
			return
		}
		x, xok := pass.Info.Types[bin.X]
		y, yok := pass.Info.Types[bin.Y]
		if !xok || !yok {
			return
		}
		if x.Value != nil && y.Value != nil {
			return // constant-folded at compile time
		}
		if isFloat(x.Type) || isFloat(y.Type) {
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison; use matrix.ApproxEqual or an explicit tolerance",
				bin.Op)
		}
	})
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
