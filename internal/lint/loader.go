package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/matrix").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds type facts for the package's expressions.
	Info *types.Info
}

// Loader parses and type-checks packages of a single Go module using
// only the standard library: module-internal imports are resolved from
// the module tree, everything else through go/importer's source
// importer (which type-checks GOROOT packages on demand).
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	root   string // module root (directory containing go.mod)
	module string // module path from the go.mod "module" directive
	std    types.Importer
	pkgs   map[string]*Package    // by import path
	active map[string]bool        // import-cycle guard
	parsed map[string][]*ast.File // pre-parsed sources by directory
}

// NewLoader creates a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		pkgs:   map[string]*Package{},
		active: map[string]bool{},
	}, nil
}

// Root returns the module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module path.
func (l *Loader) Module() string { return l.module }

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadAll loads every package in the module (excluding testdata,
// vendor, and hidden directories), returning them sorted by import
// path.
func (l *Loader) LoadAll() ([]*Package, error) {
	return l.LoadAllParallel(1)
}

// LoadAllParallel is LoadAll with the parse phase fanned out over up to
// workers goroutines (values below 1 mean GOMAXPROCS). Parsing is
// embarrassingly parallel — token.FileSet is concurrency-safe — while
// type-checking stays sequential because the module importer recurses
// through shared memo tables; in practice parsing is the file-I/O-bound
// half of loading, so this is where the wall-clock lives. The result is
// identical to LoadAll: packages sorted by import path, type-checked in
// deterministic (sorted-directory) order.
func (l *Loader) LoadAllParallel(workers int) ([]*Package, error) {
	dirs, err := l.packageDirs()
	if err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers > 1 {
		if err := l.parseAll(dirs, workers); err != nil {
			return nil, err
		}
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// parseAll pre-parses every directory's sources concurrently into the
// loader's parse cache, which load consults before re-parsing.
func (l *Loader) parseAll(dirs []string, workers int) error {
	l.parsed = map[string][]*ast.File{}
	var mu sync.Mutex
	var firstErr error
	next := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dir := range next {
				files, err := l.parseDir(dir)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					l.parsed[dir] = files
				}
				mu.Unlock()
			}
		}()
	}
	for _, dir := range dirs {
		next <- dir
	}
	close(next)
	wg.Wait()
	return firstErr
}

// parseDir parses the non-test sources of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", dir, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// packageDirs lists every directory under the module root that holds at
// least one non-test Go file.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSources(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goSources returns the sorted non-test .go file names in dir.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadDir parses and type-checks the package in dir. Directories inside
// the module tree get their real import path; directories outside (or
// under testdata) get a synthetic one derived from the directory name.
// It returns (nil, nil) when dir holds no non-test Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.importPathFor(dir), dir)
}

// importPathFor maps a directory to the import path used as the
// package key in diagnostics and analyzer scoping rules.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "lint.test/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.module
	}
	return l.module + "/" + filepath.ToSlash(rel)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		pkg, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in package %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	files, preParsed := l.parsed[dir]
	if !preParsed {
		names, err := goSources(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		if len(names) == 0 {
			l.pkgs[path] = nil
			return nil, nil
		}
		for _, name := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", path, err)
			}
			files = append(files, f)
		}
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
