package lsh

// Multi-table, multi-probe LSH ensemble. A single M-bit signature
// family has the accuracy cliff the paper shows in Figures 2/3: one
// unlucky threshold cut splits a true cluster across buckets forever.
// The ensemble attacks that weakness with the two standard LSH recall
// levers:
//
//   - L independent tables: every point is hashed under L
//     independently drawn families; buckets that share a point in ANY
//     table are merged, so a cluster fragmented by one table's cut is
//     repaired by the others (go-lsh's NumTables knob).
//   - multi-probe: within each table, every point also probes the
//     buckets of near-miss signatures — bit flips ordered by increasing
//     decision margin (least-confident bits first, per MarginFamily),
//     or the plain Hamming ball for families without margins — and is
//     merged with the buckets its probes hit.
//
// Merging runs as a union-find over the first table's keeper buckets
// (the base units; they are never split), with MaxMergedBucket as the
// cost dial: a union that would grow a merged bucket past the cap is
// skipped, bounding the Ni^2 solve cost the recall levers can create.
// All merge passes iterate in fixed slice order, so the partition is
// byte-deterministic for a fixed seed at any worker count. The
// degenerate configuration — one table, probing off — routes through
// PartitionSignatures unchanged and reproduces the paper's single-
// signature partition bit for bit.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// MaxTables bounds the ensemble width; beyond it the partition cost is
// dominated by table bookkeeping rather than recall gains.
const MaxTables = 64

// ensembleSeedStride separates the per-table seeds; any odd constant
// works, a large prime keeps derived rand streams visibly unrelated.
const ensembleSeedStride = 0x5DEECE66D

const (
	// maxFlipBits caps how many low-margin candidate bits the probe
	// generator considers; subsets are enumerated over these only.
	maxFlipBits = 16
	// maxEnumeratedProbes caps the subsets generated before the
	// margin-score sort, bounding the cost of large ProbeRadius values.
	maxEnumeratedProbes = 1024
)

// EnsembleConfig is the recall/cost dial of the bucketing front-end.
type EnsembleConfig struct {
	// Tables is the number of independent hash tables L. 0 and 1 both
	// mean the paper's single-table behaviour.
	Tables int
	// ProbeRadius is the maximum number of signature bits a probe may
	// flip. 0 disables probing.
	ProbeRadius int
	// MaxMergedBucket caps the size a bucket may reach through
	// cross-table or probe unions; 0 means unlimited. Buckets already
	// larger than the cap before merging are left intact.
	MaxMergedBucket int
	// MaxProbes caps the probes generated per point per table; 0
	// defaults to 4*Bits.
	MaxProbes int
}

// resolve validates the dial against a family of the given width and
// fills defaults.
func (c EnsembleConfig) resolve(bits int) (EnsembleConfig, error) {
	if c.Tables == 0 {
		c.Tables = 1
	}
	if c.Tables < 1 || c.Tables > MaxTables {
		return c, fmt.Errorf("lsh: Tables=%d out of range [1,%d]", c.Tables, MaxTables)
	}
	if c.ProbeRadius < 0 || c.ProbeRadius > bits {
		return c, fmt.Errorf("lsh: ProbeRadius=%d out of range [0,%d]", c.ProbeRadius, bits)
	}
	if c.MaxMergedBucket < 0 {
		return c, fmt.Errorf("lsh: MaxMergedBucket=%d negative", c.MaxMergedBucket)
	}
	if c.MaxProbes < 0 {
		return c, fmt.Errorf("lsh: MaxProbes=%d negative", c.MaxProbes)
	}
	if c.MaxProbes == 0 {
		c.MaxProbes = 4 * bits
	}
	return c, nil
}

// SignatureSet holds the per-table signatures of a dataset:
// Tables[t][i] is point i's signature under table t.
type SignatureSet struct {
	Tables [][]uint64
}

// NewSignatureSet allocates a zeroed signature set for n points across
// the given number of tables — the shape distributed runners fill from
// reassembled wire records.
func NewSignatureSet(tables, n int) *SignatureSet {
	s := &SignatureSet{Tables: make([][]uint64, tables)}
	for t := range s.Tables {
		s.Tables[t] = make([]uint64, n)
	}
	return s
}

// NumTables returns the table count L.
func (s *SignatureSet) NumTables() int { return len(s.Tables) }

// Len returns the number of points.
func (s *SignatureSet) Len() int {
	if len(s.Tables) == 0 {
		return 0
	}
	return len(s.Tables[0])
}

// Table returns table t's per-point signatures.
func (s *SignatureSet) Table(t int) []uint64 { return s.Tables[t] }

// Ensemble is a fitted multi-table hash front-end. It implements
// Family through its first table, so any single-signature call site
// (prediction routing, diagnostics) keeps working; partition-building
// call sites get the full multi-table merge via PartitionWith or
// Partition.
type Ensemble struct {
	families []Family
	cfg      EnsembleConfig
}

var _ Family = (*Ensemble)(nil)

// FitEnsemble fits cfg.Tables independent span/threshold hashers from
// the dataset. Table 0 uses cfg verbatim — its signatures, and
// therefore the degenerate single-table partition, are identical to
// Fit's. Additional tables draw from table-derived seeds; when the
// configured policy is the deterministic TopSpan (which would fit L
// identical tables), they fall back to SpanWeighted sampling, the
// paper's Eq. 4 randomized policy.
func FitEnsemble(points *matrix.Dense, cfg Config, ecfg EnsembleConfig) (*Ensemble, error) {
	base, err := Fit(points, cfg)
	if err != nil {
		return nil, err
	}
	ecfg, err = ecfg.resolve(base.Bits())
	if err != nil {
		return nil, err
	}
	families := make([]Family, ecfg.Tables)
	families[0] = base
	for t := 1; t < ecfg.Tables; t++ {
		derived := cfg
		derived.M = base.Bits()
		derived.Seed = cfg.Seed + int64(t)*ensembleSeedStride
		if derived.Policy == TopSpan {
			derived.Policy = SpanWeighted
		}
		h, err := Fit(points, derived)
		if err != nil {
			return nil, fmt.Errorf("lsh: table %d: %w", t, err)
		}
		families[t] = h
	}
	return &Ensemble{families: families, cfg: ecfg}, nil
}

// NewEnsemble builds an ensemble from explicit per-table families
// (table 0 first). The families may be heterogeneous; each table
// probes within its own signature space.
func NewEnsemble(families []Family, ecfg EnsembleConfig) (*Ensemble, error) {
	if len(families) == 0 {
		return nil, errors.New("lsh: ensemble needs at least one family")
	}
	for t, f := range families {
		if f == nil {
			return nil, fmt.Errorf("lsh: ensemble table %d is nil", t)
		}
	}
	ecfg.Tables = len(families)
	ecfg, err := ecfg.resolve(families[0].Bits())
	if err != nil {
		return nil, err
	}
	return &Ensemble{families: append([]Family(nil), families...), cfg: ecfg}, nil
}

// EnsembleFrom grows an ensemble out of one family: table 0 is the
// family itself, tables 1..L-1 come from Refit with table-derived
// seeds. Tables > 1 therefore requires a Refittable family (MinHash);
// data-fitted hashers go through FitEnsemble instead.
func EnsembleFrom(f Family, ecfg EnsembleConfig) (*Ensemble, error) {
	if e, ok := f.(*Ensemble); ok {
		return e, nil
	}
	ecfg, err := ecfg.resolve(f.Bits())
	if err != nil {
		return nil, err
	}
	families := make([]Family, ecfg.Tables)
	families[0] = f
	if ecfg.Tables > 1 {
		rf, ok := f.(Refittable)
		if !ok {
			return nil, fmt.Errorf("lsh: Tables=%d needs a Refittable family, %T is not", ecfg.Tables, f)
		}
		for t := 1; t < ecfg.Tables; t++ {
			sib, err := rf.Refit(t)
			if err != nil {
				return nil, fmt.Errorf("lsh: table %d: %w", t, err)
			}
			families[t] = sib
		}
	}
	return &Ensemble{families: families, cfg: ecfg}, nil
}

// Tables returns the table count L.
func (e *Ensemble) Tables() int { return len(e.families) }

// Families returns the per-table families (table 0 first). The slice
// is a copy; the families are shared.
func (e *Ensemble) Families() []Family { return append([]Family(nil), e.families...) }

// Config returns the resolved recall/cost dial.
func (e *Ensemble) Config() EnsembleConfig { return e.cfg }

// Bits implements Family through table 0.
func (e *Ensemble) Bits() int { return e.families[0].Bits() }

// Signature implements Family through table 0, so single-signature
// call sites (bucket routing, diagnostics) see the base table.
func (e *Ensemble) Signature(x []float64) uint64 { return e.families[0].Signature(x) }

const (
	// hashBlockRows is the fixed row-block edge of the parallel hash
	// pass; signatures are pure per-row functions, so any block
	// decomposition yields identical output.
	hashBlockRows = 512
	// hashParallelCutoff is the row count below which goroutine handoff
	// costs more than the hashing.
	hashParallelCutoff = 2048
)

// Hash computes the per-table signatures of every row.
func (e *Ensemble) Hash(points PointSource) *SignatureSet {
	s, _ := e.HashContext(context.Background(), points)
	return s
}

// HashContext is Hash with cancellation; large inputs hash in parallel
// over fixed row blocks, identically for every worker count.
func (e *Ensemble) HashContext(ctx context.Context, points PointSource) (*SignatureSet, error) {
	n := points.Rows()
	set := &SignatureSet{Tables: make([][]uint64, len(e.families))}
	for t := range set.Tables {
		set.Tables[t] = make([]uint64, n)
	}
	hashRow := func(i int) {
		row := points.Row(i)
		for t, f := range e.families {
			set.Tables[t][i] = f.Signature(row)
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if n < hashParallelCutoff || workers <= 1 {
		for i := 0; i < n; i++ {
			if i%1024 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("lsh: hash: %w", err)
				}
			}
			hashRow(i)
		}
		return set, nil
	}
	nb := (n + hashBlockRows - 1) / hashBlockRows
	if workers > nb {
		workers = nb
	}
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb || cancelled.Load() {
					return
				}
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				lo := b * hashBlockRows
				hi := lo + hashBlockRows
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					hashRow(i)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("lsh: hash: %w", err)
	}
	return set, nil
}

// PartitionPoints hashes the rows and partitions them — the Family
// analogue of Hasher.Partition for the whole ensemble.
func (e *Ensemble) PartitionPoints(points PointSource, maxHamming int) *Partition {
	part, err := e.Partition(points, e.Hash(points), maxHamming)
	if err != nil {
		// The signature set was built by this ensemble, so shape errors
		// cannot occur; matrix.Panicf keeps the package panic-free lint
		// contract explicit.
		matrix.Panicf("lsh: ensemble partition: %v", err)
	}
	return part
}

// Partition builds the merged bucket partition from precomputed
// per-table signatures. maxHamming is the paper's Eq. 6 keeper-merge
// radius applied within every table; the cross-table and probe merges
// then union the first table's keeper buckets. points supplies rows
// for margin-ordered probing and may be nil, in which case probes use
// the Hamming-ball order even for margin families.
func (e *Ensemble) Partition(points PointSource, sigs *SignatureSet, maxHamming int) (*Partition, error) {
	L := len(e.families)
	if sigs == nil || len(sigs.Tables) != L {
		return nil, fmt.Errorf("lsh: signature set has %d tables, ensemble %d", sigs.NumTables(), L)
	}
	n := len(sigs.Tables[0])
	for t, ts := range sigs.Tables {
		if len(ts) != n {
			return nil, fmt.Errorf("lsh: table %d has %d signatures, table 0 has %d", t, len(ts), n)
		}
	}
	if points != nil && points.Rows() != n {
		return nil, fmt.Errorf("lsh: %d points for %d signatures", points.Rows(), n)
	}

	// Degenerate dial: the ensemble IS the paper's partition.
	if L == 1 && e.cfg.ProbeRadius == 0 {
		return PartitionSignatures(sigs.Tables[0], maxHamming), nil
	}

	// Per-table keeper partitions (Eq. 6 merge within each table).
	parts := make([]*Partition, L)
	for t := range parts {
		parts[t] = PartitionSignatures(sigs.Tables[t], maxHamming)
	}
	base := parts[0]
	bucketOf := make([]int, n) // base-bucket id of every point
	uf := newUnionFind(len(base.Buckets), e.cfg.MaxMergedBucket)
	for bi, b := range base.Buckets {
		uf.size[bi] = len(b.Indices)
		for _, idx := range b.Indices {
			bucketOf[idx] = bi
		}
	}

	// Cross-table co-membership: points sharing a bucket in any table
	// pull their base buckets together. Fixed iteration order (tables
	// ascending, buckets in partition order, indices ascending) makes
	// cap-limited merging deterministic.
	for t := 1; t < L; t++ {
		for _, b := range parts[t].Buckets {
			anchor := bucketOf[b.Indices[0]]
			for _, idx := range b.Indices[1:] {
				uf.union(anchor, bucketOf[idx])
			}
		}
	}

	// Multi-probe: every point probes near-miss signatures in every
	// table and unions with the buckets they hit.
	if e.cfg.ProbeRadius > 0 {
		var marginBuf [MaxBits]float64
		probeBuf := make([]uint64, 0, e.cfg.MaxProbes)
		scratch := newProbeScratch()
		for t := 0; t < L; t++ {
			fam := e.families[t]
			mf, hasMargins := fam.(MarginFamily)
			// Exact signature -> base-bucket anchor of its keeper bucket
			// in this table; built in partition order so it is
			// insertion-deterministic (lookup only, never ranged).
			sigAnchor := make(map[uint64]int, n)
			for _, b := range parts[t].Buckets {
				anchor := bucketOf[b.Indices[0]]
				for _, idx := range b.Indices {
					s := sigs.Tables[t][idx]
					if _, ok := sigAnchor[s]; !ok {
						sigAnchor[s] = anchor
					}
				}
			}
			bitsT := fam.Bits()
			for i := 0; i < n; i++ {
				var margins []float64
				if hasMargins && points != nil {
					margins = marginBuf[:bitsT]
					mf.SignatureMargins(points.Row(i), margins)
				}
				probes := probeSequence(sigs.Tables[t][i], bitsT, margins,
					e.cfg.ProbeRadius, e.cfg.MaxProbes, probeBuf[:0], scratch)
				for _, ps := range probes {
					if a, ok := sigAnchor[ps]; ok {
						uf.union(bucketOf[i], a)
					}
				}
			}
		}
	}

	return assembleComponents(base, bucketOf, uf, sigs.Tables[0]), nil
}

// assembleComponents turns the union-find over base buckets into the
// final partition: each component's indices are the sorted union of
// its base buckets' indices, its signature is that of the largest
// constituent base bucket (ties to the smaller signature), and buckets
// sort by signature — the same deterministic order contract as
// PartitionSignatures.
func assembleComponents(base *Partition, bucketOf []int, uf *unionFind, sigs0 []uint64) *Partition {
	compOf := make([]int, len(base.Buckets)) // base bucket -> component slot
	for i := range compOf {
		compOf[i] = -1
	}
	type comp struct {
		repSig  uint64
		repSize int
		indices []int
	}
	var comps []comp
	for bi, b := range base.Buckets {
		root := uf.find(bi)
		slot := compOf[root]
		if slot == -1 {
			slot = len(comps)
			compOf[root] = slot
			comps = append(comps, comp{repSig: b.Signature, repSize: len(b.Indices)})
		}
		c := &comps[slot]
		c.indices = append(c.indices, b.Indices...)
		if len(b.Indices) > c.repSize ||
			(len(b.Indices) == c.repSize && b.Signature < c.repSig) {
			c.repSig, c.repSize = b.Signature, len(b.Indices)
		}
	}
	buckets := make([]Bucket, len(comps))
	for i := range comps {
		sort.Ints(comps[i].indices)
		buckets[i] = Bucket{Signature: comps[i].repSig, Indices: comps[i].indices}
	}
	sort.Slice(buckets, func(a, b int) bool { return buckets[a].Signature < buckets[b].Signature })
	return &Partition{Buckets: buckets, Signatures: sigs0}
}

// ---- probe-sequence generation ----

// probeScratch reuses the candidate and subset buffers across points.
type probeScratch struct {
	cand   []int
	subset []probeEntry
	stack  []int
}

type probeEntry struct {
	sig   uint64
	score float64
	flips int
}

func newProbeScratch() *probeScratch {
	return &probeScratch{
		cand:   make([]int, 0, maxFlipBits),
		subset: make([]probeEntry, 0, maxEnumeratedProbes),
		stack:  make([]int, 0, maxFlipBits),
	}
}

// probeSequence returns up to maxProbes signatures obtained by flipping
// 1..radius bits of sig, ordered by increasing total margin of the
// flipped bits — least-confident flips first. margins may be nil, in
// which case every bit has unit margin and the order degenerates to
// the Hamming ball (radius-1 probes before radius-2, ties by flip
// pattern). Candidates are the maxFlipBits lowest-margin bits and the
// enumeration is capped, so the cost stays bounded for any radius.
func probeSequence(sig uint64, bitCount int, margins []float64, radius, maxProbes int, dst []uint64, sc *probeScratch) []uint64 {
	if radius > bitCount {
		radius = bitCount
	}
	if radius <= 0 || maxProbes <= 0 {
		return dst
	}
	// Candidate bits sorted by ascending margin, ties by bit index.
	cand := sc.cand[:0]
	for b := 0; b < bitCount; b++ {
		cand = append(cand, b)
	}
	if margins != nil {
		sort.SliceStable(cand, func(a, b int) bool { return margins[cand[a]] < margins[cand[b]] })
	}
	if len(cand) > maxFlipBits {
		cand = cand[:maxFlipBits]
	}
	if radius > len(cand) {
		radius = len(cand)
	}

	// Enumerate flip subsets of size 1..radius over the candidates,
	// smaller sizes first; the per-size lexicographic order over
	// margin-sorted candidates means truncation at the enumeration cap
	// keeps the lowest-margin combinations.
	entries := sc.subset[:0]
	marginOf := func(b int) float64 {
		if margins == nil {
			return 1
		}
		return margins[b]
	}
	for size := 1; size <= radius && len(entries) < maxEnumeratedProbes; size++ {
		stack := sc.stack[:0]
		var rec func(start int, mask uint64, score float64)
		rec = func(start int, mask uint64, score float64) {
			if len(entries) >= maxEnumeratedProbes {
				return
			}
			if len(stack) == size {
				entries = append(entries, probeEntry{sig: sig ^ mask, score: score, flips: size})
				return
			}
			for c := start; c < len(cand); c++ {
				stack = append(stack, cand[c])
				rec(c+1, mask|1<<uint(cand[c]), score+marginOf(cand[c]))
				stack = stack[:len(stack)-1]
			}
		}
		rec(0, 0, 0)
	}
	// Least total margin first; ties broken by fewer flips, then by
	// signature value, so the order is total and deterministic.
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].score < entries[b].score {
			return true
		}
		if entries[a].score > entries[b].score {
			return false
		}
		if entries[a].flips != entries[b].flips {
			return entries[a].flips < entries[b].flips
		}
		return entries[a].sig < entries[b].sig
	})
	if len(entries) > maxProbes {
		entries = entries[:maxProbes]
	}
	for _, e := range entries {
		dst = append(dst, e.sig)
	}
	sc.subset = entries[:0]
	return dst
}

// ---- deterministic size-capped union-find ----

// unionFind is a union-by-size forest over base-bucket ids with an
// optional merged-size cap. Roots are deterministic: the larger
// component wins, ties go to the smaller id.
type unionFind struct {
	parent []int
	size   []int
	limit  int
}

func newUnionFind(n, limit int) *unionFind {
	u := &unionFind{parent: make([]int, n), size: make([]int, n), limit: limit}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// union merges the components of a and b unless the result would
// exceed the cap; it reports whether a and b share a component after
// the call.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return true
	}
	if u.limit > 0 && u.size[ra]+u.size[rb] > u.limit {
		return false
	}
	if u.size[rb] > u.size[ra] || (u.size[rb] == u.size[ra] && rb < ra) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}

// HammingBall returns the number of signatures within radius r of an
// m-bit signature — the probe budget the plain ball fallback covers.
func HammingBall(m, r int) int {
	total := 0
	for k := 0; k <= r && k <= m; k++ {
		c := 1
		for i := 0; i < k; i++ {
			c = c * (m - i) / (i + 1)
		}
		total += c
	}
	return total
}
