package lsh

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPartitionSignaturesGroupsExactMatches(t *testing.T) {
	sigs := []uint64{5, 5, 9, 5, 9}
	p := PartitionSignatures(sigs, -1) // merging off
	if p.NumBuckets() != 2 {
		t.Fatalf("buckets = %d, want 2", p.NumBuckets())
	}
	var five, nine *Bucket
	for i := range p.Buckets {
		switch p.Buckets[i].Signature {
		case 5:
			five = &p.Buckets[i]
		case 9:
			nine = &p.Buckets[i]
		}
	}
	if five == nil || nine == nil {
		t.Fatalf("missing buckets: %+v", p.Buckets)
	}
	if len(five.Indices) != 3 || len(nine.Indices) != 2 {
		t.Fatalf("bucket sizes: %v %v", five.Indices, nine.Indices)
	}
}

func TestPartitionMergesNearDuplicates(t *testing.T) {
	// 0b100 and 0b101 differ in one bit: merged. 0b010 is 2 bits from
	// both: separate.
	sigs := []uint64{0b100, 0b101, 0b010, 0b100}
	p := PartitionSignatures(sigs, 1)
	if p.NumBuckets() != 2 {
		t.Fatalf("buckets = %d, want 2: %+v", p.NumBuckets(), p.Buckets)
	}
	// Merged bucket keeps the signature of its largest constituent
	// (0b100 appears twice).
	var mergedFound bool
	for _, b := range p.Buckets {
		if len(b.Indices) == 3 {
			mergedFound = true
			if b.Signature != 0b100 {
				t.Fatalf("merged signature = %b, want 100", b.Signature)
			}
		}
	}
	if !mergedFound {
		t.Fatalf("no merged bucket of size 3: %+v", p.Buckets)
	}
}

func TestPartitionMergeDoesNotChain(t *testing.T) {
	// 000 ~ 001 ~ 011: absorbed buckets must not keep absorbing, so the
	// chain stops — 000 takes 001 (distance 1) but 011 (distance 2 from
	// the keeper) stays separate. Transitive closure here would collapse
	// the whole signature space whenever most patterns are occupied.
	sigs := []uint64{0b000, 0b001, 0b011}
	p := PartitionSignatures(sigs, 1)
	if p.NumBuckets() != 2 {
		t.Fatalf("buckets = %d, want 2 (no chained merging): %+v", p.NumBuckets(), p.Buckets)
	}
	sizes := p.Sizes()
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if sizes[0] != 2 || sizes[1] != 1 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestPartitionFullHypercubeSurvivesMerging(t *testing.T) {
	// All 16 4-bit patterns occupied: transitive merging would collapse
	// everything into one bucket; keeper-based merging must retain
	// several buckets (every keeper absorbs at most its Hamming-1
	// neighbours).
	var sigs []uint64
	for s := uint64(0); s < 16; s++ {
		sigs = append(sigs, s, s) // two points per pattern
	}
	p := PartitionSignatures(sigs, 1)
	if p.NumBuckets() < 3 {
		t.Fatalf("buckets = %d, want >= 3", p.NumBuckets())
	}
	if p.LargestBucket() > 16 {
		t.Fatalf("largest bucket %d too large", p.LargestBucket())
	}
}

func TestPartitionLargerHammingRadius(t *testing.T) {
	sigs := []uint64{0b0000, 0b0011}
	if p := PartitionSignatures(sigs, 1); p.NumBuckets() != 2 {
		// distance 2 — not merged at radius 1
		t.Fatalf("radius 1: buckets = %d, want 2", p.NumBuckets())
	}
	if p := PartitionSignatures(sigs, 2); p.NumBuckets() != 1 {
		t.Fatalf("radius 2: buckets = %d, want 1", p.NumBuckets())
	}
}

func TestPartitionViaHasher(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := twoBlobs(rng, 30, 5)
	h, err := Fit(pts, Config{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := h.Partition(pts, 1)
	if p.NumBuckets() < 1 || p.NumBuckets() > 2 {
		t.Fatalf("blob partition has %d buckets", p.NumBuckets())
	}
	if len(p.Signatures) != 60 {
		t.Fatalf("signatures = %d, want 60", len(p.Signatures))
	}
	total := 0
	for _, b := range p.Buckets {
		total += len(b.Indices)
	}
	if total != 60 {
		t.Fatalf("partition covers %d points, want 60", total)
	}
}

func TestPartitionStatistics(t *testing.T) {
	p := PartitionSignatures([]uint64{1, 1, 1, 4, 4, 7}, -1)
	sizes := p.Sizes()
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if p.LargestBucket() != 3 {
		t.Fatalf("LargestBucket = %d", p.LargestBucket())
	}
	// 3^2 + 2^2 + 1^2 = 14
	if p.ApproxGramEntries() != 14 {
		t.Fatalf("ApproxGramEntries = %d, want 14", p.ApproxGramEntries())
	}
}

func TestPartitionEmpty(t *testing.T) {
	p := PartitionSignatures(nil, 1)
	if p.NumBuckets() != 0 || p.LargestBucket() != 0 || p.ApproxGramEntries() != 0 {
		t.Fatalf("empty partition: %+v", p)
	}
}

// Property: the buckets are a disjoint cover of all point indices, and
// approximated Gram entries never exceed the full N^2.
func TestPropPartitionIsDisjointCover(t *testing.T) {
	f := func(seed int64, merge bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		sigs := make([]uint64, n)
		for i := range sigs {
			sigs[i] = uint64(rng.Intn(16)) // dense signature space forces merges
		}
		radius := -1
		if merge {
			radius = 1
		}
		p := PartitionSignatures(sigs, radius)
		seen := make([]bool, n)
		for _, b := range p.Buckets {
			for _, idx := range b.Indices {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return p.ApproxGramEntries() <= int64(n)*int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with merging at radius 1, any two points whose signatures
// are identical always land in the same bucket.
func TestPropIdenticalSignaturesShareBucket(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		sigs := make([]uint64, n)
		for i := range sigs {
			sigs[i] = uint64(rng.Intn(8))
		}
		p := PartitionSignatures(sigs, 1)
		bucketOf := make(map[int]int)
		for bi, b := range p.Buckets {
			for _, idx := range b.Indices {
				bucketOf[idx] = bi
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if sigs[i] == sigs[j] && bucketOf[i] != bucketOf[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
