package lsh

import (
	"sort"
)

// PointSource provides row access to the dataset being hashed.
// *matrix.Dense satisfies it; adapters can expose any row-major store.
type PointSource interface {
	Rows() int
	Row(int) []float64
}

// Bucket is one group of points that will share a sub-similarity
// matrix: the indices of the dataset rows it contains and the signature
// that identifies it (after merging, the signature of the largest
// constituent bucket).
type Bucket struct {
	Signature uint64
	Indices   []int
}

// Partition is the result of hashing a dataset: the set of buckets,
// plus the signature of every point for diagnostics.
type Partition struct {
	Buckets    []Bucket
	Signatures []uint64
}

// Partition groups points by exact signature and then merges buckets
// whose signatures are within maxHamming bits of each other (the paper
// merges at Hamming distance <= M-P with P = M-1, i.e. distance 1, so
// the Eq. 6 constant-time test applies; larger radii fall back to a
// popcount comparison). maxHamming < 0 disables merging. It is
// PartitionWith specialized to the paper's hasher; both entry points
// share one implementation.
func (h *Hasher) Partition(points PointSource, maxHamming int) *Partition {
	return PartitionWith(h, points, maxHamming)
}

// PartitionSignatures builds the bucket partition from precomputed
// signatures. It is the reducer-side grouping step of the MapReduce
// formulation, split out so the distributed driver can reuse it.
//
// Merging is deliberately NOT transitive. The paper's pairwise merge
// (Eq. 6) repairs near-duplicate signatures; taking its transitive
// closure would collapse the entire signature space whenever most
// M-bit patterns are occupied (every pattern has a Hamming-1 chain to
// every other). Instead, buckets are processed in descending size:
// each still-unabsorbed bucket becomes a keeper and absorbs the
// smaller unabsorbed buckets within maxHamming of the keeper's own
// signature; absorbed buckets never absorb others, so no chains form —
// the keeper/absorbed distinction is the O(T^2) pairwise comparison of
// §3.3 with deterministic tie-breaking.
func PartitionSignatures(sigs []uint64, maxHamming int) *Partition {
	groups := make(map[uint64][]int)
	for i, s := range sigs {
		groups[s] = append(groups[s], i)
	}
	unique := make([]uint64, 0, len(groups))
	for s := range groups {
		unique = append(unique, s)
	}
	// Descending bucket size, ascending signature for determinism.
	sort.Slice(unique, func(a, b int) bool {
		la, lb := len(groups[unique[a]]), len(groups[unique[b]])
		if la != lb {
			return la > lb
		}
		return unique[a] < unique[b]
	})

	absorbedBy := make([]int, len(unique)) // index of keeper, -1 = keeper
	for i := range absorbedBy {
		absorbedBy[i] = -1
	}
	if maxHamming >= 0 {
		for i := 0; i < len(unique); i++ {
			if absorbedBy[i] != -1 {
				continue // absorbed buckets do not absorb others
			}
			for j := i + 1; j < len(unique); j++ {
				if absorbedBy[j] != -1 {
					continue
				}
				var close bool
				if maxHamming <= 1 {
					close = NearDuplicate(unique[i], unique[j])
				} else {
					close = HammingDistance(unique[i], unique[j]) <= maxHamming
				}
				if close {
					absorbedBy[j] = i
				}
			}
		}
	}

	keeperIdxs := make(map[int][]int) // keeper position -> point indices
	var keepers []int
	for pos, s := range unique {
		root := pos
		if absorbedBy[pos] != -1 {
			root = absorbedBy[pos]
		}
		if _, seen := keeperIdxs[root]; !seen && root == pos {
			keepers = append(keepers, pos)
		}
		keeperIdxs[root] = append(keeperIdxs[root], groups[s]...)
	}
	sort.Slice(keepers, func(a, b int) bool { return unique[keepers[a]] < unique[keepers[b]] })

	buckets := make([]Bucket, 0, len(keepers))
	for _, kpos := range keepers {
		idxs := keeperIdxs[kpos]
		sort.Ints(idxs)
		buckets = append(buckets, Bucket{Signature: unique[kpos], Indices: idxs})
	}
	return &Partition{Buckets: buckets, Signatures: sigs}
}

// NumBuckets returns the number of buckets after merging.
func (p *Partition) NumBuckets() int { return len(p.Buckets) }

// Sizes returns the per-bucket point counts.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.Buckets))
	for i, b := range p.Buckets {
		out[i] = len(b.Indices)
	}
	return out
}

// LargestBucket returns the size of the biggest bucket (0 when empty).
func (p *Partition) LargestBucket() int {
	var mx int
	for _, b := range p.Buckets {
		if len(b.Indices) > mx {
			mx = len(b.Indices)
		}
	}
	return mx
}

// ApproxGramEntries returns sum of Ni^2 over buckets — the number of
// similarity entries DASC computes and stores, the quantity behind the
// paper's Eq. 9 space analysis and Figure 6(b).
func (p *Partition) ApproxGramEntries() int64 {
	var total int64
	for _, b := range p.Buckets {
		n := int64(len(b.Indices))
		total += n * n
	}
	return total
}
