package lsh

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func twoBlobs(rng *rand.Rand, perBlob, d int) *matrix.Dense {
	pts := matrix.NewDense(2*perBlob, d)
	for i := 0; i < perBlob; i++ {
		for j := 0; j < d; j++ {
			pts.Set(i, j, 0.1*rng.Float64())
			pts.Set(perBlob+i, j, 0.9+0.1*rng.Float64())
		}
	}
	return pts
}

func TestDefaultM(t *testing.T) {
	// M = ceil(log2(n)/2) - 1 per §5.4, clamped to at least 1.
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {2, 1}, {1024, 4}, {4096, 5}, {1 << 20, 9}, {1 << 22, 10},
	}
	for _, c := range cases {
		if got := DefaultM(c.n); got != c.want {
			t.Errorf("DefaultM(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(matrix.NewDense(0, 0), Config{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	pts := matrix.NewDense(4, 2)
	if _, err := Fit(pts, Config{M: 65}); err == nil {
		t.Fatal("expected error for M > 64")
	}
	if _, err := Fit(pts, Config{M: -1}); err == nil {
		t.Fatal("expected error for negative M")
	}
	if _, err := Fit(pts, Config{Bins: 1}); err == nil {
		t.Fatal("expected error for Bins < 2")
	}
	if _, err := Fit(pts, Config{Policy: DimensionPolicy(99)}); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}

func TestFitTopSpanPrefersWideDimensions(t *testing.T) {
	// Dimension 1 has span 10, dimension 0 has span 0.1: with M=1 the
	// hash must use dimension 1.
	pts, _ := matrix.FromRows([][]float64{
		{0.0, 0}, {0.1, 10}, {0.05, 5}, {0.02, 2},
	})
	h, err := Fit(pts, Config{M: 1, Policy: TopSpan})
	if err != nil {
		t.Fatal(err)
	}
	if h.Dimensions()[0] != 1 {
		t.Fatalf("TopSpan chose dimension %d, want 1", h.Dimensions()[0])
	}
}

func TestFitTopSpanWrapsWhenMExceedsD(t *testing.T) {
	pts, _ := matrix.FromRows([][]float64{{0, 0}, {1, 2}})
	h, err := Fit(pts, Config{M: 5, Policy: TopSpan})
	if err != nil {
		t.Fatal(err)
	}
	if h.Bits() != 5 {
		t.Fatalf("Bits = %d, want 5", h.Bits())
	}
	for _, dim := range h.Dimensions() {
		if dim < 0 || dim > 1 {
			t.Fatalf("dimension %d out of range", dim)
		}
	}
}

func TestSignatureSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := twoBlobs(rng, 50, 8)
	h, err := Fit(pts, Config{M: 4, Policy: TopSpan})
	if err != nil {
		t.Fatal(err)
	}
	sigs := h.Signatures(pts)
	// Every point in a blob must share its blob's signature, and the
	// two blobs must differ.
	for i := 1; i < 50; i++ {
		if sigs[i] != sigs[0] {
			t.Fatalf("blob 0 signatures differ: %b vs %b", sigs[i], sigs[0])
		}
		if sigs[50+i] != sigs[50] {
			t.Fatalf("blob 1 signatures differ")
		}
	}
	if sigs[0] == sigs[50] {
		t.Fatal("blobs must hash to different signatures")
	}
}

func TestSpanWeightedDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := twoBlobs(rng, 20, 6)
	h1, err := Fit(pts, Config{M: 4, Policy: SpanWeighted, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Fit(pts, Config{M: 4, Policy: SpanWeighted, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := h1.Dimensions(), h2.Dimensions()
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("same seed must choose same dimensions")
		}
	}
}

func TestSpanWeightedSkewsTowardWideDimensions(t *testing.T) {
	// Build data where dim 0 has span 100 and dims 1..5 span 0.01: the
	// weighted policy should almost always pick dim 0.
	pts := matrix.NewDense(100, 6)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		pts.Set(i, 0, rng.Float64()*100)
		for j := 1; j < 6; j++ {
			pts.Set(i, j, rng.Float64()*0.01)
		}
	}
	h, err := Fit(pts, Config{M: 16, Policy: SpanWeighted, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count0 := 0
	for _, d := range h.Dimensions() {
		if d == 0 {
			count0++
		}
	}
	if count0 < 14 {
		t.Fatalf("span-weighted picked dim 0 only %d/16 times", count0)
	}
}

func TestUniformPolicyCoversDimensions(t *testing.T) {
	pts := matrix.NewDense(10, 4)
	rng := rand.New(rand.NewSource(5))
	for i := range pts.Data() {
		pts.Data()[i] = rng.Float64()
	}
	h, err := Fit(pts, Config{M: 32, Policy: Uniform, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, d := range h.Dimensions() {
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatalf("uniform policy used only %d distinct dimensions", len(seen))
	}
}

func TestConstantDimension(t *testing.T) {
	// A constant dataset must not crash; all points share one signature.
	pts := matrix.NewDense(8, 3)
	h, err := Fit(pts, Config{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	sigs := h.Signatures(pts)
	for _, s := range sigs {
		if s != sigs[0] {
			t.Fatal("constant data must share one signature")
		}
	}
}

func TestNearDuplicate(t *testing.T) {
	cases := []struct {
		a, b uint64
		want bool
	}{
		{0b1010, 0b1010, true},  // identical
		{0b1010, 0b1011, true},  // one bit
		{0b1010, 0b1001, false}, // two bits
		{0, 1 << 63, true},      // high bit
		{^uint64(0), 0, false},
	}
	for _, c := range cases {
		if got := NearDuplicate(c.a, c.b); got != c.want {
			t.Errorf("NearDuplicate(%b,%b) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingDistance(t *testing.T) {
	if HammingDistance(0b1100, 0b1010) != 2 {
		t.Fatal("HammingDistance(1100,1010) != 2")
	}
	if HammingDistance(7, 7) != 0 {
		t.Fatal("identical signatures must have distance 0")
	}
}

// Property: NearDuplicate agrees with HammingDistance <= 1.
func TestPropNearDuplicateMatchesHamming(t *testing.T) {
	f := func(a, b uint64) bool {
		return NearDuplicate(a, b) == (HammingDistance(a, b) <= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if TopSpan.String() != "top-span" || SpanWeighted.String() != "span-weighted" ||
		Uniform.String() != "uniform" {
		t.Fatal("policy names changed")
	}
	if DimensionPolicy(42).String() == "" {
		t.Fatal("unknown policy must still render")
	}
}

// TestSignaturesWorkerDeterminism: the parallel signature pass must
// produce the exact slice the serial loop produces, for any worker
// count, on an input large enough to cross the parallel cutoff.
func TestSignaturesWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := signatureParallelCutoff + 513 // crosses the cutoff with a ragged tail block
	pts := matrix.NewDense(n, 8)
	for i := range pts.Data() {
		pts.Data()[i] = rng.NormFloat64()
	}
	h, err := Fit(pts, Config{M: 12, Policy: TopSpan, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	h.signaturesInto(want, pts, 1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := make([]uint64, n)
		h.signaturesInto(got, pts, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: signature[%d] = %x, serial %x", workers, i, got[i], want[i])
			}
		}
	}
	// The public entry point must agree with the serial loop too.
	pub := h.Signatures(pts)
	for i := range want {
		if pub[i] != want[i] {
			t.Fatalf("Signatures()[%d] = %x, serial %x", i, pub[i], want[i])
		}
	}
}
