package lsh

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"

	"repro/internal/matrix"
)

// Family is the interface every locality-sensitive hashing scheme in
// this package satisfies. The paper's own hash is the span/threshold
// Hasher; §3.2 says the authors "studied various LSH families,
// including random projection, stable distributions, and Min-Wise
// Independent Permutations", and §5.1 suggests data-dependent spectral
// hashing for skewed data — those families are implemented here so the
// choice can be ablated.
type Family interface {
	// Signature maps a point to its M-bit signature.
	Signature(x []float64) uint64
	// Bits returns the signature width M.
	Bits() int
}

var _ Family = (*Hasher)(nil)

// MarginFamily is a Family that can report how confidently each
// signature bit was decided: margins[i] is the distance of the point to
// bit i's decision boundary, in the family's own projection units. The
// multi-probe generator flips low-margin bits first; families without a
// meaningful margin (MinHash, p-stable cells) fall back to a plain
// Hamming-ball probe order.
type MarginFamily interface {
	Family
	// SignatureMargins computes the signature and fills margins[0:Bits()]
	// with each bit's decision-boundary distance. margins must have at
	// least Bits() capacity.
	SignatureMargins(x []float64, margins []float64) uint64
}

// Refittable is a Family that can derive an independent sibling for an
// additional ensemble table: Refit(t) must return a family drawn from a
// t-derived seed so that tables hash independently. Families fitted
// from data (the span/threshold Hasher) are refitted by FitEnsemble
// instead and do not need this.
type Refittable interface {
	Family
	Refit(table int) (Family, error)
}

// PartitionWith hashes every row of points with the family and builds
// the merged bucket partition — the single partition entry point shared
// by Hasher.Partition and every other family. An *Ensemble family runs
// its full multi-table, multi-probe partition.
func PartitionWith(f Family, points PointSource, maxHamming int) *Partition {
	if e, ok := f.(*Ensemble); ok {
		return e.PartitionPoints(points, maxHamming)
	}
	n := points.Rows()
	sigs := make([]uint64, n)
	for i := 0; i < n; i++ {
		sigs[i] = f.Signature(points.Row(i))
	}
	return PartitionSignatures(sigs, maxHamming)
}

// ---- SimHash: Charikar's random hyperplane rounding ----

// SimHash is the classic random-projection family of Charikar (the
// paper's reference [2]): bit i is the sign of the inner product with a
// random Gaussian direction, taken around the data mean so that bits
// split the mass rather than the origin.
type SimHash struct {
	planes *matrix.Dense // M x d
	center []float64
}

// FitSimHash draws m Gaussian hyperplanes for d-dimensional data and
// centers them on the dataset mean.
func FitSimHash(points *matrix.Dense, m int, seed int64) (*SimHash, error) {
	n, d := points.Rows(), points.Cols()
	if n == 0 || d == 0 {
		return nil, errors.New("lsh: empty dataset")
	}
	if m < 1 || m > MaxBits {
		return nil, fmt.Errorf("lsh: M=%d out of range [1,%d]", m, MaxBits)
	}
	rng := rand.New(rand.NewSource(seed))
	planes := matrix.NewDense(m, d)
	for i := range planes.Data() {
		planes.Data()[i] = rng.NormFloat64()
	}
	center := make([]float64, d)
	for i := 0; i < n; i++ {
		matrix.AXPY(1, points.Row(i), center)
	}
	matrix.ScaleVec(1/float64(n), center)
	return &SimHash{planes: planes, center: center}, nil
}

// Bits implements Family.
func (s *SimHash) Bits() int { return s.planes.Rows() }

// Signature implements Family.
func (s *SimHash) Signature(x []float64) uint64 {
	return s.SignatureMargins(x, nil)
}

// SignatureMargins implements MarginFamily: a bit's margin is the
// absolute centered projection onto its hyperplane.
func (s *SimHash) SignatureMargins(x []float64, margins []float64) uint64 {
	var sig uint64
	for i := 0; i < s.planes.Rows(); i++ {
		plane := s.planes.Row(i)
		var dot float64
		for j, v := range plane {
			dot += v * (x[j] - s.center[j])
		}
		if dot >= 0 {
			sig |= 1 << uint(i)
		}
		if margins != nil {
			margins[i] = math.Abs(dot)
		}
	}
	return sig
}

// ---- p-stable (L2) quantized projections ----

// PStable is the Datar–Indyk family for Euclidean distance: each hash
// quantizes a Gaussian projection into cells of width w, and the cell
// ids are folded into a 64-bit signature. Cell identity (not Hamming
// proximity) is what is locality-sensitive here, so partitions built
// from it should disable near-duplicate merging.
type PStable struct {
	planes  *matrix.Dense
	offsets []float64
	width   float64
}

// FitPStable draws m projections with cell width w (w <= 0 defaults to
// the mean per-projection spread / 4).
func FitPStable(points *matrix.Dense, m int, w float64, seed int64) (*PStable, error) {
	n, d := points.Rows(), points.Cols()
	if n == 0 || d == 0 {
		return nil, errors.New("lsh: empty dataset")
	}
	if m < 1 {
		return nil, fmt.Errorf("lsh: M=%d must be positive", m)
	}
	rng := rand.New(rand.NewSource(seed))
	planes := matrix.NewDense(m, d)
	for i := range planes.Data() {
		planes.Data()[i] = rng.NormFloat64()
	}
	if w <= 0 {
		// Estimate projection spread on a sample.
		var spread float64
		for i := 0; i < m; i++ {
			plane := planes.Row(i)
			lo, hi := math.Inf(1), math.Inf(-1)
			for r := 0; r < n; r++ {
				v := matrix.Dot(plane, points.Row(r))
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			spread += hi - lo
		}
		w = spread / float64(m) / 4
		if w <= 0 {
			w = 1
		}
	}
	offsets := make([]float64, m)
	for i := range offsets {
		offsets[i] = rng.Float64() * w
	}
	return &PStable{planes: planes, offsets: offsets, width: w}, nil
}

// Bits implements Family. The folded signature uses the full word.
func (p *PStable) Bits() int { return 64 }

// Signature implements Family: the concatenated cell ids are folded
// through FNV-1a so equal cells collide exactly.
func (p *PStable) Signature(x []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < p.planes.Rows(); i++ {
		cell := int64(math.Floor((matrix.Dot(p.planes.Row(i), x) + p.offsets[i]) / p.width))
		for b := 0; b < 8; b++ {
			buf[b] = byte(cell >> (8 * b))
		}
		_, _ = h.Write(buf[:]) // fnv.Write cannot fail
	}
	return h.Sum64()
}

// ---- 1-bit MinHash over nonzero support ----

// MinHash implements b-bit (b=1) min-wise independent permutations over
// the set of nonzero feature indices — the natural reading of the
// paper's Min-Wise family for sparse tf-idf documents. Bit i is the
// parity of the minimum hash of the support under permutation i, so
// signatures remain Hamming-comparable.
type MinHash struct {
	a, b []uint64
	seed int64
}

// FitMinHash draws m universal-hash permutations.
func FitMinHash(m int, seed int64) (*MinHash, error) {
	if m < 1 || m > MaxBits {
		return nil, fmt.Errorf("lsh: M=%d out of range [1,%d]", m, MaxBits)
	}
	rng := rand.New(rand.NewSource(seed))
	mh := &MinHash{a: make([]uint64, m), b: make([]uint64, m), seed: seed}
	for i := 0; i < m; i++ {
		mh.a[i] = uint64(rng.Int63())<<1 | 1 // odd multiplier
		mh.b[i] = uint64(rng.Int63())
	}
	return mh, nil
}

// Refit implements Refittable: table t draws its permutations from a
// t-derived seed, so ensemble tables hash independently. MinHash has no
// per-bit margin, so probing falls back to the Hamming ball.
func (mh *MinHash) Refit(table int) (Family, error) {
	return FitMinHash(len(mh.a), mh.seed+int64(table)*ensembleSeedStride)
}

// Bits implements Family.
func (mh *MinHash) Bits() int { return len(mh.a) }

// Signature implements Family. Points with empty support hash to 0.
func (mh *MinHash) Signature(x []float64) uint64 {
	var sig uint64
	for i := range mh.a {
		min := uint64(math.MaxUint64)
		seen := false
		for j, v := range x {
			if matrix.IsZero(v) {
				continue
			}
			seen = true
			h := mh.a[i]*uint64(j) + mh.b[i]
			if h < min {
				min = h
			}
		}
		if seen && min>>13&1 == 1 { // a middle bit: low bits of a*j+b are biased
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// ---- Spectral hashing (data-dependent, balanced) ----

// Spectral is the data-dependent family the paper points to for skewed
// distributions (§5.1): bits threshold the projections onto the data's
// principal directions at their medians, which balances every bit by
// construction and decorrelates the splits.
type Spectral struct {
	directions *matrix.Dense // M x d principal directions
	medians    []float64
	center     []float64
}

// FitSpectral computes the top-m principal directions of the data by
// power iteration with deflation and places each threshold at the
// median projection.
func FitSpectral(points *matrix.Dense, m int, seed int64) (*Spectral, error) {
	n, d := points.Rows(), points.Cols()
	if n == 0 || d == 0 {
		return nil, errors.New("lsh: empty dataset")
	}
	if m < 1 || m > MaxBits {
		return nil, fmt.Errorf("lsh: M=%d out of range [1,%d]", m, MaxBits)
	}
	if m > d {
		m = d
	}
	center := make([]float64, d)
	for i := 0; i < n; i++ {
		matrix.AXPY(1, points.Row(i), center)
	}
	matrix.ScaleVec(1/float64(n), center)

	rng := rand.New(rand.NewSource(seed))
	dirs := matrix.NewDense(m, d)
	centered := make([][]float64, n)
	for i := range centered {
		row := append([]float64(nil), points.Row(i)...)
		matrix.AXPY(-1, center, row)
		centered[i] = row
	}
	// Power iteration with Gram-Schmidt deflation against earlier
	// directions; the covariance never materializes.
	proj := make([]float64, n)
	for c := 0; c < m; c++ {
		v := make([]float64, d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		for iter := 0; iter < 50; iter++ {
			// v <- Cov * v = X^T (X v) / n, deflated.
			for i, row := range centered {
				proj[i] = matrix.Dot(row, v)
			}
			next := make([]float64, d)
			for i, row := range centered {
				matrix.AXPY(proj[i], row, next)
			}
			for prev := 0; prev < c; prev++ {
				p := dirs.Row(prev)
				matrix.AXPY(-matrix.Dot(next, p), p, next)
			}
			if matrix.IsZero(matrix.Normalize(next)) {
				break
			}
			copy(v, next)
		}
		copy(dirs.Row(c), v)
	}

	medians := make([]float64, m)
	vals := make([]float64, n)
	for c := 0; c < m; c++ {
		dir := dirs.Row(c)
		for i, row := range centered {
			vals[i] = matrix.Dot(row, dir)
		}
		sort.Float64s(vals)
		medians[c] = vals[n/2]
	}
	return &Spectral{directions: dirs, medians: medians, center: center}, nil
}

// Bits implements Family.
func (s *Spectral) Bits() int { return s.directions.Rows() }

// Signature implements Family.
func (s *Spectral) Signature(x []float64) uint64 {
	return s.SignatureMargins(x, nil)
}

// SignatureMargins implements MarginFamily: a bit's margin is the
// distance of the principal-direction projection to its median split.
func (s *Spectral) SignatureMargins(x []float64, margins []float64) uint64 {
	var sig uint64
	for i := 0; i < s.directions.Rows(); i++ {
		dir := s.directions.Row(i)
		var dot float64
		for j, v := range dir {
			dot += v * (x[j] - s.center[j])
		}
		if dot > s.medians[i] {
			sig |= 1 << uint(i)
		}
		if margins != nil {
			margins[i] = math.Abs(dot - s.medians[i])
		}
	}
	return sig
}
