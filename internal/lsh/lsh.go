// Package lsh implements the locality-sensitive hashing front-end of
// DASC (paper §3.2 and §4.2): span-weighted selection of hashing
// dimensions, histogram-valley thresholds (Eq. 5), M-bit random-
// projection signatures, grouping of points into signature buckets, and
// merging of buckets whose signatures are near-duplicates (Eq. 6).
package lsh

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// DimensionPolicy selects how hashing dimensions are chosen.
type DimensionPolicy int

const (
	// TopSpan deterministically picks the M dimensions with the largest
	// numerical span (paper §4.2: "pick the dimensions with highest M
	// spans for applying the hash function").
	TopSpan DimensionPolicy = iota
	// SpanWeighted samples dimensions with probability proportional to
	// their span (paper Eq. 4), with replacement across hash functions.
	SpanWeighted
	// Uniform samples dimensions uniformly at random; exists only as an
	// ablation baseline for the span heuristic.
	Uniform
)

func (p DimensionPolicy) String() string {
	switch p {
	case TopSpan:
		return "top-span"
	case SpanWeighted:
		return "span-weighted"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("DimensionPolicy(%d)", int(p))
	}
}

// MaxBits is the largest supported signature width. Signatures are
// packed into a uint64, which covers the paper's regime comfortably
// (M = log2(N)/2 - 1 stays below 32 even at N = 2^64).
const MaxBits = 64

// Config controls signature generation.
type Config struct {
	// M is the number of signature bits (hash functions). If zero,
	// DefaultM(n) is used.
	M int
	// P is the minimum number of identical bits two signatures must
	// share for their buckets to be merged. If zero, M-1 is used, which
	// permits the O(1) single-differing-bit test of Eq. 6.
	P int
	// Policy selects the dimension-choice strategy (default TopSpan).
	Policy DimensionPolicy
	// Bins is the histogram resolution for threshold selection
	// (default 20, per Eq. 5).
	Bins int
	// Seed drives the randomized policies.
	Seed int64
}

// DefaultM returns the paper's signature width for a dataset of n
// points: M = ceil(log2(n)/2) - 1, clamped to [1, MaxBits].
func DefaultM(n int) int {
	if n < 2 {
		return 1
	}
	m := (bits.Len(uint(n-1))+1)/2 - 1
	if m < 1 {
		m = 1
	}
	if m > MaxBits {
		m = MaxBits
	}
	return m
}

// Hasher converts points to M-bit signatures. Bit i of a signature is 1
// when the point's value along dims[i] exceeds thresholds[i].
type Hasher struct {
	dims       []int
	thresholds []float64
}

// Bits returns the signature width M.
func (h *Hasher) Bits() int { return len(h.dims) }

// Dimensions returns the input dimension used by each hash function.
func (h *Hasher) Dimensions() []int { return append([]int(nil), h.dims...) }

// Thresholds returns the split threshold of each hash function.
func (h *Hasher) Thresholds() []float64 { return append([]float64(nil), h.thresholds...) }

// Fit builds a Hasher from the dataset, choosing dimensions and
// thresholds per the configured policy. It returns an error for empty
// datasets or out-of-range configuration.
func Fit(points *matrix.Dense, cfg Config) (*Hasher, error) {
	n, d := points.Rows(), points.Cols()
	if n == 0 || d == 0 {
		return nil, errors.New("lsh: empty dataset")
	}
	m := cfg.M
	if m == 0 {
		m = DefaultM(n)
	}
	if m < 1 || m > MaxBits {
		return nil, fmt.Errorf("lsh: M=%d out of range [1,%d]", m, MaxBits)
	}
	binCount := cfg.Bins
	if binCount == 0 {
		binCount = 20
	}
	if binCount < 2 {
		return nil, fmt.Errorf("lsh: Bins=%d must be >= 2", binCount)
	}

	mins, maxs, spans := dimensionSpans(points)
	dims, err := chooseDimensions(spans, m, cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}

	thresholds := make([]float64, m)
	for i, dim := range dims {
		thresholds[i] = valleyThreshold(points, dim, mins[dim], maxs[dim], spans[dim], binCount)
	}
	return &Hasher{dims: dims, thresholds: thresholds}, nil
}

// dimensionSpans computes per-dimension min, max and span. The span
// used for dimension *ranking* is robust: the 5th-to-95th percentile
// range plus a small full-range tiebreak. On dense data this equals
// max-min (the paper's §3.2 definition); on sparse representations
// like tf-idf it stops a dimension that is nonzero in a handful of
// points from outranking a dimension that actually spreads the corpus
// — the paper's own rationale for the span heuristic ("dimensions in
// which data points are as spread out as possible").
func dimensionSpans(points *matrix.Dense) (mins, maxs, spans []float64) {
	n, d := points.Rows(), points.Cols()
	mins = make([]float64, d)
	maxs = make([]float64, d)
	copy(mins, points.Row(0))
	copy(maxs, points.Row(0))
	for i := 1; i < n; i++ {
		row := points.Row(i)
		for j, v := range row {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	spans = make([]float64, d)
	col := make([]float64, n)
	for j := range spans {
		full := maxs[j] - mins[j]
		if matrix.IsZero(full) {
			continue
		}
		for i := 0; i < n; i++ {
			col[i] = points.At(i, j)
		}
		// Two order statistics, not a full per-column sort: SelectKth
		// returns exactly the value sorting would place at that index.
		lo := matrix.SelectKth(col, int(0.05*float64(n-1)))
		hi := matrix.SelectKth(col, int(math.Ceil(0.95*float64(n-1))))
		spans[j] = (hi - lo) + 1e-6*full
	}
	return mins, maxs, spans
}

// chooseDimensions implements the three policies. TopSpan may choose a
// dimension at most once (wrapping around if m > d); the random
// policies sample with replacement, matching the paper's independent
// hash functions.
func chooseDimensions(spans []float64, m int, policy DimensionPolicy, seed int64) ([]int, error) {
	d := len(spans)
	dims := make([]int, m)
	switch policy {
	case TopSpan:
		order := make([]int, d)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return spans[order[a]] > spans[order[b]] })
		for i := 0; i < m; i++ {
			dims[i] = order[i%d]
		}
	case SpanWeighted:
		var total float64
		for _, s := range spans {
			total += s
		}
		rng := rand.New(rand.NewSource(seed))
		if total <= 0 {
			for i := range dims {
				dims[i] = rng.Intn(d)
			}
			return dims, nil
		}
		for i := range dims {
			r := rng.Float64() * total
			var acc float64
			pick := d - 1
			for j, s := range spans {
				acc += s
				if acc >= r {
					pick = j
					break
				}
			}
			dims[i] = pick
		}
	case Uniform:
		rng := rand.New(rand.NewSource(seed))
		for i := range dims {
			dims[i] = rng.Intn(d)
		}
	default:
		return nil, fmt.Errorf("lsh: unknown dimension policy %d", int(policy))
	}
	return dims, nil
}

// valleyThreshold builds a binCount-bin histogram of the data along dim
// and returns the lower edge of the emptiest bin (Eq. 5): the split
// point that cuts through the sparsest region of the distribution, so
// that few near neighbours straddle it.
//
// Deviation from the verbatim Eq. 5: the candidate bins are restricted
// to those whose edge splits off at least balanceMin of the points on
// each side. On multimodal data (the regime the heuristic was designed
// for) the inter-mode valley satisfies this and the behaviour is
// identical; on unimodal data the verbatim rule picks an extreme tail
// bin, which sends almost every point to the same signature and
// destroys the partition. If no balanced bin exists, the median is
// used.
func valleyThreshold(points *matrix.Dense, dim int, min, max, span float64, binCount int) float64 {
	if span <= 0 {
		return min // constant dimension: threshold is degenerate anyway
	}
	const balanceMin = 0.15
	bins := make([]int, binCount)
	n := points.Rows()
	width := span / float64(binCount)
	for i := 0; i < n; i++ {
		v := points.At(i, dim)
		b := int((v - min) / width)
		if b >= binCount {
			b = binCount - 1 // v == max lands in the top bin
		}
		if b < 0 {
			b = 0
		}
		bins[b]++
	}
	// below[j] = number of points strictly left of bin j's lower edge.
	below := make([]int, binCount)
	for j := 1; j < binCount; j++ {
		below[j] = below[j-1] + bins[j-1]
	}
	s := -1
	lo := int(balanceMin * float64(n))
	hi := n - lo
	for j := 1; j < binCount; j++ {
		if below[j] < lo || below[j] > hi {
			continue
		}
		if s == -1 || bins[j] < bins[s] {
			s = j
		}
	}
	if s >= 0 {
		return min + float64(s)*width
	}
	// No balanced valley: fall back to the median value along dim.
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = points.At(i, dim)
	}
	return matrix.SelectKth(vals, n/2)
}

// Signature hashes one point. Bit i is set when x[dims[i]] > thresholds[i].
func (h *Hasher) Signature(x []float64) uint64 {
	var sig uint64
	for i, dim := range h.dims {
		if x[dim] > h.thresholds[i] {
			sig |= 1 << uint(i)
		}
	}
	return sig
}

// SignatureMargins implements MarginFamily: bit i's margin is the
// point's distance to the threshold along the hashing dimension,
// |x[dims[i]] - thresholds[i]|. Margins are only compared against each
// other within one point, so the per-dimension scale difference is
// acceptable: a point sitting on a valley boundary in any dimension is
// the one whose bucket assignment was least certain there.
func (h *Hasher) SignatureMargins(x []float64, margins []float64) uint64 {
	var sig uint64
	for i, dim := range h.dims {
		d := x[dim] - h.thresholds[i]
		if d > 0 {
			sig |= 1 << uint(i)
		}
		if margins != nil {
			margins[i] = math.Abs(d)
		}
	}
	return sig
}

const (
	// signatureBlockRows is the fixed row-block edge of the parallel
	// signature pass; each point's signature is a pure function of its
	// row, so any block decomposition yields identical output bits.
	signatureBlockRows = 1024
	// signatureParallelCutoff is the row count below which the
	// goroutine handoff costs more than the hashing.
	signatureParallelCutoff = 4096
)

// Signatures hashes every row of points. Large inputs are hashed in
// parallel over fixed row blocks; the result is identical for every
// worker count.
func (h *Hasher) Signatures(points *matrix.Dense) []uint64 {
	out := make([]uint64, points.Rows())
	h.signaturesInto(out, points, runtime.GOMAXPROCS(0))
	return out
}

// signaturesInto fills out[i] with the signature of row i using up to
// workers goroutines.
func (h *Hasher) signaturesInto(out []uint64, points *matrix.Dense, workers int) {
	n := points.Rows()
	if n < signatureParallelCutoff || workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = h.Signature(points.Row(i))
		}
		return
	}
	nb := (n + signatureBlockRows - 1) / signatureBlockRows
	if workers > nb {
		workers = nb
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				lo := b * signatureBlockRows
				hi := lo + signatureBlockRows
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					out[i] = h.Signature(points.Row(i))
				}
			}
		}()
	}
	wg.Wait()
}

// NearDuplicate reports whether two signatures differ in at most one
// bit, using the paper's O(1) bit manipulation (Eq. 6):
// ANS = (A xor B) & (A xor B - 1) is zero iff A xor B has at most one
// set bit.
func NearDuplicate(a, b uint64) bool {
	x := a ^ b
	return x&(x-1) == 0
}

// HammingDistance returns the number of differing bits.
func HammingDistance(a, b uint64) int { return bits.OnesCount64(a ^ b) }
