package lsh

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/matrix"
)

func fitTestEnsemble(t *testing.T, pts *matrix.Dense, ecfg EnsembleConfig) *Ensemble {
	t.Helper()
	e, err := FitEnsemble(pts, Config{M: 6, Seed: 5}, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEnsembleDegenerateMatchesPartitionSignatures pins the byte-
// identity contract: one table and probing off must route through
// PartitionSignatures unchanged.
func TestEnsembleDegenerateMatchesPartitionSignatures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := twoBlobs(rng, 50, 8)
	e := fitTestEnsemble(t, pts, EnsembleConfig{Tables: 1})

	sigs := e.Hash(pts)
	if sigs.NumTables() != 1 || sigs.Len() != 100 {
		t.Fatalf("signature set shape %d x %d", sigs.NumTables(), sigs.Len())
	}
	want := PartitionSignatures(sigs.Table(0), 1)
	got, err := e.Partition(pts, sigs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("degenerate ensemble partition differs:\ngot  %+v\nwant %+v", got, want)
	}
	// The base hasher must be the verbatim single-table fit.
	single, err := Fit(pts, Config{M: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if single.Signature(pts.Row(i)) != sigs.Table(0)[i] {
			t.Fatalf("point %d: table-0 signature differs from Fit's", i)
		}
	}
}

// TestFitEnsembleTablesIndependent checks tables 1..L-1 are genuinely
// different draws while the whole fit stays seed-deterministic.
func TestFitEnsembleTablesIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := twoBlobs(rng, 60, 10)
	e := fitTestEnsemble(t, pts, EnsembleConfig{Tables: 4})
	if e.Tables() != 4 {
		t.Fatalf("Tables = %d", e.Tables())
	}
	// Independence means independently drawn cut parameters, not
	// necessarily different signatures (cleanly separated blobs hash the
	// same under any sensible cut).
	fams := e.Families()
	base := fams[0].(*Hasher)
	for tbl := 1; tbl < 4; tbl++ {
		h := fams[tbl].(*Hasher)
		if reflect.DeepEqual(h.Dimensions(), base.Dimensions()) &&
			reflect.DeepEqual(h.Thresholds(), base.Thresholds()) {
			t.Errorf("table %d fit identical cut parameters to table 0; tables must be independent draws", tbl)
		}
	}
	e2 := fitTestEnsemble(t, pts, EnsembleConfig{Tables: 4})
	if !reflect.DeepEqual(e.Hash(pts), e2.Hash(pts)) {
		t.Error("same seed must fit identical ensembles")
	}
}

// TestEnsemblePartitionDeterministic runs the same non-degenerate
// partition at several GOMAXPROCS values; labels and bucket order must
// never vary (the parallel phase is the hash pass).
func TestEnsemblePartitionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := twoBlobs(rng, 80, 8)
	e := fitTestEnsemble(t, pts, EnsembleConfig{Tables: 4, ProbeRadius: 2})

	base := e.PartitionPoints(pts, 1)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			got := e.PartitionPoints(pts, 1)
			if !reflect.DeepEqual(got, base) {
				t.Fatalf("procs=%d rep=%d: partition differs", procs, rep)
			}
		}
	}
}

// TestEnsemblePartitionIsDisjointCover: whatever the dial, the merged
// buckets must cover every point exactly once.
func TestEnsemblePartitionIsDisjointCover(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := twoBlobs(rng, 70, 6)
	for _, ecfg := range []EnsembleConfig{
		{Tables: 2},
		{Tables: 3, ProbeRadius: 1},
		{Tables: 2, ProbeRadius: 2, MaxMergedBucket: 30},
	} {
		e := fitTestEnsemble(t, pts, ecfg)
		p := e.PartitionPoints(pts, 1)
		seen := make([]int, 140)
		for _, b := range p.Buckets {
			for _, idx := range b.Indices {
				seen[idx]++
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("%+v: point %d appears %d times", ecfg, i, c)
			}
		}
	}
}

// TestEnsembleMergesAcrossTables builds two stub tables where table 1
// links two base buckets that table 0 separates; the merged partition
// must join them.
func TestEnsembleMergesAcrossTables(t *testing.T) {
	t0 := mapFamily{bits: 4, sigs: []uint64{0, 0, 5, 5}}
	t1 := mapFamily{bits: 4, sigs: []uint64{9, 9, 9, 9}} // all co-bucketed
	e, err := NewEnsemble([]Family{t0, t1}, EnsembleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := e.PartitionPoints(indexPoints(4), -1)
	if p.NumBuckets() != 1 || len(p.Buckets[0].Indices) != 4 {
		t.Fatalf("cross-table merge failed: %+v", p.Buckets)
	}

	// With the cap below the merged size the union is refused and the
	// base buckets survive.
	capped, err := NewEnsemble([]Family{t0, t1}, EnsembleConfig{MaxMergedBucket: 3})
	if err != nil {
		t.Fatal(err)
	}
	p = capped.PartitionPoints(indexPoints(4), -1)
	if p.NumBuckets() != 2 {
		t.Fatalf("cap ignored: %+v", p.Buckets)
	}
	for _, b := range p.Buckets {
		if len(b.Indices) > 3 {
			t.Fatalf("bucket of %d exceeds cap 3", len(b.Indices))
		}
	}
}

// TestEnsembleMultiProbeRecoversNearMiss puts two points one bit apart
// in the only table; exact bucketing separates them, one probe flip
// reunites them.
func TestEnsembleMultiProbeRecoversNearMiss(t *testing.T) {
	fam := mapFamily{bits: 4, sigs: []uint64{0b0101, 0b0100}}
	exact, err := NewEnsemble([]Family{fam, fam}, EnsembleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if p := exact.PartitionPoints(indexPoints(2), -1); p.NumBuckets() != 2 {
		t.Fatalf("exact bucketing should separate: %+v", p.Buckets)
	}
	probing, err := NewEnsemble([]Family{fam, fam}, EnsembleConfig{ProbeRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := probing.PartitionPoints(indexPoints(2), -1); p.NumBuckets() != 1 {
		t.Fatalf("radius-1 probe should merge: %+v", p.Buckets)
	}
}

// TestProbeSequenceMarginOrder checks the flip order: lowest-margin
// bits first, then pairs by ascending total margin, never the original
// signature, no duplicates, capped length.
func TestProbeSequenceMarginOrder(t *testing.T) {
	margins := []float64{0.9, 0.1, 0.5, 0.3}
	sc := newProbeScratch()
	probes := probeSequence(0b0000, 4, margins, 2, 100, nil, sc)

	want := []uint64{
		0b0010,          // flip bit 1 (margin .1)
		0b1000,          // bit 3 (.3)
		0b1010,          // bits 1+3 (.4)
		0b0100,          // bit 2 (.5)
		0b0110,          // bits 1+2 (.6)
		0b1100,          // bits 2+3 (.8)
		0b0001,          // bit 0 (.9)
		0b0011,          // bits 0+1 (1.0)
		0b1001,          // bits 0+3 (1.2)
		0b0101,          // bits 0+2 (1.4)
	}
	if !reflect.DeepEqual(probes, want) {
		t.Fatalf("probe order:\ngot  %04b\nwant %04b", probes, want)
	}

	// Hamming fallback: nil margins, singles before pairs, sig ascending.
	probes = probeSequence(0b0000, 3, nil, 2, 100, nil, sc)
	want = []uint64{0b001, 0b010, 0b100, 0b011, 0b101, 0b110}
	if !reflect.DeepEqual(probes, want) {
		t.Fatalf("hamming fallback order:\ngot  %03b\nwant %03b", probes, want)
	}

	// maxProbes truncates.
	if got := probeSequence(0, 6, nil, 2, 4, nil, sc); len(got) != 4 {
		t.Fatalf("maxProbes=4 returned %d probes", len(got))
	}
	// Radius 0 yields nothing.
	if got := probeSequence(0, 6, nil, 0, 10, nil, sc); len(got) != 0 {
		t.Fatalf("radius 0 returned %d probes", len(got))
	}
}

// TestEnsembleConfigValidation exercises the dial bounds.
func TestEnsembleConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := twoBlobs(rng, 20, 6)
	cfg := Config{M: 6, Seed: 1}
	for _, bad := range []EnsembleConfig{
		{Tables: -1},
		{Tables: MaxTables + 1},
		{ProbeRadius: -1},
		{ProbeRadius: 7}, // > M
		{MaxMergedBucket: -1},
		{MaxProbes: -1},
	} {
		if _, err := FitEnsemble(pts, cfg, bad); err == nil {
			t.Errorf("FitEnsemble accepted %+v", bad)
		}
	}
	if _, err := NewEnsemble(nil, EnsembleConfig{}); err == nil {
		t.Error("NewEnsemble accepted empty family list")
	}
}

// TestEnsembleFromMinHashRefits grows a multi-table ensemble out of one
// MinHash family; refit tables must be deterministic and distinct.
func TestEnsembleFromMinHashRefits(t *testing.T) {
	mh, err := FitMinHash(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := EnsembleFrom(mh, EnsembleConfig{Tables: 3, ProbeRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Tables() != 3 {
		t.Fatalf("Tables = %d", e.Tables())
	}
	v := []float64{0, 2, 0, 1, 5, 0, 0, 3}
	fams := e.Families()
	if fams[1].Signature(v) == fams[0].Signature(v) && fams[2].Signature(v) == fams[0].Signature(v) {
		t.Error("refit tables hash identically to table 0")
	}
	e2, _ := EnsembleFrom(mh, EnsembleConfig{Tables: 3})
	for tbl := 0; tbl < 3; tbl++ {
		if e.Families()[tbl].Signature(v) != e2.Families()[tbl].Signature(v) {
			t.Fatalf("table %d refit is not deterministic", tbl)
		}
	}
	// A non-refittable family cannot grow extra tables...
	sim := mapFamily{bits: 4, sigs: []uint64{1}}
	if _, err := EnsembleFrom(sim, EnsembleConfig{Tables: 2}); err == nil {
		t.Error("EnsembleFrom must reject Tables>1 for non-Refittable families")
	}
	// ...but passes through at Tables=1, and an Ensemble is identity.
	if _, err := EnsembleFrom(sim, EnsembleConfig{}); err != nil {
		t.Errorf("Tables=1 non-Refittable: %v", err)
	}
	if again, _ := EnsembleFrom(e, EnsembleConfig{}); again != e {
		t.Error("EnsembleFrom(*Ensemble) must be identity")
	}
}

// TestHammingBall pins the probe-budget helper.
func TestHammingBall(t *testing.T) {
	for _, tc := range []struct{ m, r, want int }{
		{4, 0, 1}, {4, 1, 5}, {4, 2, 11}, {3, 3, 8}, {6, 2, 22},
	} {
		if got := HammingBall(tc.m, tc.r); got != tc.want {
			t.Errorf("HammingBall(%d,%d) = %d, want %d", tc.m, tc.r, got, tc.want)
		}
	}
}

func BenchmarkEnsemblePartition(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	pts := twoBlobs(rng, 512, 16)
	for _, ecfg := range []struct {
		name string
		cfg  EnsembleConfig
	}{
		{"L1R0", EnsembleConfig{Tables: 1}},
		{"L4R1", EnsembleConfig{Tables: 4, ProbeRadius: 1}},
	} {
		b.Run(ecfg.name, func(b *testing.B) {
			e, err := FitEnsemble(pts, Config{M: 8, Seed: 2}, ecfg.cfg)
			if err != nil {
				b.Fatal(err)
			}
			sigs := e.Hash(pts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Partition(pts, sigs, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// mapFamily is a stub family with one fixed signature per point index;
// points are their own index via indexPoints.
type mapFamily struct {
	bits int
	sigs []uint64
}

func (f mapFamily) Bits() int { return f.bits }
func (f mapFamily) Signature(v []float64) uint64 {
	return f.sigs[int(v[0])]
}

// indexPoints builds an n x 1 matrix whose row i holds the value i, so
// stub families can address per-point signatures.
func indexPoints(n int) *matrix.Dense {
	pts := matrix.NewDense(n, 1)
	for i := 0; i < n; i++ {
		pts.Row(i)[0] = float64(i)
	}
	return pts
}
