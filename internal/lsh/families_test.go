package lsh

import (
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// families under test that work on dense blob data.
func denseFamilies(t *testing.T, pts *matrix.Dense, m int) map[string]Family {
	t.Helper()
	sim, err := FitSimHash(pts, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := FitSpectral(pts, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	paper, err := Fit(pts, Config{M: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Family{"simhash": sim, "spectral": spec, "paper": paper}
}

func TestFamiliesSeparateBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := twoBlobs(rng, 40, 8)
	for name, f := range denseFamilies(t, pts, 6) {
		if f.Bits() != 6 {
			t.Fatalf("%s: Bits = %d", name, f.Bits())
		}
		// Same-blob signatures must agree far more often than
		// cross-blob ones.
		same, cross := 0, 0
		for i := 0; i < 40; i++ {
			if f.Signature(pts.Row(i)) == f.Signature(pts.Row((i+1)%40)) {
				same++
			}
			if f.Signature(pts.Row(i)) == f.Signature(pts.Row(40+i)) {
				cross++
			}
		}
		if same <= cross {
			t.Fatalf("%s: same=%d cross=%d", name, same, cross)
		}
	}
}

func TestFamiliesValidation(t *testing.T) {
	empty := matrix.NewDense(0, 0)
	if _, err := FitSimHash(empty, 4, 1); err == nil {
		t.Fatal("SimHash must reject empty data")
	}
	if _, err := FitSpectral(empty, 4, 1); err == nil {
		t.Fatal("Spectral must reject empty data")
	}
	if _, err := FitPStable(empty, 4, 0, 1); err == nil {
		t.Fatal("PStable must reject empty data")
	}
	pts := matrix.NewDense(4, 2)
	if _, err := FitSimHash(pts, 0, 1); err == nil {
		t.Fatal("SimHash must reject M=0")
	}
	if _, err := FitSpectral(pts, 99, 1); err == nil {
		t.Fatal("Spectral must reject M>64")
	}
	if _, err := FitMinHash(0, 1); err == nil {
		t.Fatal("MinHash must reject M=0")
	}
}

func TestPartitionWith(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := twoBlobs(rng, 30, 6)
	sim, err := FitSimHash(pts, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := PartitionWith(sim, pts, 1)
	total := 0
	for _, b := range p.Buckets {
		total += len(b.Indices)
	}
	if total != 60 {
		t.Fatalf("partition covers %d points", total)
	}
	if p.NumBuckets() < 2 {
		t.Fatalf("blobs should land in separate buckets, got %d", p.NumBuckets())
	}
}

func TestSpectralBitsBalanced(t *testing.T) {
	// Median thresholds must split the data roughly in half per bit —
	// the property the paper wants for skewed data.
	rng := rand.New(rand.NewSource(4))
	pts := matrix.NewDense(200, 10)
	for i := range pts.Data() {
		pts.Data()[i] = rng.ExpFloat64() // heavily skewed
	}
	spec, err := FitSpectral(pts, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < 4; bit++ {
		ones := 0
		for i := 0; i < 200; i++ {
			if spec.Signature(pts.Row(i))>>uint(bit)&1 == 1 {
				ones++
			}
		}
		if ones < 40 || ones > 160 {
			t.Fatalf("bit %d fires for %d/200 points; want balanced", bit, ones)
		}
	}
}

func TestMinHashSets(t *testing.T) {
	mh, err := FitMinHash(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mh.Bits() != 16 {
		t.Fatalf("Bits = %d", mh.Bits())
	}
	// Identical supports hash identically regardless of magnitudes.
	a := []float64{0, 3, 0, 1, 0, 0.5}
	b := []float64{0, 9, 0, 7, 0, 2.5}
	if mh.Signature(a) != mh.Signature(b) {
		t.Fatal("MinHash must depend only on the support")
	}
	// Similar supports are closer in Hamming distance than disjoint ones.
	c := []float64{0, 3, 0, 1, 0, 0} // drops one element
	d := []float64{5, 0, 2, 0, 7, 0} // disjoint support
	near := HammingDistance(mh.Signature(a), mh.Signature(c))
	far := HammingDistance(mh.Signature(a), mh.Signature(d))
	if near >= far {
		t.Fatalf("near=%d far=%d", near, far)
	}
	// Empty support maps to 0.
	if mh.Signature([]float64{0, 0, 0}) != 0 {
		t.Fatal("empty support must hash to 0")
	}
}

func TestPStableCells(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := twoBlobs(rng, 25, 5)
	ps, err := FitPStable(pts, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Bits() != 64 {
		t.Fatalf("Bits = %d", ps.Bits())
	}
	// Near-identical points share a cell signature.
	x := pts.Row(0)
	y := append([]float64(nil), x...)
	if ps.Signature(x) != ps.Signature(y) {
		t.Fatal("identical points must share cells")
	}
	// The two blobs land in different cells.
	if ps.Signature(pts.Row(0)) == ps.Signature(pts.Row(30)) {
		t.Fatal("distant blobs must not share cells")
	}
}

func TestFamiliesDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := twoBlobs(rng, 20, 4)
	s1, _ := FitSimHash(pts, 8, 42)
	s2, _ := FitSimHash(pts, 8, 42)
	for i := 0; i < pts.Rows(); i++ {
		if s1.Signature(pts.Row(i)) != s2.Signature(pts.Row(i)) {
			t.Fatal("SimHash not deterministic per seed")
		}
	}
}
