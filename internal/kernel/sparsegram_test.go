package kernel

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/matrix"
)

// TestSubGramSparseZeroEpsMatchesDense: at ε=0 the CSR holds every
// off-diagonal entry, so densifying it must reproduce SubGram up to
// the fast path's rounding (the values come from the same DotBlock
// engine; only the strip shapes differ).
func TestSubGramSparseZeroEpsMatchesDense(t *testing.T) {
	pts := randPoints(250, 12, 1) // above parallelCutoff via indices? n=250 > 192
	indices := make([]int, 0, 250)
	for i := 0; i < 250; i++ {
		indices = append(indices, i)
	}
	for _, k := range []Kernel{NewGaussian(2), NewCosine(), Func(NewGaussian(2).Eval)} {
		dense := SubGram(pts, indices, k)
		csr, err := SubGramSparse(pts, indices, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if csr.NNZ() != 250*249 {
			t.Fatalf("nnz = %d, want every off-diagonal entry", csr.NNZ())
		}
		got := csr.Dense()
		for i := 0; i < 250; i++ {
			for j := 0; j < 250; j++ {
				if math.Abs(got.At(i, j)-dense.At(i, j)) > 1e-12 {
					t.Fatalf("kernel %T (%d,%d): sparse %v dense %v", k, i, j, got.At(i, j), dense.At(i, j))
				}
			}
		}
	}
}

// TestSubGramSparseThreshold checks the ε cut: every stored entry is
// ≥ ε (Gaussian values are positive), every dropped dense entry < ε,
// and the matrix stays symmetric.
func TestSubGramSparseThreshold(t *testing.T) {
	pts := randPoints(120, 8, 2)
	indices := make([]int, 0, 60)
	for i := 0; i < 120; i += 2 {
		indices = append(indices, i)
	}
	kf := NewGaussian(0.8)
	const eps = 1e-3
	csr, err := SubGramSparse(pts, indices, kf, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !csr.IsSymmetric(0) {
		t.Fatal("thresholded Gram must stay exactly symmetric")
	}
	dense := SubGram(pts, indices, kf)
	n := len(indices)
	kept := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := csr.At(i, j)
			dv := dense.At(i, j)
			if v != 0 {
				kept++
				if v < eps {
					t.Fatalf("(%d,%d): stored %v below eps", i, j, v)
				}
				if math.Abs(v-dv) > 1e-12 {
					t.Fatalf("(%d,%d): stored %v dense %v", i, j, v, dv)
				}
			} else if i != j && dv >= eps*(1+1e-9) {
				t.Fatalf("(%d,%d): dropped but dense %v >= eps", i, j, dv)
			}
		}
	}
	if kept == 0 || kept == n*(n-1) {
		t.Fatalf("threshold not exercised: kept %d of %d", kept, n*(n-1))
	}
	if csr.Fill() >= 1 {
		t.Fatalf("fill %v", csr.Fill())
	}
}

// TestSubGramSparseGenericKernel routes an unrecognized kernel down the
// per-pair fallback and checks the magnitude threshold (cosine-like
// kernels emit negative similarities that must survive by |v|).
func TestSubGramSparseGenericKernel(t *testing.T) {
	pts := randPoints(40, 6, 3)
	indices := make([]int, 40)
	for i := range indices {
		indices[i] = i
	}
	dot := Func(func(x, y []float64) float64 { return matrix.Dot(x, y) })
	const eps = 0.5
	csr, err := SubGramSparse(pts, indices, dot, eps)
	if err != nil {
		t.Fatal(err)
	}
	negatives := 0
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			v := csr.At(i, j)
			want := matrix.Dot(pts.Row(i), pts.Row(j))
			switch {
			case i == j:
				if v != 0 {
					t.Fatal("diagonal must stay zero")
				}
			case math.Abs(want) >= eps:
				if v != want {
					t.Fatalf("(%d,%d) = %v, want %v", i, j, v, want)
				}
				if v < 0 {
					negatives++
				}
			default:
				if v != 0 {
					t.Fatalf("(%d,%d) = %v, want dropped (|%v| < eps)", i, j, v, want)
				}
			}
		}
	}
	if negatives == 0 {
		t.Fatal("expected surviving negative entries under the magnitude threshold")
	}
}

// TestSubGramSparseWorkerDeterminism: the emitted CSR must be bitwise
// identical at GOMAXPROCS=1 and the ambient worker count.
func TestSubGramSparseWorkerDeterminism(t *testing.T) {
	pts := randPoints(400, 10, 4)
	indices := make([]int, 400)
	for i := range indices {
		indices[i] = i
	}
	kf := NewGaussian(1.2)
	base, err := SubGramSparse(pts, indices, kf, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, err := SubGramSparse(pts, indices, kf, 1e-2)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if base.NNZ() != serial.NNZ() {
		t.Fatalf("nnz %d vs %d", base.NNZ(), serial.NNZ())
	}
	for i := 0; i < 400; i++ {
		for j := 0; j < 400; j++ {
			if base.At(i, j) != serial.At(i, j) {
				t.Fatalf("(%d,%d): parallel %v serial %v", i, j, base.At(i, j), serial.At(i, j))
			}
		}
	}
}

func TestSubGramSparseValidation(t *testing.T) {
	pts := randPoints(4, 2, 5)
	if _, err := SubGramSparse(pts, []int{0, 1}, NewGaussian(1), -0.1); err == nil {
		t.Fatal("expected error for negative eps")
	}
	if _, err := SubGramSparse(pts, []int{0, 1}, NewGaussian(1), math.NaN()); err == nil {
		t.Fatal("expected error for NaN eps")
	}
	empty, err := SubGramSparse(pts, nil, NewGaussian(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	// nil indices means all rows, mirroring SubGramInto's contract.
	if empty.N() != 4 {
		t.Fatalf("nil indices: N = %d", empty.N())
	}
	none, err := SubGramSparse(pts, []int{}, NewGaussian(1), 0)
	if err != nil || none.N() != 0 {
		t.Fatalf("empty indices: %v N=%d", err, none.N())
	}
}

func TestGramSparseMatchesGram(t *testing.T) {
	pts := randPoints(64, 5, 6)
	kf := NewGaussian(1)
	csr, err := GramSparse(pts, kf, 0)
	if err != nil {
		t.Fatal(err)
	}
	dense := Gram(pts, kf)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if math.Abs(csr.At(i, j)-dense.At(i, j)) > 1e-12 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, csr.At(i, j), dense.At(i, j))
			}
		}
	}
}

func TestSubGramPooledMatchesSubGram(t *testing.T) {
	pts := randPoints(30, 4, 7)
	indices := []int{1, 5, 9, 13, 21, 29}
	kf := NewGaussian(1.5)
	var scratch []float64
	sub, err := SubGramPooled(pts, indices, kf, &scratch, false)
	if err != nil {
		t.Fatal(err)
	}
	want := SubGram(pts, indices, kf)
	for i := 0; i < len(indices); i++ {
		for j := 0; j < len(indices); j++ {
			if sub.At(i, j) != want.At(i, j) {
				t.Fatalf("(%d,%d): pooled %v direct %v", i, j, sub.At(i, j), want.At(i, j))
			}
		}
	}
	withDiag, err := SubGramPooled(pts, indices, kf, &scratch, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		want := kf.Eval(pts.Row(idx), pts.Row(idx))
		if withDiag.At(i, i) != want {
			t.Fatalf("diag %d = %v, want %v", i, withDiag.At(i, i), want)
		}
	}
}
