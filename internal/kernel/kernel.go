// Package kernel builds Gram (similarity) matrices: the full O(N^2)
// matrix used by the SC baseline and the paper's per-bucket approximated
// matrices (DASC step 3). The Gaussian RBF of Eq. 1 is the default
// kernel; the bandwidth can be fixed or derived from the data by the
// median-distance heuristic.
package kernel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/matrix"
)

// Func is a positive-semidefinite similarity kernel over point pairs.
type Func func(x, y []float64) float64

// Gaussian returns the RBF kernel of Eq. 1 with bandwidth sigma:
// exp(-||x-y||^2 / (2 sigma^2)). It panics if sigma <= 0.
func Gaussian(sigma float64) Func {
	if sigma <= 0 {
		matrix.Panicf("kernel: sigma %v must be positive", sigma)
	}
	inv := 1 / (2 * sigma * sigma)
	return func(x, y []float64) float64 {
		return math.Exp(-matrix.SqDist(x, y) * inv)
	}
}

// Polynomial returns the kernel (gamma <x,y> + c)^degree, the second
// classic positive-semidefinite kernel after the RBF. degree must be a
// positive integer, gamma positive.
func Polynomial(degree int, gamma, c float64) Func {
	if degree < 1 || gamma <= 0 {
		matrix.Panicf("kernel: polynomial degree %d gamma %v", degree, gamma)
	}
	return func(x, y []float64) float64 {
		base := gamma*matrix.Dot(x, y) + c
		out := 1.0
		for i := 0; i < degree; i++ {
			out *= base
		}
		return out
	}
}

// Cosine returns the cosine-similarity kernel <x,y>/(|x||y|), the
// natural choice for the tf-idf document vectors of §5.2 (where rows
// are unit length it reduces to the dot product). Zero vectors yield 0.
func Cosine() Func {
	return func(x, y []float64) float64 {
		nx, ny := matrix.Norm2(x), matrix.Norm2(y)
		if matrix.IsZero(nx) || matrix.IsZero(ny) {
			return 0
		}
		return matrix.Dot(x, y) / (nx * ny)
	}
}

// MedianSigma estimates a bandwidth as the median pairwise distance of
// a random sample of the data — the standard heuristic when the paper's
// fixed sigma is not supplied. sampleSize caps the pairs examined.
func MedianSigma(points *matrix.Dense, sampleSize int, seed int64) float64 {
	n := points.Rows()
	if n < 2 {
		return 1
	}
	if sampleSize <= 0 {
		sampleSize = 256
	}
	rng := rand.New(rand.NewSource(seed))
	var dists []float64
	pairs := sampleSize
	if max := n * (n - 1) / 2; pairs > max {
		pairs = max
	}
	for len(dists) < pairs {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		dists = append(dists, matrix.Dist(points.Row(i), points.Row(j)))
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med <= 0 {
		return 1
	}
	return med
}

// Gram computes the full N x N similarity matrix with zero diagonal,
// matching the paper's reducer (Algorithm 2 sets S[i,i] = 0, the
// standard spectral-clustering convention of Ng et al.). Rows are
// computed in parallel.
func Gram(points *matrix.Dense, k Func) *matrix.Dense {
	n := points.Rows()
	s := matrix.NewDense(n, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				xi := points.Row(i)
				row := s.Row(i)
				for j := i + 1; j < n; j++ {
					row[j] = k(xi, points.Row(j))
				}
			}
		}()
	}
	wg.Wait()
	// Mirror the upper triangle.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s.Set(j, i, s.At(i, j))
		}
	}
	return s
}

// GramWithDiagonal computes the full similarity matrix including the
// self-similarities k(x,x) on the diagonal. Spectral clustering uses
// the zero-diagonal Gram; kernel machines like SVM and kernel PCA need
// the true diagonal (SMO's curvature term 2K(i,j)-K(i,i)-K(j,j) is
// never negative without it).
func GramWithDiagonal(points *matrix.Dense, k Func) *matrix.Dense {
	s := Gram(points, k)
	for i := 0; i < points.Rows(); i++ {
		s.Set(i, i, k(points.Row(i), points.Row(i)))
	}
	return s
}

// SubGram computes the similarity matrix restricted to the points whose
// dataset rows are listed in indices — one DASC bucket's portion of the
// approximated Gram matrix.
func SubGram(points *matrix.Dense, indices []int, k Func) *matrix.Dense {
	n := len(indices)
	s := matrix.NewDense(n, n)
	for a := 0; a < n; a++ {
		xa := points.Row(indices[a])
		for b := a + 1; b < n; b++ {
			v := k(xa, points.Row(indices[b]))
			s.Set(a, b, v)
			s.Set(b, a, v)
		}
	}
	return s
}

// ErrIndexRange reports a bucket index outside the dataset.
var ErrIndexRange = errors.New("kernel: bucket index out of range")

// ApproxGram assembles the full-size N x N block-diagonal approximation
// of the Gram matrix implied by a bucket partition: similarities are
// computed only within buckets and cross-bucket entries stay zero. It
// exists for the Frobenius-norm comparison of Figure 5; the production
// DASC path never materializes it.
func ApproxGram(points *matrix.Dense, buckets [][]int, k Func) (*matrix.Dense, error) {
	n := points.Rows()
	s := matrix.NewDense(n, n)
	for _, idxs := range buckets {
		for _, i := range idxs {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("%w: %d with N=%d", ErrIndexRange, i, n)
			}
		}
		for a := 0; a < len(idxs); a++ {
			xa := points.Row(idxs[a])
			for b := a + 1; b < len(idxs); b++ {
				v := k(xa, points.Row(idxs[b]))
				s.Set(idxs[a], idxs[b], v)
				s.Set(idxs[b], idxs[a], v)
			}
		}
	}
	return s, nil
}

// GramBytes returns the storage cost, in bytes, of a dense N x N Gram
// matrix at the paper's single-precision 4 bytes per entry (Eq. 12).
func GramBytes(n int) int64 { return 4 * int64(n) * int64(n) }

// ApproxGramBytes returns the storage cost of the bucketed
// approximation: 4 * sum Ni^2 bytes.
func ApproxGramBytes(bucketSizes []int) int64 {
	var total int64
	for _, n := range bucketSizes {
		total += 4 * int64(n) * int64(n)
	}
	return total
}
