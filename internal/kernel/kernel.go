// Package kernel builds Gram (similarity) matrices: the full O(N^2)
// matrix used by the SC baseline and the paper's per-bucket approximated
// matrices (DASC step 3). The Gaussian RBF of Eq. 1 is the default
// kernel; the bandwidth can be fixed or derived from the data by the
// median-distance heuristic.
//
// All Gram construction funnels through the blocked compute engine in
// fast.go: kernels the engine recognizes (NewGaussian, NewCosine) are
// computed from precomputed row norms and unrolled dot products,
// parallel over row blocks; closure kernels (Func) remain fully
// supported through the generic per-pair fallback.
package kernel

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/matrix"
)

// Func is a positive-semidefinite similarity kernel over point pairs.
// A Func is also a Kernel (see fast.go) and always takes the engine's
// generic path; use NewGaussian/NewCosine for the blocked fast path.
type Func func(x, y []float64) float64

// Gaussian returns the RBF kernel of Eq. 1 with bandwidth sigma as a
// plain Func: exp(-||x-y||^2 / (2 sigma^2)). It panics if sigma <= 0.
// Hot paths should prefer NewGaussian, whose result the Gram engine
// recognizes.
func Gaussian(sigma float64) Func {
	return NewGaussian(sigma).Eval
}

// Polynomial returns the kernel (gamma <x,y> + c)^degree, the second
// classic positive-semidefinite kernel after the RBF. degree must be a
// positive integer, gamma positive.
func Polynomial(degree int, gamma, c float64) Func {
	if degree < 1 || gamma <= 0 {
		matrix.Panicf("kernel: polynomial degree %d gamma %v", degree, gamma)
	}
	return func(x, y []float64) float64 {
		base := gamma*matrix.Dot(x, y) + c
		out := 1.0
		for i := 0; i < degree; i++ {
			out *= base
		}
		return out
	}
}

// Cosine returns the cosine-similarity kernel <x,y>/(|x||y|) as a plain
// Func — the natural choice for the tf-idf document vectors of §5.2
// (where rows are unit length it reduces to the dot product). Zero
// vectors yield 0. Hot paths should prefer NewCosine.
func Cosine() Func {
	return NewCosine().Eval
}

// MedianSigma estimates a bandwidth as the median pairwise distance of
// a random sample of the data — the standard heuristic when the paper's
// fixed sigma is not supplied. sampleSize caps the pairs examined.
func MedianSigma(points *matrix.Dense, sampleSize int, seed int64) float64 {
	n := points.Rows()
	if n < 2 {
		return 1
	}
	if sampleSize <= 0 {
		sampleSize = 256
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := sampleSize
	if max := n * (n - 1) / 2; pairs > max {
		pairs = max
	}
	// Precomputed row norms turn each sampled distance into one dot
	// product: ||x-y||^2 = ||x||^2 + ||y||^2 - 2 x.y.
	sqTok, sq := getScratch(n)
	defer putScratch(sqTok)
	matrix.SqNormsInto(sq, points)
	dists := make([]float64, 0, pairs)
	for len(dists) < pairs {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		d2 := sq[i] + sq[j] - 2*matrix.Dot4(points.Row(i), points.Row(j))
		if d2 < 0 {
			d2 = 0
		}
		dists = append(dists, math.Sqrt(d2))
	}
	med := matrix.SelectKth(dists, len(dists)/2)
	if med <= 0 {
		return 1
	}
	return med
}

// Gram computes the full N x N similarity matrix with zero diagonal,
// matching the paper's reducer (Algorithm 2 sets S[i,i] = 0, the
// standard spectral-clustering convention of Ng et al.). Recognized
// kernels take the blocked fast path; all kernels are computed in
// parallel over row blocks for large N, with the symmetric mirror
// folded into the workers.
func Gram(points *matrix.Dense, k Kernel) *matrix.Dense {
	n := points.Rows()
	s := matrix.NewDense(n, n)
	if n == 0 {
		return s
	}
	gramInto(s, points, nil, k, defaultWorkers())
	return s
}

// GramWithDiagonal computes the full similarity matrix including the
// self-similarities k(x,x) on the diagonal. Spectral clustering uses
// the zero-diagonal Gram; kernel machines like SVM and kernel PCA need
// the true diagonal (SMO's curvature term 2K(i,j)-K(i,i)-K(j,j) is
// never negative without it).
func GramWithDiagonal(points *matrix.Dense, k Kernel) *matrix.Dense {
	s := Gram(points, k)
	for i := 0; i < points.Rows(); i++ {
		s.Set(i, i, k.Eval(points.Row(i), points.Row(i)))
	}
	return s
}

// SubGram computes the similarity matrix restricted to the points whose
// dataset rows are listed in indices — one DASC bucket's portion of the
// approximated Gram matrix. Large buckets are computed in parallel over
// row blocks; recognized kernels additionally take the blocked fast
// path over rows gathered into contiguous scratch.
func SubGram(points *matrix.Dense, indices []int, k Kernel) *matrix.Dense {
	n := len(indices)
	s := matrix.NewDense(n, n)
	SubGramInto(s, points, indices, k)
	return s
}

// SubGramInto computes the sub-Gram of the listed rows into s, which
// must be len(indices) x len(indices). Every entry of s is overwritten
// (diagonal included), so callers can hand in pooled, dirty buffers —
// the per-bucket solve path reuses one backing slice across buckets.
func SubGramInto(s *matrix.Dense, points *matrix.Dense, indices []int, k Kernel) {
	n := len(indices)
	if s.Rows() != n || s.Cols() != n {
		matrix.Panicf("kernel: SubGramInto %dx%d for %d indices", s.Rows(), s.Cols(), n)
	}
	if n == 0 {
		return
	}
	gramInto(s, points, indices, k, defaultWorkers())
}

// ErrIndexRange reports a bucket index outside the dataset.
var ErrIndexRange = errors.New("kernel: bucket index out of range")

// ApproxGram assembles the full-size N x N block-diagonal approximation
// of the Gram matrix implied by a bucket partition: similarities are
// computed only within buckets and cross-bucket entries stay zero. It
// exists for the Frobenius-norm comparison of Figure 5; the production
// DASC path never materializes it.
func ApproxGram(points *matrix.Dense, buckets [][]int, k Kernel) (*matrix.Dense, error) {
	n := points.Rows()
	s := matrix.NewDense(n, n)
	for _, idxs := range buckets {
		for _, i := range idxs {
			if i < 0 || i >= n {
				return nil, fmt.Errorf("%w: %d with N=%d", ErrIndexRange, i, n)
			}
		}
		sub := SubGram(points, idxs, k)
		for a, ia := range idxs {
			row := sub.Row(a)
			for b := a + 1; b < len(idxs); b++ {
				v := row[b]
				s.Set(ia, idxs[b], v)
				s.Set(idxs[b], ia, v)
			}
		}
	}
	return s, nil
}

// GramBytes returns the storage cost, in bytes, of a dense N x N Gram
// matrix at the paper's single-precision 4 bytes per entry (Eq. 12).
func GramBytes(n int) int64 { return 4 * int64(n) * int64(n) }

// ApproxGramBytes returns the storage cost of the bucketed
// approximation: 4 * sum Ni^2 bytes.
func ApproxGramBytes(bucketSizes []int) int64 {
	var total int64
	for _, n := range bucketSizes {
		total += 4 * int64(n) * int64(n)
	}
	return total
}
