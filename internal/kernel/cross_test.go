package kernel

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/matrix"
)

// scalarCrossGaussian is the plain per-pair reference the blocked cross
// engine must match bit for bit: single-chain norms and dots fed through
// the same factorized formula exp(-(‖a‖²+‖b‖²−2·a·b)·inv).
func scalarCrossGaussian(a, b *matrix.Dense, sigma float64) *matrix.Dense {
	inv := 1 / (2 * sigma * sigma)
	out := matrix.NewDense(a.Rows(), b.Rows())
	sqa := make([]float64, a.Rows())
	for i := range sqa {
		sqa[i] = chainDot(a.Row(i), a.Row(i))
	}
	sqb := make([]float64, b.Rows())
	for j := range sqb {
		sqb[j] = chainDot(b.Row(j), b.Row(j))
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Rows(); j++ {
			d2 := sqa[i] + sqb[j] - 2*chainDot(a.Row(i), b.Row(j))
			if d2 < 0 {
				d2 = 0
			}
			out.Set(i, j, math.Exp(-d2*inv))
		}
	}
	return out
}

func randDense(rng *rand.Rand, rows, cols int) *matrix.Dense {
	m := matrix.NewDense(rows, cols)
	d := m.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return m
}

func TestCrossGramMatchesScalarBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	shapes := []struct{ ra, rb, d int }{
		{1, 1, 3},
		{5, 9, 7},      // ragged tail in both dims
		{64, 64, 16},   // exact block edges
		{65, 63, 5},    // one over / one under a block
		{130, 77, 12},  // multiple a-blocks
		{257, 201, 33}, // above parallelCutoff: exercises the worker pool
	}
	for _, s := range shapes {
		a := randDense(rng, s.ra, s.d)
		b := randDense(rng, s.rb, s.d)
		want := scalarCrossGaussian(a, b, 1.3)
		got, err := CrossGram(a, b, NewGaussian(1.3))
		if err != nil {
			t.Fatalf("CrossGram(%dx%d, %dx%d): %v", s.ra, s.d, s.rb, s.d, err)
		}
		gd, wd := got.Data(), want.Data()
		for i := range wd {
			if gd[i] != wd[i] {
				t.Fatalf("shape %+v: entry %d = %v, scalar reference %v", s, i, gd[i], wd[i])
			}
		}
	}
}

func TestCrossGramWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randDense(rng, 300, 9)
	b := randDense(rng, 220, 9)
	k := NewGaussian(0.9)
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	serial, err := CrossGram(a, b, k)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	parallel, err := CrossGram(a, b, k)
	if err != nil {
		t.Fatal(err)
	}
	sd, pd := serial.Data(), parallel.Data()
	for i := range sd {
		if sd[i] != pd[i] {
			t.Fatalf("entry %d differs across worker counts: %v vs %v", i, sd[i], pd[i])
		}
	}
}

func TestCrossGramCosineAndGenericAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 40, 6)
	b := randDense(rng, 23, 6)

	fast, err := CrossGram(a, b, NewCosine())
	if err != nil {
		t.Fatal(err)
	}
	// The generic fallback (Func wraps the same math) must agree within
	// float tolerance; it normalizes per pair instead of via cached norms.
	slow, err := CrossGram(a, b, Func(func(x, y []float64) float64 {
		return NewCosine().Eval(x, y)
	}))
	if err != nil {
		t.Fatal(err)
	}
	fd, sd := fast.Data(), slow.Data()
	for i := range fd {
		if math.Abs(fd[i]-sd[i]) > 1e-12 {
			t.Fatalf("entry %d: fast %v generic %v", i, fd[i], sd[i])
		}
	}
}

func TestCrossGramSelfPairIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 10, 4)
	g, err := CrossGram(a, a, NewGaussian(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if g.At(i, i) != 1 {
			t.Fatalf("diagonal self pair (%d,%d) = %v, want exactly 1", i, i, g.At(i, i))
		}
	}
}

func TestCrossGramShapeErrors(t *testing.T) {
	a := matrix.NewDense(3, 4)
	b := matrix.NewDense(2, 5)
	if err := CrossGramInto(matrix.NewDense(3, 2), a, b, NewGaussian(1)); err == nil {
		t.Fatal("mismatched column counts accepted")
	}
	bOK := matrix.NewDense(2, 4)
	if err := CrossGramInto(matrix.NewDense(2, 3), a, bOK, NewGaussian(1)); err == nil {
		t.Fatal("wrong destination shape accepted")
	}
}
