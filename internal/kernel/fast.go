package kernel

// This file is the vectorized Gram compute engine. Gram, SubGram and
// ApproxGram all funnel into gramInto, which dispatches on the kernel's
// dynamic type:
//
//   - recognized kernels (*GaussianKernel, *CosineKernel) take the
//     blocked fast path: squared row norms are precomputed once, bucket
//     rows are gathered into contiguous scratch, and every pairwise
//     value is formed from a 4-wide unrolled dot product via
//     ‖x−y‖² = ‖x‖² + ‖y‖² − 2·x·y — roughly a third of the flops of
//     the per-pair subtract-square loop, with no closure call and no
//     per-element bounds checks;
//   - any other Kernel (including every Func) falls back to the generic
//     per-pair path, so custom kernels keep working unchanged.
//
// Both paths fold the symmetric mirror into the same pass (each pair is
// computed once and written to both triangles) and both parallelize
// over row blocks for large matrices. Work is partitioned by an atomic
// counter over a deterministic block decomposition, so the computed
// values are identical regardless of worker count.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// Kernel is the recognized-kernel interface of the Gram engine: Eval is
// the generic per-pair form, and implementations the engine recognizes
// (GaussianKernel, CosineKernel) additionally get the blocked fast
// path. A plain Func is a Kernel via its Eval method, so closure
// kernels remain the universal fallback.
type Kernel interface {
	Eval(x, y []float64) float64
}

// Eval applies the kernel function, making every Func a Kernel.
func (f Func) Eval(x, y []float64) float64 { return f(x, y) }

// GaussianKernel is the recognized form of the Gaussian RBF of Eq. 1.
// Use NewGaussian to construct it; the Gram engine computes it blocked
// and parallel.
type GaussianKernel struct {
	// Sigma is the bandwidth.
	Sigma float64
	inv   float64
}

// NewGaussian returns the recognized Gaussian RBF kernel with bandwidth
// sigma: exp(-‖x−y‖² / (2σ²)). It panics if sigma <= 0.
func NewGaussian(sigma float64) *GaussianKernel {
	if sigma <= 0 {
		matrix.Panicf("kernel: sigma %v must be positive", sigma)
	}
	return &GaussianKernel{Sigma: sigma, inv: 1 / (2 * sigma * sigma)}
}

// Eval computes exp(-‖x−y‖² / (2σ²)) for one pair.
func (g *GaussianKernel) Eval(x, y []float64) float64 {
	return math.Exp(-matrix.SqDist(x, y) * g.inv)
}

// CosineKernel is the recognized form of the cosine-similarity kernel.
// Use NewCosine to construct it.
type CosineKernel struct{}

// NewCosine returns the recognized cosine-similarity kernel
// <x,y>/(|x||y|). Zero vectors yield 0.
func NewCosine() *CosineKernel { return &CosineKernel{} }

// Eval computes the cosine similarity for one pair.
func (*CosineKernel) Eval(x, y []float64) float64 {
	nx, ny := matrix.Norm2(x), matrix.Norm2(y)
	if matrix.IsZero(nx) || matrix.IsZero(ny) {
		return 0
	}
	return matrix.Dot(x, y) / (nx * ny)
}

const (
	// blockRows is the row-block edge of the blocked engine: two blocks
	// of 64 rows x 64 dims of float64 are 64 KiB, cache-resident on any
	// modern core.
	blockRows = 64
	// parallelCutoff is the matrix size above which the engine spawns
	// workers; below it the goroutine handoff costs more than the work.
	parallelCutoff = 192
)

// scratchPool recycles the gather/norm scratch of the fast path and the
// sub-Gram backing buffers of SubGram, killing the per-bucket
// allocation churn of the solve stage.
var scratchPool = sync.Pool{
	New: func() interface{} { s := make([]float64, 0, blockRows*blockRows); return &s },
}

// getScratch returns a pooled []float64 of length n (contents
// unspecified) and the pool token to hand back to putScratch.
func getScratch(n int) (*[]float64, []float64) {
	p := scratchPool.Get().(*[]float64)
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	buf := (*p)[:n]
	//lint:ignore poolescape deliberate ownership transfer: every caller pairs this with putScratch(p) (usually deferred), and buf aliases the loan so it dies when p is returned
	return p, buf
}

func putScratch(p *[]float64) { scratchPool.Put(p) }

// fastKind classifies a recognized kernel for the blocked path.
type fastKind int

const (
	kindGeneric fastKind = iota
	kindGaussian
	kindCosine
)

// recognize reports the fast-path classification of k.
func recognize(k Kernel) (fastKind, float64) {
	switch g := k.(type) {
	case *GaussianKernel:
		return kindGaussian, g.inv
	case *CosineKernel:
		return kindCosine, 0
	}
	return kindGeneric, 0
}

// gramInto fills the n x n matrix s with pairwise similarities of the
// listed rows of points (indices nil means all rows), with a zero
// diagonal, using up to workers goroutines. Every entry of s is
// written, so s does not need pre-zeroing.
func gramInto(s *matrix.Dense, points *matrix.Dense, indices []int, k Kernel, workers int) {
	n := s.Rows()
	if n == 0 {
		return
	}
	kind, inv := recognize(k)
	if kind == kindGeneric {
		genericGramInto(s, points, indices, k, workers)
		return
	}

	d := points.Cols()
	// Gather the operand rows into one contiguous block. When indices
	// is nil the matrix storage already is that block.
	var gathered []float64
	var gatherTok *[]float64
	if indices == nil {
		gathered = points.Data()
	} else {
		gatherTok, gathered = getScratch(n * d)
		defer putScratch(gatherTok)
		for a, idx := range indices {
			copy(gathered[a*d:(a+1)*d], points.Row(idx))
		}
	}
	sqTok, sq := getScratch(n)
	defer putScratch(sqTok)
	for i := 0; i < n; i++ {
		sq[i] = matrix.Dot4(gathered[i*d:(i+1)*d], gathered[i*d:(i+1)*d])
	}

	// Deterministic block decomposition of the upper triangle.
	nb := (n + blockRows - 1) / blockRows
	type blockPair struct{ bi, bj int }
	pairs := make([]blockPair, 0, nb*(nb+1)/2)
	for bi := 0; bi < nb; bi++ {
		for bj := bi; bj < nb; bj++ {
			pairs = append(pairs, blockPair{bi, bj})
		}
	}

	sd := s.Data() // direct indexing: the mirror write is per element
	oneBlock := func(p blockPair, dots []float64) {
		i0, i1 := p.bi*blockRows, min(n, (p.bi+1)*blockRows)
		j0, j1 := p.bj*blockRows, min(n, (p.bj+1)*blockRows)
		ra, rb := i1-i0, j1-j0
		dots = dots[:ra*rb] // edge blocks are smaller than blockRows
		matrix.DotBlock(gathered[i0*d:i1*d], ra, gathered[j0*d:j1*d], rb, d, dots)
		for i := i0; i < i1; i++ {
			row := sd[i*n : (i+1)*n]
			drow := dots[(i-i0)*rb:]
			jlo := j0
			if p.bi == p.bj {
				jlo = i + 1 // strict upper triangle within the diagonal block
				row[i] = 0
			}
			switch kind {
			case kindGaussian:
				sqi := sq[i]
				for j := jlo; j < j1; j++ {
					d2 := sqi + sq[j] - 2*drow[j-j0]
					if d2 < 0 {
						d2 = 0 // rounding can push a tiny distance negative
					}
					v := math.Exp(-d2 * inv)
					row[j] = v
					sd[j*n+i] = v
				}
			case kindCosine:
				ni := math.Sqrt(sq[i])
				for j := jlo; j < j1; j++ {
					den := ni * math.Sqrt(sq[j])
					var v float64
					if !matrix.IsZero(den) {
						v = drow[j-j0] / den
					}
					row[j] = v
					sd[j*n+i] = v
				}
			}
		}
	}

	if workers > len(pairs) {
		workers = len(pairs)
	}
	if n < parallelCutoff || workers <= 1 {
		tok, dots := getScratch(blockRows * blockRows)
		for _, p := range pairs {
			oneBlock(p, dots)
		}
		putScratch(tok)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tok, dots := getScratch(blockRows * blockRows)
			defer putScratch(tok)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				oneBlock(pairs[i], dots)
			}
		}()
	}
	wg.Wait()
}

// genericGramInto is the fallback for unrecognized kernels: one Eval
// per pair, mirror folded into the same pass, parallel over rows via an
// atomic counter for large matrices.
func genericGramInto(s *matrix.Dense, points *matrix.Dense, indices []int, k Kernel, workers int) {
	n := s.Rows()
	rowOf := func(a int) []float64 {
		if indices == nil {
			return points.Row(a)
		}
		return points.Row(indices[a])
	}
	oneRow := func(a int) {
		xa := rowOf(a)
		row := s.Row(a)
		row[a] = 0
		for b := a + 1; b < n; b++ {
			v := k.Eval(xa, rowOf(b))
			row[b] = v
			s.Row(b)[a] = v
		}
	}
	if workers > n {
		workers = n
	}
	if n < parallelCutoff || workers <= 1 {
		for a := 0; a < n; a++ {
			oneRow(a)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				a := int(next.Add(1)) - 1
				if a >= n {
					return
				}
				oneRow(a)
			}
		}()
	}
	wg.Wait()
}

// defaultWorkers is the engine's worker budget: GOMAXPROCS, at least 1.
func defaultWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 1
}
