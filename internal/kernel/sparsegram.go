package kernel

// This file is the sparse half of the Gram compute engine: an
// ε-thresholded emit mode that streams the same 1×4 micro-tiled dot
// blocks as fast.go into CSR storage instead of a dense n×n buffer, so
// large buckets with a tight kernel bandwidth never materialize the
// dense Gram at all.
//
// The decomposition is by upper-triangle row strips: strip s covers
// rows [s·blockRows, (s+1)·blockRows) and, for recognized kernels, one
// DotBlock call produces every dot product of the strip's rows against
// columns j ≥ s·blockRows (the strict upper triangle plus the mirror
// seed). Each strip appends its surviving entries to strip-local
// buffers, strips are processed by an atomic-cursor worker pool, and a
// sequential O(nnz) pass assembles the symmetric CSR — so, as with the
// dense engine, the emitted values and their order are identical for
// every worker count.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
	"repro/internal/sparse"
)

// SubGramPooled builds the dense sub-Gram of the listed rows inside
// *scratch (grown as needed and reused across calls) and optionally
// completes the diagonal with the true self-similarities k(x,x) that
// SVM and kernel PCA require; spectral clustering keeps the
// zero-diagonal convention. The returned matrix aliases *scratch.
func SubGramPooled(points *matrix.Dense, indices []int, k Kernel, scratch *[]float64, withDiagonal bool) (*matrix.Dense, error) {
	ni := len(indices)
	if cap(*scratch) < ni*ni {
		*scratch = make([]float64, ni*ni)
	}
	sub, err := matrix.NewDenseData(ni, ni, (*scratch)[:ni*ni])
	if err != nil {
		return nil, err
	}
	SubGramInto(sub, points, indices, k)
	if withDiagonal {
		for i, idx := range indices {
			sub.Set(i, i, k.Eval(points.Row(idx), points.Row(idx)))
		}
	}
	return sub, nil
}

// GramSparse computes the full similarity matrix with entries of
// magnitude below eps dropped, as CSR. See SubGramSparse.
func GramSparse(points *matrix.Dense, k Kernel, eps float64) (*sparse.CSR, error) {
	return gramSparse(points, nil, k, eps)
}

// SubGramSparse computes the ε-thresholded sub-Gram of the listed rows
// as a symmetric CSR matrix with zero diagonal: entry (i,j), i≠j, is
// stored iff |k(xi,xj)| ≥ eps. For the Gaussian kernel the threshold is
// applied to the squared distance (v ≥ ε ⟺ ‖x−y‖² ≤ −ln(ε)·2σ²), so
// dropped pairs never pay the exp call. eps = 0 keeps every entry —
// the densified result then matches SubGram's sparsity pattern exactly
// (zero diagonal included), which the sparse/dense agreement property
// test relies on. Peak memory is O(blockRows·n) dot scratch plus the
// O(nnz) output, never O(n²).
func SubGramSparse(points *matrix.Dense, indices []int, k Kernel, eps float64) (*sparse.CSR, error) {
	return gramSparse(points, indices, k, eps)
}

// stripEmit is one row strip's surviving strict-upper-triangle entries,
// appended in (row, col) order. rowNNZ[r] counts row i0+r's entries.
type stripEmit struct {
	rowNNZ []int
	cols   []int
	vals   []float64
}

// gramSparse is the shared thresholded-emit engine (indices nil means
// all rows).
func gramSparse(points *matrix.Dense, indices []int, k Kernel, eps float64) (*sparse.CSR, error) {
	if eps < 0 || math.IsNaN(eps) {
		return nil, fmt.Errorf("kernel: sparse threshold %v must be >= 0", eps)
	}
	n := points.Rows()
	if indices != nil {
		n = len(indices)
	}
	if n == 0 {
		return sparse.NewCSRFromRaw(0, []int{0}, nil, nil)
	}
	kind, inv := recognize(k)
	d := points.Cols()

	// Recognized kernels: gather the operand rows contiguous and
	// precompute squared norms, exactly as the dense fast path does.
	var gathered, sq []float64
	var gatherTok, sqTok *[]float64
	if kind != kindGeneric {
		if indices == nil {
			gathered = points.Data()
		} else {
			gatherTok, gathered = getScratch(n * d)
			defer putScratch(gatherTok)
			for a, idx := range indices {
				copy(gathered[a*d:(a+1)*d], points.Row(idx))
			}
		}
		sqTok, sq = getScratch(n)
		defer putScratch(sqTok)
		for i := 0; i < n; i++ {
			sq[i] = matrix.Dot4(gathered[i*d:(i+1)*d], gathered[i*d:(i+1)*d])
		}
	}
	// Gaussian: exp(-d²·inv) ≥ eps ⟺ d² ≤ -ln(eps)/inv. eps = 0 keeps
	// everything (d2max = +Inf); eps > 1 keeps only exact duplicates.
	d2max := math.Inf(1)
	if kind == kindGaussian && eps > 0 {
		d2max = -math.Log(eps) / inv
	}
	rowOf := func(a int) []float64 {
		if indices == nil {
			return points.Row(a)
		}
		return points.Row(indices[a])
	}

	nb := (n + blockRows - 1) / blockRows
	strips := make([]stripEmit, nb)
	oneStrip := func(si int, dotsTok *[]float64) {
		i0, i1 := si*blockRows, min(n, (si+1)*blockRows)
		ra, width := i1-i0, n-i0
		em := &strips[si]
		em.rowNNZ = make([]int, ra)
		var dots []float64
		if kind != kindGeneric {
			if cap(*dotsTok) < ra*width {
				*dotsTok = make([]float64, ra*width)
			}
			dots = (*dotsTok)[:ra*width]
			matrix.DotBlock(gathered[i0*d:i1*d], ra, gathered[i0*d:], width, d, dots)
		}
		for i := i0; i < i1; i++ {
			start := len(em.cols)
			switch kind {
			case kindGaussian:
				sqi := sq[i]
				drow := dots[(i-i0)*width:]
				for j := i + 1; j < n; j++ {
					d2 := sqi + sq[j] - 2*drow[j-i0]
					if d2 < 0 {
						d2 = 0
					}
					if d2 > d2max {
						continue
					}
					em.cols = append(em.cols, j)
					em.vals = append(em.vals, math.Exp(-d2*inv))
				}
			case kindCosine:
				ni := math.Sqrt(sq[i])
				drow := dots[(i-i0)*width:]
				for j := i + 1; j < n; j++ {
					den := ni * math.Sqrt(sq[j])
					var v float64
					if !matrix.IsZero(den) {
						v = drow[j-i0] / den
					}
					if math.Abs(v) < eps {
						continue
					}
					em.cols = append(em.cols, j)
					em.vals = append(em.vals, v)
				}
			default:
				xi := rowOf(i)
				for j := i + 1; j < n; j++ {
					v := k.Eval(xi, rowOf(j))
					if math.Abs(v) < eps {
						continue
					}
					em.cols = append(em.cols, j)
					em.vals = append(em.vals, v)
				}
			}
			em.rowNNZ[i-i0] = len(em.cols) - start
		}
	}

	workers := defaultWorkers()
	if workers > nb {
		workers = nb
	}
	if n < parallelCutoff || workers <= 1 {
		dotsTok, _ := getScratch(0)
		for si := 0; si < nb; si++ {
			oneStrip(si, dotsTok)
		}
		putScratch(dotsTok)
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dotsTok, _ := getScratch(0)
				defer putScratch(dotsTok)
				for {
					si := int(next.Add(1)) - 1
					if si >= nb {
						return
					}
					oneStrip(si, dotsTok)
				}
			}()
		}
		wg.Wait()
	}

	return assembleSymmetricCSR(n, strips)
}

// assembleSymmetricCSR mirrors the strips' strict-upper-triangle
// entries into a full symmetric CSR in one sequential O(nnz) pass.
// Lower-triangle slots of row j are filled by scanning the upper
// entries in (i, j) order, so each row's mirrored columns arrive
// already ascending and no sort is needed.
func assembleSymmetricCSR(n int, strips []stripEmit) (*sparse.CSR, error) {
	upperCount := make([]int, n)
	lowerCount := make([]int, n)
	for si := range strips {
		em := &strips[si]
		i0 := si * blockRows
		for r, c := range em.rowNNZ {
			upperCount[i0+r] = c
		}
		for _, j := range em.cols {
			lowerCount[j]++
		}
	}
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + lowerCount[i] + upperCount[i]
	}
	nnz := rowPtr[n]
	cols := make([]int, nnz)
	vals := make([]float64, nnz)
	mirror := make([]int, n) // next free lower-triangle slot per row
	for i := range mirror {
		mirror[i] = rowPtr[i]
	}
	for si := range strips {
		em := &strips[si]
		idx := 0
		for r, cnt := range em.rowNNZ {
			i := si*blockRows + r
			up := rowPtr[i] + lowerCount[i]
			for e := 0; e < cnt; e++ {
				j, v := em.cols[idx], em.vals[idx]
				idx++
				cols[up], vals[up] = j, v
				up++
				cols[mirror[j]], vals[mirror[j]] = i, v
				mirror[j]++
			}
		}
	}
	return sparse.NewCSRFromRaw(n, rowPtr, cols, vals)
}
