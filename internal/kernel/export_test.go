package kernel

import "repro/internal/matrix"

// gramIntoForTest exposes the engine's worker knob so tests can force
// the parallel path on machines where GOMAXPROCS is 1 (the -race
// coverage of the block-pair work stealing depends on it) and the
// serial path regardless of size.
func gramIntoForTest(s *matrix.Dense, points *matrix.Dense, indices []int, k Kernel, workers int) {
	gramInto(s, points, indices, k, workers)
}
