package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestGaussianBasics(t *testing.T) {
	k := Gaussian(1)
	x := []float64{0, 0}
	if got := k(x, x); got != 1 {
		t.Fatalf("k(x,x) = %v, want 1", got)
	}
	// ||x-y||^2 = 2 -> exp(-1)
	y := []float64{1, 1}
	if got := k(x, y); math.Abs(got-math.Exp(-1)) > 1e-12 {
		t.Fatalf("k = %v, want e^-1", got)
	}
	// Symmetric.
	if k(x, y) != k(y, x) {
		t.Fatal("kernel must be symmetric")
	}
}

func TestGaussianBandwidth(t *testing.T) {
	x := []float64{0}
	y := []float64{1}
	wide := Gaussian(10)(x, y)
	narrow := Gaussian(0.1)(x, y)
	if wide <= narrow {
		t.Fatal("wider bandwidth must give higher similarity")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for sigma <= 0")
		}
	}()
	Gaussian(0)
}

func TestPolynomialKernel(t *testing.T) {
	k := Polynomial(2, 1, 1)
	// (x.y + 1)^2 with x.y = 2 -> 9.
	if got := k([]float64{1, 1}, []float64{1, 1}); got != 9 {
		t.Fatalf("poly = %v, want 9", got)
	}
	if k([]float64{1, 0}, []float64{0, 1}) != 1 { // (0+1)^2
		t.Fatal("orthogonal poly value wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for degree 0")
		}
	}()
	Polynomial(0, 1, 0)
}

func TestCosineKernel(t *testing.T) {
	k := Cosine()
	if got := k([]float64{2, 0}, []float64{5, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine = %v", got)
	}
	if got := k([]float64{1, 0}, []float64{0, 3}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := k([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
	// Cosine Gram on unit tf-idf-like rows equals the dot-product Gram.
	pts, _ := matrix.FromRows([][]float64{{1, 0}, {0.6, 0.8}})
	g := Gram(pts, k)
	if math.Abs(g.At(0, 1)-0.6) > 1e-12 {
		t.Fatalf("cosine gram entry = %v", g.At(0, 1))
	}
}

func TestGramWithDiagonal(t *testing.T) {
	pts, _ := matrix.FromRows([][]float64{{0}, {1}})
	g := GramWithDiagonal(pts, Gaussian(1))
	if g.At(0, 0) != 1 || g.At(1, 1) != 1 {
		t.Fatalf("diagonal = %v %v, want 1", g.At(0, 0), g.At(1, 1))
	}
	if g.At(0, 1) != Gaussian(1)([]float64{0}, []float64{1}) {
		t.Fatal("off-diagonal changed")
	}
}

func TestMedianSigma(t *testing.T) {
	pts, _ := matrix.FromRows([][]float64{{0}, {1}, {2}, {3}})
	sigma := MedianSigma(pts, 1000, 1)
	if sigma < 0.5 || sigma > 3 {
		t.Fatalf("median sigma = %v out of plausible range", sigma)
	}
	// Degenerate inputs fall back to 1.
	if MedianSigma(matrix.NewDense(1, 1), 10, 1) != 1 {
		t.Fatal("single point must give sigma 1")
	}
	if MedianSigma(matrix.NewDense(5, 2), 10, 1) != 1 {
		t.Fatal("identical points must give sigma 1")
	}
}

func TestGramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := matrix.NewDense(20, 3)
	for i := range pts.Data() {
		pts.Data()[i] = rng.Float64()
	}
	s := Gram(pts, Gaussian(0.5))
	if !s.IsSymmetric(0) {
		t.Fatal("Gram must be symmetric")
	}
	for i := 0; i < 20; i++ {
		if s.At(i, i) != 0 {
			t.Fatal("Gram diagonal must be zero (Algorithm 2)")
		}
		for j := 0; j < 20; j++ {
			if v := s.At(i, j); v < 0 || v > 1 {
				t.Fatalf("similarity out of [0,1]: %v", v)
			}
		}
	}
}

func TestGramSmall(t *testing.T) {
	pts, _ := matrix.FromRows([][]float64{{0}, {1}})
	s := Gram(pts, Gaussian(1))
	want := math.Exp(-0.5)
	if math.Abs(s.At(0, 1)-want) > 1e-12 {
		t.Fatalf("s01 = %v, want %v", s.At(0, 1), want)
	}
	empty := Gram(matrix.NewDense(0, 0), Gaussian(1))
	if empty.Rows() != 0 {
		t.Fatal("empty Gram must be 0x0")
	}
}

func TestSubGramMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := matrix.NewDense(10, 2)
	for i := range pts.Data() {
		pts.Data()[i] = rng.Float64()
	}
	k := Gaussian(0.7)
	full := Gram(pts, k)
	idxs := []int{1, 4, 7}
	sub := SubGram(pts, idxs, k)
	for a, i := range idxs {
		for b, j := range idxs {
			if math.Abs(sub.At(a, b)-full.At(i, j)) > 1e-12 {
				t.Fatalf("sub(%d,%d) != full(%d,%d)", a, b, i, j)
			}
		}
	}
}

func TestApproxGramBlockStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := matrix.NewDense(8, 2)
	for i := range pts.Data() {
		pts.Data()[i] = rng.Float64()
	}
	k := Gaussian(0.5)
	buckets := [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7}}
	approx, err := ApproxGram(pts, buckets, k)
	if err != nil {
		t.Fatal(err)
	}
	full := Gram(pts, k)
	inBucket := func(i, j int) bool {
		for _, b := range buckets {
			var hasI, hasJ bool
			for _, x := range b {
				hasI = hasI || x == i
				hasJ = hasJ || x == j
			}
			if hasI && hasJ {
				return true
			}
		}
		return false
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			if inBucket(i, j) {
				if math.Abs(approx.At(i, j)-full.At(i, j)) > 1e-12 {
					t.Fatalf("in-bucket entry (%d,%d) differs", i, j)
				}
			} else if approx.At(i, j) != 0 {
				t.Fatalf("cross-bucket entry (%d,%d) must be 0", i, j)
			}
		}
	}
}

func TestApproxGramIndexValidation(t *testing.T) {
	pts := matrix.NewDense(3, 1)
	if _, err := ApproxGram(pts, [][]int{{0, 5}}, Gaussian(1)); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := ApproxGram(pts, [][]int{{-1}}, Gaussian(1)); err == nil {
		t.Fatal("expected range error for negative index")
	}
}

func TestGramBytes(t *testing.T) {
	if GramBytes(1000) != 4_000_000 {
		t.Fatalf("GramBytes(1000) = %d", GramBytes(1000))
	}
	if ApproxGramBytes([]int{10, 20}) != 4*(100+400) {
		t.Fatalf("ApproxGramBytes = %d", ApproxGramBytes([]int{10, 20}))
	}
}

// Property: the approximated Gram never has larger Frobenius norm than
// the full one (it is the full matrix with some entries zeroed).
func TestPropApproxFrobeniusBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		pts := matrix.NewDense(n, 2)
		for i := range pts.Data() {
			pts.Data()[i] = rng.Float64()
		}
		// Random 2-way split.
		var b0, b1 []int
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				b0 = append(b0, i)
			} else {
				b1 = append(b1, i)
			}
		}
		k := Gaussian(0.5)
		approx, err := ApproxGram(pts, [][]int{b0, b1}, k)
		if err != nil {
			return false
		}
		full := Gram(pts, k)
		return approx.Frobenius() <= full.Frobenius()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gaussian similarity decreases with distance.
func TestPropGaussianMonotone(t *testing.T) {
	k := Gaussian(1)
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if a > 100 || b > 100 {
			return true // exp underflow region, both 0
		}
		near := k([]float64{0}, []float64{math.Min(a, b)})
		far := k([]float64{0}, []float64{math.Max(a, b)})
		return near >= far
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
