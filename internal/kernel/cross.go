package kernel

// This file is the rectangular half of the blocked Gram engine: a
// cross-kernel block k(a_i, b_j) between the rows of two matrices,
// which the Nyström landmark math needs twice (the m×m landmark block W
// and the n×m cross block C) and the embedding engine needs once per
// transform (the kernel responses against the landmark set). It shares
// the fast.go recipe — precomputed squared row norms plus blocked
// pairwise dot products over contiguous storage — but with one extra
// contract the symmetric engine does not make:
//
// Bit-uniformity. Every inner product (the two norms and the cross dot)
// is accumulated in a single ascending-index chain, in every block
// position, including the 1×4 micro-tile (whose four accumulators are
// each a single chain over one column) and the ragged tail. A value of
// the block is therefore exactly
//
//	exp(-(‖a_i‖² + ‖b_j‖² − 2·a_i·b_j) / (2σ²))
//
// evaluated with plain left-to-right sums — byte-identical to a scalar
// per-pair loop over the same factorized formula, regardless of block
// shape, tile position, or worker count. Tests pin the Nyström blocks
// to that scalar reference bit for bit.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// CrossGramInto fills dst (a.Rows() × b.Rows()) with the kernel value of
// every cross pair k(a_i, b_j). Recognized kernels (Gaussian, cosine)
// take the blocked fast path above; any other Kernel falls back to one
// Eval per pair. Large blocks are computed by a worker pool over a
// deterministic block decomposition, and every path is bit-independent
// of the worker count. Unlike the symmetric Gram engine the diagonal is
// NOT special-cased: entry (i,j) is always the kernel of the two rows,
// so self pairs yield k(x,x) (1 for the Gaussian), which is what the
// Nyström blocks require.
func CrossGramInto(dst *matrix.Dense, a, b *matrix.Dense, k Kernel) error {
	ra, rb := a.Rows(), b.Rows()
	if dst.Rows() != ra || dst.Cols() != rb {
		return fmt.Errorf("kernel: cross block %dx%d for %dx%d rows", dst.Rows(), dst.Cols(), ra, rb)
	}
	if ra == 0 || rb == 0 {
		return nil
	}
	if a.Cols() != b.Cols() {
		return fmt.Errorf("kernel: cross operands have %d and %d columns", a.Cols(), b.Cols())
	}
	kind, inv := recognize(k)
	if kind == kindGeneric {
		genericCrossInto(dst, a, b, k)
		return nil
	}
	d := a.Cols()
	ad, bd := a.Data(), b.Data()

	sqaTok, sqa := getScratch(ra)
	defer putScratch(sqaTok)
	sqbTok, sqb := getScratch(rb)
	defer putScratch(sqbTok)
	for i := 0; i < ra; i++ {
		sqa[i] = chainDot(ad[i*d:(i+1)*d], ad[i*d:(i+1)*d])
	}
	for j := 0; j < rb; j++ {
		sqb[j] = chainDot(bd[j*d:(j+1)*d], bd[j*d:(j+1)*d])
	}

	// Deterministic decomposition into blockRows-edged tiles.
	na := (ra + blockRows - 1) / blockRows
	nb := (rb + blockRows - 1) / blockRows
	type blockPair struct{ bi, bj int }
	pairs := make([]blockPair, 0, na*nb)
	for bi := 0; bi < na; bi++ {
		for bj := 0; bj < nb; bj++ {
			pairs = append(pairs, blockPair{bi, bj})
		}
	}

	dd := dst.Data()
	oneBlock := func(p blockPair, dots []float64) {
		i0, i1 := p.bi*blockRows, min(ra, (p.bi+1)*blockRows)
		j0, j1 := p.bj*blockRows, min(rb, (p.bj+1)*blockRows)
		nr, nc := i1-i0, j1-j0
		dots = dots[:nr*nc]
		chainDotBlock(ad[i0*d:i1*d], nr, bd[j0*d:j1*d], nc, d, dots)
		for i := i0; i < i1; i++ {
			row := dd[i*rb : (i+1)*rb]
			drow := dots[(i-i0)*nc:]
			switch kind {
			case kindGaussian:
				sqi := sqa[i]
				for j := j0; j < j1; j++ {
					d2 := sqi + sqb[j] - 2*drow[j-j0]
					if d2 < 0 {
						d2 = 0 // rounding can push a tiny distance negative
					}
					row[j] = math.Exp(-d2 * inv)
				}
			case kindCosine:
				ni := math.Sqrt(sqa[i])
				for j := j0; j < j1; j++ {
					den := ni * math.Sqrt(sqb[j])
					var v float64
					if !matrix.IsZero(den) {
						v = drow[j-j0] / den
					}
					row[j] = v
				}
			}
		}
	}

	workers := defaultWorkers()
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if (ra < parallelCutoff && rb < parallelCutoff) || workers <= 1 {
		tok, dots := getScratch(blockRows * blockRows)
		for _, p := range pairs {
			oneBlock(p, dots)
		}
		putScratch(tok)
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tok, dots := getScratch(blockRows * blockRows)
			defer putScratch(tok)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				oneBlock(pairs[i], dots)
			}
		}()
	}
	wg.Wait()
	return nil
}

// CrossGram is CrossGramInto with a freshly allocated destination.
func CrossGram(a, b *matrix.Dense, k Kernel) (*matrix.Dense, error) {
	dst := matrix.NewDense(a.Rows(), b.Rows())
	if err := CrossGramInto(dst, a, b, k); err != nil {
		return nil, err
	}
	return dst, nil
}

// chainDot is the single ascending accumulation chain the cross engine
// standardizes on. It trades the 4-lane ILP of Dot4 for bit-uniformity:
// with one chain everywhere, a value never depends on which tile or
// tail loop produced it.
func chainDot(x, y []float64) float64 {
	var s float64
	for t, v := range x {
		s += v * y[t]
	}
	return s
}

// chainDotBlock is DotBlock's shape with single-chain accumulation: the
// 1×4 micro-tile keeps four independent columns in flight (each its own
// ascending chain), and the ragged tail runs chainDot, so every output
// is bitwise the plain left-to-right dot product.
func chainDotBlock(a []float64, ra int, b []float64, rb, d int, out []float64) {
	if len(a) != ra*d || len(b) != rb*d {
		matrix.Panicf("kernel: chainDotBlock shapes %d=%dx%d %d=%dx%d", len(a), ra, d, len(b), rb, d)
	}
	if len(out) != ra*rb {
		matrix.Panicf("kernel: chainDotBlock out length %d, want %d", len(out), ra*rb)
	}
	for i := 0; i < ra; i++ {
		arow := a[i*d : (i+1)*d]
		orow := out[i*rb : (i+1)*rb]
		j := 0
		for ; j+4 <= rb; j += 4 {
			b0 := b[(j+0)*d : (j+1)*d][:len(arow)]
			b1 := b[(j+1)*d : (j+2)*d][:len(arow)]
			b2 := b[(j+2)*d : (j+3)*d][:len(arow)]
			b3 := b[(j+3)*d : (j+4)*d][:len(arow)]
			var s0, s1, s2, s3 float64
			for t, av := range arow {
				s0 += av * b0[t]
				s1 += av * b1[t]
				s2 += av * b2[t]
				s3 += av * b3[t]
			}
			orow[j] = s0
			orow[j+1] = s1
			orow[j+2] = s2
			orow[j+3] = s3
		}
		for ; j < rb; j++ {
			orow[j] = chainDot(arow, b[j*d:(j+1)*d])
		}
	}
}

// genericCrossInto is the unrecognized-kernel fallback: one Eval per
// pair, parallel over a-rows for large blocks.
func genericCrossInto(dst *matrix.Dense, a, b *matrix.Dense, k Kernel) {
	ra, rb := a.Rows(), b.Rows()
	oneRow := func(i int) {
		xi := a.Row(i)
		row := dst.Row(i)
		for j := 0; j < rb; j++ {
			row[j] = k.Eval(xi, b.Row(j))
		}
	}
	workers := defaultWorkers()
	if workers > ra {
		workers = ra
	}
	if (ra < parallelCutoff && rb < parallelCutoff) || workers <= 1 {
		for i := 0; i < ra; i++ {
			oneRow(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= ra {
					return
				}
				oneRow(i)
			}
		}()
	}
	wg.Wait()
}
