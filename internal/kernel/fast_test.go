package kernel

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/matrix"
)

// randPoints builds an n x d matrix of standard normals.
func randPoints(n, d int, seed int64) *matrix.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := matrix.NewDense(n, d)
	data := m.Data()
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return m
}

// asGeneric strips the recognized type from a kernel so the engine
// takes the generic per-pair path with the same pairwise function.
func asGeneric(k Kernel) Kernel { return Func(k.Eval) }

// fastKernels are the recognized kernels the blocked engine accelerates.
func fastKernels() map[string]Kernel {
	return map[string]Kernel{
		"gaussian": NewGaussian(0.8),
		"cosine":   NewCosine(),
	}
}

// TestFastGramMatchesGeneric sweeps dimensions through the unroll
// boundaries (1..65 crosses every 4-wide remainder case) and checks the
// blocked fast path against the generic per-pair path.
func TestFastGramMatchesGeneric(t *testing.T) {
	for name, k := range fastKernels() {
		for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 32, 33, 63, 64, 65} {
			pts := randPoints(40, d, int64(d)+7)
			got := Gram(pts, k)
			want := Gram(pts, asGeneric(k))
			if !matrix.Equal(got, want, 1e-12) {
				t.Fatalf("%s d=%d: fast and generic Gram differ", name, d)
			}
		}
	}
}

// TestFastGramBlockBoundaries sweeps the matrix size through the
// block-row boundaries, where edge blocks are smaller than blockRows.
func TestFastGramBlockBoundaries(t *testing.T) {
	for name, k := range fastKernels() {
		for _, n := range []int{1, 2, 63, 64, 65, 100, 129} {
			pts := randPoints(n, 9, int64(n))
			got := Gram(pts, k)
			want := Gram(pts, asGeneric(k))
			if !matrix.Equal(got, want, 1e-12) {
				t.Fatalf("%s n=%d: fast and generic Gram differ", name, n)
			}
			for i := 0; i < n; i++ {
				if !matrix.IsZero(got.At(i, i)) {
					t.Fatalf("%s n=%d: diagonal entry %d not zero", name, n, i)
				}
			}
		}
	}
}

// TestFastSubGramMatchesGeneric checks bucketed sub-Grams, including
// the empty and singleton buckets the LSH partition can produce.
func TestFastSubGramMatchesGeneric(t *testing.T) {
	pts := randPoints(120, 17, 3)
	rng := rand.New(rand.NewSource(4))
	buckets := [][]int{
		{},
		{5},
		{119, 0},
		rng.Perm(120)[:67], // crosses one block boundary
		rng.Perm(120),      // full permutation: every row, shuffled
	}
	for name, k := range fastKernels() {
		for bi, idxs := range buckets {
			got := SubGram(pts, idxs, k)
			want := SubGram(pts, idxs, asGeneric(k))
			if !matrix.Equal(got, want, 1e-12) {
				t.Fatalf("%s bucket %d (size %d): fast and generic SubGram differ", name, bi, len(idxs))
			}
			if got.Rows() != len(idxs) || got.Cols() != len(idxs) {
				t.Fatalf("%s bucket %d: got %dx%d", name, bi, got.Rows(), got.Cols())
			}
		}
	}
}

// TestGramParallelMatchesSerial forces the worker pool on (GOMAXPROCS
// here may be 1) and requires bit-identical output: the deterministic
// block decomposition must make worker count unobservable. Run with
// -race this doubles as the engine's data-race check.
func TestGramParallelMatchesSerial(t *testing.T) {
	pts := randPoints(parallelCutoff+41, 12, 9)
	n := pts.Rows()
	for name, k := range fastKernels() {
		serial := matrix.NewDense(n, n)
		gramIntoForTest(serial, pts, nil, k, 1)
		parallel := matrix.NewDense(n, n)
		gramIntoForTest(parallel, pts, nil, k, 4)
		if !matrix.Equal(serial, parallel, 0) {
			t.Fatalf("%s: parallel Gram differs from serial", name)
		}
	}
	// Generic path, same contract.
	gk := asGeneric(NewGaussian(1.1))
	serial := matrix.NewDense(n, n)
	gramIntoForTest(serial, pts, nil, gk, 1)
	parallel := matrix.NewDense(n, n)
	gramIntoForTest(parallel, pts, nil, gk, 4)
	if !matrix.Equal(serial, parallel, 0) {
		t.Fatal("generic: parallel Gram differs from serial")
	}
}

// TestSubGramParallelMatchesSerial is the bucketed form of the worker
// determinism check, with indices forcing the gather path.
func TestSubGramParallelMatchesSerial(t *testing.T) {
	pts := randPoints(parallelCutoff+80, 10, 11)
	idxs := rand.New(rand.NewSource(12)).Perm(pts.Rows())[:parallelCutoff+10]
	for name, k := range fastKernels() {
		serial := matrix.NewDense(len(idxs), len(idxs))
		gramIntoForTest(serial, pts, idxs, k, 1)
		parallel := matrix.NewDense(len(idxs), len(idxs))
		gramIntoForTest(parallel, pts, idxs, k, 4)
		if !matrix.Equal(serial, parallel, 0) {
			t.Fatalf("%s: parallel SubGram differs from serial", name)
		}
	}
}

// referenceMedianSigma is the pre-engine implementation of MedianSigma
// (per-pair SqDist, full sort); the optimized version must reproduce
// its sigma for the same seed up to floating-point reassociation.
func referenceMedianSigma(points *matrix.Dense, sampleSize int, seed int64) float64 {
	n := points.Rows()
	if n < 2 {
		return 1
	}
	if sampleSize <= 0 {
		sampleSize = 256
	}
	rng := rand.New(rand.NewSource(seed))
	pairs := sampleSize
	if max := n * (n - 1) / 2; pairs > max {
		pairs = max
	}
	var dists []float64
	for len(dists) < pairs {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		dists = append(dists, math.Sqrt(matrix.SqDist(points.Row(i), points.Row(j))))
	}
	sort.Float64s(dists)
	med := dists[len(dists)/2]
	if med <= 0 {
		return 1
	}
	return med
}

func TestMedianSigmaMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		pts := randPoints(90, 6, seed+100)
		got := MedianSigma(pts, 512, seed)
		want := referenceMedianSigma(pts, 512, seed)
		if !matrix.ApproxEqual(got, want, 1e-9*(1+want)) {
			t.Fatalf("seed %d: MedianSigma %v, reference %v", seed, got, want)
		}
	}
	// Tiny datasets keep their documented fallback.
	if got := MedianSigma(randPoints(1, 3, 1), 64, 0); !matrix.ApproxEqual(got, 1, 0) {
		t.Fatalf("n=1 sigma = %v, want 1", got)
	}
}

// TestRecognizedEvalMatchesFunc pins the Eval of the recognized kernels
// to the plain Func forms, which older call sites still construct.
func TestRecognizedEvalMatchesFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := make([]float64, 15)
	y := make([]float64, 15)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	if g, f := NewGaussian(0.6).Eval(x, y), Gaussian(0.6)(x, y); !matrix.ApproxEqual(g, f, 0) {
		t.Fatalf("gaussian Eval %v != Func %v", g, f)
	}
	if c, f := NewCosine().Eval(x, y), Cosine()(x, y); !matrix.ApproxEqual(c, f, 0) {
		t.Fatalf("cosine Eval %v != Func %v", c, f)
	}
	zero := make([]float64, 15)
	if v := NewCosine().Eval(x, zero); !matrix.IsZero(v) {
		t.Fatalf("cosine with zero vector = %v, want 0", v)
	}
}

func TestNewGaussianRejectsBadSigma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGaussian(0) did not panic")
		}
	}()
	NewGaussian(0)
}
