package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// blobs generates k well-separated Gaussian blobs of size perBlob in d
// dimensions and returns the points with their ground-truth labels.
func blobs(rng *rand.Rand, k, perBlob, d int, sep float64) (*matrix.Dense, []int) {
	n := k * perBlob
	pts := matrix.NewDense(n, d)
	truth := make([]int, n)
	for c := 0; c < k; c++ {
		center := make([]float64, d)
		for j := range center {
			center[j] = float64(c) * sep
		}
		for i := 0; i < perBlob; i++ {
			row := pts.Row(c*perBlob + i)
			for j := range row {
				row[j] = center[j] + rng.NormFloat64()*0.1
			}
			truth[c*perBlob+i] = c
		}
	}
	return pts, truth
}

// agreeUpToPermutation checks that two labelings induce the same
// partition of the points.
func agreeUpToPermutation(a, b []int) bool {
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestRunSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts, truth := blobs(rng, 3, 40, 4, 10)
	res, err := Run(pts, Config{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !agreeUpToPermutation(truth, res.Labels) {
		t.Fatal("well-separated blobs must be recovered exactly")
	}
	if res.Inertia > float64(pts.Rows())*0.1 {
		t.Fatalf("inertia too high: %v", res.Inertia)
	}
}

func TestRunValidation(t *testing.T) {
	pts := matrix.NewDense(3, 2)
	if _, err := Run(pts, Config{K: 0}); err == nil {
		t.Fatal("expected error for K=0")
	}
	if _, err := Run(pts, Config{K: 4}); err == nil {
		t.Fatal("expected error for K>n")
	}
}

func TestRunKEqualsN(t *testing.T) {
	pts, _ := matrix.FromRows([][]float64{{0, 0}, {5, 5}, {9, 0}})
	res, err := Run(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range res.Labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Fatalf("K=n must give singleton clusters, labels=%v", res.Labels)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("inertia = %v, want 0", res.Inertia)
	}
}

func TestRunSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts, _ := blobs(rng, 1, 50, 3, 0)
	res, err := Run(pts, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("all labels must be 0 for K=1")
		}
	}
	// Centroid must be the mean.
	for j := 0; j < 3; j++ {
		if math.Abs(res.Centroids.At(0, j)-matrix.Mean(pts.Col(j))) > 1e-9 {
			t.Fatal("K=1 centroid must be the global mean")
		}
	}
}

func TestRunDuplicatePoints(t *testing.T) {
	// More clusters than distinct points: empty-cluster repair must not
	// loop or crash.
	pts, _ := matrix.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}})
	res, err := Run(pts, Config{K: 3, Seed: 7, MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 4 {
		t.Fatalf("labels = %v", res.Labels)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts, _ := blobs(rng, 4, 25, 5, 8)
	r1, err := Run(pts, Config{K: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(pts, Config{K: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatal("same seed must give identical labels")
		}
	}
	if r1.Inertia != r2.Inertia {
		t.Fatal("same seed must give identical inertia")
	}
}

func TestRunWorkersEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts, _ := blobs(rng, 3, 30, 4, 6)
	serial, err := Run(pts, Config{K: 3, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(pts, Config{K: 3, Seed: 5, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Labels {
		if serial.Labels[i] != parallel.Labels[i] {
			t.Fatal("worker count must not change the result")
		}
	}
}

// Property: every label is in range and every cluster is non-empty.
func TestPropLabelsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		d := 1 + rng.Intn(5)
		k := 1 + rng.Intn(4)
		if k > n {
			k = n
		}
		pts := matrix.NewDense(n, d)
		for i := range pts.Data() {
			pts.Data()[i] = rng.Float64()
		}
		res, err := Run(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		seen := make([]bool, k)
		for _, l := range res.Labels {
			if l < 0 || l >= k {
				return false
			}
			seen[l] = true
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inertia never exceeds the inertia of the 1-cluster solution.
func TestPropInertiaMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		pts := matrix.NewDense(n, 3)
		for i := range pts.Data() {
			pts.Data()[i] = rng.NormFloat64()
		}
		r1, err := Run(pts, Config{K: 1, Seed: seed})
		if err != nil {
			return false
		}
		rk, err := Run(pts, Config{K: 3, Seed: seed})
		if err != nil {
			return false
		}
		return rk.Inertia <= r1.Inertia+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
