// Package kmeans implements Lloyd's algorithm with k-means++ seeding,
// the final step of every spectral-clustering variant in the paper
// (SC, PSC, NYST and DASC all run K-means on rows of the eigenvector
// matrix). The assignment step keeps Hamerly-style upper/lower distance
// bounds so converged points skip the full centroid scan, the centroid
// update goes parallel with deterministic partial sums for large
// inputs, and the final inertia is folded into the last assignment pass
// instead of a separate full sweep. Empty clusters are repaired by
// re-seeding from the point farthest from its centroid.
//
// The bounds are used only with strict, slightly padded inequalities,
// so every produced label is exactly the label a full Lloyd scan with
// ascending-index tie-breaking would produce — the skip fires only when
// the assigned centroid is provably the unique strict minimizer. This
// keeps labels byte-identical to the plain implementation, which the
// DASC determinism guarantees rest on.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
)

// Config controls a K-means run. The zero value of optional fields is
// replaced by defaults in Run.
type Config struct {
	// K is the number of clusters; required, 1 <= K <= number of points.
	K int
	// MaxIter bounds the number of Lloyd iterations (default 100).
	MaxIter int
	// Tol stops iteration when total centroid movement falls below it
	// (default 1e-6).
	Tol float64
	// Seed makes runs reproducible.
	Seed int64
	// Workers caps the parallelism of the assignment step
	// (default runtime.GOMAXPROCS(0)).
	Workers int
}

// Result is the outcome of a K-means run.
type Result struct {
	// Labels[i] is the cluster index of point i, in [0, K).
	Labels []int
	// Centroids is the K x d matrix of cluster centers.
	Centroids *matrix.Dense
	// Inertia is the summed squared distance of points to their centroid.
	Inertia float64
	// Iterations actually performed.
	Iterations int
}

// ErrBadK is returned when K is out of range for the dataset.
var ErrBadK = errors.New("kmeans: K out of range")

const (
	// assignBlockRows is the fixed row-block edge of the parallel
	// assignment and inertia passes. Blocks never depend on the worker
	// count, and block partials are reduced in block order, so inertia
	// bits are identical for every parallelism level.
	assignBlockRows = 256
	// updateBlockRows is the fixed row-block edge of the parallel
	// centroid update.
	updateBlockRows = 256
	// boundsPad slightly shrinks the bound-skip region to absorb the
	// ulp-level rounding the drifted bounds accumulate, keeping the
	// skip decisions provably label-preserving.
	boundsPad = 1 + 1e-10
)

// parallelUpdateCutoff is the point count at which the centroid update
// switches from the verbatim sequential accumulation to fixed-block
// parallel partial sums. Below it the sequential path runs, whose
// summation order (and therefore every centroid bit) matches the
// historical implementation exactly. A var so tests can lower it.
var parallelUpdateCutoff = 4096

// boundsState carries the Hamerly bookkeeping across iterations.
type boundsState struct {
	upper    []float64 // per point: upper bound on distance to its centroid
	lower    []float64 // per point: lower bound on distance to any other centroid
	half     []float64 // per centroid: half the distance to the nearest other centroid
	moveDist []float64 // per centroid: movement of the last update
}

func newBoundsState(n, k int) *boundsState {
	st := &boundsState{
		upper:    make([]float64, n),
		lower:    make([]float64, n),
		half:     make([]float64, k),
		moveDist: make([]float64, k),
	}
	for i := range st.upper {
		st.upper[i] = math.Inf(1) // force a full scan on the first pass
	}
	return st
}

// refreshHalf recomputes, for every centroid, half the distance to the
// nearest other centroid — O(k^2 d), negligible next to the O(n k d)
// scans it prevents.
func (st *boundsState) refreshHalf(centroids *matrix.Dense) {
	k := centroids.Rows()
	for c := range st.half {
		st.half[c] = math.Inf(1)
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			h := 0.5 * math.Sqrt(matrix.SqDist(centroids.Row(a), centroids.Row(b)))
			if h < st.half[a] {
				st.half[a] = h
			}
			if h < st.half[b] {
				st.half[b] = h
			}
		}
	}
}

// drift loosens every point's bounds by the centroid movements of one
// update: the own centroid may have moved toward the point, any other
// centroid at most maxMove closer.
func (st *boundsState) drift(labels []int, maxMove float64) {
	for i, c := range labels {
		st.upper[i] += st.moveDist[c]
		st.lower[i] -= maxMove
	}
}

// reset invalidates point i's bounds after a repair teleported its
// centroid onto it: distance zero, no knowledge of the runner-up.
func (st *boundsState) reset(i int) {
	st.upper[i] = 0
	st.lower[i] = 0
}

// Run clusters the rows of points into cfg.K clusters.
func Run(points *matrix.Dense, cfg Config) (*Result, error) {
	n := points.Rows()
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("%w: K=%d with %d points", ErrBadK, cfg.K, n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := points.Cols()

	centroids := seedPlusPlus(points, cfg.K, rng)
	labels := make([]int, n)
	counts := make([]int, cfg.K)
	sums := matrix.NewDense(cfg.K, d)
	st := newBoundsState(n, cfg.K)
	var upd *updateScratch
	if n >= parallelUpdateCutoff && cfg.Workers > 1 {
		upd = newUpdateScratch(n, cfg.K, d)
	}

	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		st.refreshHalf(centroids)
		assignBounded(points, centroids, labels, st, cfg.Workers, nil)
		accumulate(points, labels, counts, sums, cfg.Workers, upd)

		var moved, maxMove float64
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// current centroid, the standard repair.
				far := farthestPoint(points, centroids, labels)
				copy(sums.Row(c), points.Row(far))
				counts[c] = 1
				labels[far] = c
				st.reset(far)
			}
			inv := 1 / float64(counts[c])
			newRow := sums.Row(c)
			oldRow := centroids.Row(c)
			var delta float64
			for j := range newRow {
				v := newRow[j] * inv
				dv := v - oldRow[j]
				delta += dv * dv
				oldRow[j] = v
			}
			move := math.Sqrt(delta)
			st.moveDist[c] = move
			moved += move
			if move > maxMove {
				maxMove = move
			}
		}
		st.drift(labels, maxMove)
		if moved < cfg.Tol {
			iter++
			break
		}
	}
	// Final assignment with the inertia fold: one pass produces both the
	// labels for the converged centroids and the exact summed squared
	// distances, replacing the historical separate full-data sweep.
	st.refreshHalf(centroids)
	partials := make([]float64, (n+assignBlockRows-1)/assignBlockRows)
	assignBounded(points, centroids, labels, st, cfg.Workers, partials)
	var inertia float64
	for _, v := range partials {
		inertia += v
	}
	return &Result{Labels: labels, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}

// assignBounded writes the index of the nearest centroid for every
// point into labels, using the Hamerly bounds to skip points whose
// assigned centroid is provably still the unique strict minimizer.
// Points that cannot be skipped run the verbatim full Lloyd scan
// (strict d < best, ascending centroid index), so the resulting labels
// are identical to the unaccelerated algorithm's.
//
// When inertiaPartials is non-nil it receives one partial per fixed
// 256-row block — the exact squared distance of each point to its final
// centroid, accumulated in row order. Summing the partials in block
// order yields an inertia that is bitwise independent of the worker
// count.
func assignBounded(points, centroids *matrix.Dense, labels []int, st *boundsState, workers int, inertiaPartials []float64) {
	n := points.Rows()
	nb := (n + assignBlockRows - 1) / assignBlockRows
	k := centroids.Rows()

	oneBlock := func(b int) {
		lo := b * assignBlockRows
		hi := lo + assignBlockRows
		if hi > n {
			hi = n
		}
		var acc float64
		for i := lo; i < hi; i++ {
			a := labels[i]
			p := points.Row(i)
			u, l := st.upper[i], st.lower[i]
			d2 := math.NaN() // squared distance to the assigned centroid, when known exactly
			if !(u*boundsPad < l || u*boundsPad < st.half[a]) {
				// Bounds too loose: tighten the upper bound to the exact
				// distance and re-test before paying for the full scan.
				d2 = matrix.SqDist(p, centroids.Row(a))
				u = math.Sqrt(d2)
				st.upper[i] = u
				if !(u*boundsPad < l || u*boundsPad < st.half[a]) {
					best, bestD := 0, math.Inf(1)
					secondD := math.Inf(1)
					for c := 0; c < k; c++ {
						if dd := matrix.SqDist(p, centroids.Row(c)); dd < bestD {
							best, bestD, secondD = c, dd, bestD
						} else if dd < secondD {
							secondD = dd
						}
					}
					labels[i] = best
					st.upper[i] = math.Sqrt(bestD)
					st.lower[i] = math.Sqrt(secondD)
					d2 = bestD
				}
			}
			if inertiaPartials != nil {
				if math.IsNaN(d2) {
					d2 = matrix.SqDist(p, centroids.Row(labels[i]))
				}
				acc += d2
			}
		}
		if inertiaPartials != nil {
			inertiaPartials[b] = acc
		}
	}

	if workers > nb {
		workers = nb
	}
	if workers <= 1 || n < assignBlockRows*2 {
		for b := 0; b < nb; b++ {
			oneBlock(b)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				oneBlock(b)
			}
		}()
	}
	wg.Wait()
}

// updateScratch holds the fixed per-block partial counts and sums of
// the parallel centroid update.
type updateScratch struct {
	nb     int
	counts []int     // nb x k
	sums   []float64 // nb x (k*d)
}

func newUpdateScratch(n, k, d int) *updateScratch {
	nb := (n + updateBlockRows - 1) / updateBlockRows
	return &updateScratch{
		nb:     nb,
		counts: make([]int, nb*k),
		sums:   make([]float64, nb*k*d),
	}
}

// accumulate recomputes counts and sums from the current labels. Small
// inputs (or upd == nil) take the historical sequential loop, whose
// summation order the default configurations depend on bitwise. Large
// inputs accumulate per fixed 256-row block on a worker pool and reduce
// the block partials in block order — parallel, yet every sum bit is
// independent of the worker count.
func accumulate(points *matrix.Dense, labels []int, counts []int, sums *matrix.Dense, workers int, upd *updateScratch) {
	n := points.Rows()
	k := len(counts)
	d := sums.Cols()
	for i := range counts {
		counts[i] = 0
	}
	data := sums.Data()
	for i := range data {
		data[i] = 0
	}
	if upd == nil || workers <= 1 {
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			row := sums.Row(c)
			for j, v := range points.Row(i) {
				row[j] += v
			}
		}
		return
	}

	nb := upd.nb
	for i := range upd.counts {
		upd.counts[i] = 0
	}
	for i := range upd.sums {
		upd.sums[i] = 0
	}
	if workers > nb {
		workers = nb
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nb {
					return
				}
				lo := b * updateBlockRows
				hi := lo + updateBlockRows
				if hi > n {
					hi = n
				}
				bc := upd.counts[b*k : (b+1)*k]
				bs := upd.sums[b*k*d : (b+1)*k*d]
				for i := lo; i < hi; i++ {
					c := labels[i]
					bc[c]++
					row := bs[c*d : (c+1)*d]
					for j, v := range points.Row(i) {
						row[j] += v
					}
				}
			}
		}()
	}
	wg.Wait()
	// Deterministic reduction: block partials in block order.
	for b := 0; b < nb; b++ {
		bc := upd.counts[b*k : (b+1)*k]
		bs := upd.sums[b*k*d : (b+1)*k*d]
		for c := 0; c < k; c++ {
			counts[c] += bc[c]
			row := sums.Row(c)
			for j, v := range bs[c*d : (c+1)*d] {
				row[j] += v
			}
		}
	}
}

// seedPlusPlus chooses K initial centroids with the k-means++ scheme:
// the first uniformly, each next with probability proportional to the
// squared distance from the nearest already-chosen centroid.
func seedPlusPlus(points *matrix.Dense, k int, rng *rand.Rand) *matrix.Dense {
	n, d := points.Rows(), points.Cols()
	centroids := matrix.NewDense(k, d)
	first := rng.Intn(n)
	copy(centroids.Row(0), points.Row(first))

	dist2 := make([]float64, n)
	for i := 0; i < n; i++ {
		dist2[i] = matrix.SqDist(points.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist2 {
			total += v
		}
		var pick int
		if total <= 0 {
			// All remaining points coincide with chosen centroids.
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			var acc float64
			pick = n - 1
			for i, v := range dist2 {
				acc += v
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), points.Row(pick))
		for i := 0; i < n; i++ {
			if d2 := matrix.SqDist(points.Row(i), centroids.Row(c)); d2 < dist2[i] {
				dist2[i] = d2
			}
		}
	}
	return centroids
}

// farthestPoint returns the index of the point with the largest distance
// to its assigned centroid.
func farthestPoint(points, centroids *matrix.Dense, labels []int) int {
	worst, worstD := 0, -1.0
	for i := 0; i < points.Rows(); i++ {
		if d := matrix.SqDist(points.Row(i), centroids.Row(labels[i])); d > worstD {
			worst, worstD = i, d
		}
	}
	return worst
}
