// Package kmeans implements Lloyd's algorithm with k-means++ seeding,
// the final step of every spectral-clustering variant in the paper
// (SC, PSC, NYST and DASC all run K-means on rows of the eigenvector
// matrix). The assignment step is parallelized across goroutines, and
// empty clusters are repaired by re-seeding from the point farthest
// from its centroid.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/matrix"
)

// Config controls a K-means run. The zero value of optional fields is
// replaced by defaults in Run.
type Config struct {
	// K is the number of clusters; required, 1 <= K <= number of points.
	K int
	// MaxIter bounds the number of Lloyd iterations (default 100).
	MaxIter int
	// Tol stops iteration when total centroid movement falls below it
	// (default 1e-6).
	Tol float64
	// Seed makes runs reproducible.
	Seed int64
	// Workers caps the parallelism of the assignment step
	// (default runtime.GOMAXPROCS(0)).
	Workers int
}

// Result is the outcome of a K-means run.
type Result struct {
	// Labels[i] is the cluster index of point i, in [0, K).
	Labels []int
	// Centroids is the K x d matrix of cluster centers.
	Centroids *matrix.Dense
	// Inertia is the summed squared distance of points to their centroid.
	Inertia float64
	// Iterations actually performed.
	Iterations int
}

// ErrBadK is returned when K is out of range for the dataset.
var ErrBadK = errors.New("kmeans: K out of range")

// Run clusters the rows of points into cfg.K clusters.
func Run(points *matrix.Dense, cfg Config) (*Result, error) {
	n := points.Rows()
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("%w: K=%d with %d points", ErrBadK, cfg.K, n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := points.Cols()

	centroids := seedPlusPlus(points, cfg.K, rng)
	labels := make([]int, n)
	counts := make([]int, cfg.K)
	sums := matrix.NewDense(cfg.K, d)

	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		assignParallel(points, centroids, labels, cfg.Workers)

		// Recompute centroids.
		for i := range counts {
			counts[i] = 0
		}
		for i := range sums.Data() {
			sums.Data()[i] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			row := sums.Row(c)
			for j, v := range points.Row(i) {
				row[j] += v
			}
		}
		var moved float64
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// current centroid, the standard repair.
				far := farthestPoint(points, centroids, labels)
				copy(sums.Row(c), points.Row(far))
				counts[c] = 1
				labels[far] = c
			}
			inv := 1 / float64(counts[c])
			newRow := sums.Row(c)
			oldRow := centroids.Row(c)
			var delta float64
			for j := range newRow {
				v := newRow[j] * inv
				dv := v - oldRow[j]
				delta += dv * dv
				oldRow[j] = v
			}
			moved += math.Sqrt(delta)
		}
		if moved < cfg.Tol {
			iter++
			break
		}
	}
	assignParallel(points, centroids, labels, cfg.Workers)

	var inertia float64
	for i := 0; i < n; i++ {
		inertia += matrix.SqDist(points.Row(i), centroids.Row(labels[i]))
	}
	return &Result{Labels: labels, Centroids: centroids, Inertia: inertia, Iterations: iter}, nil
}

// seedPlusPlus chooses K initial centroids with the k-means++ scheme:
// the first uniformly, each next with probability proportional to the
// squared distance from the nearest already-chosen centroid.
func seedPlusPlus(points *matrix.Dense, k int, rng *rand.Rand) *matrix.Dense {
	n, d := points.Rows(), points.Cols()
	centroids := matrix.NewDense(k, d)
	first := rng.Intn(n)
	copy(centroids.Row(0), points.Row(first))

	dist2 := make([]float64, n)
	for i := 0; i < n; i++ {
		dist2[i] = matrix.SqDist(points.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range dist2 {
			total += v
		}
		var pick int
		if total <= 0 {
			// All remaining points coincide with chosen centroids.
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			var acc float64
			pick = n - 1
			for i, v := range dist2 {
				acc += v
				if acc >= r {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), points.Row(pick))
		for i := 0; i < n; i++ {
			if d2 := matrix.SqDist(points.Row(i), centroids.Row(c)); d2 < dist2[i] {
				dist2[i] = d2
			}
		}
	}
	return centroids
}

// assignParallel writes the index of the nearest centroid for every
// point into labels, splitting rows across workers.
func assignParallel(points, centroids *matrix.Dense, labels []int, workers int) {
	n := points.Rows()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		assignRange(points, centroids, labels, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			assignRange(points, centroids, labels, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func assignRange(points, centroids *matrix.Dense, labels []int, lo, hi int) {
	k := centroids.Rows()
	for i := lo; i < hi; i++ {
		p := points.Row(i)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			if d := matrix.SqDist(p, centroids.Row(c)); d < bestD {
				best, bestD = c, d
			}
		}
		labels[i] = best
	}
}

// farthestPoint returns the index of the point with the largest distance
// to its assigned centroid.
func farthestPoint(points, centroids *matrix.Dense, labels []int) int {
	worst, worstD := 0, -1.0
	for i := 0; i < points.Rows(); i++ {
		if d := matrix.SqDist(points.Row(i), centroids.Row(labels[i])); d > worstD {
			worst, worstD = i, d
		}
	}
	return worst
}
