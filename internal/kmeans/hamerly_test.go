package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

// referenceLloyd is the pre-bounds implementation, kept verbatim as the
// oracle: full assignment scan every iteration, sequential centroid
// accumulation, separate final inertia sweep. The bounded production
// path must reproduce its labels bit for bit.
func referenceLloyd(points *matrix.Dense, cfg Config) *Result {
	n := points.Rows()
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := points.Cols()
	centroids := seedPlusPlus(points, cfg.K, rng)
	labels := make([]int, n)
	counts := make([]int, cfg.K)
	sums := matrix.NewDense(cfg.K, d)
	assign := func() {
		k := centroids.Rows()
		for i := 0; i < n; i++ {
			p := points.Row(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dd := matrix.SqDist(p, centroids.Row(c)); dd < bestD {
					best, bestD = c, dd
				}
			}
			labels[i] = best
		}
	}
	var iter int
	for iter = 0; iter < cfg.MaxIter; iter++ {
		assign()
		for i := range counts {
			counts[i] = 0
		}
		for i := range sums.Data() {
			sums.Data()[i] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			row := sums.Row(c)
			for j, v := range points.Row(i) {
				row[j] += v
			}
		}
		var moved float64
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				far := farthestPoint(points, centroids, labels)
				copy(sums.Row(c), points.Row(far))
				counts[c] = 1
				labels[far] = c
			}
			inv := 1 / float64(counts[c])
			newRow := sums.Row(c)
			oldRow := centroids.Row(c)
			var delta float64
			for j := range newRow {
				v := newRow[j] * inv
				dv := v - oldRow[j]
				delta += dv * dv
				oldRow[j] = v
			}
			moved += math.Sqrt(delta)
		}
		if moved < cfg.Tol {
			iter++
			break
		}
	}
	assign()
	var inertia float64
	for i := 0; i < n; i++ {
		inertia += matrix.SqDist(points.Row(i), centroids.Row(labels[i]))
	}
	return &Result{Labels: labels, Centroids: centroids, Inertia: inertia, Iterations: iter}
}

// TestBoundedMatchesReferenceLloyd: across a spread of shapes and
// seeds, the Hamerly-accelerated Run must produce the exact labels,
// centroid bits, and iteration count of the unaccelerated oracle.
func TestBoundedMatchesReferenceLloyd(t *testing.T) {
	cases := []struct {
		n, d, k int
		sep     float64
	}{
		{60, 4, 3, 10},   // well-separated: skips dominate
		{90, 3, 5, 1.0},  // heavy overlap: ties in space, scans dominate
		{200, 8, 7, 2.5}, // mid-size, moderate separation
		{64, 2, 8, 0.5},  // many clusters, crowded plane
		{50, 5, 50, 3},   // k == n degenerate
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed * 131))
			pts := matrix.NewDense(tc.n, tc.d)
			for i := 0; i < tc.n; i++ {
				row := pts.Row(i)
				c := i % tc.k
				for j := range row {
					row[j] = float64(c)*tc.sep + rng.NormFloat64()
				}
			}
			cfg := Config{K: tc.k, Seed: seed, Workers: 1}
			got, err := Run(pts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceLloyd(pts, cfg)
			if got.Iterations != want.Iterations {
				t.Fatalf("n=%d k=%d seed=%d: iterations %d vs %d", tc.n, tc.k, seed, got.Iterations, want.Iterations)
			}
			for i := range want.Labels {
				if got.Labels[i] != want.Labels[i] {
					t.Fatalf("n=%d k=%d seed=%d: label[%d] = %d, oracle %d",
						tc.n, tc.k, seed, i, got.Labels[i], want.Labels[i])
				}
			}
			gd, wd := got.Centroids.Data(), want.Centroids.Data()
			for i := range wd {
				if gd[i] != wd[i] {
					t.Fatalf("n=%d k=%d seed=%d: centroid bit drift at %d: %v vs %v",
						tc.n, tc.k, seed, i, gd[i], wd[i])
				}
			}
			if math.Abs(got.Inertia-want.Inertia) > 1e-9*(1+want.Inertia) {
				t.Fatalf("inertia %v vs oracle %v", got.Inertia, want.Inertia)
			}
		}
	}
}

// TestRunWorkerDeterminismWithInertia: labels AND inertia bits must not
// depend on the worker count — the inertia fold reduces fixed-block
// partials in block order regardless of parallelism.
func TestRunWorkerDeterminismWithInertia(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := matrix.NewDense(1200, 6)
	for i := range pts.Data() {
		pts.Data()[i] = rng.NormFloat64()
	}
	base, err := Run(pts, Config{K: 9, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 16} {
		res, err := Run(pts, Config{K: 9, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range base.Labels {
			if res.Labels[i] != base.Labels[i] {
				t.Fatalf("workers=%d: label[%d] = %d vs %d", workers, i, res.Labels[i], base.Labels[i])
			}
		}
		if res.Inertia != base.Inertia {
			t.Fatalf("workers=%d: inertia %v vs %v (must be bitwise equal)", workers, res.Inertia, base.Inertia)
		}
	}
}

// TestParallelCentroidUpdate exercises the fixed-block parallel
// accumulation by lowering the cutoff, checking it agrees with the
// sequential path on counts and sums within summation-order tolerance
// and stays worker-count deterministic.
func TestParallelCentroidUpdate(t *testing.T) {
	old := parallelUpdateCutoff
	parallelUpdateCutoff = 64
	defer func() { parallelUpdateCutoff = old }()

	rng := rand.New(rand.NewSource(13))
	pts := matrix.NewDense(700, 5)
	for i := range pts.Data() {
		pts.Data()[i] = rng.NormFloat64()
	}
	seq, err := Run(pts, Config{K: 6, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var first *Result
	for _, workers := range []int{2, 4, 7} {
		res, err := Run(pts, Config{K: 6, Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
		} else {
			for i := range first.Labels {
				if res.Labels[i] != first.Labels[i] {
					t.Fatalf("workers=%d: parallel update not deterministic at %d", workers, i)
				}
			}
			if res.Inertia != first.Inertia {
				t.Fatalf("workers=%d: inertia %v vs %v", workers, res.Inertia, first.Inertia)
			}
		}
		// Block-order reduction reorders float additions, so the
		// parallel-update solution may differ from the sequential one in
		// low bits — but it must be the same clustering.
		if !agreeUpToPermutation(seq.Labels, res.Labels) {
			t.Fatalf("workers=%d: parallel update changed the clustering", workers)
		}
	}
}

// TestAccumulateParallelMatchesSequential pins the parallel partial-sum
// reduction against the sequential accumulation directly.
func TestAccumulateParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, k, d := 900, 7, 4
	pts := matrix.NewDense(n, d)
	for i := range pts.Data() {
		pts.Data()[i] = rng.NormFloat64()
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(k)
	}
	seqCounts := make([]int, k)
	seqSums := matrix.NewDense(k, d)
	accumulate(pts, labels, seqCounts, seqSums, 1, nil)

	parCounts := make([]int, k)
	parSums := matrix.NewDense(k, d)
	accumulate(pts, labels, parCounts, parSums, 4, newUpdateScratch(n, k, d))
	for c := 0; c < k; c++ {
		if parCounts[c] != seqCounts[c] {
			t.Fatalf("count[%d] = %d vs %d", c, parCounts[c], seqCounts[c])
		}
		for j := 0; j < d; j++ {
			if math.Abs(parSums.At(c, j)-seqSums.At(c, j)) > 1e-10*(1+math.Abs(seqSums.At(c, j))) {
				t.Fatalf("sum[%d][%d] = %v vs %v", c, j, parSums.At(c, j), seqSums.At(c, j))
			}
		}
	}
}
