// Package corpus synthesizes a category-structured document collection
// that stands in for the paper's 3.5M-document Wikipedia crawl (§5.2).
// Documents are emitted as small HTML pages over a Zipfian vocabulary
// of pronounceable pseudo-English words; each category boosts its own
// characteristic terms, so the downstream text pipeline (strip, stem,
// tf-idf) recovers a clusterable vector representation with ground-
// truth labels — the property the paper's Figure 3 accuracy metric
// needs. The number of categories follows the paper's fitted law
// K = 17(log2 N - 9) by default (Table 1 / Eq. 15).
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/matrix"
	"repro/internal/text"
)

// Config controls corpus generation.
type Config struct {
	// NumDocs is the number of documents (required).
	NumDocs int
	// NumCategories overrides the Table 1 law when positive.
	NumCategories int
	// VocabSize is the background vocabulary size (default 2000).
	VocabSize int
	// TokensPerDoc is the mean document length in content tokens
	// (default 80).
	TokensPerDoc int
	// CharTerms is the number of characteristic terms per category
	// (default 12).
	CharTerms int
	// Focus is the probability that a token is drawn from the
	// category's own vocabulary (characteristic or topic-hierarchy
	// terms) rather than the background Zipf distribution (default 0.7).
	Focus float64
	// TopicWeight is the fraction of the Focus mass spent on the broad
	// topic-hierarchy terms shared by category groups, as opposed to
	// the category's characteristic leaf terms (default 0.4). Higher
	// values make the broad terms rank higher under tf-idf, which is
	// what gives the LSH front-end dense splitting dimensions.
	TopicWeight float64
	// Seed makes generation reproducible.
	Seed int64
}

// Corpus is a generated document collection with ground truth.
type Corpus struct {
	// Docs holds raw HTML documents.
	Docs []string
	// Labels[i] is the category of Docs[i].
	Labels []int
	// Categories is the number of distinct categories.
	Categories int
	// CategoryNames mirrors Wikipedia's category titles.
	CategoryNames []string
}

// Generate builds a corpus per the configuration. It is a thin wrapper
// over GenerateStream that materializes every document; use the
// streaming form directly when the collection is too large to hold.
func Generate(cfg Config) (*Corpus, error) {
	c := &Corpus{}
	meta, err := GenerateStream(cfg, func(doc string, label int) error {
		c.Docs = append(c.Docs, doc)
		c.Labels = append(c.Labels, label)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.Categories = meta.Categories
	c.CategoryNames = meta.CategoryNames
	return c, nil
}

// levelsFor returns the number of base-`fanout` digits needed to index
// k categories, at least 1.
func levelsFor(k, fanout int) int {
	b, p := 1, fanout
	for p < k {
		p *= fanout
		b++
	}
	return b
}

// pow is integer exponentiation for small arguments.
func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// renderDoc emits one HTML document: a title, a summary paragraph of
// category-focused tokens mixed with the category's topic-hierarchy
// terms, and a sprinkling of stop words so the cleaning pipeline has
// real work to do.
func renderDoc(rng *rand.Rand, cfg Config, name string, char, topics []string, vocab []string, zipfW []float64) string {
	// Document length jitters around the mean, and each document uses
	// its own subset of the category's characteristic terms with its
	// own focus — real articles in one category vary in vocabulary and
	// topicality, and that intra-category spread is what produces
	// signature diversity under LSH.
	length := cfg.TokensPerDoc/2 + rng.Intn(cfg.TokensPerDoc+1)
	if length < 1 {
		length = 1
	}
	if len(char) > 4 {
		subset := append([]string(nil), char...)
		rng.Shuffle(len(subset), func(i, j int) { subset[i], subset[j] = subset[j], subset[i] })
		keep := len(subset)/2 + rng.Intn(len(subset)/2+1)
		char = subset[:keep]
	}
	focus := cfg.Focus * (0.85 + 0.3*rng.Float64())
	if focus > 0.95 {
		focus = 0.95
	}
	glue := []string{"the", "and", "of", "in", "with", "for"}
	var sb strings.Builder
	sb.WriteString("<html><head><title>")
	sb.WriteString(name)
	sb.WriteString("</title><style>p{margin:0}</style></head><body><p>")
	for t := 0; t < length; t++ {
		if t > 0 {
			sb.WriteByte(' ')
		}
		if rng.Float64() < 0.25 {
			sb.WriteString(glue[rng.Intn(len(glue))])
			sb.WriteByte(' ')
		}
		var word string
		switch r := rng.Float64(); {
		case r < focus*(1-cfg.TopicWeight):
			word = char[rng.Intn(len(char))]
		case r < focus:
			word = topics[rng.Intn(len(topics))]
		default:
			word = vocab[sampleZipf(rng, zipfW)]
		}
		sb.WriteString(inflect(rng, word))
	}
	sb.WriteString(".</p></body></html>")
	return sb.String()
}

// syllables used to build pronounceable vocabulary words.
var (
	onsets  = []string{"b", "c", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "br", "cl", "dr", "gr", "pl", "st", "tr"}
	nuclei  = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}
	inflMap = []string{"", "", "", "s", "ing", "ed", "ly"}
)

// makeVocabulary builds n distinct pseudo-English stems.
func makeVocabulary(rng *rand.Rand, n int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		var sb strings.Builder
		syll := 2 + rng.Intn(2)
		for s := 0; s < syll; s++ {
			sb.WriteString(onsets[rng.Intn(len(onsets))])
			sb.WriteString(nuclei[rng.Intn(len(nuclei))])
		}
		w := sb.String()
		if text.IsStopWord(w) || seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	return out
}

// inflect appends a random inflection so the Porter stemmer has real
// suffixes to strip; the stem stays the vocabulary word.
func inflect(rng *rand.Rand, stem string) string {
	return stem + inflMap[rng.Intn(len(inflMap))]
}

// capitalize upper-cases the first ASCII letter of a vocabulary word.
func capitalize(s string) string {
	if s == "" || s[0] < 'a' || s[0] > 'z' {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

// zipfWeights returns unnormalized 1/rank weights.
func zipfWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(i+1)
	}
	// Cumulative form for sampling.
	for i := 1; i < n; i++ {
		w[i] += w[i-1]
	}
	return w
}

// sampleZipf draws an index from the cumulative weights by binary search.
func sampleZipf(rng *rand.Rand, cum []float64) int {
	r := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Vectorize runs the full text pipeline over the corpus and returns the
// tf-idf vectors with ground-truth labels: Clean each document, keep
// each document's top-f terms by tf-idf (the paper's F=11 scheme), and
// embed every document in the union vocabulary of kept terms.
func (c *Corpus) Vectorize(f int) (*dataset.Labeled, error) {
	cleaned := make([][]string, len(c.Docs))
	for i, d := range c.Docs {
		cleaned[i] = text.Clean(d)
	}
	pts, _, err := text.VectorizeTopTerms(cleaned, f)
	if err != nil {
		return nil, err
	}
	labels := append([]int(nil), c.Labels...)
	return &dataset.Labeled{Points: pts, Labels: labels}, nil
}

// VectorizeDense is Vectorize followed by a Gaussian random projection
// to dims dense dimensions (L2-normalized rows). The paper represents
// every document as a d = 11-dimensional point; the sparse
// union-vocabulary embedding is projected down to the same kind of
// dense low-dimensional representation — random projection is the
// technique the paper itself singles out as best for high-dimensional
// data clustering (§3.2, citing Fern & Brodley). Distances, and hence
// both the clustering and the LSH span/threshold statistics, are
// preserved in the Johnson–Lindenstrauss sense.
func (c *Corpus) VectorizeDense(f, dims int, seed int64) (*dataset.Labeled, error) {
	if dims < 1 {
		return nil, fmt.Errorf("corpus: dims=%d", dims)
	}
	l, err := c.Vectorize(f)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5EED))
	d := l.Points.Cols()
	proj := matrix.NewDense(d, dims)
	scale := 1 / math.Sqrt(float64(dims))
	for i := range proj.Data() {
		proj.Data()[i] = rng.NormFloat64() * scale
	}
	dense, err := matrix.Mul(l.Points, proj)
	if err != nil {
		return nil, err
	}
	matrix.NormalizeRows(dense)
	return &dataset.Labeled{Points: dense, Labels: l.Labels}, nil
}
