package corpus

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/spectral"
)

func TestGenerateValidation(t *testing.T) {
	cases := []Config{
		{NumDocs: 0},
		{NumDocs: 10, NumCategories: 11},
		{NumDocs: 10, NumCategories: -1},
		{NumDocs: 10, NumCategories: 2, VocabSize: 1},
		{NumDocs: 10, TokensPerDoc: -5},
		{NumDocs: 10, Focus: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	c, err := Generate(Config{NumDocs: 100, NumCategories: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 100 || len(c.Labels) != 100 {
		t.Fatalf("docs=%d labels=%d", len(c.Docs), len(c.Labels))
	}
	if c.Categories != 5 || len(c.CategoryNames) != 5 {
		t.Fatalf("categories=%d names=%d", c.Categories, len(c.CategoryNames))
	}
	counts := map[int]int{}
	for _, l := range c.Labels {
		counts[l]++
	}
	if len(counts) != 5 {
		t.Fatalf("label values = %v", counts)
	}
	for l, n := range counts {
		if n != 20 {
			t.Fatalf("category %d has %d docs, want 20", l, n)
		}
	}
}

func TestGenerateDefaultsToCategoryLaw(t *testing.T) {
	c, err := Generate(Config{NumDocs: 1024, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.Categories != 17 { // K = 17(log2 1024 - 9) = 17
		t.Fatalf("categories = %d, want 17", c.Categories)
	}
}

func TestGenerateDocsAreHTML(t *testing.T) {
	c, err := Generate(Config{NumDocs: 5, NumCategories: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Docs {
		if !strings.HasPrefix(d, "<html>") || !strings.Contains(d, "</body></html>") {
			t.Fatalf("doc is not HTML: %.80s", d)
		}
		if !strings.Contains(d, "<title>Category:") {
			t.Fatalf("doc missing category title: %.80s", d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{NumDocs: 20, NumCategories: 3, Seed: 7})
	b, _ := Generate(Config{NumDocs: 20, NumCategories: 3, Seed: 7})
	for i := range a.Docs {
		if a.Docs[i] != b.Docs[i] {
			t.Fatal("same seed must reproduce documents")
		}
	}
}

func TestVectorizeSeparatesCategories(t *testing.T) {
	c, err := Generate(Config{NumDocs: 120, NumCategories: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.Vectorize(11)
	if err != nil {
		t.Fatal(err)
	}
	if l.Points.Rows() != 120 {
		t.Fatalf("rows = %d", l.Points.Rows())
	}
	// Mean within-category similarity must exceed cross-category.
	var same, diff float64
	var sameN, diffN int
	for i := 0; i < 120; i += 2 {
		for j := i + 1; j < 120; j += 3 {
			dot := 0.0
			for k := 0; k < l.Points.Cols(); k++ {
				dot += l.Points.At(i, k) * l.Points.At(j, k)
			}
			if l.Labels[i] == l.Labels[j] {
				same += dot
				sameN++
			} else {
				diff += dot
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Fatal("bad sampling")
	}
	if same/float64(sameN) <= diff/float64(diffN) {
		t.Fatalf("within-category similarity %v must exceed cross %v",
			same/float64(sameN), diff/float64(diffN))
	}
}

func TestGenerateTopicWeightValidation(t *testing.T) {
	if _, err := Generate(Config{NumDocs: 10, NumCategories: 2, TopicWeight: 1.5}); err == nil {
		t.Fatal("expected error for TopicWeight > 1")
	}
	if _, err := Generate(Config{NumDocs: 10, NumCategories: 2, TopicWeight: -0.1}); err == nil {
		t.Fatal("expected error for negative TopicWeight")
	}
}

func TestLevelsForAndPow(t *testing.T) {
	cases := []struct{ k, fanout, want int }{
		{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {16, 4, 2}, {17, 4, 3}, {64, 4, 3}, {65, 4, 4},
	}
	for _, c := range cases {
		if got := levelsFor(c.k, c.fanout); got != c.want {
			t.Errorf("levelsFor(%d,%d) = %d, want %d", c.k, c.fanout, got, c.want)
		}
	}
	if pow(4, 3) != 64 || pow(2, 0) != 1 {
		t.Fatal("pow broken")
	}
}

func TestVectorizeDense(t *testing.T) {
	c, err := Generate(Config{NumDocs: 60, NumCategories: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.VectorizeDense(11, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Points.Rows() != 60 || l.Points.Cols() != 16 {
		t.Fatalf("dims %dx%d", l.Points.Rows(), l.Points.Cols())
	}
	if _, err := c.VectorizeDense(11, 0, 1); err == nil {
		t.Fatal("expected error for dims=0")
	}
}

// Integration: the full text pipeline plus spectral clustering must
// recover the categories with high accuracy — the property Figure 3
// depends on.
func TestEndToEndSpectralAccuracy(t *testing.T) {
	c, err := Generate(Config{NumDocs: 90, NumCategories: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	l, err := c.Vectorize(11)
	if err != nil {
		t.Fatal(err)
	}
	sigma := kernel.MedianSigma(l.Points, 500, 1)
	s := kernel.Gram(l.Points, kernel.Gaussian(sigma))
	res, err := spectral.Cluster(s, spectral.Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(l.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("end-to-end accuracy = %v, want >= 0.9", acc)
	}
}
