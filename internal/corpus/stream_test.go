package corpus

import (
	"errors"
	"math"
	"testing"
)

// TestGenerateStreamByteIdentity is the streaming contract: the
// documents handed to the callback are byte-identical, in order, to the
// slices Generate materializes.
func TestGenerateStreamByteIdentity(t *testing.T) {
	cfg := Config{NumDocs: 150, NumCategories: 6, Seed: 19}
	batch, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	meta, err := GenerateStream(cfg, func(doc string, label int) error {
		if doc != batch.Docs[i] {
			t.Fatalf("doc %d differs:\nstream %q\nbatch  %q", i, doc, batch.Docs[i])
		}
		if label != batch.Labels[i] {
			t.Fatalf("label %d = %d, batch %d", i, label, batch.Labels[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != cfg.NumDocs {
		t.Fatalf("streamed %d docs, want %d", i, cfg.NumDocs)
	}
	if meta.Categories != batch.Categories {
		t.Fatalf("categories %d vs %d", meta.Categories, batch.Categories)
	}
	for c, name := range meta.CategoryNames {
		if name != batch.CategoryNames[c] {
			t.Fatalf("name[%d] %q vs %q", c, name, batch.CategoryNames[c])
		}
	}
}

// TestGenerateStreamAbort checks a callback error stops generation and
// surfaces unwrapped.
func TestGenerateStreamAbort(t *testing.T) {
	boom := errors.New("boom")
	n := 0
	_, err := GenerateStream(Config{NumDocs: 50, NumCategories: 2, Seed: 3}, func(string, int) error {
		n++
		if n == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 7 {
		t.Fatalf("callback ran %d times after abort", n)
	}
}

// TestGenerateStreamValidation mirrors Generate's config checks on the
// streaming entry point.
func TestGenerateStreamValidation(t *testing.T) {
	for i, cfg := range []Config{
		{NumDocs: 0},
		{NumDocs: 10, NumCategories: 11},
		{NumDocs: 10, Focus: 1.5},
	} {
		if _, err := GenerateStream(cfg, func(string, int) error { return nil }); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

// TestStreamDenseBitwiseIdentity is the out-of-core vectorizer's
// contract: every float64 it emits must carry the same bits as the
// batch Generate + VectorizeDense pipeline, so shard files written from
// the stream feed the sharded driver the exact in-memory dataset.
func TestStreamDenseBitwiseIdentity(t *testing.T) {
	cfg := Config{NumDocs: 200, NumCategories: 8, Seed: 77}
	const f, dims, seed = 11, 12, 5
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := c.VectorizeDense(f, dims, seed)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	meta, err := StreamDense(cfg, f, dims, seed, func(row []float64, label int) error {
		if len(row) != dims {
			t.Fatalf("row %d has %d dims", i, len(row))
		}
		want := batch.Points.Row(i)
		for j, v := range row {
			if math.Float64bits(v) != math.Float64bits(want[j]) {
				t.Fatalf("row %d col %d: stream %x batch %x (%v vs %v)",
					i, j, math.Float64bits(v), math.Float64bits(want[j]), v, want[j])
			}
		}
		if label != batch.Labels[i] {
			t.Fatalf("label %d = %d, batch %d", i, label, batch.Labels[i])
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != cfg.NumDocs {
		t.Fatalf("streamed %d rows, want %d", i, cfg.NumDocs)
	}
	if meta.Categories != c.Categories {
		t.Fatalf("categories %d vs %d", meta.Categories, c.Categories)
	}
}

// TestStreamDenseValidation pins the parameter checks.
func TestStreamDenseValidation(t *testing.T) {
	fn := func([]float64, int) error { return nil }
	if _, err := StreamDense(Config{NumDocs: 10, NumCategories: 2, Seed: 1}, 0, 4, 1, fn); err == nil {
		t.Error("F=0 accepted")
	}
	if _, err := StreamDense(Config{NumDocs: 10, NumCategories: 2, Seed: 1}, 11, 0, 1, fn); err == nil {
		t.Error("dims=0 accepted")
	}
	if _, err := StreamDense(Config{NumDocs: 0}, 11, 4, 1, fn); err == nil {
		t.Error("empty corpus accepted")
	}
}
