package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/analytic"
	"repro/internal/matrix"
	"repro/internal/text"
)

// Meta describes a generated corpus without materializing it — the
// pieces of Corpus that are O(K) rather than O(N).
type Meta struct {
	// Categories is the number of distinct categories.
	Categories int
	// CategoryNames mirrors Wikipedia's category titles.
	CategoryNames []string
	// Terms is the union top-F vocabulary size discovered by
	// StreamDense — the column count of the sparse tf-idf matrix the
	// batch path would materialize. Zero from GenerateStream.
	Terms int
}

// GenerateStream builds the corpus one document at a time, invoking fn
// for each in order. It produces byte-identical documents to Generate
// (which is a thin wrapper over it) while holding only the vocabulary
// in memory, so million-document corpora stream in O(VocabSize) space.
// A non-nil error from fn aborts generation and is returned unwrapped.
func GenerateStream(cfg Config, fn func(doc string, label int) error) (*Meta, error) {
	if cfg.NumDocs <= 0 {
		return nil, fmt.Errorf("corpus: NumDocs=%d must be positive", cfg.NumDocs)
	}
	k := cfg.NumCategories
	if k == 0 {
		k = analytic.CategoryLaw(cfg.NumDocs)
	}
	if k < 1 || k > cfg.NumDocs {
		return nil, fmt.Errorf("corpus: %d categories for %d docs", k, cfg.NumDocs)
	}
	if cfg.VocabSize == 0 {
		cfg.VocabSize = 2000
	}
	if cfg.VocabSize < k {
		return nil, fmt.Errorf("corpus: vocabulary %d smaller than category count %d", cfg.VocabSize, k)
	}
	if cfg.TokensPerDoc == 0 {
		cfg.TokensPerDoc = 80
	}
	if cfg.TokensPerDoc < 1 {
		return nil, fmt.Errorf("corpus: TokensPerDoc=%d", cfg.TokensPerDoc)
	}
	if cfg.CharTerms == 0 {
		cfg.CharTerms = 12
	}
	if matrix.IsZero(cfg.Focus) {
		cfg.Focus = 0.7
	}
	if cfg.Focus < 0 || cfg.Focus > 1 {
		return nil, fmt.Errorf("corpus: Focus=%v out of [0,1]", cfg.Focus)
	}
	if matrix.IsZero(cfg.TopicWeight) {
		cfg.TopicWeight = 0.55
	}
	if cfg.TopicWeight < 0 || cfg.TopicWeight > 1 {
		return nil, fmt.Errorf("corpus: TopicWeight=%v out of [0,1]", cfg.TopicWeight)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := makeVocabulary(rng, cfg.VocabSize)
	zipfW := zipfWeights(cfg.VocabSize)

	// Characteristic terms: disjoint slices of the vocabulary so that
	// categories do not share boosted terms. When the vocabulary is too
	// small for full disjointness, wrap around.
	charTerms := make([][]string, k)
	names := make([]string, k)
	for c := 0; c < k; c++ {
		terms := make([]string, cfg.CharTerms)
		for t := 0; t < cfg.CharTerms; t++ {
			terms[t] = vocab[(c*cfg.CharTerms+t)%cfg.VocabSize]
		}
		charTerms[c] = terms
		names[c] = "Category:" + capitalize(terms[0])
	}

	// Topic-hierarchy terms: Wikipedia categories live in a tree, and
	// documents use the broad vocabulary of their ancestors as well as
	// their leaf category's terms. Model the tree as 4-ary: level l
	// contributes one of four broad terms according to the l-th base-4
	// digit of the category index, so each broad term covers roughly a
	// quarter of the corpus. Quarter-coverage terms keep enough inverse
	// document frequency to rank high under tf-idf, which is what makes
	// them the large-span dimensions the LSH front-end keys on — they
	// are the "natural valleys" between category groups.
	const fanout = 4
	// Cap the hierarchy depth so a document's topic terms plus its
	// characteristic terms stay within the F=11 terms the paper keeps:
	// deeper trees would push topic terms out of the tf-idf top-F and
	// turn the corresponding hash bits into noise. Cells of the capped
	// tree may hold several leaf categories; separating those is the
	// per-bucket clustering's job.
	levels := levelsFor(k, fanout)
	if levels > 3 {
		levels = 3
	}
	topicTerms := make([][fanout]string, levels)
	for l := 0; l < levels; l++ {
		for d := 0; d < fanout; d++ {
			topicTerms[l][d] = "topic" + vocab[(fanout*l+d)%cfg.VocabSize]
		}
	}

	topics := make([]string, 0, levels)
	for i := 0; i < cfg.NumDocs; i++ {
		c := i * k / cfg.NumDocs // balanced categories
		topics = topics[:0]
		code := c % pow(fanout, levels)
		for l := 0; l < levels; l++ {
			topics = append(topics, topicTerms[l][code%fanout])
			code /= fanout
		}
		doc := renderDoc(rng, cfg, names[c], charTerms[c], topics, vocab, zipfW)
		if err := fn(doc, c); err != nil {
			return nil, err
		}
	}
	return &Meta{Categories: k, CategoryNames: names}, nil
}

// StreamDense runs the full §5.2 pipeline out of core: generate each
// document, clean it, keep its top-f terms by tf-idf, project into dims
// dense dimensions, and hand the L2-normalized row to fn. It is the
// streaming twin of Generate + VectorizeDense and produces bitwise-
// identical rows, holding only the document-frequency table and the
// lazily-grown projection rows in memory (O(vocabulary), not O(N)).
//
// Two passes drive it: the first streams the corpus to count document
// frequencies (exactly VectorizeTopTerms' df map), the second re-streams
// it — generation is deterministic — scoring each document's terms,
// discovering the union vocabulary in the same first-use order as the
// batch path, and drawing each new term's Gaussian projection row from
// the same sequential rng stream that fills the batch projection matrix
// row-major. Per-document term sets are disjoint keys with a total sort
// order, so the map-iteration nondeterminism sorts away identically in
// both paths; zero-skipping accumulation mirrors matrix.Mul and the
// norm mirrors matrix.Norm2, making every float op order-identical.
//
// The row slice passed to fn is reused; fn must not retain it.
func StreamDense(cfg Config, f, dims int, seed int64, fn func(row []float64, label int) error) (*Meta, error) {
	if f < 1 {
		return nil, fmt.Errorf("corpus: F=%d must be positive", f)
	}
	if dims < 1 {
		return nil, fmt.Errorf("corpus: dims=%d", dims)
	}

	// Pass 1: document frequencies over the cleaned token streams.
	df := map[string]int{}
	seen := map[string]bool{}
	meta, err := GenerateStream(cfg, func(doc string, _ int) error {
		clear(seen)
		for _, t := range text.Clean(doc) {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(df) == 0 {
		return nil, fmt.Errorf("corpus: corpus has no usable terms")
	}
	n := float64(cfg.NumDocs)
	idf := func(t string) float64 {
		v := math.Log(n / float64(df[t]))
		if v <= 0 {
			v = 1e-9
		}
		return v
	}

	// Pass 2: score, project, emit. Projection rows are drawn lazily in
	// vocabulary-discovery order from the same seeded stream the batch
	// path uses to fill its matrix row-major, so row j holds identical
	// bits in both.
	projRng := rand.New(rand.NewSource(seed ^ 0x5EED))
	scale := 1 / math.Sqrt(float64(dims))
	vocabIndex := map[string]int{}
	var projRows [][]float64
	rowOf := func(term string) int {
		j, ok := vocabIndex[term]
		if !ok {
			j = len(projRows)
			vocabIndex[term] = j
			pr := make([]float64, dims)
			for c := range pr {
				pr[c] = projRng.NormFloat64() * scale
			}
			projRows = append(projRows, pr)
		}
		return j
	}

	type weighted struct {
		term string
		w    float64
	}
	var ws []weighted
	var ents []sparseEntry
	tf := map[string]int{}
	row := make([]float64, dims)
	_, err = GenerateStream(cfg, func(doc string, label int) error {
		for i := range row {
			row[i] = 0
		}
		toks := text.Clean(doc)
		if len(toks) == 0 {
			// Mirrors the batch path: a document with no usable terms
			// keeps its zero row.
			return fn(row, label)
		}
		clear(tf)
		for _, t := range toks {
			tf[t]++
		}
		ws = ws[:0]
		invLen := 1 / float64(len(toks))
		for t, c := range tf {
			ws = append(ws, weighted{t, float64(c) * invLen * idf(t)})
		}
		sort.Slice(ws, func(a, b int) bool {
			if !matrix.ApproxEqual(ws[a].w, ws[b].w, 0) {
				return ws[a].w > ws[b].w
			}
			return ws[a].term < ws[b].term
		})
		if len(ws) > f {
			ws = ws[:f]
		}
		// Discover vocabulary in kept (rank) order — the batch path's
		// first-use order — then process entries in column order, which
		// is the order both Norm2 and Mul walk the full-width row.
		ents = ents[:0]
		for _, w := range ws {
			ents = append(ents, sparseEntry{rowOf(w.term), w.w})
		}
		sort.Slice(ents, func(a, b int) bool { return ents[a].j < ents[b].j })
		norm := norm2Entries(ents)
		if !matrix.IsZero(norm) {
			inv := 1 / norm
			for i := range ents {
				ents[i].w *= inv
			}
		}
		for _, e := range ents {
			if matrix.IsZero(e.w) {
				continue // matrix.Mul's zero-skip
			}
			for c, v := range projRows[e.j] {
				row[c] += e.w * v
			}
		}
		matrix.Normalize(row)
		return fn(row, label)
	})
	if err != nil {
		return nil, err
	}
	meta.Terms = len(projRows)
	return meta, nil
}

// sparseEntry is one non-zero of a document's tf-idf row: column index
// in the union vocabulary and the (eventually normalized) weight.
type sparseEntry struct {
	j int
	w float64
}

// norm2Entries is matrix.Norm2 over a compact sparse row: the entries
// are the row's non-zeros in column order, so the scaled sum-of-squares
// recurrence visits the same values in the same order and returns the
// same bits as the full-width computation.
func norm2Entries(ents []sparseEntry) float64 {
	var scale, ssq float64 = 0, 1
	for _, e := range ents {
		if matrix.IsZero(e.w) {
			continue
		}
		a := math.Abs(e.w)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}
