// Package analytic implements the paper's closed-form models: the DASC
// and SC time/memory complexity expressions behind Figure 1 (Eqs. 3 and
// 7–12), the signature-collision probability behind Figure 2 (Eqs.
// 13–19), and the fitted category-count law of Table 1 (Eq. 15).
package analytic

import (
	"math"
)

// Model carries the constants of the §4.1 numerical analysis.
type Model struct {
	// Beta is the average machine-operation time in seconds
	// (the paper uses 50 microseconds).
	Beta float64
	// Nodes is the cluster size C (the paper uses 1024).
	Nodes int
}

// DefaultModel returns the constants used to plot Figure 1.
func DefaultModel() Model { return Model{Beta: 50e-6, Nodes: 1024} }

// CategoryLaw returns the fitted number of Wikipedia categories for a
// dataset of n documents: K = 17 (log2 n - 9), floored at 1 (Eq. 15).
func CategoryLaw(n int) int {
	if n < 2 {
		return 1
	}
	k := 17 * (math.Log2(float64(n)) - 9)
	if k < 1 {
		return 1
	}
	return int(math.Round(k))
}

// SignatureBits returns the paper's operating point for the number of
// hash bits: M = log2(B) where B is the bucket count; the §4.1 model
// sets M = log B with B buckets. For plotting, B is derived from n as
// in §5.4: M = ceil(log2(n)/2) - 1 and B = 2^M.
func SignatureBits(n int) int {
	if n < 2 {
		return 1
	}
	m := int(math.Ceil(math.Log2(float64(n))/2)) - 1
	if m < 1 {
		m = 1
	}
	return m
}

// Buckets returns B = 2^M for n points under the §5.4 policy.
func Buckets(n int) float64 { return math.Exp2(float64(SignatureBits(n))) }

// DASCTime evaluates Eq. 11: the modeled DASC processing time in
// seconds for n points spread over the model's C nodes.
//
//	T = beta/C * [ log B * n + B^2 + 2n + (2 n^2 + 34 n (log n - 9)) / B ]
func (m Model) DASCTime(n float64) float64 {
	b := Buckets(int(n))
	k := 34 * n * (math.Log2(n) - 9) // 2*K*n with K = 17(log2 n - 9)
	work := math.Log2(b)*n + b*b + 2*n + (2*n*n+k)/b
	return m.Beta / float64(m.Nodes) * work
}

// SCTime evaluates the corresponding full-matrix spectral clustering
// model: T = beta/C * (2 n^2 + 2 K n + 2 n), the denominator of Eq. 8.
func (m Model) SCTime(n float64) float64 {
	k := float64(CategoryLaw(int(n)))
	work := 2*n*n + 2*k*n + 2*n
	return m.Beta / float64(m.Nodes) * work
}

// DASCMemory evaluates Eq. 12: bytes to store the bucketed Gram blocks
// at 4 bytes per single-precision entry, Memory = 4 B (n/B)^2 = 4 n^2/B.
func (m Model) DASCMemory(n float64) float64 {
	return 4 * n * n / Buckets(int(n))
}

// SCMemory is the full-matrix cost 4 n^2.
func (m Model) SCMemory(n float64) float64 { return 4 * n * n }

// TimeReductionRatio evaluates the upper-bound ratio of Eq. 8,
// alpha ~= 1/B: DASC work over SC work under uniform buckets.
func (m Model) TimeReductionRatio(n float64) float64 {
	return m.DASCTime(n) / m.SCTime(n)
}

// CollisionProbability evaluates Eq. 18/19: the probability that a
// group of adjacent points (differing in r of d dimensions) all hash
// into the same bucket, for a Wikipedia-like dataset of n documents
// hashed with mBits functions.
//
// With K = 17(log2 n - 9) categories, t = 11 - r + n r / K terms,
// d = t K (Eqs. 15–17), the per-group collision probability is
//
//	P2 = ((d - r) / d)^(mBits * n / K)
func CollisionProbability(n float64, r float64, mBits int) float64 {
	k := float64(CategoryLaw(int(n)))
	t := (11 - r) + n*r/k
	d := t * k
	if d <= 0 {
		return 0
	}
	base := (d - r) / d
	exp := float64(mBits) * n / k
	return math.Pow(base, exp)
}

// Hours converts seconds to hours, a convenience for Figure 1 output.
func Hours(sec float64) float64 { return sec / 3600 }

// Log2 is a plotting helper that guards against non-positive input.
func Log2(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log2(x)
}
