package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCategoryLawTable1(t *testing.T) {
	// Table 1 pairs (dataset size, number of categories). The law is a
	// line fit, so allow the small deviations the paper's own table
	// shows at the large end.
	cases := []struct {
		n    int
		want int
	}{
		{1024, 17},
		{2048, 34},     // table says 31; fit gives 34
		{4096, 51},     // table says 61
		{1 << 20, 187}, // 17*(20-9)=187
	}
	for _, c := range cases {
		got := CategoryLaw(c.n)
		if math.Abs(float64(got-c.want)) > 0 {
			t.Errorf("CategoryLaw(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if CategoryLaw(1) != 1 || CategoryLaw(0) != 1 {
		t.Fatal("degenerate sizes must clamp to 1")
	}
	if CategoryLaw(512) != 1 {
		t.Fatal("n=512 gives log2=9, K must clamp to 1")
	}
}

func TestSignatureBitsAndBuckets(t *testing.T) {
	if SignatureBits(1024) != 4 {
		t.Fatalf("SignatureBits(1024) = %d, want 4", SignatureBits(1024))
	}
	if Buckets(1024) != 16 {
		t.Fatalf("Buckets(1024) = %v, want 16", Buckets(1024))
	}
	if SignatureBits(1) != 1 {
		t.Fatal("tiny n must clamp to 1 bit")
	}
}

func TestScalingShapesFigure1(t *testing.T) {
	m := DefaultModel()
	// DASC must be far below SC at every plotted size, and the gap must
	// widen with n (Figure 1's headline shape).
	prevGap := 0.0
	for _, exp := range []int{20, 22, 24, 26, 28} {
		n := math.Exp2(float64(exp))
		dt, st := m.DASCTime(n), m.SCTime(n)
		if dt >= st {
			t.Fatalf("n=2^%d: DASC time %v >= SC time %v", exp, dt, st)
		}
		gap := st / dt
		if gap <= prevGap {
			t.Fatalf("n=2^%d: time gap %v did not grow from %v", exp, gap, prevGap)
		}
		prevGap = gap
		dm, sm := m.DASCMemory(n), m.SCMemory(n)
		if dm >= sm {
			t.Fatalf("n=2^%d: DASC memory %v >= SC memory %v", exp, dm, sm)
		}
	}
}

func TestTimeReductionApproachesOneOverB(t *testing.T) {
	m := DefaultModel()
	n := math.Exp2(26)
	ratio := m.TimeReductionRatio(n)
	b := Buckets(int(n))
	// Eq. 8: alpha ~ 1/B for large n.
	if ratio > 2/b || ratio < 0.1/b {
		t.Fatalf("ratio = %v, want about 1/B = %v", ratio, 1/b)
	}
}

func TestCollisionProbabilityFigure2Shape(t *testing.T) {
	// Monotone decreasing in M.
	prev := 1.0
	for mBits := 5; mBits <= 35; mBits += 5 {
		p := CollisionProbability(1<<20, 5, mBits)
		if p <= 0 || p > 1 {
			t.Fatalf("M=%d: p=%v out of range", mBits, p)
		}
		if p >= prev {
			t.Fatalf("M=%d: p=%v did not decrease from %v", mBits, p, prev)
		}
		prev = p
	}
	// At fixed M, Eq. 19 tends to exp(-M/K): K grows with log n, so the
	// probability rises slowly with dataset size. (The paper's prose
	// says the opposite, contradicting its own equation; we implement
	// the equation. See EXPERIMENTS.md.)
	small := CollisionProbability(1<<20, 5, 20)
	big := CollisionProbability(1<<28, 5, 20)
	if big <= small {
		t.Fatalf("Eq. 19 gives rising p with n: %v vs %v", big, small)
	}
	// And the curves stay in the high-probability regime the paper
	// plots (all above ~0.7 for its parameter range).
	if small < 0.7 {
		t.Fatalf("p(1M, M=20) = %v, paper plots >0.7", small)
	}
}

func TestHoursAndLog2(t *testing.T) {
	if Hours(7200) != 2 {
		t.Fatal("Hours(7200) != 2")
	}
	if Log2(8) != 3 {
		t.Fatal("Log2(8) != 3")
	}
	if !math.IsInf(Log2(0), -1) {
		t.Fatal("Log2(0) must be -Inf")
	}
}

// Property: the collision probability is a valid probability for any
// plausible parameters, and decreasing in mBits.
func TestPropCollisionMonotone(t *testing.T) {
	f := func(expSeed, mSeed uint8) bool {
		exp := 20 + int(expSeed)%10
		mBits := 5 + int(mSeed)%30
		n := math.Exp2(float64(exp))
		p1 := CollisionProbability(n, 5, mBits)
		p2 := CollisionProbability(n, 5, mBits+1)
		return p1 >= 0 && p1 <= 1 && p2 <= p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: modeled DASC memory is exactly SC memory divided by the
// bucket count.
func TestPropMemoryRatio(t *testing.T) {
	m := DefaultModel()
	f := func(expSeed uint8) bool {
		exp := 10 + int(expSeed)%20
		n := math.Exp2(float64(exp))
		return math.Abs(m.DASCMemory(n)*Buckets(int(n))-m.SCMemory(n)) < 1e-6*m.SCMemory(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
