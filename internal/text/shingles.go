package text

import (
	"hash/fnv"
	"strings"
)

// Shingles returns the contiguous k-token shingles of a token stream,
// each joined with a single space. Streams shorter than k yield one
// shingle covering the whole stream (or none when empty), so very
// short documents still land somewhere.
func Shingles(tokens []string, k int) []string {
	if len(tokens) == 0 || k < 1 {
		return nil
	}
	if len(tokens) < k {
		return []string{strings.Join(tokens, " ")}
	}
	out := make([]string, 0, len(tokens)-k+1)
	for i := 0; i+k <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+k], " "))
	}
	return out
}

// ShingleVector hashes a document's k-shingle set into a dims-wide
// binary indicator vector: component h(s) mod dims is 1 when shingle s
// occurs. The sparse support is exactly what min-wise hashing consumes,
// so the vector feeds lsh.MinHash without a vocabulary pass.
func ShingleVector(tokens []string, k, dims int) []float64 {
	v := make([]float64, dims)
	if dims < 1 {
		return v
	}
	for _, s := range Shingles(tokens, k) {
		h := fnv.New64a()
		_, _ = h.Write([]byte(s)) // fnv's Write never fails
		v[h.Sum64()%uint64(dims)] = 1
	}
	return v
}
