package text

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestPorterStemClassicVocabulary(t *testing.T) {
	// Reference pairs from Porter's published examples.
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := PorterStem(in); got != want {
			t.Errorf("PorterStem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPorterStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "be"} {
		if got := PorterStem(w); got != w {
			t.Errorf("PorterStem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Property: stemming is idempotent-ish in length — never grows a word
// by more than one character (the 'e' restorations) and never panics.
func TestPropPorterStemBounded(t *testing.T) {
	f := func(s string) bool {
		// Restrict to plausible lower-case words.
		var sb strings.Builder
		for _, r := range strings.ToLower(s) {
			if r >= 'a' && r <= 'z' {
				sb.WriteRune(r)
			}
		}
		w := sb.String()
		got := PorterStem(w)
		return len(got) <= len(w)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStripHTML(t *testing.T) {
	html := `<html><head><style>body {color: red}</style>
<script>var x = "<ignored>";</script></head>
<body><h1>Title</h1><p>Hello <b>world</b></p></body></html>`
	got := StripHTML(html)
	for _, want := range []string{"Title", "Hello", "world"} {
		if !strings.Contains(got, want) {
			t.Errorf("StripHTML lost %q: %q", want, got)
		}
	}
	for _, banned := range []string{"color", "var x", "<", ">"} {
		if strings.Contains(got, banned) {
			t.Errorf("StripHTML leaked %q: %q", banned, got)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! It's 2012; MapReduce-based.")
	want := []string{"hello", "world", "it", "s", "mapreduce", "based"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "is", "of"} {
		if !IsStopWord(w) {
			t.Errorf("%q must be a stop word", w)
		}
	}
	for _, w := range []string{"cluster", "spectral", "kernel"} {
		if IsStopWord(w) {
			t.Errorf("%q must not be a stop word", w)
		}
	}
}

func TestClean(t *testing.T) {
	got := Clean("<p>The clusters are clustering beautifully in the matrices</p>")
	// Stop words gone, stems applied.
	joined := strings.Join(got, " ")
	if strings.Contains(joined, "the") || strings.Contains(joined, "are") {
		t.Fatalf("stop words leaked: %v", got)
	}
	var hasClusterStem bool
	for _, tok := range got {
		if tok == "cluster" {
			hasClusterStem = true
		}
	}
	if !hasClusterStem {
		t.Fatalf("expected stem 'cluster' in %v", got)
	}
}

func TestFitVectorizerValidation(t *testing.T) {
	if _, err := FitVectorizer(nil, 5); err == nil {
		t.Fatal("expected error for empty corpus")
	}
	if _, err := FitVectorizer([][]string{{"a"}}, 0); err == nil {
		t.Fatal("expected error for f=0")
	}
	if _, err := FitVectorizer([][]string{{}, {}}, 3); err == nil {
		t.Fatal("expected error for corpus without terms")
	}
}

func TestVectorizerSelectsDiscriminativeTerms(t *testing.T) {
	docs := [][]string{
		{"apple", "apple", "apple", "common"},
		{"apple", "apple", "common"},
		{"banana", "banana", "banana", "common"},
		{"banana", "banana", "common"},
	}
	v, err := FitVectorizer(docs, 2)
	if err != nil {
		t.Fatal(err)
	}
	terms := strings.Join(v.Terms, " ")
	if !strings.Contains(terms, "apple") || !strings.Contains(terms, "banana") {
		t.Fatalf("top terms = %v, want apple and banana", v.Terms)
	}
}

func TestVectorizerTransform(t *testing.T) {
	docs := [][]string{
		{"apple", "apple"},
		{"banana"},
		{"kiwi"}, // out-of-vocabulary only
	}
	v, err := FitVectorizer(docs[:2], 2)
	if err != nil {
		t.Fatal(err)
	}
	m := v.Transform(docs)
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims %dx%d", m.Rows(), m.Cols())
	}
	// Rows with vocabulary hits are unit length.
	if math.Abs(matrix.Norm2(m.Row(0))-1) > 1e-12 {
		t.Fatalf("row 0 norm = %v", matrix.Norm2(m.Row(0)))
	}
	// OOV row is zero.
	if matrix.Norm2(m.Row(2)) != 0 {
		t.Fatal("OOV document must map to zero vector")
	}
	// Same-class docs are closer than cross-class.
	d01 := matrix.Dist(m.Row(0), m.Row(1))
	if d01 < 1 {
		t.Fatalf("apple and banana docs should be orthogonal-ish, dist=%v", d01)
	}
}

func TestWeightingString(t *testing.T) {
	if StandardTFIDF.String() != "standard" || SublinearTFIDF.String() != "sublinear" ||
		SmoothTFIDF.String() != "smooth" || Weighting(9).String() != "Weighting(?)" {
		t.Fatal("weighting names changed")
	}
}

func TestSublinearDampensRepeats(t *testing.T) {
	docs := [][]string{
		{"spam", "spam", "spam", "spam", "spam", "spam", "ham"},
		{"eggs"},
	}
	std, err := FitVectorizerScheme(docs, 3, StandardTFIDF)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := FitVectorizerScheme(docs, 3, SublinearTFIDF)
	if err != nil {
		t.Fatal(err)
	}
	mStd := std.Transform(docs)
	mSub := sub.Transform(docs)
	idxOf := func(v *Vectorizer, term string) int {
		for i, t := range v.Terms {
			if t == term {
				return i
			}
		}
		t.Fatalf("term %q not kept", term)
		return -1
	}
	// Relative dominance of "spam" over "ham" in doc 0 must shrink
	// under sublinear weighting.
	ratioStd := mStd.At(0, idxOf(std, "spam")) / mStd.At(0, idxOf(std, "ham"))
	ratioSub := mSub.At(0, idxOf(sub, "spam")) / mSub.At(0, idxOf(sub, "ham"))
	if ratioSub >= ratioStd {
		t.Fatalf("sublinear did not dampen: %v vs %v", ratioSub, ratioStd)
	}
}

func TestSmoothIDFKeepsUbiquitousTerms(t *testing.T) {
	docs := [][]string{
		{"common", "alpha"},
		{"common", "beta"},
	}
	v, err := FitVectorizerScheme(docs, 3, SmoothTFIDF)
	if err != nil {
		t.Fatal(err)
	}
	m := v.Transform(docs)
	// "common" appears in every doc; smooth idf must give it real
	// weight rather than the epsilon of the standard scheme.
	for i, term := range v.Terms {
		if term == "common" {
			if m.At(0, i) <= 0.01 {
				t.Fatalf("smooth idf weight for ubiquitous term = %v", m.At(0, i))
			}
			return
		}
	}
	t.Fatal("common term not kept under smooth idf")
}

func TestVectorizerClampsF(t *testing.T) {
	docs := [][]string{{"one", "two"}}
	v, err := FitVectorizer(docs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Terms) != 2 {
		t.Fatalf("terms = %v", v.Terms)
	}
}
