// Package text implements the document-cleaning pipeline the paper
// built on Apache Lucene (§5.2): HTML tag stripping, tokenization with
// lower-casing and punctuation removal, stop-word filtering, the Porter
// stemming algorithm, and tf-idf term ranking with top-F vectorization.
package text

// PorterStem reduces an English word to its stem with the classic
// Porter (1980) algorithm, the same stemmer the paper uses via Lucene.
// Input is assumed to be lower-case ASCII; other runes pass through the
// consonant test as consonants. Words of length <= 2 are returned
// unchanged, per the original definition.
func PorterStem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isConsonant reports whether w[i] is a consonant in Porter's sense:
// letters other than a, e, i, o, u; 'y' is a consonant when it follows
// a vowel position (i.e. preceded by a consonant it is a vowel).
func isConsonant(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(w, i-1)
	default:
		return true
	}
}

// measure computes m, the number of VC (vowel-consonant) sequences in
// w[:limit], written [C](VC)^m[V] in Porter's notation.
func measure(w []byte, limit int) int {
	m := 0
	i := 0
	// Skip initial consonant run.
	for i < limit && isConsonant(w, i) {
		i++
	}
	for {
		// Vowel run.
		if i >= limit {
			return m
		}
		for i < limit && !isConsonant(w, i) {
			i++
		}
		if i >= limit {
			return m
		}
		// Consonant run closes one VC block.
		for i < limit && isConsonant(w, i) {
			i++
		}
		m++
	}
}

// hasVowel reports whether w[:limit] contains a vowel.
func hasVowel(w []byte, limit int) bool {
	for i := 0; i < limit; i++ {
		if !isConsonant(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether w ends with the same consonant twice.
func endsDoubleConsonant(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isConsonant(w, n-1)
}

// endsCVC reports whether w[:limit] ends consonant-vowel-consonant with
// the final consonant not w, x or y — Porter's *o condition.
func endsCVC(w []byte, limit int) bool {
	if limit < 3 {
		return false
	}
	if !isConsonant(w, limit-3) || isConsonant(w, limit-2) || !isConsonant(w, limit-1) {
		return false
	}
	switch w[limit-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether w ends with s.
func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceSuffix replaces suffix old with new when the measure of the
// stem (w without old) is greater than minM. Returns the possibly new
// slice and whether the rule fired.
func replaceSuffix(w []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(w, old) {
		return w, false
	}
	stem := len(w) - len(old)
	if measure(w, stem) <= minM {
		return w, true // suffix matched; rule consumed but no change
	}
	return append(w[:stem], new...), true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2] // sses -> ss
	case hasSuffix(w, "ies"):
		return w[:len(w)-2] // ies -> i
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w, len(w)-3) > 0 {
			return w[:len(w)-1] // eed -> ee
		}
		return w
	}
	fired := false
	if hasSuffix(w, "ed") && hasVowel(w, len(w)-2) {
		w = w[:len(w)-2]
		fired = true
	} else if hasSuffix(w, "ing") && hasVowel(w, len(w)-3) {
		w = w[:len(w)-3]
		fired = true
	}
	if !fired {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleConsonant(w):
		switch w[len(w)-1] {
		case 'l', 's', 'z':
			return w
		}
		return w[:len(w)-1]
	case measure(w, len(w)) == 1 && endsCVC(w, len(w)):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w, len(w)-1) {
		w[len(w)-1] = 'i'
	}
	return w
}

var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if out, ok := replaceSuffix(w, r.old, r.new, 0); ok {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if out, ok := replaceSuffix(w, r.old, r.new, 0); ok {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := len(w) - len(s)
		if s == "ion" && stem > 0 && w[stem-1] != 's' && w[stem-1] != 't' {
			// "ion" only strips after s or t.
			return w
		}
		if measure(w, stem) > 1 {
			return w[:stem]
		}
		return w
	}
	return w
}

func step5a(w []byte) []byte {
	if !hasSuffix(w, "e") {
		return w
	}
	stem := len(w) - 1
	m := measure(w, stem)
	if m > 1 || (m == 1 && !endsCVC(w, stem)) {
		return w[:stem]
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w, len(w)) > 1 && endsDoubleConsonant(w) && w[len(w)-1] == 'l' {
		return w[:len(w)-1]
	}
	return w
}
