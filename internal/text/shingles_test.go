package text

import (
	"reflect"
	"testing"
)

func TestShingles(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	got := Shingles(toks, 2)
	want := []string{"a b", "b c", "c d"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Shingles = %v, want %v", got, want)
	}
	if got := Shingles(toks, 1); len(got) != 4 {
		t.Fatalf("k=1 shingles = %v", got)
	}
	// Shorter than k: one whole-stream shingle.
	if got := Shingles([]string{"x", "y"}, 3); !reflect.DeepEqual(got, []string{"x y"}) {
		t.Fatalf("short stream shingles = %v", got)
	}
	if got := Shingles(nil, 3); got != nil {
		t.Fatalf("empty stream shingles = %v", got)
	}
}

func TestShingleVector(t *testing.T) {
	a := ShingleVector([]string{"alpha", "beta", "gamma"}, 2, 64)
	if len(a) != 64 {
		t.Fatalf("dims = %d", len(a))
	}
	nz := 0
	for _, v := range a {
		if v != 0 {
			nz++
		}
	}
	if nz == 0 || nz > 2 {
		t.Fatalf("2 shingles set %d components", nz)
	}
	// Deterministic, and order-sensitive like real shingling.
	b := ShingleVector([]string{"alpha", "beta", "gamma"}, 2, 64)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ShingleVector not deterministic")
	}
	c := ShingleVector([]string{"gamma", "beta", "alpha"}, 2, 64)
	if reflect.DeepEqual(a, c) {
		t.Fatal("reversed token order should change the shingle set")
	}
}
