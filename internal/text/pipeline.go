package text

import (
	"strings"
	"unicode"
)

// StripHTML removes tags and script/style bodies from an HTML fragment,
// returning the raw text with tags replaced by spaces (step (i) of the
// paper's cleaning pipeline).
func StripHTML(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	inTag := false
	var skipUntil string // closing tag that ends a skipped element
	i := 0
	lower := strings.ToLower(s)
	for i < len(s) {
		c := s[i]
		if !inTag && c == '<' {
			if skipUntil == "" {
				for _, elem := range []string{"script", "style"} {
					open := "<" + elem
					if strings.HasPrefix(lower[i:], open) {
						skipUntil = "</" + elem
						break
					}
				}
			} else if strings.HasPrefix(lower[i:], skipUntil) {
				skipUntil = ""
			}
			inTag = true
			i++
			continue
		}
		if inTag {
			if c == '>' {
				inTag = false
				sb.WriteByte(' ')
			}
			i++
			continue
		}
		if skipUntil != "" {
			i++
			continue
		}
		sb.WriteByte(c)
		i++
	}
	return sb.String()
}

// Tokenize lower-cases the text and splits it on any non-letter rune,
// covering steps (ii) and (iii): case folding and punctuation removal.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r)
	})
}

// stopWords is a compact English stop-word list concatenated, as the
// paper describes, from the common lists used by search engines.
var stopWords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
a about above after again against all am an and any are aren as at be
because been before being below between both but by can cannot could
couldn did didn do does doesn doing don down during each few for from
further had hadn has hasn have haven having he her here hers herself him
himself his how i if in into is isn it its itself let me more most mustn
my myself no nor not of off on once only or other ought our ours
ourselves out over own same shan she should shouldn so some such than
that the their theirs them themselves then there these they this those
through to too under until up very was wasn we were weren what when
where which while who whom why with won would wouldn you your yours
yourself yourselves`) {
		stopWords[w] = true
	}
}

// IsStopWord reports whether the lower-case token is on the stop list.
func IsStopWord(w string) bool { return stopWords[w] }

// Clean runs the full pipeline on raw HTML: strip tags, tokenize,
// drop stop words and single-letter tokens, and stem what remains.
func Clean(html string) []string {
	toks := Tokenize(StripHTML(html))
	out := toks[:0]
	for _, t := range toks {
		if len(t) < 2 || IsStopWord(t) {
			continue
		}
		out = append(out, PorterStem(t))
	}
	return out
}
