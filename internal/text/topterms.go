package text

import (
	"errors"
	"math"
	"sort"

	"repro/internal/matrix"
)

// VectorizeTopTerms implements the paper's document representation
// (§5.2): each document is reduced to its F most important terms by
// tf-idf ("after ranking all terms based on their tf-idf values, we
// used the first F terms", with F = 11), and the feature space is the
// union of all kept terms. The returned matrix holds one L2-normalized
// tf-idf row per document over that union vocabulary, in the returned
// term order.
func VectorizeTopTerms(docs [][]string, f int) (*matrix.Dense, []string, error) {
	if len(docs) == 0 {
		return nil, nil, errors.New("text: empty corpus")
	}
	if f < 1 {
		return nil, nil, errors.New("text: F must be positive")
	}
	n := float64(len(docs))
	df := map[string]int{}
	for _, doc := range docs {
		seen := map[string]bool{}
		for _, t := range doc {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}
	if len(df) == 0 {
		return nil, nil, errors.New("text: corpus has no usable terms")
	}
	idf := func(t string) float64 {
		v := math.Log(n / float64(df[t]))
		if v <= 0 {
			v = 1e-9
		}
		return v
	}

	type weighted struct {
		term string
		w    float64
	}
	kept := make([][]weighted, len(docs))
	vocabIndex := map[string]int{}
	var vocab []string
	for i, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		tf := map[string]int{}
		for _, t := range doc {
			tf[t]++
		}
		ws := make([]weighted, 0, len(tf))
		invLen := 1 / float64(len(doc))
		for t, c := range tf {
			ws = append(ws, weighted{t, float64(c) * invLen * idf(t)})
		}
		sort.Slice(ws, func(a, b int) bool {
			if !matrix.ApproxEqual(ws[a].w, ws[b].w, 0) {
				return ws[a].w > ws[b].w
			}
			return ws[a].term < ws[b].term
		})
		if len(ws) > f {
			ws = ws[:f]
		}
		kept[i] = ws
		for _, w := range ws {
			if _, ok := vocabIndex[w.term]; !ok {
				vocabIndex[w.term] = len(vocab)
				vocab = append(vocab, w.term)
			}
		}
	}

	m := matrix.NewDense(len(docs), len(vocab))
	for i, ws := range kept {
		row := m.Row(i)
		for _, w := range ws {
			row[vocabIndex[w.term]] = w.w
		}
		matrix.Normalize(row)
	}
	return m, vocab, nil
}
