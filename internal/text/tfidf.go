package text

import (
	"errors"
	"math"
	"sort"

	"repro/internal/matrix"
)

// Weighting selects the tf-idf variant a Vectorizer uses.
type Weighting int

const (
	// StandardTFIDF uses raw term frequency and ln(N/df) — the classic
	// scheme the paper's §5.2 describes.
	StandardTFIDF Weighting = iota
	// SublinearTFIDF dampens term frequency to 1+ln(tf), the standard
	// remedy when a single repeated term dominates a document.
	SublinearTFIDF
	// SmoothTFIDF uses ln((1+N)/(1+df)) + 1, which never zeroes a term
	// that appears in every document — useful for tiny corpora.
	SmoothTFIDF
)

func (w Weighting) String() string {
	switch w {
	case StandardTFIDF:
		return "standard"
	case SublinearTFIDF:
		return "sublinear"
	case SmoothTFIDF:
		return "smooth"
	default:
		return "Weighting(?)"
	}
}

// Vectorizer converts cleaned token streams into fixed-width tf-idf
// feature vectors over the F most important corpus terms, reproducing
// the paper's F=11 document representation (§5.2).
type Vectorizer struct {
	// Terms is the selected vocabulary, in rank order.
	Terms []string
	// IDF[i] is the inverse document frequency of Terms[i].
	IDF []float64
	// Scheme is the weighting variant used by Transform.
	Scheme Weighting

	index map[string]int
}

// FitVectorizer ranks all terms of the corpus by summed tf-idf weight
// and keeps the top f. docs holds the cleaned tokens of each document.
func FitVectorizer(docs [][]string, f int) (*Vectorizer, error) {
	return FitVectorizerScheme(docs, f, StandardTFIDF)
}

// FitVectorizerScheme is FitVectorizer with an explicit weighting.
func FitVectorizerScheme(docs [][]string, f int, scheme Weighting) (*Vectorizer, error) {
	if len(docs) == 0 {
		return nil, errors.New("text: empty corpus")
	}
	if f < 1 {
		return nil, errors.New("text: vocabulary size must be positive")
	}
	n := float64(len(docs))
	df := map[string]int{}
	tfTotal := map[string]float64{}
	for _, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		seen := map[string]int{}
		for _, t := range doc {
			seen[t]++
		}
		invLen := 1 / float64(len(doc))
		for t, c := range seen {
			df[t]++
			tfTotal[t] += float64(c) * invLen
		}
	}
	if len(df) == 0 {
		return nil, errors.New("text: corpus has no usable terms")
	}
	idfOf := func(d int) float64 {
		switch scheme {
		case SmoothTFIDF:
			return math.Log((1+n)/(1+float64(d))) + 1
		default:
			idf := math.Log(n / float64(d))
			if idf <= 0 {
				// Terms in every document carry no discriminative
				// weight; keep a small epsilon so tiny corpora still
				// vectorize.
				idf = 1e-9
			}
			return idf
		}
	}
	type scored struct {
		term  string
		score float64
	}
	all := make([]scored, 0, len(df))
	for t, d := range df {
		all = append(all, scored{t, tfTotal[t] * idfOf(d)})
	}
	sort.Slice(all, func(a, b int) bool {
		if !matrix.ApproxEqual(all[a].score, all[b].score, 0) {
			return all[a].score > all[b].score
		}
		return all[a].term < all[b].term
	})
	if f > len(all) {
		f = len(all)
	}
	v := &Vectorizer{
		Terms:  make([]string, f),
		IDF:    make([]float64, f),
		Scheme: scheme,
		index:  make(map[string]int, f),
	}
	for i := 0; i < f; i++ {
		t := all[i].term
		v.Terms[i] = t
		v.IDF[i] = idfOf(df[t])
		v.index[t] = i
	}
	return v, nil
}

// Transform maps each document to its L2-normalized tf-idf vector over
// the fitted vocabulary. Documents with no vocabulary terms map to the
// zero vector.
func (v *Vectorizer) Transform(docs [][]string) *matrix.Dense {
	out := matrix.NewDense(len(docs), len(v.Terms))
	for i, doc := range docs {
		if len(doc) == 0 {
			continue
		}
		row := out.Row(i)
		invLen := 1 / float64(len(doc))
		if v.Scheme == SublinearTFIDF {
			counts := map[int]int{}
			for _, t := range doc {
				if j, ok := v.index[t]; ok {
					counts[j]++
				}
			}
			for j, c := range counts {
				row[j] = (1 + math.Log(float64(c))) * v.IDF[j]
			}
		} else {
			for _, t := range doc {
				if j, ok := v.index[t]; ok {
					row[j] += invLen * v.IDF[j]
				}
			}
		}
		matrix.Normalize(row)
	}
	return out
}
