package text

import (
	"math"
	"strings"
	"testing"

	"repro/internal/matrix"
)

func TestVectorizeTopTermsValidation(t *testing.T) {
	if _, _, err := VectorizeTopTerms(nil, 5); err == nil {
		t.Fatal("expected error for empty corpus")
	}
	if _, _, err := VectorizeTopTerms([][]string{{"a"}}, 0); err == nil {
		t.Fatal("expected error for F=0")
	}
	if _, _, err := VectorizeTopTerms([][]string{{}, {}}, 3); err == nil {
		t.Fatal("expected error for corpus without terms")
	}
}

func TestVectorizeTopTermsKeepsAtMostF(t *testing.T) {
	docs := [][]string{
		{"a", "b", "c", "d", "e", "f"},
		{"a", "g", "h"},
	}
	m, vocab, err := VectorizeTopTerms(docs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each row has at most 2 nonzeros.
	for i := 0; i < m.Rows(); i++ {
		nz := 0
		for _, v := range m.Row(i) {
			if v != 0 {
				nz++
			}
		}
		if nz > 2 {
			t.Fatalf("doc %d kept %d terms, F=2", i, nz)
		}
	}
	if len(vocab) != m.Cols() {
		t.Fatalf("vocab %d vs cols %d", len(vocab), m.Cols())
	}
}

func TestVectorizeTopTermsRowsNormalized(t *testing.T) {
	docs := [][]string{
		{"alpha", "alpha", "beta"},
		{"gamma"},
		{}, // empty doc -> zero row
	}
	m, _, err := VectorizeTopTerms(docs, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(matrix.Norm2(m.Row(0))-1) > 1e-12 {
		t.Fatalf("row 0 norm %v", matrix.Norm2(m.Row(0)))
	}
	if matrix.Norm2(m.Row(2)) != 0 {
		t.Fatal("empty doc must be the zero vector")
	}
}

func TestVectorizeTopTermsPrefersRareTerms(t *testing.T) {
	// "common" appears everywhere (idf ~ 0); each doc's rare term must
	// outrank it in the kept set when F=1.
	docs := [][]string{
		{"common", "rare1", "common"},
		{"common", "rare2", "common"},
		{"common", "rare3", "common"},
	}
	m, vocab, err := VectorizeTopTerms(docs, 1)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(vocab, " ")
	if strings.Contains(joined, "common") {
		t.Fatalf("common term survived top-1 selection: %v", vocab)
	}
	for i := 0; i < 3; i++ {
		if matrix.Norm2(m.Row(i)) == 0 {
			t.Fatalf("doc %d lost its rare term", i)
		}
	}
}

func TestStripHTMLEdgeCases(t *testing.T) {
	cases := map[string]string{
		"":                      "",
		"plain text":            "plain text",
		"<p>":                   " ",
		"a<b":                   "a",     // unterminated tag swallows the rest
		"<style>x</style>done>": "done>", // style body dropped, tail kept
	}
	for in, wantContains := range cases {
		got := StripHTML(in)
		if wantContains == "" {
			if got != "" {
				t.Errorf("StripHTML(%q) = %q", in, got)
			}
			continue
		}
		if !strings.Contains(got, strings.TrimSpace(wantContains)) && got != wantContains {
			t.Errorf("StripHTML(%q) = %q, want contains %q", in, got, wantContains)
		}
	}
}

func TestCleanDropsShortTokens(t *testing.T) {
	got := Clean("<p>a I x go running</p>")
	for _, tok := range got {
		if len(tok) < 2 {
			t.Fatalf("single-letter token %q survived", tok)
		}
	}
}
