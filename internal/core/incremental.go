package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/embed"
	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

// IncrementalResult extends Result with the bounded-memory accounting
// of the streaming driver.
type IncrementalResult struct {
	Result
	// PeakGramBytes is the largest sub-Gram storage resident at any
	// point during the run — the quantity the budget bounds.
	PeakGramBytes int64
	// Waves is the number of sequential batches the buckets were
	// processed in.
	Waves int
}

// ClusterIncremental runs DASC processing buckets in sequential waves
// so that the resident approximated-Gram storage never exceeds
// budgetBytes — the paper's §5.1 claim that "the data partitions (or
// splits) are incrementally processed, split by split, based on the
// number of available mappers", which is how DASC handles datasets
// whose bucketed Gram still exceeds one machine's memory.
//
// A single bucket larger than the budget is processed alone (its
// sub-Gram is irreducible); the reported peak then exceeds the budget
// and callers can react by increasing M.
func ClusterIncremental(points *matrix.Dense, cfg Config, budgetBytes int64) (*IncrementalResult, error) {
	return ClusterIncrementalContext(context.Background(), points, cfg, budgetBytes)
}

// ClusterIncrementalContext is ClusterIncremental with cancellation:
// the context is checked between pipeline stages and between buckets,
// so a cancel returns within one bucket solve.
func ClusterIncrementalContext(ctx context.Context, points *matrix.Dense, cfg Config, budgetBytes int64) (*IncrementalResult, error) {
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("core: memory budget %d must be positive", budgetBytes)
	}
	r := &incrementalRunner{budget: budgetBytes}
	res, err := RunPipeline(ctx, points, cfg, r)
	if err != nil {
		return nil, err
	}
	return &IncrementalResult{Result: *res, PeakGramBytes: r.peak, Waves: r.waves}, nil
}

// incrementalRunner is the bounded-memory backend: buckets are packed
// into waves whose summed sub-Gram storage fits the budget and solved
// sequentially, one wave at a time. Label assembly still happens in
// canonical partition order (the shared assembly path), so the labeling
// matches the batch driver regardless of wave packing.
type incrementalRunner struct {
	budget int64
	// peak and waves are written by Solve and read by the driver after
	// the pipeline returns.
	peak  int64
	waves int
}

func (*incrementalRunner) Name() string      { return "incremental" }
func (*incrementalRunner) NeedsHasher() bool { return false }

func (*incrementalRunner) Signatures(ctx context.Context, p *Plan) (*lsh.SignatureSet, error) {
	return hashSignatures(ctx, p)
}

func (r *incrementalRunner) Solve(ctx context.Context, p *Plan, part *lsh.Partition) ([]BucketSolution, error) {
	n := p.Points.Rows()
	// Waves are packed against the dense worst case; a sparse solve only
	// shrinks what is actually resident, so the budget still holds.
	// Buckets the embed policy will claim are packed at their embedded
	// footprint (8·Ni·d′ rows, no Gram), matching the engine's reported
	// GramBytes so PeakGramBytes stays an upper bound on residency.
	gramOf := func(bi int) int64 {
		ni := len(part.Buckets[bi].Indices)
		if p.Embedder != nil && willEmbed(p.Cfg, ni, n) {
			return embed.Bytes(ni, p.Embedder.Dim())
		}
		return 4 * int64(ni) * int64(ni)
	}

	// Pack buckets into waves first-fit-decreasing under the budget.
	order := make([]int, len(part.Buckets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(part.Buckets[order[a]].Indices) > len(part.Buckets[order[b]].Indices)
	})
	var waves [][]int
	waveLoad := []int64{}
	for _, bi := range order {
		need := gramOf(bi)
		placed := false
		for w := range waves {
			if waveLoad[w]+need <= r.budget {
				waves[w] = append(waves[w], bi)
				waveLoad[w] += need
				placed = true
				break
			}
		}
		if !placed {
			waves = append(waves, []int{bi})
			waveLoad = append(waveLoad, need)
		}
	}
	r.waves = len(waves)

	// The planned per-bucket cluster counts double as a consistency
	// check: a bucket must produce exactly its proportional share.
	kOf := make([]int, len(part.Buckets))
	for bi, b := range part.Buckets {
		kOf[bi] = BucketK(p.Cfg.K, len(b.Indices), n)
	}

	sols := make([]BucketSolution, len(part.Buckets))
	kf := kernel.NewGaussian(p.Sigma)
	var scratch []float64 // one sub-Gram buffer reused across the whole sweep
	for w, wave := range waves {
		if waveLoad[w] > r.peak {
			r.peak = waveLoad[w]
		}
		for _, bi := range wave {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: incremental: %w", err)
			}
			b := part.Buckets[bi]
			sol, err := clusterOneBucket(p.Points, b.Indices, p.Cfg, n, kf, p.Embedder, &scratch)
			if err != nil {
				return nil, fmt.Errorf("core: bucket %x: %w", b.Signature, err)
			}
			if sol.K != kOf[bi] {
				return nil, fmt.Errorf("core: bucket %x produced %d clusters, planned %d",
					b.Signature, sol.K, kOf[bi])
			}
			sols[bi] = sol
		}
	}
	return sols, nil
}
