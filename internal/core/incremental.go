package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/kernel"
	"repro/internal/lsh"
	"repro/internal/matrix"
)

// IncrementalResult extends Result with the bounded-memory accounting
// of the streaming driver.
type IncrementalResult struct {
	Result
	// PeakGramBytes is the largest sub-Gram storage resident at any
	// point during the run — the quantity the budget bounds.
	PeakGramBytes int64
	// Waves is the number of sequential batches the buckets were
	// processed in.
	Waves int
}

// ClusterIncremental runs DASC processing buckets in sequential waves
// so that the resident approximated-Gram storage never exceeds
// budgetBytes — the paper's §5.1 claim that "the data partitions (or
// splits) are incrementally processed, split by split, based on the
// number of available mappers", which is how DASC handles datasets
// whose bucketed Gram still exceeds one machine's memory.
//
// A single bucket larger than the budget is processed alone (its
// sub-Gram is irreducible); the reported peak then exceeds the budget
// and callers can react by increasing M.
func ClusterIncremental(points *matrix.Dense, cfg Config, budgetBytes int64) (*IncrementalResult, error) {
	start := time.Now()
	n := points.Rows()
	cfg, radius, err := cfg.resolve(n)
	if err != nil {
		return nil, err
	}
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("core: memory budget %d must be positive", budgetBytes)
	}
	family := cfg.Family
	if family == nil {
		hasher, err := lsh.Fit(points, lsh.Config{
			M: cfg.M, Policy: cfg.Policy, Bins: cfg.Bins, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: lsh: %w", err)
		}
		family = hasher
	} else {
		cfg.M = family.Bits()
	}
	part := lsh.PartitionWith(family, points, radius)

	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = kernel.MedianSigma(points, 512, cfg.Seed)
	}

	// Pack buckets into waves first-fit-decreasing under the budget.
	order := make([]int, len(part.Buckets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(part.Buckets[order[a]].Indices) > len(part.Buckets[order[b]].Indices)
	})
	gramOf := func(bi int) int64 {
		ni := int64(len(part.Buckets[bi].Indices))
		return 4 * ni * ni
	}
	var waves [][]int
	waveLoad := []int64{}
	for _, bi := range order {
		need := gramOf(bi)
		placed := false
		for w := range waves {
			if waveLoad[w]+need <= budgetBytes {
				waves[w] = append(waves[w], bi)
				waveLoad[w] += need
				placed = true
				break
			}
		}
		if !placed {
			waves = append(waves, []int{bi})
			waveLoad = append(waveLoad, need)
		}
	}

	res := &IncrementalResult{Waves: len(waves)}
	res.Labels = make([]int, n)
	res.SignatureBits = cfg.M
	res.MergeRadius = radius

	// Cluster offsets must be assigned in the canonical bucket order so
	// the labeling matches the batch driver regardless of wave packing.
	offsets := make([]int, len(part.Buckets))
	kOf := make([]int, len(part.Buckets))
	running := 0
	for bi, b := range part.Buckets {
		offsets[bi] = running
		kOf[bi] = BucketK(cfg.K, len(b.Indices), n)
		running += kOf[bi]
	}

	kf := kernel.Gaussian(sigma)
	for w, wave := range waves {
		if waveLoad[w] > res.PeakGramBytes {
			res.PeakGramBytes = waveLoad[w]
		}
		for _, bi := range wave {
			b := part.Buckets[bi]
			labels, k, err := clusterOneBucket(points, b.Indices, cfg, n, kf)
			if err != nil {
				return nil, fmt.Errorf("core: bucket %x: %w", b.Signature, err)
			}
			if k != kOf[bi] {
				return nil, fmt.Errorf("core: bucket %x produced %d clusters, planned %d",
					b.Signature, k, kOf[bi])
			}
			for pos, idx := range b.Indices {
				res.Labels[idx] = offsets[bi] + labels[pos]
			}
		}
	}
	res.Clusters = running
	var gram int64
	for bi, b := range part.Buckets {
		gb := gramOf(bi)
		res.Buckets = append(res.Buckets, BucketReport{
			Signature: b.Signature,
			Size:      len(b.Indices),
			K:         kOf[bi],
			GramBytes: gb,
		})
		gram += gb
	}
	res.GramBytes = gram
	res.Elapsed = time.Since(start)
	return res, nil
}
