package core

import (
	"testing"

	"repro/internal/mapreduce"
)

// The golden labelings below were captured from the pre-ensemble
// pipeline (commit ddfed36, single-signature bucketing) with the exact
// dataset and configuration of the cross-driver and determinism tests.
// The multi-table refactor's contract is that the degenerate dial —
// Tables=1, ProbeRadius=0, i.e. the zero Config — reproduces them
// byte-identically, so these tests pin the refactor against silent
// label drift. Both corpora happen to label in clean 60-point blocks,
// which blocks60 spells out.
func blocks60(vals ...int) []int {
	out := make([]int, 0, 60*len(vals))
	for _, v := range vals {
		for i := 0; i < 60; i++ {
			out = append(out, v)
		}
	}
	return out
}

// TestGoldenLabelsDegenerateDial pins the degenerate ensemble against
// the pre-refactor labels on all four drivers: corpus A (the
// cross-driver dataset) must reproduce goldenA everywhere, and corpus B
// (the sparse-engine determinism dataset) must reproduce goldenB.
func TestGoldenLabelsDegenerateDial(t *testing.T) {
	goldenA := blocks60(3, 1, 0, 2)
	goldenB := blocks60(0, 1, 2, 3)

	check := func(name string, got, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d labels, golden has %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: label[%d] = %d, golden %d", name, i, got[i], want[i])
			}
		}
	}

	a := mixture(t, 240, 12, 4, 0.03, 40)
	cfgA := Config{K: 4, Seed: 41}
	batch, err := Cluster(a.Points, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	check("batch", batch.Labels, goldenA)
	// The captured run produced 4 clusters over 2 merged buckets with a
	// 144000-byte Gram at M=3; pin the accounting too so bucket-merge
	// changes cannot hide behind a coincidentally equal labeling.
	if batch.Clusters != 4 || batch.GramBytes != 144000 || len(batch.Buckets) != 2 || batch.SignatureBits != 3 {
		t.Errorf("batch bookkeeping: clusters=%d gram=%d buckets=%d M=%d, golden 4/144000/2/3",
			batch.Clusters, batch.GramBytes, len(batch.Buckets), batch.SignatureBits)
	}

	inc, err := ClusterIncremental(a.Points, cfgA, batch.GramBytes)
	if err != nil {
		t.Fatal(err)
	}
	check("incremental", inc.Labels, goldenA)
	mr, err := ClusterMapReduce(a.Points, cfgA, &mapreduce.Local{}, "golden-test")
	if err != nil {
		t.Fatal(err)
	}
	check("mapreduce", mr.Labels, goldenA)
	shipped, err := ClusterMapReduceShipped(a.Points, cfgA, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}
	check("shipped", shipped.Labels, goldenA)

	b := mixture(t, 240, 12, 4, 0.04, 11)
	res, err := Cluster(b.Points, Config{K: 4, Seed: 7, SparseCutoff: 24, Epsilon: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	check("sparse-engine", res.Labels, goldenB)
	if res.Clusters != 4 || res.GramBytes != 86400 {
		t.Errorf("sparse-engine bookkeeping: clusters=%d gram=%d, golden 4/86400", res.Clusters, res.GramBytes)
	}
}

// TestAllDriversEnsembleIdenticalLabels extends the cross-driver
// identity guarantee to a non-degenerate dial: with two tables and one
// probe flip, all four drivers must still agree exactly — the ensemble
// merge runs on the driver, so backend choice cannot change the
// partition.
func TestAllDriversEnsembleIdenticalLabels(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.03, 40)
	cfg := Config{K: 4, Seed: 41, Tables: 2, ProbeRadius: 1}

	batch, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ClusterIncremental(l.Points, cfg, batch.GramBytes)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := ClusterMapReduce(l.Points, cfg, &mapreduce.Local{}, "ensemble-ident")
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}

	others := map[string]*Result{
		"incremental": &inc.Result,
		"mapreduce":   mr,
		"shipped":     shipped,
	}
	for name, res := range others {
		if len(res.Labels) != len(batch.Labels) {
			t.Fatalf("%s: %d labels, batch has %d", name, len(res.Labels), len(batch.Labels))
		}
		for i := range batch.Labels {
			if res.Labels[i] != batch.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, batch %d", name, i, res.Labels[i], batch.Labels[i])
			}
		}
		if res.Clusters != batch.Clusters || res.GramBytes != batch.GramBytes {
			t.Errorf("%s bookkeeping differs: %d clusters / %d bytes vs %d / %d",
				name, res.Clusters, res.GramBytes, batch.Clusters, batch.GramBytes)
		}
	}
}

// TestEnsembleResultDeterministic repeats the determinism pin at a
// non-degenerate dial: same seed, any worker count, identical labels
// and bucket reports.
func TestEnsembleResultDeterministic(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.04, 11)
	cfg := Config{K: 4, Seed: 7, Tables: 4, ProbeRadius: 1, SparseCutoff: 24, Epsilon: 1e-4}

	run := func(workers int) *Result {
		t.Helper()
		c := cfg
		c.Workers = workers
		res, err := Cluster(l.Points, c)
		if err != nil {
			t.Fatalf("Cluster(workers=%d): %v", workers, err)
		}
		return res
	}

	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			res := run(workers)
			for i := range base.Labels {
				if res.Labels[i] != base.Labels[i] {
					t.Fatalf("workers=%d rep=%d: label[%d] = %d, baseline %d",
						workers, rep, i, res.Labels[i], base.Labels[i])
				}
			}
			if len(res.Buckets) != len(base.Buckets) {
				t.Fatalf("workers=%d rep=%d: %d buckets, baseline %d",
					workers, rep, len(res.Buckets), len(base.Buckets))
			}
			for bi, b := range res.Buckets {
				want := base.Buckets[bi]
				b.SolveNanos, want.SolveNanos = 0, 0
				if b != want {
					t.Fatalf("workers=%d rep=%d: bucket %d = %+v, baseline %+v",
						workers, rep, bi, b, want)
				}
			}
		}
	}
}
