package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/shard"
)

// writeShardDir splits the test matrix into a shard directory.
func writeShardDir(t *testing.T, pts interface {
	Rows() int
	Cols() int
	Row(int) []float64
}, rowsPerShard int) string {
	t.Helper()
	dir := t.TempDir()
	w, err := shard.NewWriter(dir, pts.Cols(), rowsPerShard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pts.Rows(); i++ {
		if err := w.Append(pts.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestShardedMatchesInMemoryWithFullFitSample is the out-of-core
// identity contract: with FitSample >= N the sharded driver fits the
// same plan as the in-memory drivers and must reproduce their labels
// bit for bit — with and without a spill budget.
func TestShardedMatchesInMemoryWithFullFitSample(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.03, 40)
	cfg := Config{K: 4, Seed: 41, FitSample: 240}

	batch, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := writeShardDir(t, l.Points, 64)
	for _, spill := range []int64{0, 512} {
		cfg.SpillBytes = spill
		res, err := ClusterMapReduceSharded(dir, cfg, &mapreduce.Local{})
		if err != nil {
			t.Fatalf("spill=%d: %v", spill, err)
		}
		for i := range batch.Labels {
			if res.Labels[i] != batch.Labels[i] {
				t.Fatalf("spill=%d: label[%d] = %d, batch %d", spill, i, res.Labels[i], batch.Labels[i])
			}
		}
		if res.Clusters != batch.Clusters || res.GramBytes != batch.GramBytes {
			t.Fatalf("spill=%d: bookkeeping differs: %d clusters / %d bytes vs %d / %d",
				spill, res.Clusters, res.GramBytes, batch.Clusters, batch.GramBytes)
		}
		if res.MapReduce == nil {
			t.Fatalf("spill=%d: no MapReduce counters", spill)
		}
		if res.MapReduce.ShardReadBytes == 0 {
			t.Fatalf("spill=%d: no shard reads recorded", spill)
		}
		if spill > 0 && res.MapReduce.SpillBytes == 0 {
			t.Fatalf("spill=%d: expected spilling in the stage shuffles", spill)
		}
		if spill == 0 && res.MapReduce.SpillBytes != 0 {
			t.Fatalf("in-memory run reported %d spill bytes", res.MapReduce.SpillBytes)
		}
	}
}

// TestShardedEmbedAndProbeMatchInMemory covers the two paths with
// extra worker-side machinery: the refit RFF embedder and
// margin-ordered multi-probe reads through the shard adapter.
func TestShardedEmbedAndProbeMatchInMemory(t *testing.T) {
	l := mixture(t, 300, 10, 3, 0.03, 17)
	for _, cfg := range []Config{
		{K: 3, Seed: 5, FitSample: 300, EmbedDim: 16, EmbedCutoff: 40},
		{K: 3, Seed: 5, FitSample: 300, Tables: 2, ProbeRadius: 1},
	} {
		batch, err := Cluster(l.Points, cfg)
		if err != nil {
			t.Fatal(err)
		}
		dir := writeShardDir(t, l.Points, 50)
		res, err := ClusterMapReduceSharded(dir, cfg, &mapreduce.Local{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range batch.Labels {
			if res.Labels[i] != batch.Labels[i] {
				t.Fatalf("cfg %+v: label[%d] = %d, batch %d", cfg, i, res.Labels[i], batch.Labels[i])
			}
		}
	}
}

// TestShardedSampledFitStillClusters exercises the realistic setting —
// FitSample < N — where labels may differ from the in-memory fit but
// the run must still produce a valid labeling over all points.
func TestShardedSampledFitStillClusters(t *testing.T) {
	l := mixture(t, 400, 8, 4, 0.03, 23)
	dir := writeShardDir(t, l.Points, 128)
	res, err := ClusterMapReduceSharded(dir, Config{K: 4, Seed: 23, FitSample: 64}, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 400 {
		t.Fatalf("%d labels", len(res.Labels))
	}
	seen := map[int]bool{}
	for i, lab := range res.Labels {
		if lab < 0 || lab >= res.Clusters {
			t.Fatalf("label[%d] = %d outside [0,%d)", i, lab, res.Clusters)
		}
		seen[lab] = true
	}
	if len(seen) != res.Clusters {
		t.Fatalf("%d distinct labels for %d clusters", len(seen), res.Clusters)
	}
}

// TestShardedCancellation checks the context aborts the run.
func TestShardedCancellation(t *testing.T) {
	l := mixture(t, 120, 8, 3, 0.03, 7)
	dir := writeShardDir(t, l.Points, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ClusterMapReduceShardedContext(ctx, dir, Config{K: 3, Seed: 9}, &mapreduce.Local{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestShardedConfValidation pins the factory-side conf checks.
func TestShardedConfValidation(t *testing.T) {
	if _, err := newShardedLSHJob([]byte("junk")); err == nil {
		t.Error("garbage lsh conf accepted")
	}
	blob, err := gobEncode(shardedLSHConf{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newShardedLSHJob(blob); err == nil {
		t.Error("empty lsh conf accepted")
	}
	if _, err := newShardedClusterJob([]byte("junk")); err == nil {
		t.Error("garbage cluster conf accepted")
	}
	blob, err = gobEncode(shardedClusterConf{Dir: "x", C: clusterConf{N: 0, K: 1, Sigma: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newShardedClusterJob(blob); err == nil {
		t.Error("invalid cluster conf accepted")
	}
	if _, err := ClusterMapReduceSharded(t.TempDir(), Config{}, &mapreduce.Local{}); err == nil {
		t.Error("empty shard dir accepted")
	}
}
