package core

import (
	"testing"
)

func TestClusterIncrementalMatchesBatch(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.03, 40)
	cfg := Config{K: 4, Seed: 41}
	batch, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := ClusterIncremental(l.Points, cfg, batch.GramBytes) // one wave fits
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch.Labels {
		if batch.Labels[i] != inc.Labels[i] {
			t.Fatal("incremental driver must reproduce batch labels")
		}
	}
	if inc.GramBytes != batch.GramBytes || inc.Clusters != batch.Clusters {
		t.Fatalf("bookkeeping differs: %+v vs %+v", inc.Result, *batch)
	}
}

func TestClusterIncrementalRespectsBudget(t *testing.T) {
	l := mixture(t, 300, 12, 6, 0.03, 42)
	cfg := Config{K: 6, Seed: 43, M: 6}
	full, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Budget = half the total Gram: must need at least 2 waves and keep
	// the peak within budget unless a single bucket exceeds it.
	budget := full.GramBytes/2 + 1
	var largest int64
	for _, b := range full.Buckets {
		if b.GramBytes > largest {
			largest = b.GramBytes
		}
	}
	inc, err := ClusterIncremental(l.Points, cfg, budget)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Waves < 2 {
		t.Fatalf("waves = %d, want >= 2 under a half budget", inc.Waves)
	}
	limit := budget
	if largest > limit {
		limit = largest
	}
	if inc.PeakGramBytes > limit {
		t.Fatalf("peak %d exceeds limit %d", inc.PeakGramBytes, limit)
	}
	// Same labels as batch regardless of wave packing.
	for i := range full.Labels {
		if full.Labels[i] != inc.Labels[i] {
			t.Fatal("wave packing changed the labels")
		}
	}
}

func TestClusterIncrementalValidation(t *testing.T) {
	l := mixture(t, 20, 4, 2, 0.05, 44)
	if _, err := ClusterIncremental(l.Points, Config{K: 2}, 0); err == nil {
		t.Fatal("expected error for zero budget")
	}
	if _, err := ClusterIncremental(l.Points, Config{K: 99}, 1<<20); err == nil {
		t.Fatal("expected config error")
	}
}

func TestClusterIncrementalOversizedBucket(t *testing.T) {
	// A budget smaller than the largest bucket still completes; the
	// peak simply reports the irreducible bucket.
	l := mixture(t, 120, 8, 2, 0.02, 45)
	inc, err := ClusterIncremental(l.Points, Config{K: 2, Seed: 46}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if inc.PeakGramBytes <= 8 {
		t.Fatalf("peak %d should exceed the tiny budget", inc.PeakGramBytes)
	}
	if len(inc.Labels) != 120 {
		t.Fatalf("labels = %d", len(inc.Labels))
	}
}
