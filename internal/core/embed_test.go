package core

import (
	"reflect"
	"testing"

	"repro/internal/mapreduce"
	"repro/internal/spectral"
)

// embedTestConfig is the embedded-mode dial of the golden cross-driver
// corpus: the 240-point mixture partitions into a 180-point bucket
// (claimed by the embed policy at cutoff 64) and a 60-point one (kept on
// the exact path — its proportional k is 1, trivial).
func embedTestConfig() Config {
	return Config{K: 4, Seed: 41, EmbedDim: 32, EmbedCutoff: 64}
}

// TestEmbeddedAllDriversIdenticalLabels extends the cross-driver
// identity contract to embed mode: the local pool, the incremental
// waves, the closure MapReduce runner, and the shipped runner (which
// embeds map-side and ships d′-dim records instead of raw vectors) must
// produce bitwise identical labels and bucket reports, with the
// embedded solver actually engaged.
func TestEmbeddedAllDriversIdenticalLabels(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.03, 40)
	cfg := embedTestConfig()

	batch, err := Cluster(l.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Solvers[spectral.SolverEmbedded] == 0 {
		t.Fatalf("embedded solver never engaged: %v", batch.Solvers)
	}
	if acc, err := metricsAccuracy(l.Labels, batch.Labels); err != nil || acc < 0.9 {
		t.Fatalf("embedded accuracy = %v (%v)", acc, err)
	}

	inc, err := ClusterIncremental(l.Points, cfg, batch.GramBytes)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := ClusterMapReduce(l.Points, cfg, &mapreduce.Local{}, "embed-ident")
	if err != nil {
		t.Fatal(err)
	}
	shipped, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}

	others := map[string]*Result{
		"incremental": &inc.Result,
		"mapreduce":   mr,
		"shipped":     shipped,
	}
	for name, res := range others {
		if !reflect.DeepEqual(res.Labels, batch.Labels) {
			t.Fatalf("%s labels differ from batch", name)
		}
		if !reflect.DeepEqual(res.Solvers, batch.Solvers) {
			t.Fatalf("%s Solvers = %v, batch %v", name, res.Solvers, batch.Solvers)
		}
		if res.GramBytes != batch.GramBytes {
			t.Fatalf("%s GramBytes = %d, batch %d", name, res.GramBytes, batch.GramBytes)
		}
		for bi, b := range res.Buckets {
			want := batch.Buckets[bi]
			b.SolveNanos, want.SolveNanos = 0, 0
			if b != want {
				t.Fatalf("%s bucket %d = %+v, batch %+v", name, bi, b, want)
			}
		}
	}

	// Only the shipped runner moves embedded records over the wire, so
	// only it meters the embed data plane.
	if shipped.MapReduce == nil || shipped.MapReduce.EmbedBytes == 0 {
		t.Fatalf("shipped embed counters not metered: %+v", shipped.MapReduce)
	}
	if mr.MapReduce.EmbedBytes != 0 {
		t.Fatalf("closure runner metered embed bytes: %+v", mr.MapReduce)
	}
}

// TestEmbeddedShippedShrinksShuffle pins the point of the map-side
// embedding: with d′ below the input dimensionality, the shipped
// stage-2 payload must be smaller than the same run without embedding.
func TestEmbeddedShippedShrinksShuffle(t *testing.T) {
	l := mixture(t, 240, 48, 4, 0.03, 40)
	cfg := Config{K: 4, Seed: 41}
	raw, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.EmbedDim, cfg.EmbedCutoff = 8, 64
	emb, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}
	if emb.Solvers[spectral.SolverEmbedded] == 0 {
		t.Fatalf("embedded solver never engaged: %v", emb.Solvers)
	}
	if emb.MapReduce.ShuffleBytes >= raw.MapReduce.ShuffleBytes {
		t.Fatalf("embedded shuffle %d not below raw %d",
			emb.MapReduce.ShuffleBytes, raw.MapReduce.ShuffleBytes)
	}
}

// TestEmbeddedDeterministicAcrossWorkers repeats the worker-count
// determinism pin in embed mode: the embedded transform and k-means run
// inside the racing bucket pool, so any order dependence in the
// embedding path shows up here (and under -race in CI).
func TestEmbeddedDeterministicAcrossWorkers(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.03, 40)
	cfg := embedTestConfig()

	run := func(workers int) *Result {
		t.Helper()
		c := cfg
		c.Workers = workers
		res, err := Cluster(l.Points, c)
		if err != nil {
			t.Fatalf("Cluster(workers=%d): %v", workers, err)
		}
		return res
	}

	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			res := run(workers)
			if !reflect.DeepEqual(res.Labels, base.Labels) {
				t.Fatalf("workers=%d rep=%d: labels differ", workers, rep)
			}
			for bi, b := range res.Buckets {
				want := base.Buckets[bi]
				b.SolveNanos, want.SolveNanos = 0, 0
				if b != want {
					t.Fatalf("workers=%d rep=%d: bucket %d = %+v, baseline %+v",
						workers, rep, bi, b, want)
				}
			}
		}
	}
}

// TestEmbedConfigValidation covers the resolve-layer checks of the
// embed dial.
func TestEmbedConfigValidation(t *testing.T) {
	l := mixture(t, 60, 6, 2, 0.05, 3)
	for name, cfg := range map[string]Config{
		"negative dim":    {K: 2, EmbedDim: -2},
		"odd dim":         {K: 2, EmbedDim: 7},
		"negative cutoff": {K: 2, EmbedDim: 8, EmbedCutoff: -1},
	} {
		if _, err := Cluster(l.Points, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Zero cutoff with a positive dim resolves to the default.
	res, err := Cluster(l.Points, Config{K: 2, Seed: 1, EmbedDim: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 60 {
		t.Fatalf("labels = %d", len(res.Labels))
	}
}
