package core

import (
	"reflect"
	"testing"
)

// TestResultDeterministicAcrossRunsAndWorkers pins the determinism
// contract the lint layer guards statically: repeated runs of the same
// configuration — at any worker count — must agree on labels, on the
// per-bucket report (including its order), and on the Solvers
// histogram. Bucket solves race over a shared work queue, so any
// map-order or float-accumulation leak in the assembly path shows up
// here as a flaky diff.
func TestResultDeterministicAcrossRunsAndWorkers(t *testing.T) {
	l := mixture(t, 240, 12, 4, 0.04, 11)
	cfg := Config{K: 4, Seed: 7, SparseCutoff: 24, Epsilon: 1e-4}

	run := func(workers int) *Result {
		t.Helper()
		c := cfg
		c.Workers = workers
		res, err := Cluster(l.Points, c)
		if err != nil {
			t.Fatalf("Cluster(workers=%d): %v", workers, err)
		}
		return res
	}

	base := run(1)
	if len(base.Solvers) == 0 {
		t.Fatal("baseline run populated no Solvers histogram")
	}

	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			res := run(workers)
			if !reflect.DeepEqual(res.Labels, base.Labels) {
				t.Fatalf("workers=%d rep=%d: labels differ from baseline", workers, rep)
			}
			if !reflect.DeepEqual(res.Solvers, base.Solvers) {
				t.Fatalf("workers=%d rep=%d: Solvers histogram %v != baseline %v",
					workers, rep, res.Solvers, base.Solvers)
			}
			if len(res.Buckets) != len(base.Buckets) {
				t.Fatalf("workers=%d rep=%d: %d buckets, baseline %d",
					workers, rep, len(res.Buckets), len(base.Buckets))
			}
			for bi, b := range res.Buckets {
				want := base.Buckets[bi]
				// SolveNanos is wall time and legitimately varies; every
				// other field — including position bi — must be stable.
				b.SolveNanos, want.SolveNanos = 0, 0
				if b != want {
					t.Fatalf("workers=%d rep=%d: bucket %d = %+v, baseline %+v",
						workers, rep, bi, b, want)
				}
			}
		}
	}
}
