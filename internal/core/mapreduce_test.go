package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/matrix"
	"repro/internal/metrics"
)

func matrixOfSize(r, c int) *matrix.Dense { return matrix.NewDense(r, c) }

func TestClusterMapReduceMatchesLocalDriver(t *testing.T) {
	l := mixture(t, 180, 12, 3, 0.03, 20)
	direct, err := Cluster(l.Points, Config{K: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	viaMR, err := ClusterMapReduce(l.Points, Config{K: 3, Seed: 21}, &mapreduce.Local{}, "test-eq")
	if err != nil {
		t.Fatal(err)
	}
	// Same partition, same per-bucket seeds: identical partitions.
	agree, err := metrics.Accuracy(direct.Labels, viaMR.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Fatalf("MapReduce driver disagrees with local driver: overlap %v", agree)
	}
	if direct.GramBytes != viaMR.GramBytes {
		t.Fatalf("GramBytes differ: %d vs %d", direct.GramBytes, viaMR.GramBytes)
	}
	if direct.Clusters != viaMR.Clusters {
		t.Fatalf("cluster counts differ: %d vs %d", direct.Clusters, viaMR.Clusters)
	}
}

func TestClusterMapReduceAccuracy(t *testing.T) {
	l := mixture(t, 160, 16, 4, 0.02, 22)
	res, err := ClusterMapReduce(l.Points, Config{K: 4, Seed: 23}, &mapreduce.Local{Workers: 4}, "test-acc")
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(l.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestClusterMapReduceOverTCP(t *testing.T) {
	l := mixture(t, 100, 8, 2, 0.03, 24)
	// The job constructors inside ClusterMapReduce register the jobs by
	// name, and the in-process TCP workers share that registry — the
	// same way Hadoop workers share the job jar.
	prefix := "test-tcp"
	m, err := mapreduce.NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mapreduce.RunWorker(m.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}

	res, err := ClusterMapReduce(l.Points, Config{K: 2, Seed: 25}, m, prefix)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := metrics.Accuracy(l.Labels, res.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Fatalf("TCP accuracy = %v", acc)
	}
	// The driver aggregates executor counters from both stages onto the
	// result; over TCP that includes real wire traffic.
	if res.MapReduce == nil {
		t.Fatal("Result.MapReduce not populated by the MapReduce driver")
	}
	if res.MapReduce.MapTasks == 0 || res.MapReduce.ReduceTasks == 0 {
		t.Fatalf("stage counters not aggregated: %+v", res.MapReduce)
	}
	if res.MapReduce.WireBytesOut <= 0 || res.MapReduce.WireBytesIn <= 0 {
		t.Fatalf("TCP wire counters not aggregated: %+v", res.MapReduce)
	}
	m.Close()
	wg.Wait()
}

func TestIndexCodecRoundTrip(t *testing.T) {
	in := []int{0, 1, 42, 1 << 20}
	out, err := decodeIndices(encodeIndices(in))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(in) != fmt.Sprint(out) {
		t.Fatalf("round trip: %v -> %v", in, out)
	}
	if _, err := decodeIndices([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for misaligned payload")
	}
}

func TestLabelCodecRoundTrip(t *testing.T) {
	idx, label, k := decodeLabel(encodeLabel(7, 3, 11))
	if idx != 7 || label != 3 || k != 11 {
		t.Fatalf("round trip: %d %d %d", idx, label, k)
	}
}
