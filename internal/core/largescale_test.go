//go:build largescale

package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/mapreduce"
	"repro/internal/shard"
)

// TestLargeScaleOutOfCore is the non-blocking CI smoke for the
// out-of-core data plane: a ~100k-document Eq.-15 corpus is streamed
// through the two-pass dense vectorizer into shard files and clustered
// by the sharded driver with a deliberately small spill budget, so
// shard streaming, demand hydration, and the file-backed merge all run
// at a scale no in-memory test reaches. Build tag `largescale` keeps it
// out of the tier-1 suite; run with:
//
//	go test -tags largescale -run LargeScale -timeout 30m ./internal/core/
func TestLargeScaleOutOfCore(t *testing.T) {
	if testing.Short() {
		t.Skip("largescale smoke skipped in -short mode")
	}
	const n = 100_000
	const dims = 11
	dir := t.TempDir()
	w, err := shard.NewWriter(dir, dims, shard.DefaultRowsPerShard)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]int, 0, n)
	if _, err := corpus.StreamDense(corpus.Config{NumDocs: n, Seed: 1, VocabSize: 8192}, 11, dims, 1,
		func(row []float64, label int) error {
			truth = append(truth, label)
			return w.Append(row)
		}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := Config{Seed: 1, SpillBytes: 4 << 20, EmbedDim: 64, EmbedCutoff: 2048}
	res, err := ClusterMapReduceSharded(dir, cfg, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != n {
		t.Fatalf("%d labels, want %d", len(res.Labels), n)
	}
	for i, lab := range res.Labels {
		if lab < 0 || lab >= res.Clusters {
			t.Fatalf("label[%d] = %d outside [0,%d)", i, lab, res.Clusters)
		}
	}
	ctr := res.MapReduce
	if ctr == nil || ctr.SpillBytes == 0 {
		t.Fatalf("expected the 4MiB budget to spill, counters %+v", ctr)
	}
	if ctr.ShardReadBytes < int64(n)*dims*8 {
		t.Fatalf("shard reads %dB below one full pass %dB", ctr.ShardReadBytes, int64(n)*dims*8)
	}
	t.Logf("n=%d clusters=%d buckets=%d spill=%dB shard-read=%dB elapsed=%v",
		n, res.Clusters, len(res.Buckets), ctr.SpillBytes, ctr.ShardReadBytes, res.Elapsed)
}
