package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

// TestCompressionLabelIdentityAcrossDrivers is the PR's central
// contract: Config.Compression changes bytes moved and CPU spent in the
// codec, never labels. Every driver, at every spill budget, must
// reproduce the uncompressed in-memory labels bit for bit.
func TestCompressionLabelIdentityAcrossDrivers(t *testing.T) {
	l := mixture(t, 240, 10, 3, 0.03, 51)
	base, err := Cluster(l.Points, Config{K: 3, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	dir := writeShardDir(t, l.Points, 64)

	check := func(name string, res *Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range base.Labels {
			if res.Labels[i] != base.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, uncompressed %d", name, i, res.Labels[i], base.Labels[i])
			}
		}
	}

	for _, spill := range []int64{1, 64, 1 << 20} {
		cfg := Config{K: 3, Seed: 52, Compression: true, SpillBytes: spill}

		mr, err := ClusterMapReduce(l.Points, cfg, &mapreduce.Local{}, fmt.Sprintf("comp-closure-%d", spill))
		check(fmt.Sprintf("closure/local spill=%d", spill), mr, err)

		sh, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
		check(fmt.Sprintf("shipped/local spill=%d", spill), sh, err)

		scfg := cfg
		scfg.FitSample = 240
		shd, err := ClusterMapReduceSharded(dir, scfg, &mapreduce.Local{})
		check(fmt.Sprintf("sharded/local spill=%d", spill), shd, err)
		if shd.MapReduce == nil || shd.MapReduce.ShardReadBytes == 0 {
			t.Fatalf("sharded spill=%d: shard read accounting missing", spill)
		}
		if shd.MapReduce.ShardReadOps == 0 {
			t.Fatalf("sharded spill=%d: no shard read ops recorded", spill)
		}
	}

	// And with compression off everything must still match — the flag's
	// zero value is the prior release's exact data plane.
	off, err := ClusterMapReduceShipped(l.Points, Config{K: 3, Seed: 52}, &mapreduce.Local{})
	check("shipped/local compression=off", off, err)
}

// TestCompressionLabelIdentityOverTCP repeats the identity over real
// sockets, where Compression additionally deflates wire frames in both
// directions.
func TestCompressionLabelIdentityOverTCP(t *testing.T) {
	l := mixture(t, 200, 10, 3, 0.03, 61)
	base, err := Cluster(l.Points, Config{K: 3, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}

	m, err := mapreduce.NewMaster("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := mapreduce.RunWorker(m.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.ConnectedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers did not join")
		}
		time.Sleep(time.Millisecond)
	}

	cfg := Config{K: 3, Seed: 62, Compression: true, SpillBytes: 64}
	res, err := ClusterMapReduceShipped(l.Points, cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Labels {
		if res.Labels[i] != base.Labels[i] {
			t.Fatalf("label[%d] = %d, uncompressed %d", i, res.Labels[i], base.Labels[i])
		}
	}
	if res.MapReduce == nil || res.MapReduce.SpillBytes == 0 {
		t.Fatal("expected spill counters over TCP")
	}
	m.Close()
	wg.Wait()
}

// TestCompressionEmbedShippedIdentity covers the packed embed-bucket
// record ('e'): same labels as the raw 'E' record, strictly fewer
// shipped bytes.
func TestCompressionEmbedShippedIdentity(t *testing.T) {
	l := mixture(t, 300, 10, 3, 0.03, 17)
	cfg := Config{K: 3, Seed: 5, EmbedDim: 16, EmbedCutoff: 40}

	off, err := ClusterMapReduceShipped(l.Points, cfg, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}
	on := cfg
	on.Compression = true
	res, err := ClusterMapReduceShipped(l.Points, on, &mapreduce.Local{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range off.Labels {
		if res.Labels[i] != off.Labels[i] {
			t.Fatalf("label[%d] = %d, uncompressed %d", i, res.Labels[i], off.Labels[i])
		}
	}
	if off.MapReduce == nil || res.MapReduce == nil {
		t.Fatal("missing MapReduce counters")
	}
	if off.MapReduce.EmbedBytes == 0 {
		t.Skip("no buckets embedded at this size; nothing to compare")
	}
	if res.MapReduce.EmbedBytes >= off.MapReduce.EmbedBytes {
		t.Fatalf("packed embed records %d bytes >= raw %d bytes",
			res.MapReduce.EmbedBytes, off.MapReduce.EmbedBytes)
	}
}

// TestPackedIndicesCodec pins the compact stage-2 index record: exact
// round trip (sorted and unsorted), off-mode bytes identical to the
// legacy encoding, and malformed inputs rejected.
func TestPackedIndicesCodec(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{5, 6, 7, 8},
		{100000, 3, 99, 2_000_000_000},
		{7, 7, 7},
	}
	for ci, idx := range cases {
		packed := encodeIndicesConf(idx, true)
		got, err := decodeIndicesConf(packed, true)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if len(got) != len(idx) {
			t.Fatalf("case %d: %d indices back, want %d", ci, len(got), len(idx))
		}
		for i := range idx {
			if got[i] != idx[i] {
				t.Fatalf("case %d: index %d = %d, want %d", ci, i, got[i], idx[i])
			}
		}
	}

	// Sorted runs — the common bucket shape — must shrink vs 4 bytes/index.
	sorted := make([]int, 500)
	for i := range sorted {
		sorted[i] = 1000 + i
	}
	if p, l := encodeIndicesConf(sorted, true), encodeIndicesConf(sorted, false); len(p) >= len(l) {
		t.Fatalf("packed sorted indices %d bytes >= legacy %d", len(p), len(l))
	}

	legacy := encodeIndices([]int{1, 2, 3})
	if conf := encodeIndicesConf([]int{1, 2, 3}, false); string(conf) != string(legacy) {
		t.Fatal("off-mode index encoding diverged from legacy bytes")
	}

	for name, buf := range map[string][]byte{
		"trailing garbage": append(encodeIndicesConf([]int{1, 2}, true), 0),
		"count lies":       {200},
		"empty varint":     {0x80},
	} {
		if _, err := decodeIndicesConf(buf, true); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

// TestPackedStatsCodec pins the 'S' stats record: round trip, the
// ≥13-byte floor that keeps it disjoint from 12-byte labels, and
// off-mode bytes identical to legacy.
func TestPackedStatsCodec(t *testing.T) {
	s := BucketSolution{NNZ: 12345, Fill: 0.625, SolveNanos: 1 << 40, GramBytes: 9999, Solver: "dense"}
	rec := encodeBucketStatsConf(s, true)
	if len(rec) < 13 {
		t.Fatalf("packed stats record only %d bytes — can collide with labels", len(rec))
	}
	var got BucketSolution
	if err := decodePackedBucketStats(rec, &got); err != nil {
		t.Fatal(err)
	}
	if got.NNZ != s.NNZ || got.Fill != s.Fill || got.SolveNanos != s.SolveNanos ||
		got.GramBytes != s.GramBytes || got.Solver != s.Solver {
		t.Fatalf("round trip %+v != %+v", got, s)
	}

	// Zero-valued stats with an empty solver is the smallest record; it
	// must still clear 12 bytes.
	if min := encodeBucketStatsConf(BucketSolution{}, true); len(min) <= 12 {
		t.Fatalf("minimal packed stats record is %d bytes", len(min))
	}

	if off := encodeBucketStatsConf(s, false); string(off) != string(encodeBucketStats(s)) {
		t.Fatal("off-mode stats encoding diverged from legacy bytes")
	}

	for name, buf := range map[string][]byte{
		"empty":      {},
		"wrong kind": {'X', 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1},
		"bad ver":    {'S', 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1},
		"truncated":  encodeBucketStatsConf(s, true)[:6],
	} {
		var tmp BucketSolution
		if err := decodePackedBucketStats(buf, &tmp); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
